// Reconstructing call graphs from telemetry alone (paper §5, traffic
// classification): run the social-network app, collect spans, rebuild each
// request's call tree from (service, start, end) interval containment, and
// score every traffic class's homogeneity — the signal SLATE would use to
// decide whether a class is "one class" or needs splitting.
//
//   $ ./trace_inference
#include <cstdio>

#include "net/gcp_topology.h"
#include "runtime/scenarios.h"
#include "runtime/simulation.h"
#include "telemetry/graph_inference.h"

using namespace slate;

int main() {
  Scenario scenario = make_uniform_scenario(
      "social-network", make_social_network_app(), make_gcp_topology(), 2);
  for (ClassId k : scenario.app->all_classes()) {
    scenario.demand.set_rate(k, ClusterId{0}, 120.0);
    scenario.demand.set_rate(k, ClusterId{2}, 60.0);
  }

  RunConfig config;
  config.policy = PolicyKind::kSlate;
  config.duration = 20.0;
  config.warmup = 5.0;
  config.trace_capacity = 500000;
  config.seed = 9;

  Simulation sim(scenario, config);
  const ExperimentResult result = sim.run();
  std::printf("simulated %llu requests; retained %zu spans\n\n",
              static_cast<unsigned long long>(result.completed),
              sim.traces().size());

  const auto stats = analyze_call_graphs(sim.traces(), 2);
  for (const auto& s : stats) {
    const auto& spec = scenario.app->traffic_class(s.cls);
    std::printf("class %-14s  %6llu traces   homogeneity %.3f\n",
                spec.name.c_str(), static_cast<unsigned long long>(s.requests),
                s.homogeneity());
    std::printf("  expected call tree: %zu calls\n", spec.graph.node_count());
    std::size_t shown = 0;
    for (const auto& [signature, count] : s.signatures) {
      std::printf("  observed %6llu x  %s\n",
                  static_cast<unsigned long long>(count), signature.c_str());
      if (++shown == 4) {
        std::printf("  ... %zu more shapes\n", s.signatures.size() - shown);
        break;
      }
    }
  }
  std::printf(
      "\nread-timeline and write-post contain probabilistic sub-calls (media\n"
      "fetch on 80%% / 30%% of requests), so several tree shapes appear and\n"
      "homogeneity drops below 1 — the signature-frequency table is exactly\n"
      "what a classifier refinement pass would split on. view-profile is\n"
      "deterministic and scores 1.0.\n");
  return 0;
}
