// Four GCP regions, a regional overload, and every routing policy in the
// library side by side (§4.2 / Fig. 5b setting, extended to all baselines).
//
// Also demonstrates the introspection surface: per-cluster call placement,
// station utilization, and the SLATE controller's own view of demand.
//
//   $ ./gcp_multicluster
#include <cstdio>

#include "net/gcp_topology.h"
#include "runtime/scenarios.h"
#include "runtime/simulation.h"

using namespace slate;

int main() {
  GcpChainParams params;
  params.rps[0] = 800.0;  // OR: overloaded
  params.rps[1] = 100.0;  // UT
  params.rps[2] = 800.0;  // IOW: overloaded
  params.rps[3] = 100.0;  // SC
  const Scenario scenario = make_gcp_chain_scenario(params);

  std::printf("topology: ");
  for (ClusterId c : scenario.topology->all_clusters()) {
    std::printf("%s%s", c.index() ? ", " : "",
                scenario.topology->cluster_name(c).c_str());
  }
  std::printf("\nload: OR %.0f, UT %.0f, IOW %.0f, SC %.0f RPS "
              "(capacity ~475 RPS per 1-server cluster)\n\n",
              params.rps[0], params.rps[1], params.rps[2], params.rps[3]);

  RunConfig config;
  config.duration = 60.0;
  config.warmup = 15.0;
  config.seed = 7;

  std::printf("%-20s %11s %11s %11s\n", "policy", "mean (ms)", "p95 (ms)",
              "egress MB");
  for (PolicyKind policy :
       {PolicyKind::kLocalityFailover, PolicyKind::kRoundRobin,
        PolicyKind::kStaticWeights, PolicyKind::kWaterfall,
        PolicyKind::kSlate}) {
    config.policy = policy;
    Simulation sim(scenario, config);
    const ExperimentResult r = sim.run();
    std::printf("%-20s %11.2f %11.2f %11.1f\n", r.policy.c_str(),
                r.mean_latency() * 1e3, r.p95() * 1e3,
                static_cast<double>(r.egress_bytes) / (1024.0 * 1024.0));

    if (policy == PolicyKind::kSlate) {
      // Introspect the controller after the run.
      const GlobalController* controller = sim.global_controller();
      std::printf("\nSLATE controller after %llu rounds "
                  "(%llu optimizations):\n",
                  static_cast<unsigned long long>(controller->rounds()),
                  static_cast<unsigned long long>(controller->optimizations()));
      std::printf("  learned demand (chain class): ");
      for (std::size_t c = 0; c < 4; ++c) {
        std::printf("%s%.0f", c ? " / " : "", controller->demand()(0, c));
      }
      std::printf(" RPS\n  predicted mean latency: %.1f ms (measured %.1f)\n",
                  controller->last_result().predicted_mean_latency * 1e3,
                  r.mean_latency() * 1e3);
      std::printf("  post-warmup station utilization (svc-1):\n");
      const ServiceId svc1 = scenario.app->find_service("svc-1");
      for (std::size_t c = 0; c < 4; ++c) {
        std::printf("    %-16s %.2f\n",
                    scenario.topology->cluster_name(ClusterId{c}).c_str(),
                    r.station_utilization[svc1.index() * 4 + c]);
      }
    }
  }
  std::printf(
      "\ngreedy schemes pile both regional overloads onto UT (nearest to\n"
      "both); SLATE balances across UT and SC globally.\n");
  return 0;
}
