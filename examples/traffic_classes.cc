// Traffic classes (§3.3, §4.4): building an application with heterogeneous
// request classes from scratch using the public API, classifying requests by
// (service, method, path), and watching SLATE route the classes differently.
//
//   $ ./traffic_classes
#include <cstdio>

#include "core/traffic_classifier.h"
#include "net/gcp_topology.h"
#include "runtime/scenarios.h"

using namespace slate;

int main() {
  // 1. Describe the application: one ingress, one worker, two classes with
  // a 10x compute gap. (make_two_class_app() does the same; spelled out
  // here to show the API.)
  Application app;
  const ServiceId ingress = app.add_service("ingress");
  const ServiceId worker = app.add_service("worker");

  TrafficClassSpec light;
  light.name = "L";
  light.attributes.method = "GET";
  light.attributes.path = "/api/light";
  const std::size_t light_root = light.graph.set_root(ingress, 0.1e-3, 512, 2048);
  light.graph.add_call(light_root, worker, 1e-3, 512, 2048);
  const ClassId light_id = app.add_class(std::move(light));

  TrafficClassSpec heavy;
  heavy.name = "H";
  heavy.attributes.method = "POST";
  heavy.attributes.path = "/api/heavy";
  const std::size_t heavy_root = heavy.graph.set_root(ingress, 0.1e-3, 512, 2048);
  heavy.graph.add_call(heavy_root, worker, 10e-3, 512, 2048);
  const ClassId heavy_id = app.add_class(std::move(heavy));
  app.validate();

  // 2. The classifier SLATE-proxy would run at the ingress.
  TrafficClassifier classifier = TrafficClassifier::from_application(app);
  RequestAttributes probe;
  probe.method = "POST";
  probe.path = "/api/heavy";
  std::printf("classify(POST /api/heavy) -> class %u (expected H=%u)\n",
              classifier.classify(ingress, probe).value(), heavy_id.value());

  // 3. Deploy on two clusters and overload West with heavy requests.
  Scenario scenario;
  scenario.name = "traffic-classes";
  scenario.app = std::make_unique<Application>(std::move(app));
  scenario.topology =
      std::make_unique<Topology>(make_two_cluster_topology(25e-3));
  scenario.deployment = std::make_unique<Deployment>(*scenario.app, 2);
  for (ClusterId c : scenario.topology->all_clusters()) {
    scenario.deployment->deploy(ingress, c, 1, 9000.0);
    scenario.deployment->deploy(worker, c, 1, 380.0);
  }
  scenario.demand.set_rate(light_id, ClusterId{0}, 400.0);
  scenario.demand.set_rate(heavy_id, ClusterId{0}, 80.0);
  scenario.demand.set_rate(light_id, ClusterId{1}, 100.0);
  scenario.demand.set_rate(heavy_id, ClusterId{1}, 10.0);

  RunConfig config;
  config.duration = 60.0;
  config.warmup = 15.0;
  config.seed = 6;

  std::printf("\n%-12s %14s %14s %16s %16s\n", "policy", "L mean (ms)",
              "H mean (ms)", "L offloaded", "H offloaded");
  for (PolicyKind policy : {PolicyKind::kWaterfall, PolicyKind::kSlate}) {
    config.policy = policy;
    const ExperimentResult r = run_experiment(scenario, config);
    std::printf("%-12s %14.2f %14.2f %15.1f%% %15.1f%%\n",
                r.policy.c_str(),
                r.e2e_by_class[light_id.index()].mean() * 1e3,
                r.e2e_by_class[heavy_id.index()].mean() * 1e3,
                100 * r.remote_fraction_from(light_id, 1, ClusterId{0}),
                100 * r.remote_fraction_from(heavy_id, 1, ClusterId{0}));
  }
  std::printf(
      "\nWaterfall's per-service RPS threshold cannot tell a 1ms request\n"
      "from a 10ms one; SLATE offloads (mostly) the heavy class - each\n"
      "crossing buys 10x the capacity relief.\n");
  return 0;
}
