// Quickstart: two clusters, one overloaded, SLATE vs the Waterfall baseline.
//
// Builds the paper's Fig. 6a setup — a linear 3-service chain behind an
// ingress gateway, deployed in a "west" and an "east" cluster 25ms apart,
// with west receiving 4x more load than it can serve — and compares SLATE's
// optimized routing against greedy capacity-based offloading.
//
//   $ ./quickstart
#include <cstdio>

#include "runtime/scenarios.h"

using namespace slate;

namespace {

void report(const ExperimentResult& r) {
  std::printf("%-18s  mean %7.1f ms   p50 %7.1f   p95 %7.1f   p99 %7.1f   "
              "egress %6.1f MB   cost $%.4f\n",
              r.policy.c_str(), r.mean_latency() * 1e3, r.p50() * 1e3,
              r.p95() * 1e3, r.p99() * 1e3,
              static_cast<double>(r.egress_bytes) / (1024.0 * 1024.0),
              r.egress_cost_dollars);
}

}  // namespace

int main() {
  TwoClusterChainParams params;
  params.west_rps = 800.0;  // west capacity is ~475 RPS: heavily overloaded
  params.east_rps = 100.0;
  params.rtt = 25e-3;

  const Scenario scenario = make_two_cluster_chain_scenario(params);

  std::printf("scenario: %s (west %.0f RPS, east %.0f RPS, RTT %.0f ms)\n\n",
              scenario.name.c_str(), params.west_rps, params.east_rps,
              params.rtt * 1e3);

  RunConfig config;
  config.duration = 60.0;
  config.warmup = 15.0;
  config.seed = 42;

  for (PolicyKind policy :
       {PolicyKind::kWaterfall, PolicyKind::kSlate}) {
    config.policy = policy;
    const ExperimentResult result = run_experiment(scenario, config);
    report(result);
  }
  std::printf("\nSLATE offloads only as much of west's traffic as improves "
              "latency,\ninstead of everything beyond a static threshold.\n");
  return 0;
}
