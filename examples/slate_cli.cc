// Run any text-format scenario under any routing policy.
//
//   $ ./slate_cli <scenario.slate> [options]
//   $ ./slate_cli synth:clusters=30,services=200,classes=12,seed=7 [options]
//
// The second form synthesizes a planet-scale scenario instead of loading a
// file; the spec syntax matches the `topology synth` scenario directive
// (docs/scenario_format.md).
//
// Options:
//   --policy=<local|rr|failover|static|waterfall|slate>   (default slate)
//   --duration=<seconds>   --warmup=<seconds>      (default 60 / 15)
//   --seed=<n>                                     (default 1)
//   --cost-weight=<w>      SLATE egress-cost weight (default 1)
//   --fast                 SLATE: use the descent heuristic, not the LP
//   --autoscale            enable the per-station autoscaler
//   --timeout=<seconds>    per-call timeout (enables failure handling)
//   --retries=<n>          max retries per call (enables failure handling)
//   --no-faults            ignore the scenario's fault plan
//   --no-guard             ignore the scenario's guard directives (run the
//                          control plane unhardened)
//   --forecast=<kind>      SLATE demand forecasting: last, ewma, linear,
//                          holtwinters, or oracle (overrides the scenario's
//                          forecast directive)
//   --forecast-season=<n>  Holt-Winters season length, in control periods
//   --no-forecast          ignore the scenario's forecast directive (run
//                          the controller purely reactive)
//   --dump-demand=<csv>    write the per-period offered/estimated/forecast
//                          demand timeseries per (class, cluster) to <csv>
//   --queue-limit=<n>      bound every station queue at n jobs (overload)
//   --deadline=<seconds>   end-to-end deadline with propagation (overload)
//   --no-overload          ignore the scenario's overload directives
//   --admit=<class>:<rps>  front-door admission: cap class at rps per
//                          ingress cluster (repeatable; <rps> alone caps
//                          every class)
//   --no-admission         ignore the scenario's admission directives
//   --contingency          SLATE: arm N-1 headroom planning (pad the solve
//                          until every single-cluster failure reroutes
//                          within the utilization cap; docs/resilience.md)
//   --contingency-cap=<u>  post-failure utilization cap (default 0.95;
//                          implies --contingency)
//   --no-contingency       ignore the scenario's contingency directive
//   --no-drains            ignore the scenario's drain directives (and
//                          campaign-expanded drains)
//   --bilevel              SLATE: arm bi-level autoscaling x TE co-design
//                          (implies --autoscale; docs/autoscaling.md)
//   --no-bilevel           ignore the scenario's bilevel directive
//   --server-price=<x>     price every cluster at x dollars per server-hour
//                          (overrides the scenario's `price` directives)
//   --cdf                  print the latency CDF
//   --seeds=<n>            run n replications (derived seeds) and report
//                          mean +/- 95% CI across them (default 1)
//   --jobs=<n>             worker threads for replications (default: all
//                          hardware threads; results are independent of n)
//
// Sample scenarios live in examples/scenarios/.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/parallel.h"
#include "runtime/scenario_loader.h"
#include "runtime/simulation.h"
#include "topogen/topogen.h"

using namespace slate;

namespace {

bool parse_flag(const char* arg, const char* name, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <scenario.slate> [--policy=...] [--duration=N]\n"
                 "see examples/scenarios/ for sample files\n",
                 argv[0]);
    return 2;
  }

  RunConfig config;
  config.duration = 60.0;
  config.warmup = 15.0;
  bool print_cdf = false;
  bool drop_faults = false;
  bool drop_overload = false;
  double server_price = -1.0;  // < 0 = keep the scenario's prices
  // --admit specs, resolved against class names after the scenario loads.
  std::vector<std::string> admit_specs;
  std::string dump_demand_path;
  std::size_t seeds = 1;
  std::size_t jobs = 0;  // 0 = hardware concurrency
  std::string value;
  for (int i = 2; i < argc; ++i) {
    if (parse_flag(argv[i], "--policy", &value)) {
      if (value == "local") {
        config.policy = PolicyKind::kLocalOnly;
      } else if (value == "rr") {
        config.policy = PolicyKind::kRoundRobin;
      } else if (value == "failover") {
        config.policy = PolicyKind::kLocalityFailover;
      } else if (value == "static") {
        config.policy = PolicyKind::kStaticWeights;
      } else if (value == "waterfall") {
        config.policy = PolicyKind::kWaterfall;
      } else if (value == "slate") {
        config.policy = PolicyKind::kSlate;
      } else {
        std::fprintf(stderr, "unknown policy '%s'\n", value.c_str());
        return 2;
      }
    } else if (parse_flag(argv[i], "--duration", &value)) {
      config.duration = std::stod(value);
    } else if (parse_flag(argv[i], "--warmup", &value)) {
      config.warmup = std::stod(value);
    } else if (parse_flag(argv[i], "--seed", &value)) {
      config.seed = std::stoull(value);
    } else if (parse_flag(argv[i], "--cost-weight", &value)) {
      config.slate.optimizer.cost_weight = std::stod(value);
    } else if (std::strcmp(argv[i], "--fast") == 0) {
      config.slate.use_fast_optimizer = true;
    } else if (std::strcmp(argv[i], "--autoscale") == 0) {
      config.autoscaler_enabled = true;
    } else if (parse_flag(argv[i], "--timeout", &value)) {
      config.failure.enabled = true;
      config.failure.call_timeout = std::stod(value);
    } else if (parse_flag(argv[i], "--retries", &value)) {
      config.failure.enabled = true;
      config.failure.max_retries = std::stoull(value);
    } else if (std::strcmp(argv[i], "--no-faults") == 0) {
      drop_faults = true;
    } else if (std::strcmp(argv[i], "--no-guard") == 0) {
      config.ignore_scenario_guard = true;
    } else if (parse_flag(argv[i], "--forecast", &value)) {
      if (!forecast_kind_from_string(value, &config.slate.forecast.kind)) {
        std::fprintf(stderr,
                     "unknown forecast kind '%s' (expected none, last, ewma, "
                     "linear, holtwinters, oracle)\n",
                     value.c_str());
        return 2;
      }
    } else if (parse_flag(argv[i], "--forecast-season", &value)) {
      config.slate.forecast.season = std::stoull(value);
    } else if (std::strcmp(argv[i], "--no-forecast") == 0) {
      config.ignore_scenario_forecast = true;
    } else if (parse_flag(argv[i], "--dump-demand", &value)) {
      config.record_demand_trace = true;
      dump_demand_path = value;
    } else if (parse_flag(argv[i], "--queue-limit", &value)) {
      config.overload.queue.max_queue = std::stoull(value);
    } else if (parse_flag(argv[i], "--deadline", &value)) {
      config.overload.deadline.enabled = true;
      config.overload.deadline.default_deadline = std::stod(value);
    } else if (std::strcmp(argv[i], "--no-overload") == 0) {
      drop_overload = true;
    } else if (parse_flag(argv[i], "--admit", &value)) {
      admit_specs.push_back(value);
    } else if (std::strcmp(argv[i], "--no-admission") == 0) {
      config.ignore_scenario_admission = true;
    } else if (std::strcmp(argv[i], "--contingency") == 0) {
      config.slate.contingency.enabled = true;
    } else if (parse_flag(argv[i], "--contingency-cap", &value)) {
      config.slate.contingency.enabled = true;
      config.slate.contingency.max_post_failure_utilization = std::stod(value);
    } else if (std::strcmp(argv[i], "--no-contingency") == 0) {
      config.ignore_scenario_contingency = true;
    } else if (std::strcmp(argv[i], "--no-drains") == 0) {
      config.ignore_scenario_drains = true;
    } else if (std::strcmp(argv[i], "--bilevel") == 0) {
      config.bilevel.enabled = true;
      config.autoscaler_enabled = true;
    } else if (std::strcmp(argv[i], "--no-bilevel") == 0) {
      config.ignore_scenario_bilevel = true;
    } else if (parse_flag(argv[i], "--server-price", &value)) {
      server_price = std::stod(value);
    } else if (std::strcmp(argv[i], "--cdf") == 0) {
      print_cdf = true;
    } else if (parse_flag(argv[i], "--seeds", &value)) {
      seeds = std::stoull(value);
      if (seeds == 0) seeds = 1;
    } else if (parse_flag(argv[i], "--jobs", &value)) {
      jobs = std::stoull(value);
    } else if (parse_flag(argv[i], "--shards", &value)) {
      config.shards = std::stoull(value);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    }
  }

  Scenario scenario;
  try {
    const std::string source = argv[1];
    if (source.rfind("synth:", 0) == 0) {
      scenario = make_synth_scenario(parse_topogen_spec(source.substr(6)));
    } else {
      scenario = load_scenario_from_file(source);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[1], e.what());
    return 1;
  }
  if (drop_faults) scenario.faults.clear();
  if (drop_overload) scenario.overload = OverloadPolicy{};
  if (server_price >= 0.0) {
    scenario.topology->set_uniform_server_price(server_price);
  }

  // --admit overlays onto the scenario's admission policy (and arms it):
  // "<class>:<rps>" caps one class, a bare "<rps>" sets the default rate.
  for (const std::string& spec : admit_specs) {
    const std::size_t colon = spec.find(':');
    double rps = 0.0;
    try {
      rps = std::stod(colon == std::string::npos ? spec
                                                 : spec.substr(colon + 1));
    } catch (const std::exception&) {
      rps = 0.0;
    }
    if (rps <= 0.0) {
      std::fprintf(stderr, "--admit expects <class>:<rps> or <rps>, got '%s'\n",
                   spec.c_str());
      return 2;
    }
    if (colon == std::string::npos) {
      scenario.admission.default_rate = rps;
    } else {
      const std::string cls = spec.substr(0, colon);
      ClassId id;
      for (ClassId k : scenario.app->all_classes()) {
        if (scenario.app->traffic_class(k).name == cls) id = k;
      }
      if (!id.valid()) {
        std::fprintf(stderr, "--admit: unknown class '%s'\n", cls.c_str());
        return 2;
      }
      auto& rates = scenario.admission.class_rate;
      if (rates.size() <= id.index()) rates.resize(id.index() + 1, 0.0);
      rates[id.index()] = rps;
    }
    scenario.admission.enabled = true;
  }

  // Replications: seed i is derived from the base seed, and every replicate
  // is an independent grid job, so `--jobs` changes wall-clock only.
  std::vector<GridJob> grid;
  for (std::size_t i = 0; i < seeds; ++i) {
    RunConfig replicate = config;
    replicate.seed = replicate_seed(config.seed, i);
    grid.push_back({&scenario, replicate, "replicate"});
  }
  GridOptions options;
  options.jobs = jobs;
  const std::vector<ExperimentResult> results =
      run_experiment_grid(grid, options);
  const ExperimentResult& r = results.front();

  // Demand-trace export (first replicate): offered vs. controller-estimated
  // vs. forecast RPS per (class, cluster) control period.
  if (!dump_demand_path.empty()) {
    std::ofstream out(dump_demand_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", dump_demand_path.c_str());
      return 1;
    }
    out << "time,class,cluster,offered_rps,estimated_rps,forecast_rps\n";
    char buf[64];
    for (const DemandTracePoint& p : r.demand_trace) {
      std::snprintf(buf, sizeof buf, "%.3f,", p.time);
      out << buf
          << scenario.app->traffic_class(ClassId{p.cls}).name << ','
          << scenario.topology->cluster_name(ClusterId{p.cluster}) << ',';
      std::snprintf(buf, sizeof buf, "%.4f,%.4f,%.4f\n", p.offered_rps,
                    p.estimated_rps, p.forecast_rps);
      out << buf;
    }
    std::fprintf(stderr, "wrote %zu demand trace rows to %s\n",
                 r.demand_trace.size(), dump_demand_path.c_str());
  }

  if (seeds > 1) {
    std::vector<double> mean_ms, p99_ms, goodput, cost;
    for (const ExperimentResult& rep : results) {
      mean_ms.push_back(rep.mean_latency() * 1e3);
      p99_ms.push_back(rep.p99() * 1e3);
      goodput.push_back(rep.goodput_rps());
      cost.push_back(rep.egress_cost_dollars);
    }
    const MeanCI mean_ci = mean_ci95(mean_ms);
    const MeanCI p99_ci = mean_ci95(p99_ms);
    const MeanCI good_ci = mean_ci95(goodput);
    const MeanCI cost_ci = mean_ci95(cost);
    std::printf("scenario %s under %s: %zu replications (base seed %llu)\n",
                r.scenario.c_str(), r.policy.c_str(), seeds,
                static_cast<unsigned long long>(config.seed));
    std::printf("  mean latency  %8.2f +/- %6.2f ms   (95%% CI)\n",
                mean_ci.mean, mean_ci.ci95);
    std::printf("  p99 latency   %8.2f +/- %6.2f ms\n", p99_ci.mean,
                p99_ci.ci95);
    std::printf("  goodput       %8.1f +/- %6.1f rps\n", good_ci.mean,
                good_ci.ci95);
    std::printf("  egress cost   $%.5f +/- %.5f\n", cost_ci.mean, cost_ci.ci95);
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::printf("data,replicate,%zu,%llu,%.3f,%.3f,%.1f,%.5f\n", i,
                  static_cast<unsigned long long>(grid[i].config.seed),
                  mean_ms[i], p99_ms[i], goodput[i], cost[i]);
    }
    return 0;
  }

  std::printf("scenario %s under %s: %llu requests measured over %.0fs\n",
              r.scenario.c_str(), r.policy.c_str(),
              static_cast<unsigned long long>(r.completed), r.measured_seconds);
  std::printf("  latency  mean %.2f ms   p50 %.2f   p95 %.2f   p99 %.2f\n",
              r.mean_latency() * 1e3, r.p50() * 1e3, r.p95() * 1e3,
              r.p99() * 1e3);
  std::printf("  egress   %.2f MB ($%.5f), local bytes %.2f MB\n",
              static_cast<double>(r.egress_bytes) / (1024.0 * 1024.0),
              r.egress_cost_dollars,
              static_cast<double>(r.local_bytes) / (1024.0 * 1024.0));
  if (r.server_cost_dollars > 0.0) {
    std::printf("  servers  %.2f server-hours ($%.5f), total cost $%.5f\n",
                r.server_seconds / 3600.0, r.server_cost_dollars,
                r.total_cost_dollars());
  }
  for (ClassId k : scenario.app->all_classes()) {
    if (r.e2e_by_class[k.index()].empty()) continue;
    std::printf("  class %-12s mean %8.2f ms over %zu requests\n",
                scenario.app->traffic_class(k).name.c_str(),
                r.e2e_by_class[k.index()].mean() * 1e3,
                r.e2e_by_class[k.index()].count());
  }
  if (r.failed > 0 || r.fault_transitions > 0) {
    std::printf(
        "  faults   %llu failed (%.2f%% error rate), goodput %.1f rps, "
        "%llu timeouts / %llu retries / %llu rejections\n",
        static_cast<unsigned long long>(r.failed), r.error_rate() * 100.0,
        r.goodput_rps(), static_cast<unsigned long long>(r.call_timeouts),
        static_cast<unsigned long long>(r.call_retries),
        static_cast<unsigned long long>(r.call_rejections));
  }
  if (r.call_retries + r.call_timeouts + r.retry_budget_denials > 0) {
    for (ClassId k : scenario.app->all_classes()) {
      const std::size_t i = k.index();
      if (r.call_retries_by_class[i] + r.call_timeouts_by_class[i] +
              r.retry_budget_denials_by_class[i] ==
          0) {
        continue;
      }
      std::printf(
          "  class %-12s %llu retries / %llu timeouts / %llu budget denials\n",
          scenario.app->traffic_class(k).name.c_str(),
          static_cast<unsigned long long>(r.call_retries_by_class[i]),
          static_cast<unsigned long long>(r.call_timeouts_by_class[i]),
          static_cast<unsigned long long>(r.retry_budget_denials_by_class[i]));
    }
  }
  if (r.total_shed() + r.deadline_cancellations + r.breaker_ejections > 0) {
    std::printf(
        "  overload %llu shed (%llu full / %llu delay / %llu evicted), "
        "%llu deadline cancellations, %llu breaker ejections\n",
        static_cast<unsigned long long>(r.total_shed()),
        static_cast<unsigned long long>(r.shed_queue_full),
        static_cast<unsigned long long>(r.shed_queue_delay),
        static_cast<unsigned long long>(r.shed_evictions),
        static_cast<unsigned long long>(r.deadline_cancellations),
        static_cast<unsigned long long>(r.breaker_ejections));
    if (r.wasted_server_seconds > 0.0) {
      std::printf("  overload %.3f wasted server-seconds (expired work served)\n",
                  r.wasted_server_seconds);
    }
  }
  if (r.admission_admitted + r.admission_rejected > 0) {
    std::printf(
        "  admission %llu admitted / %llu rejected at ingress "
        "(%llu adapt rounds: %llu raises / %llu cuts / %llu floor raises"
        " / %llu forecast widenings)\n",
        static_cast<unsigned long long>(r.admission_admitted),
        static_cast<unsigned long long>(r.admission_rejected),
        static_cast<unsigned long long>(r.admission_adapt_rounds),
        static_cast<unsigned long long>(r.admission_rate_raises),
        static_cast<unsigned long long>(r.admission_rate_cuts),
        static_cast<unsigned long long>(r.admission_floor_raises),
        static_cast<unsigned long long>(r.admission_forecast_widenings));
    for (ClassId k : scenario.app->all_classes()) {
      const std::size_t i = k.index();
      const std::uint64_t offered =
          r.admission_admitted_by_class[i] + r.admission_rejected_by_class[i];
      if (offered == 0) continue;
      const std::size_t done = r.e2e_by_class[i].count();
      const double attainment =
          done > 0 ? static_cast<double>(r.slo_hits_by_class[i]) /
                         static_cast<double>(done)
                   : 0.0;
      std::printf(
          "  class %-12s %llu admitted / %llu rejected, goodput %.1f rps, "
          "SLO attainment %.1f%%\n",
          scenario.app->traffic_class(k).name.c_str(),
          static_cast<unsigned long long>(r.admission_admitted_by_class[i]),
          static_cast<unsigned long long>(r.admission_rejected_by_class[i]),
          r.measured_seconds > 0.0
              ? static_cast<double>(done) / r.measured_seconds
              : 0.0,
          attainment * 100.0);
    }
  }
  if (r.guard_fields_rejected + r.guard_spikes_clamped + r.solver_fallbacks +
          r.solver_holds + r.rollout_rollbacks + r.rollout_flap_freezes +
          r.rollout_damped_pushes + r.stale_rule_pushes >
      0) {
    std::printf(
        "  guard    %llu fields rejected / %llu spikes clamped "
        "(%llu interpolated)\n",
        static_cast<unsigned long long>(r.guard_fields_rejected),
        static_cast<unsigned long long>(r.guard_spikes_clamped),
        static_cast<unsigned long long>(r.guard_interpolations));
    std::printf(
        "  guard    %llu solver fallbacks, %llu holds; rollout %llu rollbacks "
        "/ %llu flap freezes / %llu damped pushes, %llu stale pushes dropped\n",
        static_cast<unsigned long long>(r.solver_fallbacks),
        static_cast<unsigned long long>(r.solver_holds),
        static_cast<unsigned long long>(r.rollout_rollbacks),
        static_cast<unsigned long long>(r.rollout_flap_freezes),
        static_cast<unsigned long long>(r.rollout_damped_pushes),
        static_cast<unsigned long long>(r.stale_rule_pushes));
  }
  if (r.solver_solves > 0) {
    std::printf(
        "  solver   %llu solves, mean %.2f ms / max %.2f ms wall\n"
        "  solver   arms: %llu exact-warm / %llu exact-cold / %llu fast / "
        "%llu ripup / %llu split / %llu hold\n",
        static_cast<unsigned long long>(r.solver_solves),
        r.mean_solve_seconds() * 1e3, r.solver_max_seconds * 1e3,
        static_cast<unsigned long long>(r.solver_exact_warm),
        static_cast<unsigned long long>(r.solver_exact_cold),
        static_cast<unsigned long long>(r.solver_arm_fast),
        static_cast<unsigned long long>(r.solver_arm_ripup),
        static_cast<unsigned long long>(r.solver_arm_split),
        static_cast<unsigned long long>(r.solver_arm_hold));
  }
  if (r.rule_delta_count > 0) {
    std::printf("  rules    %llu pushes, mean successive L1 delta %.3f\n",
                static_cast<unsigned long long>(r.rule_pushes),
                r.mean_rule_delta());
  }
  if (r.contingency_evals > 0) {
    std::printf(
        "  contingency %llu margin checks / %llu padded re-solves, "
        "margin last %.3f / worst %.3f, pad level %llu\n",
        static_cast<unsigned long long>(r.contingency_evals),
        static_cast<unsigned long long>(r.contingency_resolves),
        r.contingency_margin_last, r.contingency_margin_worst,
        static_cast<unsigned long long>(r.contingency_pad_level));
  }
  if (r.drains_started + r.drains_cancelled > 0) {
    std::printf(
        "  drains   %llu started / %llu completed / %llu cancelled by outage, "
        "%llu steps, %llu pause periods on goodput sag\n",
        static_cast<unsigned long long>(r.drains_started),
        static_cast<unsigned long long>(r.drains_completed),
        static_cast<unsigned long long>(r.drains_cancelled),
        static_cast<unsigned long long>(r.drain_steps),
        static_cast<unsigned long long>(r.drain_pause_periods));
  }
  if (r.forecast_solves > 0) {
    std::printf(
        "  forecast %llu predictive solves, mean sMAPE %.3f, "
        "mean confidence %.2f\n",
        static_cast<unsigned long long>(r.forecast_solves),
        r.forecast_mean_smape, r.forecast_mean_confidence);
  }
  if (r.autoscaler_scale_ups + r.autoscaler_scale_downs > 0) {
    std::printf("  autoscaler: %llu up / %llu down\n",
                static_cast<unsigned long long>(r.autoscaler_scale_ups),
                static_cast<unsigned long long>(r.autoscaler_scale_downs));
  }
  if (r.bilevel_plans_pushed > 0) {
    std::printf("  bilevel: %llu plans pushed down, %llu capacity overrides\n",
                static_cast<unsigned long long>(r.bilevel_plans_pushed),
                static_cast<unsigned long long>(r.bilevel_capacity_overrides));
  }
  if (print_cdf) {
    std::printf("\n  %-8s %12s\n", "quantile", "latency_ms");
    for (int i = 0; i <= 20; ++i) {
      const double q = i / 20.0;
      std::printf("  %-8.2f %12.3f\n", q, r.e2e.quantile(q) * 1e3);
    }
  }
  return 0;
}
