// The paper's §4.3 anomaly-detection application (Fig. 5c), end to end.
//
// FR (frontend) -> MP (metrics processor) -> DB (metrics store). The DB
// lives only in the East cluster (regulation / failure), and DB responses
// are ~10x larger than what MP returns to FR. Every West request must cross
// the WAN somewhere; this example shows how the choice of *where* changes
// the egress bill by an order of magnitude, and how to steer SLATE's
// latency/cost trade-off with OptimizerOptions::cost_weight.
//
//   $ ./anomaly_detection
#include <cstdio>

#include "runtime/scenarios.h"

using namespace slate;

int main() {
  AnomalyParams params;
  params.west_rps = 200.0;
  params.east_rps = 30.0;
  params.rtt = 25e-3;
  const Scenario scenario = make_anomaly_scenario(params);

  std::printf("anomaly-detection app: FR -> MP -> DB, DB only in East\n");
  std::printf("DB->MP response: %.0f KB, MP->FR response: %.0f KB\n\n",
              static_cast<double>(
                  scenario.app->traffic_class(ClassId{0}).graph.node(2).response_bytes) /
                  1024.0,
              static_cast<double>(
                  scenario.app->traffic_class(ClassId{0}).graph.node(1).response_bytes) /
                  1024.0);

  RunConfig config;
  config.duration = 60.0;
  config.warmup = 15.0;
  config.seed = 5;

  // Baseline: what every service mesh does today.
  config.policy = PolicyKind::kLocalityFailover;
  const ExperimentResult failover = run_experiment(scenario, config);

  // SLATE with three different administrator cost preferences.
  config.policy = PolicyKind::kSlate;
  std::printf("%-26s %12s %14s %16s\n", "routing", "mean (ms)",
              "egress $/min", "cut at FR->MP");
  auto report = [&](const char* name, const ExperimentResult& r) {
    std::printf("%-26s %12.2f %14.4f %15.1f%%\n", name, r.mean_latency() * 1e3,
                r.egress_cost_dollars * 60.0 / r.measured_seconds,
                100 * r.remote_fraction_from(ClassId{0}, 1, ClusterId{0}));
  };
  report("locality failover", failover);
  for (double weight : {0.0, 300.0}) {
    config.slate.optimizer.cost_weight = weight;
    const ExperimentResult r = run_experiment(scenario, config);
    char name[64];
    std::snprintf(name, sizeof(name), "slate (cost_weight=%.0f)", weight);
    report(name, r);
  }

  std::printf(
      "\nthe failover mesh hauls every 1MB DB response across the WAN;\n"
      "cost-aware SLATE moves the cluster cut up to FR->MP so only the\n"
      "100KB processed result crosses, cutting egress spend ~10x.\n");
  return 0;
}
