#include "forecast/demand_forecaster.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace slate {
namespace {

// Symmetric mean absolute percentage error of one (prediction, actual)
// pair, in [0, 2]. Two effectively-zero values agree perfectly — without
// the epsilon guard an idle cell would score 0/0.
double smape_of(double prediction, double actual) {
  const double denom = (std::abs(prediction) + std::abs(actual)) / 2.0;
  if (denom < 1e-9) return 0.0;
  return std::abs(prediction - actual) / denom;
}

}  // namespace

DemandForecaster::DemandForecaster(std::size_t classes, std::size_t clusters,
                                   const ForecastOptions& options)
    : options_(options),
      clusters_(clusters),
      cells_(classes * clusters),
      predicted_(classes, clusters, 0.0),
      confidence_(classes, clusters, 0.0) {
  options_.validate();
  if (options_.kind == ForecastKind::kNone ||
      options_.kind == ForecastKind::kOracle) {
    throw std::invalid_argument(
        "DemandForecaster: kind has no per-cell model (none/oracle)");
  }
  for (auto& cell : cells_) {
    cell.model = make_cell_forecaster(options_);
    cell.smape.assign(options_.backtest_window, 0.0);
    cell.error.assign(options_.backtest_window, 0.0);
  }
}

double DemandForecaster::cell_confidence(const Cell& cell) const {
  if (cell.scored < options_.min_history || cell.ring_size == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < cell.ring_size; ++i) sum += cell.smape[i];
  const double mean = sum / static_cast<double>(cell.ring_size);
  const double c = 1.0 - mean / options_.smape_scale;
  return std::clamp(c, 0.0, options_.max_confidence);
}

void DemandForecaster::step(const FlatMatrix<double>& measured) {
  ++steps_;
  for (std::size_t k = 0; k < predicted_.rows(); ++k) {
    for (std::size_t c = 0; c < clusters_; ++c) {
      Cell& cell = cells_[k * clusters_ + c];
      const double actual = measured(k, c);
      if (cell.has_prediction) {
        cell.smape[cell.ring_next] = smape_of(cell.last_prediction, actual);
        cell.error[cell.ring_next] = cell.last_prediction - actual;
        cell.ring_next = (cell.ring_next + 1) % cell.smape.size();
        if (cell.ring_size < cell.smape.size()) ++cell.ring_size;
        ++cell.scored;
      }
      cell.model->observe(actual);
      cell.last_prediction = cell.model->predict();
      cell.has_prediction = true;
      predicted_(k, c) = cell.last_prediction;
      confidence_(k, c) = cell_confidence(cell);
    }
  }
}

void DemandForecaster::blend(const FlatMatrix<double>& measured,
                             FlatMatrix<double>* out) const {
  for (std::size_t k = 0; k < predicted_.rows(); ++k) {
    for (std::size_t c = 0; c < clusters_; ++c) {
      const double m = measured(k, c);
      const double conf = confidence_(k, c);
      // conf == 0 must reproduce the measured value bit-for-bit (graceful
      // degradation to the reactive controller), so skip the arithmetic.
      (*out)(k, c) = conf > 0.0 ? m + conf * (predicted_(k, c) - m) : m;
    }
  }
}

double DemandForecaster::cell_smape(std::size_t cls, std::size_t cluster) const {
  const Cell& cell = cells_[cls * clusters_ + cluster];
  if (cell.ring_size == 0) return -1.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < cell.ring_size; ++i) sum += cell.smape[i];
  return sum / static_cast<double>(cell.ring_size);
}

double DemandForecaster::cell_bias(std::size_t cls, std::size_t cluster) const {
  const Cell& cell = cells_[cls * clusters_ + cluster];
  if (cell.ring_size == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < cell.ring_size; ++i) sum += cell.error[i];
  return sum / static_cast<double>(cell.ring_size);
}

double DemandForecaster::mean_smape() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const double s = cell_smape(i / clusters_, i % clusters_);
    if (s >= 0.0) {
      sum += s;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : -1.0;
}

double DemandForecaster::mean_confidence() const {
  double sum = 0.0;
  for (double c : confidence_.data()) sum += c;
  const std::size_t n = confidence_.data().size();
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace slate
