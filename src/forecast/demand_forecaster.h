// The control-plane side of forecasting: one CellForecaster per
// (traffic class, ingress cluster), stepped once per control period with
// the controller's measured demand estimate, plus an online backtest that
// scores every prediction against the value that actually materialized.
//
// The backtest is what makes prediction safe to actuate: each cell keeps a
// rolling window of sMAPE scores (symmetric percentage error, in [0, 2]),
// and confidence = clamp(1 - mean_smape / smape_scale, 0, max_confidence).
// The controller solves on blend = measured + confidence * (predicted -
// measured), so a forecaster that has not proven itself — cold start, a
// regime change, a seasonal model fed aperiodic load — contributes nothing
// and the loop stays exactly reactive.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "forecast/forecaster.h"
#include "util/matrix.h"

namespace slate {

class DemandForecaster {
 public:
  DemandForecaster(std::size_t classes, std::size_t clusters,
                   const ForecastOptions& options);

  // One control period: scores the previous prediction of every cell
  // against `measured`, feeds the new observation, and refreshes the
  // per-cell next-period prediction and confidence.
  void step(const FlatMatrix<double>& measured);

  // Next-period demand prediction per cell (valid after the first step).
  [[nodiscard]] const FlatMatrix<double>& predicted() const noexcept {
    return predicted_;
  }
  // Backtest-derived blend weight per cell, in [0, max_confidence].
  [[nodiscard]] const FlatMatrix<double>& confidence() const noexcept {
    return confidence_;
  }

  // out(k,c) = measured + confidence * (predicted - measured). A zero
  // confidence leaves the measured value bit-identical, so a fully
  // unconfident forecaster reproduces the reactive controller exactly.
  void blend(const FlatMatrix<double>& measured, FlatMatrix<double>* out) const;

  // Rolling-window backtest digests. Cells with no scored prediction yet
  // report sMAPE -1 and bias 0.
  [[nodiscard]] double cell_smape(std::size_t cls, std::size_t cluster) const;
  [[nodiscard]] double cell_bias(std::size_t cls, std::size_t cluster) const;
  // Mean over cells with at least one scored prediction (-1 when none).
  [[nodiscard]] double mean_smape() const;
  [[nodiscard]] double mean_confidence() const;

  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }

 private:
  struct Cell {
    std::unique_ptr<CellForecaster> model;
    double last_prediction = 0.0;
    bool has_prediction = false;
    // Rolling backtest rings: sMAPE in [0, 2] and signed error
    // (prediction - actual).
    std::vector<double> smape;
    std::vector<double> error;
    std::size_t ring_next = 0;
    std::size_t ring_size = 0;
    std::uint64_t scored = 0;  // predictions backtested so far
  };

  [[nodiscard]] double cell_confidence(const Cell& cell) const;

  ForecastOptions options_;
  std::size_t clusters_;
  std::vector<Cell> cells_;  // classes x clusters, row-major
  FlatMatrix<double> predicted_;
  FlatMatrix<double> confidence_;
  std::uint64_t steps_ = 0;
};

}  // namespace slate
