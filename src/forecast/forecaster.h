// Demand forecasting (docs/forecasting.md): per-(class, ingress-cluster)
// predictors that let the global controller solve on where demand is GOING
// instead of where it was last period.
//
// Every rule set SLATE ships is at least one control period stale: the
// controller EWMAs last-period measured ingress, solves, and pushes — so
// under a moving workload the fleet always executes a plan for the recent
// past. A forecaster closes that lag by predicting next-period demand; an
// online backtest (rolling sMAPE per cell) converts forecast skill into a
// confidence weight, so a wrong model degrades gracefully back to the
// reactive estimate instead of steering the fleet off a cliff.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace slate {

class DemandSchedule;

enum class ForecastKind {
  kNone,         // reactive: solve on the measured demand estimate
  kLast,         // naive last-value carry-forward
  kEwma,         // exponential smoothing
  kLinear,       // sliding-window least-squares trend extrapolation
  kHoltWinters,  // additive level + trend + seasonal smoothing
  kOracle,       // hindsight: solve on the actual next-period offered load
};

const char* to_string(ForecastKind kind) noexcept;
// Parses "none|last|ewma|linear|holtwinters|oracle". Returns false (and
// leaves *out untouched) on anything else.
bool forecast_kind_from_string(const std::string& text, ForecastKind* out);

struct ForecastOptions {
  ForecastKind kind = ForecastKind::kNone;

  // kEwma: smoothing factor (1 = last value).
  double ewma_alpha = 0.4;
  // kLinear: sliding window length, in control periods.
  std::size_t window = 8;
  // kHoltWinters: level/trend/seasonal gains and the season length in
  // control periods (e.g. a 60 s diurnal cycle under a 1 s control period
  // is season=60). Until two full seasons have been observed the cell
  // falls back to last-value prediction.
  double hw_alpha = 0.35;
  double hw_beta = 0.08;
  double hw_gamma = 0.3;
  std::size_t season = 60;

  // Online backtest: rolling window of |prediction - actual| sMAPE scores
  // per cell. Confidence = clamp(1 - mean_smape / smape_scale, 0,
  // max_confidence), and stays 0 until min_history predictions have been
  // scored — a cold or chronically wrong forecaster blends to nothing.
  std::size_t backtest_window = 12;
  std::size_t min_history = 4;
  double smape_scale = 0.6;
  double max_confidence = 1.0;

  // Wired by the harness, not by scenario files: the actuation window of
  // one pushed plan (one control period) and, for kOracle, the schedule to
  // read the future from (the oracle samples the window midpoint).
  double horizon = 1.0;
  const DemandSchedule* oracle_schedule = nullptr;

  // Throws std::invalid_argument on out-of-range parameters.
  void validate() const;
};

// One univariate next-value predictor. Implementations are deterministic
// and allocation-free after construction (the controller steps every cell
// every control period on the hot path).
class CellForecaster {
 public:
  virtual ~CellForecaster() = default;
  virtual void observe(double value) = 0;
  // Predicted next observation; never negative (demand is a rate).
  [[nodiscard]] virtual double predict() const = 0;
};

class LastValueForecaster final : public CellForecaster {
 public:
  void observe(double value) override { last_ = value; }
  [[nodiscard]] double predict() const override;

 private:
  double last_ = 0.0;
};

class EwmaForecaster final : public CellForecaster {
 public:
  explicit EwmaForecaster(double alpha) : alpha_(alpha) {}
  void observe(double value) override;
  [[nodiscard]] double predict() const override;

 private:
  double alpha_;
  double estimate_ = 0.0;
  bool seen_ = false;
};

// Least-squares line over the last `window` observations, extrapolated one
// step. With fewer than two observations it degrades to last-value.
class LinearTrendForecaster final : public CellForecaster {
 public:
  explicit LinearTrendForecaster(std::size_t window);
  void observe(double value) override;
  [[nodiscard]] double predict() const override;

 private:
  std::vector<double> ring_;
  std::size_t next_ = 0;
  std::size_t size_ = 0;
};

// Additive Holt-Winters (level + trend + season). The first two seasons
// initialize level/trend/seasonal indices; until then prediction is
// last-value (the backtest keeps confidence low through the warmup).
class HoltWintersForecaster final : public CellForecaster {
 public:
  HoltWintersForecaster(double alpha, double beta, double gamma,
                        std::size_t season);
  void observe(double value) override;
  [[nodiscard]] double predict() const override;

 private:
  double alpha_, beta_, gamma_;
  std::size_t season_;
  std::vector<double> warmup_;    // first 2*season observations
  std::vector<double> seasonal_;  // one index per position in the season
  double level_ = 0.0;
  double trend_ = 0.0;
  std::uint64_t n_ = 0;  // observations consumed
  bool initialized_ = false;
};

// Builds the cell predictor for `options.kind`. kNone and kOracle have no
// per-cell model and return nullptr.
std::unique_ptr<CellForecaster> make_cell_forecaster(
    const ForecastOptions& options);

}  // namespace slate
