#include "forecast/forecaster.h"

#include <algorithm>
#include <stdexcept>

namespace slate {

const char* to_string(ForecastKind kind) noexcept {
  switch (kind) {
    case ForecastKind::kNone: return "none";
    case ForecastKind::kLast: return "last";
    case ForecastKind::kEwma: return "ewma";
    case ForecastKind::kLinear: return "linear";
    case ForecastKind::kHoltWinters: return "holtwinters";
    case ForecastKind::kOracle: return "oracle";
  }
  return "?";
}

bool forecast_kind_from_string(const std::string& text, ForecastKind* out) {
  if (text == "none") {
    *out = ForecastKind::kNone;
  } else if (text == "last") {
    *out = ForecastKind::kLast;
  } else if (text == "ewma") {
    *out = ForecastKind::kEwma;
  } else if (text == "linear") {
    *out = ForecastKind::kLinear;
  } else if (text == "holtwinters") {
    *out = ForecastKind::kHoltWinters;
  } else if (text == "oracle") {
    *out = ForecastKind::kOracle;
  } else {
    return false;
  }
  return true;
}

void ForecastOptions::validate() const {
  if (ewma_alpha <= 0.0 || ewma_alpha > 1.0) {
    throw std::invalid_argument("forecast: ewma_alpha must be in (0, 1]");
  }
  if (window < 2) {
    throw std::invalid_argument("forecast: window must be >= 2");
  }
  if (hw_alpha <= 0.0 || hw_alpha > 1.0 || hw_beta < 0.0 || hw_beta > 1.0 ||
      hw_gamma < 0.0 || hw_gamma > 1.0) {
    throw std::invalid_argument("forecast: Holt-Winters gains must be in (0, 1]");
  }
  if (season < 2) {
    throw std::invalid_argument("forecast: season must be >= 2 periods");
  }
  if (backtest_window < 1) {
    throw std::invalid_argument("forecast: backtest window must be >= 1");
  }
  if (smape_scale <= 0.0) {
    throw std::invalid_argument("forecast: smape_scale must be > 0");
  }
  if (max_confidence < 0.0 || max_confidence > 1.0) {
    throw std::invalid_argument("forecast: max_confidence must be in [0, 1]");
  }
  if (!(horizon > 0.0)) {
    throw std::invalid_argument("forecast: horizon must be > 0");
  }
}

// --- LastValueForecaster ----------------------------------------------------

double LastValueForecaster::predict() const { return std::max(0.0, last_); }

// --- EwmaForecaster ---------------------------------------------------------

void EwmaForecaster::observe(double value) {
  estimate_ = seen_ ? estimate_ + alpha_ * (value - estimate_) : value;
  seen_ = true;
}

double EwmaForecaster::predict() const { return std::max(0.0, estimate_); }

// --- LinearTrendForecaster --------------------------------------------------

LinearTrendForecaster::LinearTrendForecaster(std::size_t window)
    : ring_(std::max<std::size_t>(window, 2), 0.0) {}

void LinearTrendForecaster::observe(double value) {
  ring_[next_] = value;
  next_ = (next_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
}

double LinearTrendForecaster::predict() const {
  if (size_ == 0) return 0.0;
  const std::size_t n = size_;
  // Oldest observation first: x = 0 .. n-1, prediction at x = n.
  const std::size_t first = (next_ + ring_.size() - size_) % ring_.size();
  if (n == 1) return std::max(0.0, ring_[first]);
  double sum_y = 0.0, sum_xy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double y = ring_[(first + i) % ring_.size()];
    sum_y += y;
    sum_xy += static_cast<double>(i) * y;
  }
  const double nd = static_cast<double>(n);
  const double sum_x = nd * (nd - 1.0) / 2.0;
  const double sum_xx = (nd - 1.0) * nd * (2.0 * nd - 1.0) / 6.0;
  const double denom = nd * sum_xx - sum_x * sum_x;
  const double slope = denom != 0.0 ? (nd * sum_xy - sum_x * sum_y) / denom : 0.0;
  const double intercept = (sum_y - slope * sum_x) / nd;
  return std::max(0.0, intercept + slope * nd);
}

// --- HoltWintersForecaster --------------------------------------------------

HoltWintersForecaster::HoltWintersForecaster(double alpha, double beta,
                                             double gamma, std::size_t season)
    : alpha_(alpha), beta_(beta), gamma_(gamma),
      season_(std::max<std::size_t>(season, 2)) {
  warmup_.reserve(2 * season_);
}

void HoltWintersForecaster::observe(double value) {
  if (!initialized_) {
    warmup_.push_back(value);
    ++n_;
    if (warmup_.size() < 2 * season_) return;
    // Two full seasons: classic initialization. Level is the first-season
    // mean, trend the per-period drift between season means, and each
    // seasonal index the mean deviation from its season's level.
    const double m = static_cast<double>(season_);
    double mean1 = 0.0, mean2 = 0.0;
    for (std::size_t i = 0; i < season_; ++i) {
      mean1 += warmup_[i];
      mean2 += warmup_[season_ + i];
    }
    mean1 /= m;
    mean2 /= m;
    level_ = mean2;
    trend_ = (mean2 - mean1) / m;
    seasonal_.assign(season_, 0.0);
    for (std::size_t i = 0; i < season_; ++i) {
      seasonal_[i] = ((warmup_[i] - mean1) + (warmup_[season_ + i] - mean2)) / 2.0;
    }
    warmup_.clear();
    warmup_.shrink_to_fit();
    initialized_ = true;
    return;
  }
  const std::size_t idx = n_ % season_;
  const double prev_level = level_;
  level_ = alpha_ * (value - seasonal_[idx]) +
           (1.0 - alpha_) * (level_ + trend_);
  trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
  seasonal_[idx] = gamma_ * (value - level_) + (1.0 - gamma_) * seasonal_[idx];
  ++n_;
}

double HoltWintersForecaster::predict() const {
  if (!initialized_) {
    return warmup_.empty() ? 0.0 : std::max(0.0, warmup_.back());
  }
  return std::max(0.0, level_ + trend_ + seasonal_[n_ % season_]);
}

// --- factory ----------------------------------------------------------------

std::unique_ptr<CellForecaster> make_cell_forecaster(
    const ForecastOptions& options) {
  switch (options.kind) {
    case ForecastKind::kLast:
      return std::make_unique<LastValueForecaster>();
    case ForecastKind::kEwma:
      return std::make_unique<EwmaForecaster>(options.ewma_alpha);
    case ForecastKind::kLinear:
      return std::make_unique<LinearTrendForecaster>(options.window);
    case ForecastKind::kHoltWinters:
      return std::make_unique<HoltWintersForecaster>(
          options.hw_alpha, options.hw_beta, options.hw_gamma, options.season);
    case ForecastKind::kNone:
    case ForecastKind::kOracle:
      return nullptr;
  }
  return nullptr;
}

}  // namespace slate
