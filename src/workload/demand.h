// Demand schedules: offered load per (traffic class, ingress cluster).
//
// Rates are piecewise-constant requests/second, which is expressive enough
// for every scenario in the paper (constant loads, overload phases, ramps)
// while keeping the Poisson arrival generation exact.
#pragma once

#include <utility>
#include <vector>

#include "util/ids.h"

namespace slate {

struct RateStep {
  double start_time;  // seconds; first step should start at 0
  double rps;
};

class DemandSchedule {
 public:
  // Sets a constant rate from t=0 (replacing any existing steps).
  void set_rate(ClassId cls, ClusterId cluster, double rps);

  // Appends a step; steps for one stream must be added in increasing
  // start_time order.
  void add_step(ClassId cls, ClusterId cluster, double start_time, double rps);

  // Rate of the stream at time t (0 if the stream has no step yet).
  [[nodiscard]] double rate_at(ClassId cls, ClusterId cluster, double t) const;

  // Time of the next step boundary strictly after t, or +infinity.
  [[nodiscard]] double next_change_after(ClassId cls, ClusterId cluster,
                                         double t) const;

  struct Stream {
    ClassId cls;
    ClusterId cluster;
    std::vector<RateStep> steps;
  };
  [[nodiscard]] const std::vector<Stream>& streams() const noexcept {
    return streams_;
  }

  // Sum of all stream rates at time t (total offered load).
  [[nodiscard]] double total_rate_at(double t) const;

 private:
  Stream& stream_for(ClassId cls, ClusterId cluster);
  [[nodiscard]] const Stream* find_stream(ClassId cls, ClusterId cluster) const;

  std::vector<Stream> streams_;
};

}  // namespace slate
