#include "workload/demand.h"

#include <limits>
#include <stdexcept>

namespace slate {

DemandSchedule::Stream& DemandSchedule::stream_for(ClassId cls,
                                                   ClusterId cluster) {
  for (auto& s : streams_) {
    if (s.cls == cls && s.cluster == cluster) return s;
  }
  streams_.push_back(Stream{cls, cluster, {}});
  return streams_.back();
}

const DemandSchedule::Stream* DemandSchedule::find_stream(
    ClassId cls, ClusterId cluster) const {
  for (const auto& s : streams_) {
    if (s.cls == cls && s.cluster == cluster) return &s;
  }
  return nullptr;
}

void DemandSchedule::set_rate(ClassId cls, ClusterId cluster, double rps) {
  if (rps < 0.0) throw std::invalid_argument("DemandSchedule: negative rate");
  auto& stream = stream_for(cls, cluster);
  stream.steps.clear();
  stream.steps.push_back(RateStep{0.0, rps});
}

void DemandSchedule::add_step(ClassId cls, ClusterId cluster, double start_time,
                              double rps) {
  if (rps < 0.0) throw std::invalid_argument("DemandSchedule: negative rate");
  if (start_time < 0.0) {
    throw std::invalid_argument("DemandSchedule: negative start time");
  }
  auto& stream = stream_for(cls, cluster);
  if (!stream.steps.empty() && stream.steps.back().start_time >= start_time) {
    throw std::invalid_argument(
        "DemandSchedule: steps must be added in increasing time order");
  }
  stream.steps.push_back(RateStep{start_time, rps});
}

double DemandSchedule::rate_at(ClassId cls, ClusterId cluster, double t) const {
  const Stream* stream = find_stream(cls, cluster);
  if (stream == nullptr) return 0.0;
  double rate = 0.0;
  for (const auto& step : stream->steps) {
    if (step.start_time <= t) {
      rate = step.rps;
    } else {
      break;
    }
  }
  return rate;
}

double DemandSchedule::next_change_after(ClassId cls, ClusterId cluster,
                                         double t) const {
  const Stream* stream = find_stream(cls, cluster);
  if (stream != nullptr) {
    for (const auto& step : stream->steps) {
      if (step.start_time > t) return step.start_time;
    }
  }
  return std::numeric_limits<double>::infinity();
}

double DemandSchedule::total_rate_at(double t) const {
  double total = 0.0;
  for (const auto& s : streams_) {
    total += rate_at(s.cls, s.cluster, t);
  }
  return total;
}

}  // namespace slate
