#include "workload/generators.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace slate {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;
// Generators discretize into DemandSchedule steps; an absurd resolution
// (microsecond steps over an hour) would silently bloat every rate_at scan.
constexpr std::size_t kMaxSegments = 200000;

void check_segments(double span, double step, const char* what) {
  if (span / step > static_cast<double>(kMaxSegments)) {
    throw std::invalid_argument(std::string(what) +
                                ": too many segments (raise step=)");
  }
}

}  // namespace

void add_diurnal(DemandSchedule& schedule, ClassId cls, ClusterId cluster,
                 const DiurnalSpec& spec) {
  if (spec.base < 0.0 || spec.amplitude < 0.0) {
    throw std::invalid_argument("diurnal: base and amp must be >= 0");
  }
  if (spec.period <= 0.0) {
    throw std::invalid_argument("diurnal: period must be > 0");
  }
  if (spec.step <= 0.0) {
    throw std::invalid_argument("diurnal: step must be > 0");
  }
  if (spec.start < 0.0 || spec.end <= spec.start) {
    throw std::invalid_argument("diurnal: need 0 <= start < until");
  }
  check_segments(spec.end - spec.start, spec.step, "diurnal");
  for (double t = spec.start; t < spec.end; t += spec.step) {
    const double seg_end = std::min(t + spec.step, spec.end);
    const double mid = (t + seg_end) / 2.0;
    const double rate =
        spec.base +
        spec.amplitude * std::sin(kTwoPi * (mid - spec.phase) / spec.period);
    schedule.add_step(cls, cluster, t, std::max(0.0, rate));
  }
}

void add_ramp(DemandSchedule& schedule, ClassId cls, ClusterId cluster,
              const RampSpec& spec) {
  if (spec.from_rps < 0.0 || spec.to_rps < 0.0) {
    throw std::invalid_argument("ramp: rates must be >= 0");
  }
  if (spec.start < 0.0) {
    throw std::invalid_argument("ramp: start must be >= 0");
  }
  if (spec.duration <= 0.0) {
    throw std::invalid_argument("ramp: duration must be > 0");
  }
  if (spec.step <= 0.0) {
    throw std::invalid_argument("ramp: step must be > 0");
  }
  check_segments(spec.duration, spec.step, "ramp");
  const double end = spec.start + spec.duration;
  for (double t = spec.start; t < end; t += spec.step) {
    const double seg_end = std::min(t + spec.step, end);
    const double mid = (t + seg_end) / 2.0;
    const double frac = (mid - spec.start) / spec.duration;
    schedule.add_step(cls, cluster, t,
                      spec.from_rps + (spec.to_rps - spec.from_rps) * frac);
  }
  schedule.add_step(cls, cluster, end, spec.to_rps);
}

void add_pulse(DemandSchedule& schedule, ClassId cls, ClusterId cluster,
               const PulseSpec& spec) {
  if (spec.base < 0.0 || spec.peak < 0.0) {
    throw std::invalid_argument("pulse: rates must be >= 0");
  }
  if (spec.start < 0.0) {
    throw std::invalid_argument("pulse: start must be >= 0");
  }
  if (spec.width <= 0.0) {
    throw std::invalid_argument("pulse: width must be > 0");
  }
  if (spec.decay < 0.0) {
    throw std::invalid_argument("pulse: decay must be >= 0");
  }
  if (spec.step <= 0.0) {
    throw std::invalid_argument("pulse: step must be > 0");
  }
  check_segments(spec.decay, spec.step, "pulse");
  if (spec.start > 0.0) {
    schedule.add_step(cls, cluster, 0.0, spec.base);
  }
  schedule.add_step(cls, cluster, spec.start, spec.peak);
  const double fall = spec.start + spec.width;
  if (spec.decay > 0.0) {
    const double end = fall + spec.decay;
    for (double t = fall; t < end; t += spec.step) {
      const double seg_end = std::min(t + spec.step, end);
      const double mid = (t + seg_end) / 2.0;
      const double frac = (mid - fall) / spec.decay;
      schedule.add_step(cls, cluster, t,
                        spec.peak + (spec.base - spec.peak) * frac);
    }
    schedule.add_step(cls, cluster, end, spec.base);
  } else {
    schedule.add_step(cls, cluster, fall, spec.base);
  }
}

}  // namespace slate
