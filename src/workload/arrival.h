// Open-loop Poisson arrival generation.
//
// Each (class, ingress cluster) demand stream is realized as a Poisson
// process whose rate follows the stream's piecewise-constant schedule. The
// generation is exact: within a constant-rate segment inter-arrivals are
// Exp(rate); at a boundary the memorylessness of the exponential lets us
// simply redraw at the new rate.
//
// "Open loop" means arrivals do not wait for earlier requests to finish —
// overload genuinely queues up, which is what makes the paper's latency
// blow-ups (Fig. 3/4) observable.
#pragma once

#include <functional>

#include "sim/simulator.h"
#include "util/ids.h"
#include "util/rng.h"
#include "workload/demand.h"

namespace slate {

class WorkloadDriver {
 public:
  // Called for every generated request, at its arrival time.
  using Sink = std::function<void(ClassId, ClusterId)>;

  // Selects which demand streams this driver realizes (by stream index).
  // Null means all of them.
  using StreamFilter = std::function<bool(std::size_t)>;

  // Generates arrivals on `sim` for every stream of `schedule` accepted by
  // `owns`, from t=0 until `end_time`. The schedule must outlive the driver.
  // Per-stream RNGs are forked for ALL streams, in stream order, whether
  // owned or not — a set of drivers that partition the streams (one per
  // simulation shard) draws exactly the arrival sequence a single driver
  // over the full schedule would.
  WorkloadDriver(Simulator& sim, Rng rng, const DemandSchedule& schedule,
                 double end_time, Sink sink, StreamFilter owns = nullptr);

  WorkloadDriver(const WorkloadDriver&) = delete;
  WorkloadDriver& operator=(const WorkloadDriver&) = delete;

  [[nodiscard]] std::uint64_t generated() const noexcept { return generated_; }

 private:
  void schedule_next(std::size_t stream_index);

  Simulator& sim_;
  Rng rng_;
  const DemandSchedule& schedule_;
  double end_time_;
  Sink sink_;
  std::uint64_t generated_ = 0;
  std::vector<Rng> stream_rngs_;
};

}  // namespace slate
