#include "workload/arrival.h"

#include <cmath>
#include <utility>

namespace slate {

WorkloadDriver::WorkloadDriver(Simulator& sim, Rng rng,
                               const DemandSchedule& schedule, double end_time,
                               Sink sink, StreamFilter owns)
    : sim_(sim),
      rng_(rng),
      schedule_(schedule),
      end_time_(end_time),
      sink_(std::move(sink)) {
  stream_rngs_.reserve(schedule_.streams().size());
  for (std::size_t i = 0; i < schedule_.streams().size(); ++i) {
    // Fork unconditionally: each fork mutates the parent, so skipping
    // unowned streams would desynchronize the owned streams' seeds across
    // differently partitioned drivers.
    stream_rngs_.push_back(rng_.fork(i));
    if (!owns || owns(i)) schedule_next(i);
  }
}

void WorkloadDriver::schedule_next(std::size_t stream_index) {
  const auto& stream = schedule_.streams()[stream_index];
  Rng& rng = stream_rngs_[stream_index];

  // Walk forward from now, segment by segment, until an arrival lands inside
  // a constant-rate segment or we pass end_time.
  double t = sim_.now();
  while (t < end_time_) {
    const double rate = schedule_.rate_at(stream.cls, stream.cluster, t);
    const double boundary =
        std::min(schedule_.next_change_after(stream.cls, stream.cluster, t),
                 end_time_);
    if (rate <= 0.0) {
      if (!std::isfinite(boundary)) return;  // stream is silent forever
      t = boundary;
      continue;
    }
    const double gap = rng.exponential(1.0 / rate);
    if (t + gap < boundary) {
      const double when = t + gap;
      sim_.schedule_at(when, [this, stream_index]() {
        const auto& s = schedule_.streams()[stream_index];
        ++generated_;
        sink_(s.cls, s.cluster);
        schedule_next(stream_index);
      });
      return;
    }
    // The draw crossed a rate boundary; restart at the boundary
    // (memorylessness makes this exact).
    t = boundary;
  }
}

}  // namespace slate
