// Time-varying demand generators: diurnal sinusoids (with per-region phase
// offsets for follow-the-sun load), linear ramps, and flash-crowd pulses.
//
// Each generator COMPILES into piecewise-constant DemandSchedule steps at a
// configurable resolution instead of introducing a non-homogeneous arrival
// process: the Poisson generation in WorkloadDriver stays exact (constant
// rate within a segment, memoryless redraw at boundaries), determinism and
// serial-vs-parallel byte-identity are untouched, and rate_at() remains the
// single source of truth the forecast oracle reads the future from. Each
// segment carries the profile's value at the segment MIDPOINT, which
// preserves the mean rate to second order even at coarse resolutions.
//
// All generators throw std::invalid_argument on out-of-range parameters and
// follow DemandSchedule::add_step ordering rules: steps for one
// (class, cluster) stream must be appended in increasing time order, so
// generators targeting the same stream must not overlap.
#pragma once

#include "util/ids.h"
#include "workload/demand.h"

namespace slate {

// rate(t) = max(0, base + amplitude * sin(2*pi * (t - phase) / period)),
// discretized over [start, end) in `step`-second segments. The last
// segment's rate persists after `end` (size scenarios so end >= duration).
// Peak load lands at t = phase + period/4 (+ k*period): shifting `phase` by
// period/cluster_count per region models follow-the-sun offsets.
struct DiurnalSpec {
  double base = 0.0;       // mean RPS
  double amplitude = 0.0;  // peak deviation from base, RPS
  double period = 60.0;    // seconds per cycle
  double phase = 0.0;      // seconds the whole curve is shifted later
  double start = 0.0;
  double end = 0.0;        // required: > start
  double step = 1.0;       // discretization resolution, seconds
};
void add_diurnal(DemandSchedule& schedule, ClassId cls, ClusterId cluster,
                 const DiurnalSpec& spec);

// Linear ramp from `from_rps` at `start` to `to_rps` at `start + duration`,
// discretized in `step`-second segments; holds `to_rps` afterwards. The
// stream rate before `start` is whatever earlier steps defined (0 for a
// fresh stream).
struct RampSpec {
  double from_rps = 0.0;
  double to_rps = 0.0;
  double start = 0.0;
  double duration = 0.0;  // required: > 0
  double step = 1.0;
};
void add_ramp(DemandSchedule& schedule, ClassId cls, ClusterId cluster,
              const RampSpec& spec);

// Flash crowd: `base` RPS from t=0, an instantaneous jump to `peak` over
// [start, start + width), then a linear decay back to `base` over `decay`
// seconds (discretized; decay=0 snaps straight back). Defines the stream
// from t=0, so it must be the stream's first (and typically only) demand
// directive.
struct PulseSpec {
  double base = 0.0;
  double peak = 0.0;
  double start = 0.0;  // required: > 0 when base > 0
  double width = 0.0;  // required: > 0
  double decay = 0.0;
  double step = 0.5;
};
void add_pulse(DemandSchedule& schedule, ClassId cls, ClusterId cluster,
               const PulseSpec& spec);

}  // namespace slate
