// Bi-level co-design coordinator (docs/autoscaling.md).
//
// Sits between the GlobalController and the per-station Autoscalers and
// closes the routing<->scaling loop in both directions, once per control
// period on the global control timeline (so sharded runs stay byte-identical
// — it executes at window barriers, like admission and contingency):
//
//   upward (pre_solve)    each autoscaler's provisioning-lag-aware effective
//                         capacity becomes a capacity overlay on the solver's
//                         live-server view: TE stops dumping load onto
//                         capacity that will not exist for another ~30s, and
//                         sees capacity that is about to arrive;
//   downward (post_solve) the solved plan's per-station busy work
//                         (utilization x planned servers) is pushed into
//                         each autoscaler as its planned load: stations
//                         provision for where traffic is GOING, not where it
//                         was, breaking the TE-shifts/autoscaler-chases
//                         oscillation the paper calls out in §5.
//
// The joint $/hr objective itself lives in the optimizer
// (OptimizerOptions::server_cost_weight); the simulation arms it alongside
// this coordinator.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "bilevel/bilevel.h"
#include "cluster/autoscaler.h"
#include "core/global_controller.h"

namespace slate {

class BilevelCoordinator {
 public:
  // `control_period` resolves the option defaults (horizon, plan TTL).
  BilevelCoordinator(GlobalController& global, const BilevelOptions& options,
                     double control_period, std::size_t service_count,
                     std::size_t cluster_count);

  // Registers the autoscaler managing station index (service *
  // cluster_count + cluster). Stations without one stay un-overlaid.
  void attach(std::size_t station_index, Autoscaler* scaler);

  // Upward coupling; call immediately before GlobalController::on_reports.
  void pre_solve();
  // Downward coupling; call immediately after on_reports returns.
  void post_solve();

  // Overlay cells that differed from the reported live view (in-flight
  // provisioning visible to the solver), cumulative.
  [[nodiscard]] std::uint64_t capacity_overrides() const noexcept {
    return capacity_overrides_;
  }
  // Control periods whose plan was pushed down into the autoscalers.
  [[nodiscard]] std::uint64_t plans_pushed() const noexcept {
    return plans_pushed_;
  }

 private:
  GlobalController& global_;
  double horizon_;
  double plan_ttl_;
  std::size_t cluster_count_;
  std::vector<Autoscaler*> scalers_;
  std::vector<unsigned> overlay_;
  std::uint64_t capacity_overrides_ = 0;
  std::uint64_t plans_pushed_ = 0;
};

}  // namespace slate
