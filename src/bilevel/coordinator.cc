#include "bilevel/coordinator.h"

#include <stdexcept>

namespace slate {

BilevelCoordinator::BilevelCoordinator(GlobalController& global,
                                       const BilevelOptions& options,
                                       double control_period,
                                       std::size_t service_count,
                                       std::size_t cluster_count)
    : global_(global),
      horizon_(options.horizon > 0.0 ? options.horizon : control_period),
      // One period of slack past the next push: a plan posted at tick T is
      // still authoritative for an evaluation landing anywhere before tick
      // T+2, even when evaluations and ticks share timestamps.
      plan_ttl_(options.plan_ttl > 0.0 ? options.plan_ttl
                                       : 2.0 * control_period),
      cluster_count_(cluster_count),
      scalers_(service_count * cluster_count, nullptr),
      overlay_(service_count * cluster_count, 0) {
  if (control_period <= 0.0) {
    throw std::invalid_argument("BilevelCoordinator: control_period must be > 0");
  }
}

void BilevelCoordinator::attach(std::size_t station_index, Autoscaler* scaler) {
  if (station_index >= scalers_.size()) {
    throw std::out_of_range("BilevelCoordinator: station index out of range");
  }
  scalers_[station_index] = scaler;
}

void BilevelCoordinator::pre_solve() {
  const std::vector<unsigned>& live = global_.live_servers();
  for (std::size_t i = 0; i < scalers_.size(); ++i) {
    if (scalers_[i] == nullptr) {
      overlay_[i] = 0;  // no autoscaler: leave the reported view alone
      continue;
    }
    const unsigned eff = scalers_[i]->effective_servers(horizon_);
    overlay_[i] = eff;
    if (i < live.size() && live[i] > 0 && eff != live[i]) {
      ++capacity_overrides_;
    }
  }
  global_.set_capacity_overlay(overlay_);
}

void BilevelCoordinator::post_solve() {
  // The plan in force: on hold periods (resolve gate, solver hold) the last
  // solved plan stays authoritative, so keep re-pushing it — its TTL
  // refreshes and the autoscalers keep sizing for the routed load.
  const OptimizerResult& plan = global_.last_result();
  if (plan.rules == nullptr || plan.station_plans.empty()) return;
  ++plans_pushed_;
  for (const StationPlan& sp : plan.station_plans) {
    const std::size_t i = sp.service.index() * cluster_count_ + sp.cluster.index();
    if (i >= scalers_.size() || scalers_[i] == nullptr) continue;
    // StationPlan::utilization already includes the overflow component, so
    // this is the total busy work the solver routed to the station.
    const double busy =
        sp.utilization * global_.planned_servers(sp.service, sp.cluster);
    scalers_[i]->set_planned_load(busy, plan_ttl_);
  }
}

}  // namespace slate
