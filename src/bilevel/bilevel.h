// Bi-level autoscaling x traffic-engineering co-design options
// (docs/autoscaling.md; paper §5 "Interaction between request routing and
// autoscaler").
//
// Kept dependency-free: runtime/experiment.h embeds this in Scenario and
// RunConfig, and the scenario loader fills it from the `bilevel` directive.
#pragma once

namespace slate {

struct BilevelOptions {
  bool enabled = false;
  // Upward-coupling planning window: effective capacity fed to the solver
  // is each autoscaler's mean provisioned servers over [now, now+horizon]
  // (in-flight scale-ups counted only for the fraction of the window they
  // are live). 0 = one control period.
  double horizon = 0.0;
  // Seconds a pushed plan stays authoritative for scaling decisions before
  // an autoscaler falls back to reactive utilization. 0 = two control
  // periods (one period of slack past the next push).
  double plan_ttl = 0.0;
  // Joint objective: seconds of objective per dollar-per-second of server
  // spend (OptimizerOptions::server_cost_weight; the server analogue of
  // cost_weight on egress dollars).
  double server_cost_weight = 1.0;
  // Utilization the joint objective assumes the autoscaler provisions
  // toward when converting planned busy work into paid servers
  // (OptimizerOptions::server_price_target). 0 = the autoscaler's
  // target_utilization.
  double price_target = 0.0;
};

}  // namespace slate
