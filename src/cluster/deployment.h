// Placement of services onto clusters.
//
// A deployment records, for each (service, cluster): whether the service is
// present (paper Fig. 1: partial replication due to security, data locality,
// failures), how many parallel servers it runs, and its operator-configured
// nominal capacity in requests/second. The nominal capacity is what Waterfall
// (Traffic Director / ServiceRouter) thresholds on, and what the optimizer
// uses as its hard capacity bound.
#pragma once

#include <optional>
#include <vector>

#include "app/application.h"
#include "util/ids.h"
#include "util/matrix.h"

namespace slate {

class Deployment {
 public:
  Deployment(const Application& app, std::size_t cluster_count);

  // Deploys `service` in `cluster` with `servers` parallel workers and the
  // given nominal capacity (requests/second). Re-deploying overwrites.
  void deploy(ServiceId service, ClusterId cluster, unsigned servers,
              double capacity_rps);

  // Convenience: deploys every service in every cluster uniformly.
  void deploy_everywhere(unsigned servers, double capacity_rps);

  // Removes `service` from `cluster` (partial replication / failure).
  void undeploy(ServiceId service, ClusterId cluster);

  [[nodiscard]] bool is_deployed(ServiceId service, ClusterId cluster) const;
  [[nodiscard]] unsigned servers(ServiceId service, ClusterId cluster) const;
  [[nodiscard]] double capacity_rps(ServiceId service, ClusterId cluster) const;

  // Clusters where `service` is present, in id order.
  [[nodiscard]] std::vector<ClusterId> clusters_for(ServiceId service) const;

  [[nodiscard]] std::size_t cluster_count() const noexcept { return cluster_count_; }
  [[nodiscard]] const Application& application() const noexcept { return *app_; }

  // Throws std::logic_error if any service is deployed nowhere (a request
  // could never be served).
  void validate() const;

 private:
  struct Placement {
    bool present = false;
    unsigned servers = 0;
    double capacity_rps = 0.0;
  };
  [[nodiscard]] const Placement& at(ServiceId service, ClusterId cluster) const;
  [[nodiscard]] Placement& at(ServiceId service, ClusterId cluster);

  const Application* app_;
  std::size_t cluster_count_;
  FlatMatrix<Placement> placements_;  // rows: services, cols: clusters
};

}  // namespace slate
