#include "cluster/autoscaler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace slate {

Autoscaler::Autoscaler(Simulator& sim, ServiceStation& station,
                       AutoscalerOptions options, ScaleObserver on_scale)
    : sim_(sim),
      station_(station),
      options_(options),
      on_scale_(std::move(on_scale)),
      desired_(station.servers()),
      window_start_(sim.now()) {
  if (!(options_.target_utilization > 0.0 && options_.target_utilization < 1.0)) {
    throw std::invalid_argument("Autoscaler: target utilization must be in (0,1)");
  }
  if (options_.min_servers == 0 || options_.min_servers > options_.max_servers) {
    throw std::invalid_argument("Autoscaler: bad server bounds");
  }
  if (options_.align_period < 0.0) {
    throw std::invalid_argument("Autoscaler: align_period must be >= 0");
  }
  station_.reset_utilization();
  if (options_.align_period > 0.0) {
    // Aligned cadence: tick on the control-period grid, evaluate every
    // aligned_period_ (evaluation_period rounded up to a grid multiple).
    // The extra no-op ticks exist only when alignment is armed, so the
    // default path stays event-for-event identical.
    const double grid = options_.align_period;
    aligned_period_ =
        std::max(1.0, std::ceil(options_.evaluation_period / grid - 1e-9)) *
        grid;
    next_eval_ = sim_.now() + aligned_period_;
    task_ = sim_.schedule_scoped_periodic(grid, [this]() {
      if (sim_.now() < next_eval_ - 1e-9) return;
      next_eval_ = sim_.now() + aligned_period_;
      evaluate();
    });
  } else {
    task_ = sim_.schedule_scoped_periodic(options_.evaluation_period,
                                          [this]() { evaluate(); });
  }
}

Autoscaler::~Autoscaler() = default;

void Autoscaler::set_planned_load(double busy_servers, double ttl) noexcept {
  planned_busy_ = std::max(0.0, busy_servers);
  planned_until_ = sim_.now() + std::max(0.0, ttl);
}

void Autoscaler::prune_pending() {
  const double now = sim_.now();
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [now](const PendingScaleUp& p) {
                                  return p.ready_time <= now;
                                }),
                 pending_.end());
}

unsigned Autoscaler::effective_servers(double horizon) const {
  const double now = sim_.now();
  if (horizon <= 0.0) return station_.servers();
  // Walk the provisioning ladder: each in-flight scale-up that will still
  // apply (mirrors the guard in the provisioning callback) lifts the level
  // at its ready time. Entries are in decision order, so ready times are
  // non-decreasing.
  double level = static_cast<double>(station_.servers());
  double weighted = 0.0;
  double t = now;
  for (const PendingScaleUp& p : pending_) {
    if (p.ready_time <= t || static_cast<double>(p.target) <= level ||
        p.target > desired_) {
      continue;
    }
    if (p.ready_time >= now + horizon) continue;
    weighted += level * (p.ready_time - t);
    level = static_cast<double>(p.target);
    t = p.ready_time;
  }
  weighted += level * (now + horizon - t);
  return static_cast<unsigned>(weighted / horizon + 1e-9);
}

void Autoscaler::evaluate() {
  const double utilization = station_.utilization();
  station_.reset_utilization();
  window_start_ = sim_.now();

  // Bi-level downward coupling: while a pushed plan is fresh, size for the
  // busy-work the solver routed here instead of the load observed last
  // window. ceil(current * ratio) then reduces to ceil(planned / target).
  const unsigned current = desired_;
  double ratio;
  if (planned_until_ >= sim_.now()) {
    ratio = planned_busy_ /
            (static_cast<double>(current) * options_.target_utilization);
  } else {
    // HPA formula: desired = ceil(current * observed / target), within the
    // deadband.
    ratio = utilization / options_.target_utilization;
  }
  if (std::abs(ratio - 1.0) <= options_.deadband) return;
  const auto proposed = static_cast<unsigned>(std::ceil(
      static_cast<double>(current) * std::max(ratio, 1e-3)));
  const unsigned target = std::clamp(proposed, options_.min_servers,
                                     options_.max_servers);
  if (target == current) return;
  if (target > current && inhibit_scale_up_) {
    // Drain in progress: adding replicas to an evacuating cluster would
    // only create capacity the drain immediately walks away from. Not a
    // decision — the cooldown clock is untouched.
    return;
  }
  // Direction-aware cooldown: a split timer (up_/down_cooldown >= 0) gates
  // each direction on its own last decision; negative keeps the shared
  // timer. All gates above are pure, so checking the cooldown here instead
  // of first leaves the legacy behavior unchanged.
  const bool up = target > current;
  const double split = up ? options_.up_cooldown : options_.down_cooldown;
  const double cooldown = split >= 0.0 ? split : options_.cooldown;
  const double last =
      split >= 0.0 ? (up ? last_up_ : last_down_) : last_decision_;
  if (sim_.now() - last < cooldown) return;

  last_decision_ = sim_.now();
  (up ? last_up_ : last_down_) = sim_.now();
  desired_ = target;
  const unsigned old_servers = station_.servers();
  if (target < current) {
    // Scale-down is immediate (replicas drain; no provisioning).
    ++scale_downs_;
    station_.set_servers(target);
    if (on_scale_) on_scale_(old_servers, target);
    return;
  }
  // Scale-up serves traffic only after the provisioning delay.
  ++scale_ups_;
  pending_.push_back(
      PendingScaleUp{sim_.now() + options_.provision_delay, target});
  sim_.schedule_after(options_.provision_delay, [this, target, old_servers]() {
    prune_pending();
    // A later decision may have changed desired_; never scale below it.
    if (target > station_.servers() && target <= desired_) {
      station_.set_servers(target);
      if (on_scale_) on_scale_(old_servers, target);
    }
  });
}

}  // namespace slate
