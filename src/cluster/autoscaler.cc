#include "cluster/autoscaler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace slate {

Autoscaler::Autoscaler(Simulator& sim, ServiceStation& station,
                       AutoscalerOptions options, ScaleObserver on_scale)
    : sim_(sim),
      station_(station),
      options_(options),
      on_scale_(std::move(on_scale)),
      desired_(station.servers()),
      window_start_(sim.now()) {
  if (!(options_.target_utilization > 0.0 && options_.target_utilization < 1.0)) {
    throw std::invalid_argument("Autoscaler: target utilization must be in (0,1)");
  }
  if (options_.min_servers == 0 || options_.min_servers > options_.max_servers) {
    throw std::invalid_argument("Autoscaler: bad server bounds");
  }
  station_.reset_utilization();
  task_ = sim_.schedule_scoped_periodic(options_.evaluation_period,
                                        [this]() { evaluate(); });
}

Autoscaler::~Autoscaler() = default;

void Autoscaler::evaluate() {
  const double utilization = station_.utilization();
  station_.reset_utilization();
  window_start_ = sim_.now();

  if (sim_.now() - last_decision_ < options_.cooldown) return;

  // HPA formula: desired = ceil(current * observed / target), within the
  // deadband.
  const double ratio = utilization / options_.target_utilization;
  if (std::abs(ratio - 1.0) <= options_.deadband) return;
  const unsigned current = desired_;
  const auto proposed = static_cast<unsigned>(std::ceil(
      static_cast<double>(current) * std::max(ratio, 1e-3)));
  const unsigned target = std::clamp(proposed, options_.min_servers,
                                     options_.max_servers);
  if (target == current) return;
  if (target > current && inhibit_scale_up_) {
    // Drain in progress: adding replicas to an evacuating cluster would
    // only create capacity the drain immediately walks away from. Not a
    // decision — the cooldown clock is untouched.
    return;
  }

  last_decision_ = sim_.now();
  desired_ = target;
  const unsigned old_servers = station_.servers();
  if (target < current) {
    // Scale-down is immediate (replicas drain; no provisioning).
    ++scale_downs_;
    station_.set_servers(target);
    if (on_scale_) on_scale_(old_servers, target);
    return;
  }
  // Scale-up serves traffic only after the provisioning delay.
  ++scale_ups_;
  sim_.schedule_after(options_.provision_delay, [this, target, old_servers]() {
    // A later decision may have changed desired_; never scale below it.
    if (target > station_.servers() && target <= desired_) {
      station_.set_servers(target);
      if (on_scale_) on_scale_(old_servers, target);
    }
  });
}

}  // namespace slate
