#include "cluster/service_station.h"

#include <stdexcept>
#include <utility>

namespace slate {

ServiceStation::ServiceStation(Simulator& sim, Rng rng, ServiceId service,
                               ClusterId cluster, unsigned servers)
    : sim_(sim),
      rng_(rng),
      service_(service),
      cluster_(cluster),
      servers_(servers),
      window_start_(sim.now()),
      last_busy_change_(sim.now()),
      last_server_change_(sim.now()) {
  if (servers == 0) {
    throw std::invalid_argument("ServiceStation: servers must be >= 1");
  }
}

void ServiceStation::configure_overload(const StationOverloadConfig& config) {
  if (config.codel_target > 0.0 && config.codel_interval <= 0.0) {
    throw std::invalid_argument(
        "ServiceStation: codel_interval must be > 0 when codel_target is set");
  }
  overload_ = config;
}

void ServiceStation::set_servers(unsigned servers) {
  if (servers == 0) {
    throw std::invalid_argument("ServiceStation: servers must be >= 1");
  }
  // Fold the busy and provisioned integrals at the old parallelism before
  // changing it, so utilization and billing accounting stay exact across
  // the transition.
  account_busy_time();
  server_seconds_ +=
      static_cast<double>(servers_) * (sim_.now() - last_server_change_);
  last_server_change_ = sim_.now();
  servers_ = servers;
  try_dispatch();
}

bool ServiceStation::submit(const JobSpec& spec, Completion on_complete) {
  const double now = sim_.now();
  auto reject = [&](JobOutcome outcome) {
    ++shed_;
    if (on_complete) on_complete(outcome, 0.0, 0.0);
    return false;
  };
  // Deadline already blown: refuse at the door rather than queue doomed
  // work.
  if (overload_.cancel_expired && spec.deadline <= now) {
    return reject(JobOutcome::kExpired);
  }
  if (codel_shedding_) {
    if (queue_.empty()) {
      // Standing queue drained; the shedder disarms instantly.
      codel_shedding_ = false;
      codel_above_since_ = -1.0;
    } else {
      return reject(JobOutcome::kShedQueueDelay);
    }
  }
  if (overload_.max_queue > 0 && queue_.size() >= overload_.max_queue) {
    // Full. Priority shedding: evict the lowest-priority queued job if the
    // arrival outranks it (ties keep the incumbent); otherwise shed the
    // arrival itself.
    std::size_t victim = queue_.size();
    if (overload_.priority_shedding) {
      int victim_priority = spec.priority;
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        // `<=` prefers the youngest among equal-lowest victims: it has
        // waited least, so evicting it wastes the least queueing.
        if (queue_[i].priority < spec.priority &&
            queue_[i].priority <= victim_priority) {
          victim = i;
          victim_priority = queue_[i].priority;
        }
      }
    }
    if (victim == queue_.size()) {
      return reject(JobOutcome::kShedQueueFull);
    }
    Job evictee = queue_.erase(victim);
    ++evicted_;
    ++submitted_;
    queue_.push_back(Job{spec.service_time_mean, std::move(on_complete), now,
                         spec.priority, spec.deadline});
    if (evictee.on_complete) {
      evictee.on_complete(JobOutcome::kEvicted, now - evictee.enqueue_time, 0.0);
    }
    try_dispatch();
    return true;
  }
  ++submitted_;
  queue_.push_back(Job{spec.service_time_mean, std::move(on_complete), now,
                       spec.priority, spec.deadline});
  try_dispatch();
  return true;
}

void ServiceStation::account_busy_time() noexcept {
  const double delta =
      static_cast<double>(busy_) * (sim_.now() - last_busy_change_);
  busy_time_accum_ += delta;
  lifetime_busy_ += delta;
  last_busy_change_ = sim_.now();
}

void ServiceStation::observe_queue_delay(double delay) noexcept {
  if (overload_.codel_target <= 0.0) return;
  const double now = sim_.now();
  if (delay <= overload_.codel_target) {
    codel_shedding_ = false;
    codel_above_since_ = -1.0;
    return;
  }
  if (codel_above_since_ < 0.0) {
    codel_above_since_ = now;
  } else if (now - codel_above_since_ >= overload_.codel_interval) {
    codel_shedding_ = true;
  }
}

std::uint32_t ServiceStation::acquire_slot() {
  if (free_slot_ != kNilSlot) {
    const std::uint32_t slot = free_slot_;
    free_slot_ = inflight_[slot].next_free;
    return slot;
  }
  inflight_.emplace_back();
  return static_cast<std::uint32_t>(inflight_.size() - 1);
}

void ServiceStation::try_dispatch() {
  while (busy_ < servers_ && !queue_.empty()) {
    Job job = queue_.pop_front();
    const double now = sim_.now();
    const double queue_seconds = now - job.enqueue_time;
    queue_delay_window_.add(queue_seconds);
    observe_queue_delay(queue_seconds);
    if (overload_.cancel_expired && job.deadline <= now) {
      // Deadline expired while queued: cancel instead of burning a server
      // on work nobody is waiting for.
      ++cancelled_;
      if (job.on_complete) {
        job.on_complete(JobOutcome::kCancelled, queue_seconds, 0.0);
      }
      continue;
    }
    account_busy_time();
    ++busy_;
    const double service_time =
        job.service_time_mean > 0.0 ? rng_.exponential(job.service_time_mean) : 0.0;
    if (job.deadline <= now) {
      // Only reachable with cancel_expired off: the doomed-work pathology
      // deadline propagation eliminates, made measurable.
      wasted_server_seconds_ += service_time;
    }
    // Park the job in a slot; the completion event captures {this, slot}.
    const std::uint32_t slot = acquire_slot();
    InFlight& in = inflight_[slot];
    in.on_complete = std::move(job.on_complete);
    in.queue_seconds = queue_seconds;
    in.service_seconds = service_time;
    sim_.schedule_after(service_time, [this, slot] { finish_slot(slot); });
  }
}

void ServiceStation::finish_slot(std::uint32_t slot) {
  account_busy_time();
  --busy_;
  ++completed_;
  // Free the slot before firing: the completion may re-enter submit().
  InFlight& in = inflight_[slot];
  Completion on_complete = std::move(in.on_complete);
  const double queue_seconds = in.queue_seconds;
  const double service_seconds = in.service_seconds;
  in.on_complete = nullptr;
  in.next_free = free_slot_;
  free_slot_ = slot;
  if (on_complete) {
    on_complete(JobOutcome::kServed, queue_seconds, service_seconds);
  }
  try_dispatch();
}

double ServiceStation::utilization() const noexcept {
  const double elapsed = sim_.now() - window_start_;
  if (elapsed <= 0.0) return 0.0;
  const double busy_now =
      busy_time_accum_ + static_cast<double>(busy_) * (sim_.now() - last_busy_change_);
  return busy_now / (elapsed * static_cast<double>(servers_));
}

void ServiceStation::reset_utilization() noexcept {
  // Fold the in-progress busy interval into lifetime accounting first.
  account_busy_time();
  window_start_ = sim_.now();
  busy_time_accum_ = 0.0;
}

double ServiceStation::lifetime_busy_seconds() const noexcept {
  return lifetime_busy_ +
         static_cast<double>(busy_) * (sim_.now() - last_busy_change_);
}

double ServiceStation::lifetime_server_seconds() const noexcept {
  return server_seconds_ +
         static_cast<double>(servers_) * (sim_.now() - last_server_change_);
}

}  // namespace slate
