#include "cluster/service_station.h"

#include <stdexcept>
#include <utility>

namespace slate {

ServiceStation::ServiceStation(Simulator& sim, Rng rng, ServiceId service,
                               ClusterId cluster, unsigned servers)
    : sim_(sim),
      rng_(rng),
      service_(service),
      cluster_(cluster),
      servers_(servers),
      window_start_(sim.now()),
      last_busy_change_(sim.now()) {
  if (servers == 0) {
    throw std::invalid_argument("ServiceStation: servers must be >= 1");
  }
}

void ServiceStation::set_servers(unsigned servers) {
  if (servers == 0) {
    throw std::invalid_argument("ServiceStation: servers must be >= 1");
  }
  // Fold the busy integral at the old parallelism before changing it, so
  // utilization accounting stays exact across the transition.
  account_busy_time();
  servers_ = servers;
  try_dispatch();
}

void ServiceStation::submit(double service_time_mean, Completion on_complete) {
  ++submitted_;
  queue_.push_back(Job{service_time_mean, std::move(on_complete), sim_.now()});
  try_dispatch();
}

void ServiceStation::account_busy_time() noexcept {
  const double delta =
      static_cast<double>(busy_) * (sim_.now() - last_busy_change_);
  busy_time_accum_ += delta;
  lifetime_busy_ += delta;
  last_busy_change_ = sim_.now();
}

void ServiceStation::try_dispatch() {
  while (busy_ < servers_ && !queue_.empty()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    account_busy_time();
    ++busy_;
    const double service_time =
        job.service_time_mean > 0.0 ? rng_.exponential(job.service_time_mean) : 0.0;
    const double queue_seconds = sim_.now() - job.enqueue_time;
    // Capture exactly {this, completion, 2 doubles} = 64 bytes — inline in
    // the simulator's callback buffer, no heap allocation per job.
    sim_.schedule_after(
        service_time,
        [this, on_complete = std::move(job.on_complete), queue_seconds,
         service_time]() mutable {
          finish_job(std::move(on_complete), queue_seconds, service_time);
        });
  }
}

void ServiceStation::finish_job(Completion on_complete, double queue_seconds,
                                double service_seconds) {
  account_busy_time();
  --busy_;
  ++completed_;
  if (on_complete) on_complete(queue_seconds, service_seconds);
  try_dispatch();
}

double ServiceStation::utilization() const noexcept {
  const double elapsed = sim_.now() - window_start_;
  if (elapsed <= 0.0) return 0.0;
  const double busy_now =
      busy_time_accum_ + static_cast<double>(busy_) * (sim_.now() - last_busy_change_);
  return busy_now / (elapsed * static_cast<double>(servers_));
}

void ServiceStation::reset_utilization() noexcept {
  // Fold the in-progress busy interval into lifetime accounting first.
  account_busy_time();
  window_start_ = sim_.now();
  busy_time_accum_ = 0.0;
}

double ServiceStation::lifetime_busy_seconds() const noexcept {
  return lifetime_busy_ +
         static_cast<double>(busy_) * (sim_.now() - last_busy_change_);
}

}  // namespace slate
