// Queueing model of one service's replica set in one cluster.
//
// A station is a c-server FIFO queue with exponentially distributed service
// times whose mean is supplied per job (so different traffic classes consume
// different compute — paper §4.4). With c servers of per-class rate 1/mean
// this is the "variation of an M/M/1 queuing model" the paper uses for
// latency: sojourn time rises smoothly with utilization and diverges as the
// arrival rate approaches capacity.
#pragma once

#include <cstdint>
#include <deque>

#include "sim/simulator.h"
#include "util/ids.h"
#include "util/inline_function.h"
#include "util/rng.h"

namespace slate {

class ServiceStation {
 public:
  // `servers` is the replica/worker parallelism of this service in this
  // cluster. Requires servers >= 1.
  ServiceStation(Simulator& sim, Rng rng, ServiceId service, ClusterId cluster,
                 unsigned servers);

  ServiceStation(const ServiceStation&) = delete;
  ServiceStation& operator=(const ServiceStation&) = delete;

  // Completion callback: receives the time the job spent waiting in queue
  // and the time it spent in service. Move-only with a 32-byte inline
  // capture buffer — one job submission allocates nothing on the hot path.
  using Completion = InlineFunction<void(double queue_seconds, double service_seconds), 32>;

  // Enqueues one job whose service time is ~Exp(service_time_mean);
  // `on_complete` fires when the job finishes processing. A zero/negative
  // mean completes after zero processing time (still in FIFO order).
  void submit(double service_time_mean, Completion on_complete);

  [[nodiscard]] ServiceId service() const noexcept { return service_; }
  [[nodiscard]] ClusterId cluster() const noexcept { return cluster_; }
  [[nodiscard]] unsigned servers() const noexcept { return servers_; }

  // Changes the server (replica) count at runtime — autoscaling or failure
  // injection. Growing dispatches queued jobs immediately; shrinking lets
  // in-service jobs finish (no preemption), so busy_servers() may exceed
  // servers() transiently. Requires servers >= 1.
  void set_servers(unsigned servers);
  [[nodiscard]] std::size_t queue_length() const noexcept { return queue_.size(); }
  [[nodiscard]] unsigned busy_servers() const noexcept { return busy_; }
  [[nodiscard]] std::uint64_t jobs_completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t jobs_submitted() const noexcept { return submitted_; }

  // Fraction of server-time spent busy since construction (or last
  // reset_utilization). In [0, 1].
  [[nodiscard]] double utilization() const noexcept;
  void reset_utilization() noexcept;

  // Busy server-seconds accumulated since construction; never reset. Lets
  // callers measure utilization over their own window independently of the
  // controller's per-period resets.
  [[nodiscard]] double lifetime_busy_seconds() const noexcept;

 private:
  struct Job {
    double service_time_mean;
    Completion on_complete;
    double enqueue_time = 0.0;
  };

  void try_dispatch();
  void finish_job(Completion on_complete, double queue_seconds,
                  double service_seconds);
  void account_busy_time() noexcept;

  Simulator& sim_;
  Rng rng_;
  ServiceId service_;
  ClusterId cluster_;
  unsigned servers_;
  unsigned busy_ = 0;
  std::deque<Job> queue_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  // Utilization accounting.
  double busy_time_accum_ = 0.0;
  double lifetime_busy_ = 0.0;
  double window_start_ = 0.0;
  double last_busy_change_ = 0.0;
};

}  // namespace slate
