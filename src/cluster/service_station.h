// Queueing model of one service's replica set in one cluster.
//
// A station is a c-server FIFO queue with exponentially distributed service
// times whose mean is supplied per job (so different traffic classes consume
// different compute — paper §4.4). With c servers of per-class rate 1/mean
// this is the "variation of an M/M/1 queuing model" the paper uses for
// latency: sojourn time rises smoothly with utilization and diverges as the
// arrival rate approaches capacity.
//
// Overload control (docs/overload.md): an optional StationOverloadConfig
// bounds the queue (with priority shedding — low-priority jobs are evicted
// to admit higher-priority arrivals when full), sheds on standing queue
// delay (CoDel-style windowed-min test), and cancels deadline-expired jobs
// at submit/dispatch instead of burning server time on them. All gates
// default to off, preserving the unbounded fair-weather model.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/simulator.h"
#include "util/ids.h"
#include "util/inline_function.h"
#include "util/ring_buffer.h"
#include "util/rng.h"
#include "util/stats.h"

namespace slate {

// Station-level overload knobs (derived from the scenario's QueuePolicy /
// DeadlinePolicy by the simulation; kept dependency-free here).
struct StationOverloadConfig {
  std::size_t max_queue = 0;       // 0 = unbounded
  bool priority_shedding = true;   // evict lower-priority queued work
  double codel_target = 0.0;       // 0 disables the queue-delay shedder
  double codel_interval = 0.1;
  bool cancel_expired = true;      // cancel deadline-expired jobs
};

class ServiceStation {
 public:
  static constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

  // How one submitted job ultimately left the station. Every submit fires
  // its completion exactly once with one of these: rejections
  // (kShed*/kExpired) fire synchronously inside submit with zero queue and
  // service time; the rest fire later from simulator events.
  enum class JobOutcome : std::uint8_t {
    kServed,         // ran to completion
    kCancelled,      // deadline expired while queued; cancelled at dispatch
    kEvicted,        // shed from a full queue by a higher-priority arrival
    kShedQueueFull,  // rejected: queue at max_queue, nothing evictable
    kShedQueueDelay, // rejected: CoDel shedder active (standing queue)
    kExpired,        // rejected: deadline already passed at submit
  };
  [[nodiscard]] static constexpr bool admitted(JobOutcome o) noexcept {
    return o == JobOutcome::kServed || o == JobOutcome::kCancelled ||
           o == JobOutcome::kEvicted;
  }

  // `servers` is the replica/worker parallelism of this service in this
  // cluster. Requires servers >= 1.
  ServiceStation(Simulator& sim, Rng rng, ServiceId service, ClusterId cluster,
                 unsigned servers);

  ServiceStation(const ServiceStation&) = delete;
  ServiceStation& operator=(const ServiceStation&) = delete;

  // Completion callback: receives how the job left the station plus the time
  // it spent waiting in queue and in service (service is 0 unless kServed).
  // Move-only with a 32-byte inline capture buffer — one job submission
  // allocates nothing on the hot path.
  using Completion =
      InlineFunction<void(JobOutcome outcome, double queue_seconds,
                          double service_seconds), 32>;

  struct JobSpec {
    // Service time is ~Exp(service_time_mean); zero/negative completes after
    // zero processing time (still in FIFO order).
    double service_time_mean = 0.0;
    // Shed priority (higher = kept longer) under priority_shedding.
    int priority = 0;
    // Absolute simulation time after which the job's result is worthless.
    double deadline = kNoDeadline;
  };

  // Enqueues one job; returns true if it was admitted. A rejected job
  // (return false) has already fired `on_complete` synchronously with the
  // shed outcome — the caller turns it into a fast-fail error.
  bool submit(const JobSpec& spec, Completion on_complete);
  // Convenience for overload-free callers (fair-weather jobs with no
  // deadline or priority).
  bool submit(double service_time_mean, Completion on_complete) {
    return submit(JobSpec{service_time_mean, 0, kNoDeadline},
                  std::move(on_complete));
  }

  void configure_overload(const StationOverloadConfig& config);

  [[nodiscard]] ServiceId service() const noexcept { return service_; }
  [[nodiscard]] ClusterId cluster() const noexcept { return cluster_; }
  [[nodiscard]] unsigned servers() const noexcept { return servers_; }

  // Changes the server (replica) count at runtime — autoscaling or failure
  // injection. Growing dispatches queued jobs immediately; shrinking lets
  // in-service jobs finish (no preemption), so busy_servers() may exceed
  // servers() transiently. Requires servers >= 1.
  void set_servers(unsigned servers);
  [[nodiscard]] std::size_t queue_length() const noexcept { return queue_.size(); }
  [[nodiscard]] unsigned busy_servers() const noexcept { return busy_; }
  [[nodiscard]] std::uint64_t jobs_completed() const noexcept { return completed_; }
  // Admitted jobs only; shed submissions are counted in jobs_shed().
  [[nodiscard]] std::uint64_t jobs_submitted() const noexcept { return submitted_; }
  // Conservation: submitted = completed + cancelled + evicted
  //                          + busy_servers + queue_length at all times.
  [[nodiscard]] std::uint64_t jobs_cancelled() const noexcept { return cancelled_; }
  [[nodiscard]] std::uint64_t jobs_evicted() const noexcept { return evicted_; }
  [[nodiscard]] std::uint64_t jobs_shed() const noexcept { return shed_; }

  // Server-seconds spent processing jobs that were already past their
  // deadline at dispatch (only accrues with cancel_expired off — the
  // wasted-work pathology deadline propagation exists to eliminate).
  [[nodiscard]] double wasted_server_seconds() const noexcept {
    return wasted_server_seconds_;
  }

  // Queue-delay distribution of jobs leaving the queue (served or
  // cancelled) since the last reset — the telemetry signal behind the
  // shedder. p50/p99/max via SampleSet's streaming stats.
  [[nodiscard]] const SampleSet& queue_delay_window() const noexcept {
    return queue_delay_window_;
  }
  void reset_queue_delay_window() noexcept { queue_delay_window_.clear(); }

  // Fraction of server-time spent busy since construction (or last
  // reset_utilization). In [0, 1].
  [[nodiscard]] double utilization() const noexcept;
  void reset_utilization() noexcept;

  // Busy server-seconds accumulated since construction; never reset. Lets
  // callers measure utilization over their own window independently of the
  // controller's per-period resets.
  [[nodiscard]] double lifetime_busy_seconds() const noexcept;

  // Provisioned server-seconds (the integral of servers() over time) since
  // construction; never reset. This is what a cloud bill meters — the
  // bi-level joint objective prices it per cluster (docs/autoscaling.md).
  [[nodiscard]] double lifetime_server_seconds() const noexcept;

 private:
  struct Job {
    double service_time_mean;
    Completion on_complete;
    double enqueue_time = 0.0;
    int priority = 0;
    double deadline = kNoDeadline;
  };

  // One job currently occupying a server. Parked in a slot table so the
  // service-completion event captures only {this, slot} — 16 bytes, inline
  // in the simulator's callback buffer. Capturing the Completion itself
  // would push the closure past the 64-byte buffer and heap-allocate once
  // per served job (the dominant allocation on fan-out-heavy workloads).
  struct InFlight {
    Completion on_complete;
    double queue_seconds = 0.0;
    double service_seconds = 0.0;
    std::uint32_t next_free = kNilSlot;
  };
  static constexpr std::uint32_t kNilSlot =
      std::numeric_limits<std::uint32_t>::max();

  void try_dispatch();
  void finish_slot(std::uint32_t slot);
  [[nodiscard]] std::uint32_t acquire_slot();
  void account_busy_time() noexcept;
  // CoDel bookkeeping at dispatch time; returns whether the shedder is
  // currently rejecting arrivals.
  void observe_queue_delay(double delay) noexcept;

  Simulator& sim_;
  Rng rng_;
  ServiceId service_;
  ClusterId cluster_;
  unsigned servers_;
  unsigned busy_ = 0;
  RingBuffer<Job> queue_;
  std::vector<InFlight> inflight_;
  std::uint32_t free_slot_ = kNilSlot;
  StationOverloadConfig overload_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t shed_ = 0;
  double wasted_server_seconds_ = 0.0;
  SampleSet queue_delay_window_;
  // CoDel state: shedding starts once the observed queue delay has stayed
  // above target for a full interval, stops the moment a dispatch sees
  // delay at/below target (or the standing queue drains).
  bool codel_shedding_ = false;
  double codel_above_since_ = -1.0;  // < 0: not currently above target
  // Utilization accounting.
  double busy_time_accum_ = 0.0;
  double lifetime_busy_ = 0.0;
  double window_start_ = 0.0;
  double last_busy_change_ = 0.0;
  // Provisioned-capacity accounting (server-seconds, billed whether busy
  // or idle). Folded on every set_servers.
  double server_seconds_ = 0.0;
  double last_server_change_ = 0.0;
};

}  // namespace slate
