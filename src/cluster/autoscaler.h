// Horizontal per-service autoscaler (paper §2 "Cluster Autoscalers", §5
// "Interaction between request routing and autoscaler").
//
// Models the common HPA-style control loop: every evaluation period, compare
// a station's observed utilization against a target and resize the replica
// count proportionally — with the two properties the paper leans on:
//   * it is SLOW: scale-ups take a provisioning delay (container image pull,
//     app initialization) before new capacity serves traffic, and scale
//     events are separated by a cooldown;
//   * it has NO say in routing: it reacts to whatever load routing sends it.
//
// SLATE's request routing operates in the gap: it can shift load away in one
// control period (~1s) while the autoscaler needs tens of seconds. The
// interaction experiments (bench/ablation_autoscaler) measure exactly that.
//
// The bi-level co-design loop (docs/autoscaling.md) closes that gap in both
// directions: set_planned_load feeds the solver's post-TE load into scaling
// decisions, and effective_servers exposes in-flight provisioning so the
// solver stops routing onto capacity that does not exist yet.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/service_station.h"
#include "sim/simulator.h"

namespace slate {

struct AutoscalerOptions {
  double target_utilization = 0.6;
  double evaluation_period = 15.0;   // seconds between decisions
  double provision_delay = 30.0;     // scale-up takes effect this much later
  double cooldown = 30.0;            // min time between scale decisions
  // Split cooldowns: when >= 0, scale-ups are gated only on the last
  // scale-UP and scale-downs only on the last scale-DOWN, so a utilization
  // spike right after a scale-down is not stuck behind the shared clock.
  // Negative (default) keeps the single shared `cooldown` timer.
  double up_cooldown = -1.0;
  double down_cooldown = -1.0;
  unsigned min_servers = 1;
  unsigned max_servers = 64;
  // Utilization must stray this far (relative) from target to trigger.
  double deadband = 0.1;
  // When > 0, snap the evaluation cadence to multiples of this period (the
  // global control period), so scaling decisions land on the same timeline
  // the solver plans on instead of skewing by up to one evaluation period.
  // Assumes construction at a grid boundary (the simulation constructs
  // autoscalers at t=0). 0 (default) free-runs at `evaluation_period`.
  double align_period = 0.0;
};

// Scales one station. The station must outlive the autoscaler; the
// autoscaler owns a periodic task on the simulator.
class Autoscaler {
 public:
  // `on_scale(old_servers, new_servers)` (optional) observes decisions.
  using ScaleObserver = std::function<void(unsigned, unsigned)>;

  Autoscaler(Simulator& sim, ServiceStation& station,
             AutoscalerOptions options = {}, ScaleObserver on_scale = nullptr);
  ~Autoscaler();
  Autoscaler(const Autoscaler&) = delete;
  Autoscaler& operator=(const Autoscaler&) = delete;

  [[nodiscard]] std::uint64_t scale_ups() const noexcept { return scale_ups_; }
  [[nodiscard]] std::uint64_t scale_downs() const noexcept { return scale_downs_; }
  // Desired replica count (>= station.servers() while a scale-up is
  // provisioning).
  [[nodiscard]] unsigned desired_servers() const noexcept { return desired_; }

  // A draining cluster must not fight its own evacuation: while inhibited
  // the autoscaler takes no scale-up decisions (scale-downs still apply,
  // and in-flight provisioning completes). See docs/resilience.md.
  void set_scale_up_inhibited(bool inhibited) noexcept {
    inhibit_scale_up_ = inhibited;
  }
  [[nodiscard]] bool scale_up_inhibited() const noexcept {
    return inhibit_scale_up_;
  }

  // --- Bi-level co-design surface (docs/autoscaling.md) ---------------------

  // Downward coupling: the solver's planned busy-server load for this
  // station (utilization x planned servers). While fresh (for `ttl`
  // seconds) it replaces the reactive utilization signal in evaluate(), so
  // the station provisions for where traffic is going, not where it was.
  void set_planned_load(double busy_servers, double ttl) noexcept;
  [[nodiscard]] bool planned_load_active() const noexcept {
    return planned_until_ >= sim_.now();
  }

  // Upward coupling: mean provisioned capacity over [now, now + horizon]
  // counting in-flight scale-ups for the fraction of the window they will
  // actually be live, floored — the solver must never be promised capacity
  // that will not exist. Equals station.servers() with nothing in flight.
  [[nodiscard]] unsigned effective_servers(double horizon) const;

 private:
  void evaluate();
  void prune_pending();

  // One scheduled scale-up that has not provisioned yet.
  struct PendingScaleUp {
    double ready_time;
    unsigned target;
  };

  Simulator& sim_;
  ServiceStation& station_;
  AutoscalerOptions options_;
  ScaleObserver on_scale_;
  Simulator::ScopedPeriodic task_;  // cancel-on-destroy: no leaked timer
  unsigned desired_;
  bool inhibit_scale_up_ = false;
  double last_decision_ = -1e18;
  double last_up_ = -1e18;
  double last_down_ = -1e18;
  double window_start_;
  // Alignment state (align_period > 0): evaluations fire on the fine grid
  // but run only at multiples of the snapped period.
  double aligned_period_ = 0.0;
  double next_eval_ = 0.0;
  std::vector<PendingScaleUp> pending_;
  double planned_busy_ = 0.0;
  double planned_until_ = -1e18;
  std::uint64_t scale_ups_ = 0;
  std::uint64_t scale_downs_ = 0;
};

}  // namespace slate
