// Horizontal per-service autoscaler (paper §2 "Cluster Autoscalers", §5
// "Interaction between request routing and autoscaler").
//
// Models the common HPA-style control loop: every evaluation period, compare
// a station's observed utilization against a target and resize the replica
// count proportionally — with the two properties the paper leans on:
//   * it is SLOW: scale-ups take a provisioning delay (container image pull,
//     app initialization) before new capacity serves traffic, and scale
//     events are separated by a cooldown;
//   * it has NO say in routing: it reacts to whatever load routing sends it.
//
// SLATE's request routing operates in the gap: it can shift load away in one
// control period (~1s) while the autoscaler needs tens of seconds. The
// interaction experiments (bench/ablation_autoscaler) measure exactly that.
#pragma once

#include <cstdint>
#include <functional>

#include "cluster/service_station.h"
#include "sim/simulator.h"

namespace slate {

struct AutoscalerOptions {
  double target_utilization = 0.6;
  double evaluation_period = 15.0;   // seconds between decisions
  double provision_delay = 30.0;     // scale-up takes effect this much later
  double cooldown = 30.0;            // min time between scale decisions
  unsigned min_servers = 1;
  unsigned max_servers = 64;
  // Utilization must stray this far (relative) from target to trigger.
  double deadband = 0.1;
};

// Scales one station. The station must outlive the autoscaler; the
// autoscaler owns a periodic task on the simulator.
class Autoscaler {
 public:
  // `on_scale(old_servers, new_servers)` (optional) observes decisions.
  using ScaleObserver = std::function<void(unsigned, unsigned)>;

  Autoscaler(Simulator& sim, ServiceStation& station,
             AutoscalerOptions options = {}, ScaleObserver on_scale = nullptr);
  ~Autoscaler();
  Autoscaler(const Autoscaler&) = delete;
  Autoscaler& operator=(const Autoscaler&) = delete;

  [[nodiscard]] std::uint64_t scale_ups() const noexcept { return scale_ups_; }
  [[nodiscard]] std::uint64_t scale_downs() const noexcept { return scale_downs_; }
  // Desired replica count (>= station.servers() while a scale-up is
  // provisioning).
  [[nodiscard]] unsigned desired_servers() const noexcept { return desired_; }

  // A draining cluster must not fight its own evacuation: while inhibited
  // the autoscaler takes no scale-up decisions (scale-downs still apply,
  // and in-flight provisioning completes). See docs/resilience.md.
  void set_scale_up_inhibited(bool inhibited) noexcept {
    inhibit_scale_up_ = inhibited;
  }
  [[nodiscard]] bool scale_up_inhibited() const noexcept {
    return inhibit_scale_up_;
  }

 private:
  void evaluate();

  Simulator& sim_;
  ServiceStation& station_;
  AutoscalerOptions options_;
  ScaleObserver on_scale_;
  Simulator::ScopedPeriodic task_;  // cancel-on-destroy: no leaked timer
  unsigned desired_;
  bool inhibit_scale_up_ = false;
  double last_decision_ = -1e18;
  double window_start_;
  std::uint64_t scale_ups_ = 0;
  std::uint64_t scale_downs_ = 0;
};

}  // namespace slate
