#include "cluster/deployment.h"

#include <stdexcept>

namespace slate {

Deployment::Deployment(const Application& app, std::size_t cluster_count)
    : app_(&app),
      cluster_count_(cluster_count),
      placements_(app.service_count(), cluster_count) {
  if (cluster_count == 0) {
    throw std::invalid_argument("Deployment: zero clusters");
  }
}

const Deployment::Placement& Deployment::at(ServiceId service,
                                            ClusterId cluster) const {
  if (!service.valid() || service.index() >= placements_.rows() ||
      !cluster.valid() || cluster.index() >= cluster_count_) {
    throw std::out_of_range("Deployment: bad service/cluster id");
  }
  return placements_(service.index(), cluster.index());
}

Deployment::Placement& Deployment::at(ServiceId service, ClusterId cluster) {
  return const_cast<Placement&>(
      static_cast<const Deployment*>(this)->at(service, cluster));
}

void Deployment::deploy(ServiceId service, ClusterId cluster, unsigned servers,
                        double capacity_rps) {
  if (servers == 0) throw std::invalid_argument("Deployment: servers == 0");
  if (!(capacity_rps > 0.0)) {
    throw std::invalid_argument("Deployment: capacity must be positive");
  }
  at(service, cluster) = Placement{true, servers, capacity_rps};
}

void Deployment::deploy_everywhere(unsigned servers, double capacity_rps) {
  for (ServiceId s : app_->all_services()) {
    for (std::size_t c = 0; c < cluster_count_; ++c) {
      deploy(s, ClusterId{c}, servers, capacity_rps);
    }
  }
}

void Deployment::undeploy(ServiceId service, ClusterId cluster) {
  at(service, cluster) = Placement{};
}

bool Deployment::is_deployed(ServiceId service, ClusterId cluster) const {
  return at(service, cluster).present;
}

unsigned Deployment::servers(ServiceId service, ClusterId cluster) const {
  return at(service, cluster).servers;
}

double Deployment::capacity_rps(ServiceId service, ClusterId cluster) const {
  return at(service, cluster).capacity_rps;
}

std::vector<ClusterId> Deployment::clusters_for(ServiceId service) const {
  std::vector<ClusterId> out;
  for (std::size_t c = 0; c < cluster_count_; ++c) {
    if (placements_(service.index(), c).present) out.emplace_back(c);
  }
  return out;
}

void Deployment::validate() const {
  for (ServiceId s : app_->all_services()) {
    if (clusters_for(s).empty()) {
      throw std::logic_error("Deployment: service '" + app_->service_name(s) +
                             "' deployed nowhere");
    }
  }
}

}  // namespace slate
