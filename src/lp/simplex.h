// Two-phase primal simplex for LpModel (LP relaxation: integrality ignored).
//
// Dense tableau implementation. Bounded variables are handled by
// substitution (lower bounds shifted to zero, finite upper bounds become
// explicit rows, free variables split); phase 1 minimizes artificial
// infeasibility, phase 2 the user objective. The entering rule is
// most-negative reduced cost, switching to Bland's rule after a fixed number
// of iterations to guarantee termination on degenerate problems.
//
// Problem sizes in SLATE are modest (hundreds to a few thousand variables),
// where a dense tableau is simple, cache-friendly, and fast enough; see
// bench/micro_optimizer_scaling for measured solve times.
#pragma once

#include <cstdint>

#include "lp/model.h"

namespace slate {

struct SimplexOptions {
  std::uint64_t max_iterations = 200000;
  // Iterations of most-negative-reduced-cost pivoting before switching to
  // Bland's rule.
  std::uint64_t bland_after = 20000;
  double tolerance = 1e-9;
};

struct SimplexStats {
  std::uint64_t iterations = 0;
  int phase1_rows = 0;
  int columns = 0;
  // True when the solve skipped phase 1 by reusing a caller-supplied basis.
  bool warm_started = false;
};

// An optimal basis exported by a previous solve, reusable as a warm start
// for a structurally identical model (same constraint/variable layout; only
// coefficients, bounds, and rhs may differ — the control loop's case, where
// demand moves between periods but the LP shape is fixed). `signature`
// fingerprints the transformed layout; a solve handed a basis with a stale
// signature simply cold-solves and overwrites it.
struct SimplexBasis {
  std::uint64_t signature = 0;
  std::vector<int> basis;  // basic column per transformed row

  [[nodiscard]] bool valid() const noexcept { return !basis.empty(); }
};

// Solves the LP relaxation of `model`. `stats`, if non-null, receives
// iteration counts. `warm`, if non-null, is both input and output: a valid
// matching basis skips phase 1 (reconstructing the previous period's basis
// and resuming phase 2 from it, falling back to a cold solve if the basis
// no longer reaches a feasible point); on any optimal solve the final basis
// is written back for the next period.
LpSolution solve_lp(const LpModel& model, const SimplexOptions& options = {},
                    SimplexStats* stats = nullptr,
                    SimplexBasis* warm = nullptr);

}  // namespace slate
