// Two-phase primal simplex for LpModel (LP relaxation: integrality ignored).
//
// Dense tableau implementation. Bounded variables are handled by
// substitution (lower bounds shifted to zero, finite upper bounds become
// explicit rows, free variables split); phase 1 minimizes artificial
// infeasibility, phase 2 the user objective. The entering rule is
// most-negative reduced cost, switching to Bland's rule after a fixed number
// of iterations to guarantee termination on degenerate problems.
//
// Problem sizes in SLATE are modest (hundreds to a few thousand variables),
// where a dense tableau is simple, cache-friendly, and fast enough; see
// bench/micro_optimizer_scaling for measured solve times.
#pragma once

#include <cstdint>

#include "lp/model.h"

namespace slate {

struct SimplexOptions {
  std::uint64_t max_iterations = 200000;
  // Iterations of most-negative-reduced-cost pivoting before switching to
  // Bland's rule.
  std::uint64_t bland_after = 20000;
  double tolerance = 1e-9;
};

struct SimplexStats {
  std::uint64_t iterations = 0;
  int phase1_rows = 0;
  int columns = 0;
};

// Solves the LP relaxation of `model`. `stats`, if non-null, receives
// iteration counts.
LpSolution solve_lp(const LpModel& model, const SimplexOptions& options = {},
                    SimplexStats* stats = nullptr);

}  // namespace slate
