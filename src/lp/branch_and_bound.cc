#include "lp/branch_and_bound.h"

#include <cmath>
#include <tuple>
#include <vector>

namespace slate {
namespace {

struct Node {
  // Bound overrides, sparse: (var, lower, upper).
  std::vector<std::tuple<int, double, double>> bounds;
};

// Most-fractional integer variable, or -1 if all integral.
int pick_branch_variable(const LpModel& model, const std::vector<double>& x,
                         double tol) {
  int best = -1;
  double best_frac_distance = tol;
  for (int j = 0; j < model.variable_count(); ++j) {
    if (!model.is_integer(j)) continue;
    const double v = x[j];
    const double frac = v - std::floor(v);
    const double distance = std::min(frac, 1.0 - frac);
    if (distance > best_frac_distance) {
      best_frac_distance = distance;
      best = j;
    }
  }
  return best;
}

}  // namespace

LpSolution solve_milp(const LpModel& model, const MilpOptions& options,
                      MilpStats* stats) {
  const bool maximize = model.objective_sense() == ObjectiveSense::kMaximize;
  // Work on a private copy whose bounds we tighten per node.
  LpModel work = model;

  LpSolution incumbent;
  incumbent.status = LpStatus::kInfeasible;
  bool have_incumbent = false;
  bool node_limit_hit = false;

  std::vector<Node> stack;
  stack.push_back(Node{});

  // "Better" in the model's own sense.
  auto improves = [&](double candidate) {
    if (!have_incumbent) return true;
    return maximize ? candidate > incumbent.objective + options.absolute_gap
                    : candidate < incumbent.objective - options.absolute_gap;
  };

  std::uint64_t nodes = 0;
  while (!stack.empty()) {
    if (nodes >= options.max_nodes) {
      node_limit_hit = true;
      break;
    }
    ++nodes;
    Node node = std::move(stack.back());
    stack.pop_back();

    // Apply node bounds on top of the base model.
    for (int j = 0; j < model.variable_count(); ++j) {
      work.set_bounds(j, model.lower_bound(j), model.upper_bound(j));
    }
    bool bounds_ok = true;
    for (const auto& [var, lo, hi] : node.bounds) {
      const double new_lo = std::max(lo, work.lower_bound(var));
      const double new_hi = std::min(hi, work.upper_bound(var));
      if (new_lo > new_hi) {
        bounds_ok = false;  // branching emptied the box: prune
        break;
      }
      work.set_bounds(var, new_lo, new_hi);
    }
    if (!bounds_ok) continue;

    SimplexStats sstats;
    const LpSolution relax = solve_lp(work, options.simplex, &sstats);
    if (stats != nullptr) stats->simplex_iterations += sstats.iterations;
    if (relax.status == LpStatus::kUnbounded) {
      // An unbounded relaxation at the root means the MILP itself is
      // unbounded (or its feasibility is undecidable by bounding); report it.
      if (node.bounds.empty()) return relax;
      continue;
    }
    if (relax.status != LpStatus::kOptimal) continue;
    if (!improves(relax.objective)) continue;  // bound pruning

    const int branch_var =
        pick_branch_variable(model, relax.values, options.integrality_tolerance);
    if (branch_var < 0) {
      incumbent = relax;
      have_incumbent = true;
      continue;
    }

    const double v = relax.values[branch_var];
    Node down = node;
    down.bounds.emplace_back(branch_var, -kLpInfinity, std::floor(v));
    Node up = node;
    up.bounds.emplace_back(branch_var, std::ceil(v), kLpInfinity);
    // DFS: explore the side nearer the relaxation value first.
    if (v - std::floor(v) <= 0.5) {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    } else {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    }
  }

  if (stats != nullptr) stats->nodes_explored = nodes;
  if (have_incumbent) {
    incumbent.status =
        node_limit_hit ? LpStatus::kIterationLimit : LpStatus::kOptimal;
    return incumbent;
  }
  LpSolution none;
  none.status = node_limit_hit ? LpStatus::kIterationLimit : LpStatus::kInfeasible;
  return none;
}

}  // namespace slate
