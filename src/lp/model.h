// Linear/mixed-integer program model builder.
//
// The global controller's routing optimization (DESIGN.md §4) is expressed
// against this interface and solved by the bundled two-phase simplex
// (lp/simplex.h) plus branch & bound (lp/branch_and_bound.h). The builder is
// deliberately solver-agnostic: variables with bounds, linear constraints,
// and a linear objective, with an integrality flag per variable.
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace slate {

inline constexpr double kLpInfinity = std::numeric_limits<double>::infinity();

enum class Relation { kLessEqual, kGreaterEqual, kEqual };

enum class ObjectiveSense { kMinimize, kMaximize };

struct LinearTerm {
  int var = -1;
  double coeff = 0.0;
};

class LpModel {
 public:
  // Adds a variable with bounds [lower, upper] and objective coefficient
  // `objective`. Returns its index. `lower` may be -inf, `upper` +inf.
  int add_variable(double lower, double upper, double objective,
                   std::string name = {});

  // Marks a variable as integral (for the MILP solver; the LP relaxation
  // ignores the flag).
  void set_integer(int var, bool integer = true);

  void set_objective_coefficient(int var, double coeff);
  void set_objective_sense(ObjectiveSense sense) noexcept { sense_ = sense; }

  // Adds `terms` (rel) `rhs`. Terms with duplicate variables are summed.
  // Returns the constraint index.
  int add_constraint(std::vector<LinearTerm> terms, Relation rel, double rhs,
                     std::string name = {});

  [[nodiscard]] int variable_count() const noexcept {
    return static_cast<int>(lower_.size());
  }
  [[nodiscard]] int constraint_count() const noexcept {
    return static_cast<int>(rows_.size());
  }

  [[nodiscard]] double lower_bound(int var) const { return lower_.at(var); }
  [[nodiscard]] double upper_bound(int var) const { return upper_.at(var); }
  [[nodiscard]] double objective_coefficient(int var) const { return objective_.at(var); }
  [[nodiscard]] bool is_integer(int var) const { return integer_.at(var) != 0; }
  [[nodiscard]] ObjectiveSense objective_sense() const noexcept { return sense_; }
  [[nodiscard]] const std::string& variable_name(int var) const { return names_.at(var); }

  struct Row {
    std::vector<LinearTerm> terms;
    Relation rel = Relation::kLessEqual;
    double rhs = 0.0;
    std::string name;
  };
  [[nodiscard]] const Row& row(int i) const { return rows_.at(i); }
  [[nodiscard]] const std::vector<Row>& rows() const noexcept { return rows_; }

  // Tightens a variable's bounds (used by branch & bound). Throws if the
  // new bounds are inverted.
  void set_bounds(int var, double lower, double upper);

  // Evaluates the objective at a point.
  [[nodiscard]] double objective_value(const std::vector<double>& x) const;

  // True if `x` satisfies all constraints and bounds within `tol`.
  [[nodiscard]] bool is_feasible(const std::vector<double>& x,
                                 double tol = 1e-6) const;

 private:
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> objective_;
  std::vector<char> integer_;
  std::vector<std::string> names_;
  std::vector<Row> rows_;
  ObjectiveSense sense_ = ObjectiveSense::kMinimize;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  // one per model variable

  [[nodiscard]] bool ok() const noexcept { return status == LpStatus::kOptimal; }
};

const char* to_string(LpStatus status) noexcept;

}  // namespace slate
