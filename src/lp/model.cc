#include "lp/model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace slate {

int LpModel::add_variable(double lower, double upper, double objective,
                          std::string name) {
  if (lower > upper) {
    throw std::invalid_argument("LpModel: inverted variable bounds");
  }
  lower_.push_back(lower);
  upper_.push_back(upper);
  objective_.push_back(objective);
  integer_.push_back(0);
  names_.push_back(std::move(name));
  return static_cast<int>(lower_.size()) - 1;
}

void LpModel::set_integer(int var, bool integer) {
  integer_.at(var) = integer ? 1 : 0;
}

void LpModel::set_objective_coefficient(int var, double coeff) {
  objective_.at(var) = coeff;
}

int LpModel::add_constraint(std::vector<LinearTerm> terms, Relation rel,
                            double rhs, std::string name) {
  // Merge duplicate variables and drop zero coefficients so the simplex
  // sees a clean row.
  std::sort(terms.begin(), terms.end(),
            [](const LinearTerm& a, const LinearTerm& b) { return a.var < b.var; });
  std::vector<LinearTerm> merged;
  merged.reserve(terms.size());
  for (const auto& t : terms) {
    if (t.var < 0 || t.var >= variable_count()) {
      throw std::out_of_range("LpModel: constraint references unknown variable");
    }
    if (!merged.empty() && merged.back().var == t.var) {
      merged.back().coeff += t.coeff;
    } else {
      merged.push_back(t);
    }
  }
  std::erase_if(merged, [](const LinearTerm& t) { return t.coeff == 0.0; });
  rows_.push_back(Row{std::move(merged), rel, rhs, std::move(name)});
  return static_cast<int>(rows_.size()) - 1;
}

void LpModel::set_bounds(int var, double lower, double upper) {
  if (lower > upper) {
    throw std::invalid_argument("LpModel: inverted variable bounds");
  }
  lower_.at(var) = lower;
  upper_.at(var) = upper;
}

double LpModel::objective_value(const std::vector<double>& x) const {
  double v = 0.0;
  for (int i = 0; i < variable_count(); ++i) {
    v += objective_[i] * x.at(i);
  }
  return v;
}

bool LpModel::is_feasible(const std::vector<double>& x, double tol) const {
  if (static_cast<int>(x.size()) != variable_count()) return false;
  for (int i = 0; i < variable_count(); ++i) {
    if (x[i] < lower_[i] - tol || x[i] > upper_[i] + tol) return false;
  }
  for (const auto& row : rows_) {
    double lhs = 0.0;
    for (const auto& t : row.terms) lhs += t.coeff * x[t.var];
    switch (row.rel) {
      case Relation::kLessEqual:
        if (lhs > row.rhs + tol) return false;
        break;
      case Relation::kGreaterEqual:
        if (lhs < row.rhs - tol) return false;
        break;
      case Relation::kEqual:
        if (std::abs(lhs - row.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

const char* to_string(LpStatus status) noexcept {
  switch (status) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterationLimit: return "iteration-limit";
  }
  return "?";
}

}  // namespace slate
