// Piecewise-linear under-approximation of convex functions.
//
// The optimizer's latency objective contains, per service station, the
// convex queueing-cost function g(u) = u^2 / (1 - u) (aggregate waiting time
// per second at utilization u; see DESIGN.md §4). A convex function is the
// pointwise maximum of its tangents, so for minimization it can be encoded
// exactly as an epigraph variable t with constraints t >= slope_i * u +
// intercept_i — plain LP, no integer variables.
#pragma once

#include <functional>
#include <vector>

namespace slate {

struct TangentLine {
  double slope = 0.0;
  double intercept = 0.0;

  [[nodiscard]] double at(double x) const noexcept { return slope * x + intercept; }
};

// Tangents of a convex differentiable `f` with derivative `df`, taken at
// `count` points on [lo, hi]. Points are spaced so curvature near `hi` (where
// queueing curves blow up) gets denser coverage: u_i = lo + (hi-lo) * s_i^0.5
// reversed — i.e. more points near hi.
std::vector<TangentLine> tangents_of(const std::function<double(double)>& f,
                                     const std::function<double(double)>& df,
                                     double lo, double hi, std::size_t count);

// Tangents of the queueing-cost g(u) = u^2/(1-u) on [0, u_max], u_max < 1.
std::vector<TangentLine> queue_cost_tangents(double u_max, std::size_t count);

// Max over tangents at x (the PWL approximation value).
double pwl_value(const std::vector<TangentLine>& tangents, double x) noexcept;

// The exact queueing-cost function and its derivative (exposed for tests and
// for the controllers' objective evaluation).
double queue_cost(double u) noexcept;        // u^2/(1-u), +inf for u >= 1
double queue_cost_derivative(double u) noexcept;

}  // namespace slate
