#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace slate {
namespace {

// One structural column of the transformed problem, mapping back to a model
// variable: model_x = sign * column_value + offset (summed over columns that
// share the model variable, for free-variable splits).
struct ColumnMap {
  int model_var = -1;
  double sign = 1.0;
};

struct Transformed {
  // Dense constraint matrix rows (structural columns only) and rhs, already
  // normalized to rhs >= 0.
  std::vector<std::vector<double>> a;
  std::vector<double> rhs;
  std::vector<Relation> rel;
  // Phase-2 objective over structural columns (minimization) + constant.
  std::vector<double> cost;
  double cost_constant = 0.0;
  std::vector<ColumnMap> columns;
  std::vector<double> offsets;  // per model variable
  bool flip_objective = false;  // true when the model maximizes
};

// Rewrites the model into "all variables >= 0, rhs >= 0" form.
Transformed transform(const LpModel& model) {
  Transformed t;
  const int n = model.variable_count();
  t.offsets.assign(n, 0.0);
  t.flip_objective = model.objective_sense() == ObjectiveSense::kMaximize;

  // Column plan per model variable.
  std::vector<int> first_col(n, -1);
  std::vector<int> second_col(n, -1);  // for free-variable splits
  std::vector<double> extra_upper;     // finite upper bound rows, per column
  for (int j = 0; j < n; ++j) {
    const double lo = model.lower_bound(j);
    const double hi = model.upper_bound(j);
    if (lo == -kLpInfinity && hi == kLpInfinity) {
      first_col[j] = static_cast<int>(t.columns.size());
      t.columns.push_back({j, 1.0});
      extra_upper.push_back(kLpInfinity);
      second_col[j] = static_cast<int>(t.columns.size());
      t.columns.push_back({j, -1.0});
      extra_upper.push_back(kLpInfinity);
    } else if (lo == -kLpInfinity) {
      // x = hi - x^, x^ >= 0.
      first_col[j] = static_cast<int>(t.columns.size());
      t.columns.push_back({j, -1.0});
      extra_upper.push_back(kLpInfinity);
      t.offsets[j] = hi;
    } else {
      // x = lo + x^, x^ in [0, hi - lo].
      first_col[j] = static_cast<int>(t.columns.size());
      t.columns.push_back({j, 1.0});
      extra_upper.push_back(hi == kLpInfinity ? kLpInfinity : hi - lo);
      t.offsets[j] = lo;
    }
  }
  const int cols = static_cast<int>(t.columns.size());

  // Objective over columns.
  t.cost.assign(cols, 0.0);
  for (int j = 0; j < n; ++j) {
    double c = model.objective_coefficient(j);
    if (t.flip_objective) c = -c;
    t.cost_constant += c * t.offsets[j];
    t.cost[first_col[j]] += c * t.columns[first_col[j]].sign;
    if (second_col[j] >= 0) t.cost[second_col[j]] += c * t.columns[second_col[j]].sign;
  }

  auto add_row = [&](std::vector<double> row, Relation rel, double rhs) {
    if (rhs < 0.0) {
      for (double& v : row) v = -v;
      rhs = -rhs;
      rel = rel == Relation::kLessEqual    ? Relation::kGreaterEqual
            : rel == Relation::kGreaterEqual ? Relation::kLessEqual
                                             : Relation::kEqual;
    }
    t.a.push_back(std::move(row));
    t.rhs.push_back(rhs);
    t.rel.push_back(rel);
  };

  // Model constraints.
  for (const auto& row : model.rows()) {
    std::vector<double> dense(cols, 0.0);
    double rhs = row.rhs;
    for (const auto& term : row.terms) {
      rhs -= term.coeff * t.offsets[term.var];
      dense[first_col[term.var]] += term.coeff * t.columns[first_col[term.var]].sign;
      if (second_col[term.var] >= 0) {
        dense[second_col[term.var]] +=
            term.coeff * t.columns[second_col[term.var]].sign;
      }
    }
    add_row(std::move(dense), row.rel, rhs);
  }

  // Finite upper bounds as explicit rows.
  for (int c = 0; c < cols; ++c) {
    if (extra_upper[c] != kLpInfinity) {
      std::vector<double> dense(cols, 0.0);
      dense[c] = 1.0;
      add_row(std::move(dense), Relation::kLessEqual, extra_upper[c]);
    }
  }
  return t;
}

// Fingerprint of the transformed layout (row/column counts and the relation
// of every row). A basis is only reusable against the same layout — the
// same tableau geometry and slack/artificial assignment. Coefficients and
// rhs are deliberately excluded: they change every control period.
std::uint64_t layout_signature(const Transformed& t) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  auto mix = [&](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(t.a.size());
  mix(t.columns.size());
  for (const Relation r : t.rel) mix(static_cast<std::uint64_t>(r) + 17);
  return h;
}

// Dense tableau with explicit basis bookkeeping.
class Tableau {
 public:
  Tableau(const Transformed& t, const SimplexOptions& options)
      : options_(options), structural_cols_(static_cast<int>(t.columns.size())) {
    const int m = static_cast<int>(t.a.size());
    // Column layout: [structural | slack/surplus | artificial], then rhs.
    int slack_count = 0;
    for (Relation r : t.rel) {
      if (r != Relation::kEqual) ++slack_count;
    }
    int artificial_count = 0;
    for (std::size_t i = 0; i < t.rel.size(); ++i) {
      if (t.rel[i] != Relation::kLessEqual) ++artificial_count;
    }
    total_cols_ = structural_cols_ + slack_count + artificial_count;
    first_artificial_ = structural_cols_ + slack_count;

    rows_.assign(m, std::vector<double>(total_cols_ + 1, 0.0));
    basis_.assign(m, -1);
    // pivot() maintains the objective row unconditionally; warm-start
    // reconstruction pivots before any build_objective call, so the row
    // must exist (as zeros) from construction.
    obj_.assign(total_cols_ + 1, 0.0);

    int next_slack = structural_cols_;
    int next_artificial = first_artificial_;
    for (int i = 0; i < m; ++i) {
      auto& row = rows_[i];
      std::copy(t.a[i].begin(), t.a[i].end(), row.begin());
      row[total_cols_] = t.rhs[i];
      switch (t.rel[i]) {
        case Relation::kLessEqual:
          row[next_slack] = 1.0;
          basis_[i] = next_slack++;
          break;
        case Relation::kGreaterEqual:
          row[next_slack] = -1.0;
          ++next_slack;
          row[next_artificial] = 1.0;
          basis_[i] = next_artificial++;
          break;
        case Relation::kEqual:
          row[next_artificial] = 1.0;
          basis_[i] = next_artificial++;
          break;
      }
    }
  }

  // Runs phase 1 + phase 2. Returns the status; on kOptimal, `solution`
  // holds structural column values.
  LpStatus solve(const std::vector<double>& cost, std::vector<double>& solution,
                 double& objective, SimplexStats* stats) {
    if (first_artificial_ < total_cols_) {
      // Phase 1: minimize the sum of artificial variables.
      std::vector<double> phase1(total_cols_, 0.0);
      for (int c = first_artificial_; c < total_cols_; ++c) phase1[c] = 1.0;
      build_objective(phase1);
      const LpStatus s1 = iterate(stats);
      if (s1 != LpStatus::kOptimal) return s1;
      if (objective_value() > 1e-7) return LpStatus::kInfeasible;
      purge_artificials();
    }
    return solve_phase2(cost, solution, objective, stats);
  }

  // Phase 2 only — valid from a feasible basis (after phase 1, or after a
  // successful try_warm).
  LpStatus solve_phase2(const std::vector<double>& cost,
                        std::vector<double>& solution, double& objective,
                        SimplexStats* stats) {
    const int m = static_cast<int>(rows_.size());
    std::vector<double> full_cost(total_cols_, 0.0);
    std::copy(cost.begin(), cost.end(), full_cost.begin());
    build_objective(full_cost);
    const LpStatus s2 = iterate(stats);
    if (s2 != LpStatus::kOptimal) return s2;

    solution.assign(structural_cols_, 0.0);
    for (int i = 0; i < m; ++i) {
      if (basis_[i] >= 0 && basis_[i] < structural_cols_) {
        solution[basis_[i]] = rows_[i][total_cols_];
      }
    }
    objective = objective_value();
    return LpStatus::kOptimal;
  }

  // Installs `target` (a previous solve's basis) by crash pivots, skipping
  // phase 1 entirely. Returns false — leaving the tableau unusable, the
  // caller must cold-solve a fresh one — when the basis does not fit this
  // tableau or does not reach a primal-feasible point (demand moved too far
  // since the basis was cut).
  bool try_warm(const std::vector<int>& target) {
    const int m = static_cast<int>(rows_.size());
    if (static_cast<int>(target.size()) != m) return false;
    std::vector<char> in_target(total_cols_, 0);
    for (const int c : target) {
      if (c < 0 || c >= total_cols_ || in_target[c] != 0) return false;
      in_target[c] = 1;
    }
    std::vector<char> is_basic(total_cols_, 0);
    for (const int c : basis_) is_basic[c] = 1;
    for (int r = 0; r < m; ++r) {
      const int c = target[r];
      if (is_basic[c] != 0) continue;  // initial slack that stays basic
      // Bring column c into the basis against a row whose current basic
      // column is not wanted, preferring the largest pivot for stability.
      int pivot_row = -1;
      double best = 1e-7;
      for (int i = 0; i < m; ++i) {
        if (in_target[basis_[i]] != 0) continue;
        const double a = std::abs(rows_[i][c]);
        if (a > best) {
          best = a;
          pivot_row = i;
        }
      }
      if (pivot_row < 0) return false;  // numerically dependent: cold-solve
      is_basic[basis_[pivot_row]] = 0;
      pivot(pivot_row, c);
      is_basic[c] = 1;
    }
    // Primal feasibility at the reconstructed basis: nonnegative rhs (tiny
    // negative rounding dust is clamped), and no artificial basic above
    // noise level.
    for (int i = 0; i < m; ++i) {
      double& rhs = rows_[i][total_cols_];
      if (rhs < 0.0) {
        if (rhs < -1e-7) return false;
        rhs = 0.0;
      }
      if (basis_[i] >= first_artificial_ && rhs > 1e-7) return false;
    }
    artificials_disabled_ = true;
    return true;
  }

  [[nodiscard]] const std::vector<int>& basis() const noexcept {
    return basis_;
  }

 private:
  // Rebuilds the reduced-cost row for the given column costs, pricing out
  // the current basis.
  void build_objective(const std::vector<double>& cost) {
    current_cost_ = cost;
    obj_.assign(total_cols_ + 1, 0.0);
    for (int c = 0; c < total_cols_; ++c) obj_[c] = cost[c];
    obj_[total_cols_] = 0.0;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const double cb = cost[basis_[i]];
      if (cb == 0.0) continue;
      for (int c = 0; c <= total_cols_; ++c) obj_[c] -= cb * rows_[i][c];
    }
  }

  [[nodiscard]] double objective_value() const { return -obj_[total_cols_]; }

  // After phase 1: pivot lingering artificials out of the basis or drop
  // their (redundant) rows, then forbid artificial columns.
  void purge_artificials() {
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (basis_[i] < first_artificial_) continue;
      // Find any usable non-artificial pivot in this row.
      int pivot_col = -1;
      for (int c = 0; c < first_artificial_; ++c) {
        if (std::abs(rows_[i][c]) > 1e-9 && !disabled_col(c)) {
          pivot_col = c;
          break;
        }
      }
      if (pivot_col >= 0) {
        pivot(static_cast<int>(i), pivot_col);
      } else {
        // Redundant row: zero it so it can never constrain anything.
        std::fill(rows_[i].begin(), rows_[i].end(), 0.0);
        // Keep the artificial basic at value 0 in a dead row.
      }
    }
    artificials_disabled_ = true;
  }

  [[nodiscard]] bool disabled_col(int c) const {
    return artificials_disabled_ && c >= first_artificial_;
  }

  LpStatus iterate(SimplexStats* stats) {
    const double tol = options_.tolerance;
    for (std::uint64_t iter = 0; iter < options_.max_iterations; ++iter) {
      if (stats != nullptr) ++stats->iterations;
      const bool bland = iter >= options_.bland_after;

      // Entering column.
      int entering = -1;
      double best = -tol;
      const int scan_limit =
          artificials_disabled_ ? first_artificial_ : total_cols_;
      for (int c = 0; c < scan_limit; ++c) {
        const double rc = obj_[c];
        if (rc < -tol) {
          if (bland) {
            entering = c;
            break;
          }
          if (rc < best) {
            best = rc;
            entering = c;
          }
        }
      }
      if (entering < 0) return LpStatus::kOptimal;

      // Ratio test.
      int leaving = -1;
      double best_ratio = kLpInfinity;
      for (std::size_t i = 0; i < rows_.size(); ++i) {
        const double a = rows_[i][entering];
        if (a > tol) {
          const double ratio = rows_[i][total_cols_] / a;
          if (ratio < best_ratio - tol ||
              (ratio < best_ratio + tol && leaving >= 0 &&
               basis_[i] < basis_[leaving])) {
            best_ratio = ratio;
            leaving = static_cast<int>(i);
          }
        }
      }
      if (leaving < 0) return LpStatus::kUnbounded;
      pivot(leaving, entering);
    }
    return LpStatus::kIterationLimit;
  }

  void pivot(int row, int col) {
    auto& pivot_row = rows_[row];
    const double p = pivot_row[col];
    for (double& v : pivot_row) v /= p;
    pivot_row[col] = 1.0;  // kill rounding residue on the pivot itself
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (static_cast<int>(i) == row) continue;
      const double factor = rows_[i][col];
      if (factor == 0.0) continue;
      auto& r = rows_[i];
      for (int c = 0; c <= total_cols_; ++c) r[c] -= factor * pivot_row[c];
      r[col] = 0.0;
    }
    const double obj_factor = obj_[col];
    if (obj_factor != 0.0) {
      for (int c = 0; c <= total_cols_; ++c) obj_[c] -= obj_factor * pivot_row[c];
      obj_[col] = 0.0;
    }
    basis_[row] = col;
  }

  SimplexOptions options_;
  int structural_cols_;
  int total_cols_ = 0;
  int first_artificial_ = 0;
  bool artificials_disabled_ = false;
  std::vector<std::vector<double>> rows_;
  std::vector<double> obj_;
  std::vector<double> current_cost_;
  std::vector<int> basis_;
};

}  // namespace

LpSolution solve_lp(const LpModel& model, const SimplexOptions& options,
                    SimplexStats* stats, SimplexBasis* warm) {
  LpSolution result;
  const Transformed t = transform(model);
  const std::uint64_t signature = layout_signature(t);
  if (stats != nullptr) {
    stats->phase1_rows = static_cast<int>(t.a.size());
    stats->columns = static_cast<int>(t.columns.size());
  }

  std::vector<double> columns;
  double objective = 0.0;
  bool solved = false;

  if (warm != nullptr && warm->valid() && warm->signature == signature) {
    Tableau tableau(t, options);
    if (tableau.try_warm(warm->basis) &&
        tableau.solve_phase2(t.cost, columns, objective, stats) ==
            LpStatus::kOptimal) {
      result.status = LpStatus::kOptimal;
      solved = true;
      warm->basis = tableau.basis();
      if (stats != nullptr) stats->warm_started = true;
    }
    // Any warm failure falls through: a reconstruction that went sideways
    // must not degrade the answer, only the speed.
  }

  if (!solved) {
    Tableau tableau(t, options);
    result.status = tableau.solve(t.cost, columns, objective, stats);
    if (result.status != LpStatus::kOptimal) return result;
    if (warm != nullptr) {
      warm->signature = signature;
      warm->basis = tableau.basis();
    }
  }

  // Map structural columns back to model variables.
  result.values.assign(model.variable_count(), 0.0);
  for (std::size_t c = 0; c < t.columns.size(); ++c) {
    result.values[t.columns[c].model_var] += t.columns[c].sign * columns[c];
  }
  for (int j = 0; j < model.variable_count(); ++j) {
    result.values[j] += t.offsets[j];
  }
  const double min_objective = objective + t.cost_constant;
  result.objective = t.flip_objective ? -min_objective : min_objective;
  return result;
}

}  // namespace slate
