// Branch & bound MILP solver over the simplex LP relaxation.
//
// Depth-first search with best-bound pruning; branches on the integer
// variable whose relaxation value is farthest from integral. Suitable for
// the small integer dimensions SLATE uses (e.g. all-or-nothing class
// pinning); the LP-only fast path (no integer variables) costs exactly one
// simplex solve.
#pragma once

#include <cstdint>

#include "lp/model.h"
#include "lp/simplex.h"

namespace slate {

struct MilpOptions {
  SimplexOptions simplex;
  std::uint64_t max_nodes = 100000;
  double integrality_tolerance = 1e-6;
  // Absolute objective gap below which an incumbent is accepted as optimal.
  double absolute_gap = 1e-9;
};

struct MilpStats {
  std::uint64_t nodes_explored = 0;
  std::uint64_t simplex_iterations = 0;
};

// Solves `model` respecting variables marked integer. Status semantics match
// solve_lp; kIterationLimit is returned when max_nodes is exhausted with no
// proven-optimal incumbent (values hold the best incumbent if any).
LpSolution solve_milp(const LpModel& model, const MilpOptions& options = {},
                      MilpStats* stats = nullptr);

}  // namespace slate
