#include "lp/piecewise.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace slate {

std::vector<TangentLine> tangents_of(const std::function<double(double)>& f,
                                     const std::function<double(double)>& df,
                                     double lo, double hi, std::size_t count) {
  if (count < 2) throw std::invalid_argument("tangents_of: need >= 2 tangents");
  if (!(hi > lo)) throw std::invalid_argument("tangents_of: empty interval");
  std::vector<TangentLine> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // s in [0,1]; square it and mirror so points bunch toward hi where
    // queueing curvature concentrates.
    const double s = static_cast<double>(i) / static_cast<double>(count - 1);
    const double warped = 1.0 - (1.0 - s) * (1.0 - s);
    const double x = lo + (hi - lo) * warped;
    const double slope = df(x);
    out.push_back(TangentLine{slope, f(x) - slope * x});
  }
  return out;
}

double queue_cost(double u) noexcept {
  if (u >= 1.0) return std::numeric_limits<double>::infinity();
  if (u <= 0.0) return 0.0;
  return u * u / (1.0 - u);
}

double queue_cost_derivative(double u) noexcept {
  if (u >= 1.0) return std::numeric_limits<double>::infinity();
  if (u <= 0.0) return 0.0;
  const double d = 1.0 - u;
  return (2.0 * u * d + u * u) / (d * d);
}

std::vector<TangentLine> queue_cost_tangents(double u_max, std::size_t count) {
  if (!(u_max > 0.0 && u_max < 1.0)) {
    throw std::invalid_argument("queue_cost_tangents: u_max must be in (0,1)");
  }
  return tangents_of([](double u) { return queue_cost(u); },
                     [](double u) { return queue_cost_derivative(u); }, 0.0,
                     u_max, count);
}

double pwl_value(const std::vector<TangentLine>& tangents, double x) noexcept {
  double best = -std::numeric_limits<double>::infinity();
  for (const auto& t : tangents) best = std::max(best, t.at(x));
  return best;
}

}  // namespace slate
