#include "contingency/drain_orchestrator.h"

#include <algorithm>
#include <stdexcept>

namespace slate {

namespace {
// Smoothing for the rolling goodput estimate the sag gate compares against.
constexpr double kGoodputAlpha = 0.3;
}  // namespace

DrainOrchestrator::DrainOrchestrator(std::vector<DrainSpec> drains,
                                     double control_period, Hooks hooks)
    : control_period_(control_period), hooks_(std::move(hooks)) {
  if (control_period_ <= 0.0) {
    throw std::invalid_argument("DrainOrchestrator: control period must be > 0");
  }
  drains_.reserve(drains.size());
  for (DrainSpec& spec : drains) {
    if (!spec.cluster.valid()) {
      throw std::invalid_argument("DrainOrchestrator: invalid drain cluster");
    }
    if (spec.over <= 0.0) {
      throw std::invalid_argument("DrainOrchestrator: drain duration must be > 0");
    }
    if (spec.step <= 0.0 || spec.step > 1.0) {
      throw std::invalid_argument("DrainOrchestrator: step must be in (0, 1]");
    }
    if (spec.sag_threshold <= 0.0 || spec.sag_threshold >= 1.0) {
      throw std::invalid_argument(
          "DrainOrchestrator: sag threshold must be in (0, 1)");
    }
    drains_.push_back(Drain{spec});
  }
}

void DrainOrchestrator::tick(double now) {
  // Measured goodput over the last period, from the cumulative served count.
  // Reads happen at a global control barrier, so the delta is deterministic
  // at any shard count.
  const std::uint64_t served = hooks_.jobs_served ? hooks_.jobs_served() : 0;
  double goodput = 0.0;
  if (have_last_served_) {
    goodput =
        static_cast<double>(served - last_served_) / control_period_;
    goodput_ewma_ = have_ewma_
                        ? kGoodputAlpha * goodput +
                              (1.0 - kGoodputAlpha) * goodput_ewma_
                        : goodput;
    have_ewma_ = true;
  }
  last_served_ = served;
  have_last_served_ = true;

  for (Drain& d : drains_) {
    if (d.state == State::kDrained || d.state == State::kCancelled) continue;

    // Outage overlap: the outage wins. The drain cancels cleanly and the
    // keep-fraction is restored, so the cluster serves normally again the
    // moment the outage lifts.
    if (hooks_.cluster_down && hooks_.cluster_down(d.spec.cluster)) {
      if (d.state == State::kDraining || d.keep < 1.0) {
        d.keep = 1.0;
        if (hooks_.apply_keep) hooks_.apply_keep(d.spec.cluster, 1.0);
      }
      d.state = State::kCancelled;
      ++drains_cancelled_;
      continue;
    }

    if (d.state == State::kPending) {
      if (now + 1e-9 < d.spec.start) continue;
      d.state = State::kDraining;
      // Freeze the pre-drain goodput baseline; with no history yet the sag
      // gate stays disabled (baseline 0).
      d.baseline_goodput = have_ewma_ ? goodput_ewma_ : 0.0;
      ++drains_started_;
    }

    // Pause-and-hold while downstream goodput sags below the pre-drain
    // baseline — the same reflex as canary rollback, applied to capacity
    // removal. Progress resumes once goodput recovers.
    if (d.baseline_goodput > 0.0 && have_ewma_ &&
        goodput < d.spec.sag_threshold * d.baseline_goodput) {
      ++drain_pause_periods_;
      continue;
    }

    const double step =
        std::min(d.spec.step, control_period_ / d.spec.over);
    d.keep = std::max(0.0, d.keep - step);
    ++drain_steps_;
    if (hooks_.apply_keep) hooks_.apply_keep(d.spec.cluster, d.keep);
    if (d.keep <= 0.0) {
      d.state = State::kDrained;
      ++drains_completed_;
    }
  }
}

double DrainOrchestrator::keep_fraction(ClusterId cluster) const noexcept {
  double keep = 1.0;
  for (const Drain& d : drains_) {
    if (d.spec.cluster == cluster) keep = std::min(keep, d.keep);
  }
  return keep;
}

}  // namespace slate
