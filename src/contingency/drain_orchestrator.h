// Coordinated drain / evacuation of clusters on the control timeline.
//
// A drain phases traffic off a cluster in bounded per-period steps instead of
// removing capacity cliff-edge. Each control period the orchestrator:
//
//   1. cancels any drain whose cluster is under a fault outage — the outage
//      wins, the drain cancels cleanly (keep-fraction restored to 1 so the
//      cluster serves again once the outage lifts);
//   2. gates progress on downstream health: while measured goodput sags
//      below sag_threshold x the pre-drain baseline, the drain pauses and
//      holds (the canary-rollback idiom, applied to capacity removal);
//   3. otherwise lowers the cluster's keep-fraction by a bounded step, so
//      the drain completes in `over` seconds of healthy progress.
//
// The orchestrator is wired to the host simulation through three hooks and
// knows nothing about engines or sharding: every decision is a pure function
// of hook reads made at a global control barrier, so results are
// byte-identical at any shard count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "contingency/contingency.h"

namespace slate {

class DrainOrchestrator {
 public:
  struct Hooks {
    // Cumulative jobs served by the whole simulation (monotone).
    std::function<std::uint64_t()> jobs_served;
    // True while `cluster` is under a fault outage.
    std::function<bool(ClusterId)> cluster_down;
    // Applies a new keep-fraction in [0, 1]: the share of this cluster's
    // normal traffic it should continue to receive. The host propagates it
    // to the data plane, the solver's capacity view, and the autoscaler.
    std::function<void(ClusterId, double)> apply_keep;
  };

  DrainOrchestrator(std::vector<DrainSpec> drains, double control_period,
                    Hooks hooks);

  // Runs one control-period step; call once per period from the global
  // timeline (Simulator::ScopedPeriodic).
  void tick(double now);

  [[nodiscard]] std::uint64_t drains_started() const noexcept {
    return drains_started_;
  }
  [[nodiscard]] std::uint64_t drains_completed() const noexcept {
    return drains_completed_;
  }
  [[nodiscard]] std::uint64_t drains_cancelled() const noexcept {
    return drains_cancelled_;
  }
  [[nodiscard]] std::uint64_t drain_pause_periods() const noexcept {
    return drain_pause_periods_;
  }
  [[nodiscard]] std::uint64_t drain_steps() const noexcept {
    return drain_steps_;
  }
  // Keep-fraction the orchestrator last applied for `cluster` (1 when it has
  // never been touched).
  [[nodiscard]] double keep_fraction(ClusterId cluster) const noexcept;

 private:
  enum class State { kPending, kDraining, kDrained, kCancelled };

  struct Drain {
    DrainSpec spec;
    State state = State::kPending;
    double keep = 1.0;
    // Goodput baseline frozen when the drain goes active; 0 = no baseline
    // yet (gate disabled until one exists).
    double baseline_goodput = 0.0;
  };

  std::vector<Drain> drains_;
  double control_period_ = 1.0;
  Hooks hooks_;

  // Per-tick goodput estimate: served delta over the last period, smoothed.
  std::uint64_t last_served_ = 0;
  bool have_last_served_ = false;
  double goodput_ewma_ = 0.0;
  bool have_ewma_ = false;

  std::uint64_t drains_started_ = 0;
  std::uint64_t drains_completed_ = 0;
  std::uint64_t drains_cancelled_ = 0;
  std::uint64_t drain_pause_periods_ = 0;
  std::uint64_t drain_steps_ = 0;
};

}  // namespace slate
