// N-1 failover headroom evaluation for routing plans.
//
// Given a routing rule set and the demand it was solved for, predicts the
// per-station utilization after any single cluster fails, mirroring what the
// data plane actually does on failure:
//
//   * ingress demand entering the failed cluster is anycast to the nearest
//     alive cluster holding the class's entry service (on_arrival failover);
//   * rule weight pointing at the failed cluster lands on the nearest alive
//     candidate as seen from the source cluster (start_attempt's forced
//     nearest-alive re-pick when the weighted draw is excluded);
//   * flow that was flowing *through* the failed cluster disappears with it,
//     so no traffic originates there post-failure.
//
// The worst-case max utilization over the failure set is the plan's
// contingency margin: a margin <= the configured cap means every single
// failure is absorbable within existing headroom, before any reactive
// mechanism (fault age-out, breakers, re-solve) has to engage.
#pragma once

#include <vector>

#include "app/application.h"
#include "cluster/deployment.h"
#include "core/latency_model.h"
#include "net/topology.h"
#include "routing/weighted_rules.h"
#include "util/matrix.h"

namespace slate {

class HeadroomPlanner {
 public:
  HeadroomPlanner(const Application& app, const Deployment& deployment,
                  const Topology& topology);

  // Max post-failure station utilization across all alive stations when
  // `failed` is down. `demand` and `live_servers` are interpreted exactly as
  // by RouteOptimizer::optimize (live entries of 0 fall back to the
  // deployment's static count). Demand whose class loses its last alive
  // entry (or a call edge its last alive candidate) is lost outright, not
  // rerouted — total loss is a different failure mode than overload and
  // contributes no utilization.
  [[nodiscard]] double failure_max_utilization(
      const LatencyModel& model, const FlatMatrix<double>& demand,
      const RoutingRuleSet& rules, const std::vector<unsigned>* live_servers,
      ClusterId failed) const;

  // Worst case of failure_max_utilization over the default failure set:
  // each cluster singly. Writes the worst failure to `worst` if non-null.
  [[nodiscard]] double worst_case_margin(
      const LatencyModel& model, const FlatMatrix<double>& demand,
      const RoutingRuleSet& rules, const std::vector<unsigned>* live_servers,
      ClusterId* worst = nullptr) const;

 private:
  const Application* app_;
  const Deployment* deployment_;
  const Topology* topology_;
};

}  // namespace slate
