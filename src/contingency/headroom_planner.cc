#include "contingency/headroom_planner.h"

#include <algorithm>
#include <stdexcept>

namespace slate {

HeadroomPlanner::HeadroomPlanner(const Application& app,
                                 const Deployment& deployment,
                                 const Topology& topology)
    : app_(&app), deployment_(&deployment), topology_(&topology) {}

double HeadroomPlanner::failure_max_utilization(
    const LatencyModel& model, const FlatMatrix<double>& demand,
    const RoutingRuleSet& rules, const std::vector<unsigned>* live_servers,
    ClusterId failed) const {
  const std::size_t C = deployment_->cluster_count();
  const std::size_t K = app_->class_count();
  const std::size_t S = app_->service_count();
  const std::size_t f = failed.index();
  if (demand.rows() != K || demand.cols() != C) {
    throw std::invalid_argument(
        "failure_max_utilization: demand shape mismatch");
  }

  auto servers_at = [&](std::size_t s, std::size_t c) -> double {
    if (live_servers != nullptr && s * C + c < live_servers->size() &&
        (*live_servers)[s * C + c] > 0) {
      return static_cast<double>((*live_servers)[s * C + c]);
    }
    return deployment_->servers(ServiceId{s}, ClusterId{c});
  };
  auto alive_subset = [&](const std::vector<ClusterId>& clusters) {
    std::vector<ClusterId> alive;
    alive.reserve(clusters.size());
    for (ClusterId c : clusters) {
      if (c.index() != f) alive.push_back(c);
    }
    return alive;
  };

  std::vector<double> utilization(S * C, 0.0);

  for (std::size_t k = 0; k < K; ++k) {
    const CallGraph& graph = app_->traffic_class(ClassId{k}).graph;
    const std::size_t N = graph.node_count();
    std::vector<std::vector<double>> arrivals(N, std::vector<double>(C, 0.0));

    // Root arrivals: front-door anycast over alive entry clusters. Demand
    // with no alive entry left is lost, not rerouted.
    const ServiceId entry = app_->entry_service(ClassId{k});
    const auto entry_alive = alive_subset(deployment_->clusters_for(entry));
    for (std::size_t c = 0; c < C; ++c) {
      const double d = demand(k, c);
      if (d <= 0.0) continue;
      if (c != f && deployment_->is_deployed(entry, ClusterId{c})) {
        arrivals[0][c] += d;
      } else if (!entry_alive.empty()) {
        arrivals[0][topology_->nearest(ClusterId{c}, entry_alive).index()] += d;
      }
    }

    for (std::size_t n = 0; n < N; ++n) {
      if (n > 0) {
        const std::size_t p = graph.node(n).parent;
        const double mult = graph.node(n).multiplicity;
        const ServiceId svc = graph.node(n).service;
        const auto alive = alive_subset(deployment_->clusters_for(svc));
        for (std::size_t i = 0; i < C; ++i) {
          const double out = arrivals[p][i] * mult;
          if (out <= 0.0) continue;
          // arrivals at the failed cluster are zero by construction, so
          // i != f here and every source cluster is alive.
          if (alive.empty()) continue;  // last candidate died: flow is lost
          const ClusterId nearest_alive = topology_->nearest(ClusterId{i}, alive);
          const RouteWeights* rule = rules.find(ClassId{k}, n, ClusterId{i});
          if (rule != nullptr && !rule->empty()) {
            for (std::size_t wi = 0; wi < rule->clusters.size(); ++wi) {
              const double w = rule->weights[wi];
              if (w <= 0.0) continue;
              const std::size_t j = rule->clusters[wi].index();
              // Weight on the failed cluster lands on the nearest alive
              // candidate, exactly like the data plane's forced re-pick.
              arrivals[n][j == f ? nearest_alive.index() : j] += out * w;
            }
          } else {
            const ClusterId j =
                (i != f && deployment_->is_deployed(svc, ClusterId{i}))
                    ? ClusterId{i}
                    : nearest_alive;
            arrivals[n][j.index()] += out;
          }
        }
      }
      const ServiceId svc = graph.node(n).service;
      for (std::size_t c = 0; c < C; ++c) {
        if (arrivals[n][c] <= 0.0 || c == f) continue;
        utilization[svc.index() * C + c] +=
            arrivals[n][c] *
            model.service_time(svc, ClassId{k}, ClusterId{c}) /
            servers_at(svc.index(), c);
      }
    }
  }

  double max_util = 0.0;
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t c = 0; c < C; ++c) {
      if (c == f) continue;
      max_util = std::max(max_util, utilization[s * C + c]);
    }
  }
  return max_util;
}

double HeadroomPlanner::worst_case_margin(
    const LatencyModel& model, const FlatMatrix<double>& demand,
    const RoutingRuleSet& rules, const std::vector<unsigned>* live_servers,
    ClusterId* worst) const {
  const std::size_t C = deployment_->cluster_count();
  double margin = 0.0;
  for (std::size_t f = 0; f < C; ++f) {
    const double u = failure_max_utilization(model, demand, rules,
                                             live_servers, ClusterId{f});
    if (u > margin) {
      margin = u;
      if (worst != nullptr) *worst = ClusterId{f};
    }
  }
  return margin;
}

}  // namespace slate
