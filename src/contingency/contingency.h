// Contingency-aware traffic engineering: shared types.
//
// Reactive mechanisms in this repo (fault age-out, breakers, rollout
// rollback, admission cuts) all engage after a failure has landed and queues
// have built. The contingency subsystem plans ahead instead:
//
//   * N-1 headroom planning (headroom_planner.h) verifies that the
//     post-failure reroute of the chosen routing plan fits within per-station
//     utilization caps for every single-cluster failure, and pads the
//     optimizer's utilization cap until it does.
//   * Coordinated drains (drain_orchestrator.h) phase traffic off a cluster
//     in bounded per-period steps gated on downstream health, instead of
//     yanking capacity cliff-edge.
//
// Both are off by default; a disabled run schedules no events and draws no
// random numbers, so results are bit-identical to a build without the
// subsystem at every shard count.
#pragma once

#include <cstddef>

#include "util/ids.h"

namespace slate {

// Options for N-1 headroom planning, carried inside GlobalControllerOptions.
// When enabled, every accepted exact solve is stress-tested against the
// failure set (each cluster singly); if the worst-case post-failure max
// station utilization exceeds `max_post_failure_utilization`, the plan is
// re-priced with a padded (lower) primary utilization cap until the reroute
// fits or the pad floor is reached.
struct ContingencyOptions {
  bool enabled = false;

  // Worst-case post-failure max station utilization the plan must keep.
  double max_post_failure_utilization = 0.95;

  // Padding is quantized: level L solves with primary cap reduced by
  // L * pad_step. Quantization keeps the padded-solve inputs stable across
  // periods so the warm-start cache and steady-state memo keep hitting.
  double pad_step = 0.05;

  // The padded primary cap never goes below this floor (a plan squeezed
  // tighter than this wastes more capacity than the failure it insures).
  double min_utilization = 0.30;

  // A pad level is relaxed one step (next period) only when the margin sits
  // below cap - relax_hysteresis, preventing pad-level flapping.
  double relax_hysteresis = 0.05;
};

// One coordinated drain: phase traffic off `cluster` starting at `start`,
// reaching zero after `over` seconds of healthy progress. The orchestrator
// reduces the cluster's keep-fraction by at most `step` per control period
// (and no faster than completing in `over` seconds), pausing while measured
// goodput sags below `sag_threshold` x the pre-drain baseline.
struct DrainSpec {
  ClusterId cluster;
  double start = 0.0;
  double over = 0.0;
  double step = 0.25;
  double sag_threshold = 0.85;
};

}  // namespace slate
