#include "guard/solver_guard.h"

#include <algorithm>
#include <cmath>
#include <exception>

#include "util/logging.h"

namespace slate {

const char* to_string(SolverRung rung) noexcept {
  switch (rung) {
    case SolverRung::kPrimary: return "primary";
    case SolverRung::kFastHeuristic: return "fast-heuristic";
    case SolverRung::kRipup: return "ripup";
    case SolverRung::kCapacitySplit: return "capacity-split";
    case SolverRung::kHoldLastGood: return "hold-last-good";
  }
  return "?";
}

namespace {

// A plan whose weights are not finite must never reach the data plane —
// RoutingRuleSet::validate cannot catch NaN (every comparison is false).
bool rules_finite(const RoutingRuleSet* rules) {
  if (rules == nullptr) return false;
  bool finite = true;
  rules->for_each([&](ClassId, std::size_t, ClusterId,
                      const RouteWeights& w) {
    for (const double v : w.weights) {
      if (!std::isfinite(v)) finite = false;
    }
  });
  return finite;
}

}  // namespace

SolverGuard::SolverGuard(const Application& app, const Deployment& deployment,
                         const Topology& topology, SolverGuardOptions options)
    : app_(&app),
      deployment_(&deployment),
      topology_(&topology),
      options_(options) {}

bool SolverGuard::accept(const OptimizerResult& result,
                         double elapsed_seconds) {
  last_solve_seconds_ = elapsed_seconds;
  max_solve_seconds_ = std::max(max_solve_seconds_, elapsed_seconds);
  const bool over_budget =
      options_.wall_budget > 0.0 && elapsed_seconds > options_.wall_budget;
  if (over_budget) ++budget_overruns_;
  if (!result.ok() || !rules_finite(result.rules.get())) return false;
  return !(over_budget && options_.enforce_budget);
}

SolverGuard::Outcome SolverGuard::solve(
    const RouteOptimizer& primary, const FastRouteOptimizer& fast,
    const RipupRouteOptimizer& ripup, bool primary_is_fast,
    const LatencyModel& model, const FlatMatrix<double>& demand,
    const std::vector<unsigned>* live_servers, OptimizerCache* cache,
    bool solver_down, bool have_last_good) {
  using Clock = std::chrono::steady_clock;
  auto timed = [&](auto&& run, OptimizerResult& out) {
    const auto t0 = Clock::now();
    bool usable;
    try {
      out = run();
      if (out.status == LpStatus::kIterationLimit && out.rules != nullptr) {
        // Descent/simplex ran out of iterations but still holds a valid
        // improving plan.
        out.status = LpStatus::kOptimal;
      }
      usable = true;
    } catch (const std::exception& e) {
      // A solver blowing up on degenerate input (poisoned demand, empty
      // candidate sets) is exactly what the ladder exists for.
      SLATE_LOG(kWarn) << "solver threw: " << e.what();
      out = OptimizerResult{};
      usable = false;
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return usable && accept(out, elapsed);
  };

  auto settle = [&](OptimizerResult result, SolverRung rung) {
    last_rung_ = rung;
    ++rung_counts_[static_cast<std::size_t>(rung)];
    if (rung != SolverRung::kPrimary) {
      SLATE_LOG(kInfo) << "solver guard: settled on rung "
                       << to_string(rung);
    }
    return Outcome{std::move(result), rung};
  };

  OptimizerResult result;
  if (!solver_down) {
    const bool ok =
        primary_is_fast
            ? timed([&] { return fast.optimize(model, demand, live_servers); },
                    result)
            : timed(
                  [&] {
                    return primary.optimize(model, demand, live_servers, cache);
                  },
                  result);
    if (ok) {
      consecutive_degraded_ = 0;
      return settle(std::move(result), SolverRung::kPrimary);
    }
    if (!primary_is_fast &&
        timed([&] { return fast.optimize(model, demand, live_servers); },
              result)) {
      consecutive_degraded_ = 0;
      return settle(std::move(result), SolverRung::kFastHeuristic);
    }
    if (timed([&] { return ripup.optimize(model, demand, live_servers); },
              result)) {
      consecutive_degraded_ = 0;
      return settle(std::move(result), SolverRung::kRipup);
    }
  }

  ++consecutive_degraded_;
  if (have_last_good && consecutive_degraded_ <= options_.hold_fresh_periods) {
    return settle(OptimizerResult{}, SolverRung::kHoldLastGood);
  }

  try {
    result = capacity_split(model, live_servers);
    if (rules_finite(result.rules.get())) {
      return settle(std::move(result), SolverRung::kCapacitySplit);
    }
  } catch (const std::exception& e) {
    SLATE_LOG(kWarn) << "capacity split failed: " << e.what();
  }
  return settle(OptimizerResult{}, SolverRung::kHoldLastGood);
}

OptimizerResult SolverGuard::capacity_split(
    const LatencyModel& model, const std::vector<unsigned>* live_servers) const {
  const std::size_t C = topology_->cluster_count();
  auto rules = std::make_shared<RoutingRuleSet>();

  auto effective_capacity = [&](ServiceId svc, ClusterId c) {
    double cap = deployment_->capacity_rps(svc, c);
    if (cap <= 0.0) {
      // Fall back to servers / mean service time across classes.
      double st = model.default_service_time();
      cap = static_cast<double>(deployment_->servers(svc, c)) /
            std::max(st, 1e-6);
    }
    if (live_servers != nullptr) {
      const unsigned live = (*live_servers)[svc.index() * C + c.index()];
      const unsigned static_servers = deployment_->servers(svc, c);
      if (live > 0 && static_servers > 0) {
        cap *= static_cast<double>(live) / static_cast<double>(static_servers);
      }
    }
    return std::max(cap, 1e-9);
  };

  for (std::size_t k = 0; k < app_->class_count(); ++k) {
    const CallGraph& graph = app_->traffic_class(ClassId{k}).graph;
    for (std::size_t n = 1; n < graph.node_count(); ++n) {
      const ServiceId svc = graph.node(n).service;
      const ServiceId parent_svc = graph.node(graph.node(n).parent).service;
      const auto candidates = deployment_->clusters_for(svc);
      if (candidates.empty()) continue;
      for (std::size_t i = 0; i < C; ++i) {
        if (!deployment_->is_deployed(parent_svc, ClusterId{i})) continue;
        RouteWeights weights;
        for (const ClusterId j : candidates) {
          double w = effective_capacity(svc, j);
          if (j.index() == i) w *= options_.split_local_bias;
          weights.clusters.push_back(j);
          weights.weights.push_back(w);
        }
        weights.normalize();
        rules->set_rule(ClassId{k}, n, ClusterId{i}, std::move(weights));
      }
    }
  }
  rules->validate();

  OptimizerResult result;
  result.status = LpStatus::kOptimal;
  result.rules = std::move(rules);
  return result;
}

}  // namespace slate
