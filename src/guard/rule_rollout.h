// Guarded rule rollout (docs/control_plane.md §rollout).
//
// Every rule push is a fleet-wide actuation; this stage makes each one
// reversible and rate-limited:
//
//   * epoch stamping — each applied rule set gets a monotonically
//     increasing epoch; cluster controllers discard stale pushes;
//   * damping — the per-rule L-inf weight change of one push is capped;
//     bigger optimizer jumps are approached over several periods;
//   * canary — after a push, live goodput/p99 are compared against the
//     pre-push baseline for a window; a regression rolls the fleet back
//     to the last rule set that survived a canary (last-known-good) and
//     freezes updates while telemetry recovers;
//   * flap detection — the mean L1 distance between successive pushes is
//     tracked over a rolling window; sustained oscillation freezes
//     updates and tightens damping until pushes calm down.
//
// The caller (GlobalController) drives two phases per control period:
// observe() with this period's live telemetry before solving (canary
// verdicts and freeze bookkeeping), then apply() with the solver's target
// (damping, flap detection, and the actual push decision).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "guard/guard_options.h"
#include "routing/weighted_rules.h"

namespace slate {

struct RolloutDecision {
  // Rules to push this period; null = no push (hold current rules).
  std::shared_ptr<const RoutingRuleSet> rules;
  // True when `rules` is a rollback to last-known-good.
  bool rolled_back = false;
  // True when the caller should skip solving/pushing this period
  // (mid-canary evaluation or flap freeze).
  bool hold = false;
};

class RuleRollout {
 public:
  explicit RuleRollout(RolloutOptions options);

  // Phase 1 (every period, before solving): evaluates an active canary
  // against live telemetry and ticks freezes. `goodput_rps` and `p99` are
  // this period's observed values; `samples` the e2e sample count behind
  // them. Returns a rollback push, or hold=true while a canary/freeze is
  // pending, or an empty decision when the caller may proceed to solve.
  RolloutDecision observe(double goodput_rps, double p99,
                          std::uint64_t samples);

  // Phase 2 (same period, with the solver's target, which may be null):
  // damps the step, checks for flapping, and either applies (returning
  // the blended rules to push) or holds.
  RolloutDecision apply(std::shared_ptr<const RoutingRuleSet> target);

  // Epoch of the most recently applied rule set (0 = nothing applied).
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::shared_ptr<const RoutingRuleSet> current() const noexcept {
    return current_;
  }
  [[nodiscard]] std::shared_ptr<const RoutingRuleSet> last_known_good()
      const noexcept {
    return last_good_;
  }

  [[nodiscard]] std::uint64_t pushes() const noexcept { return pushes_; }
  [[nodiscard]] std::uint64_t rollbacks() const noexcept { return rollbacks_; }
  [[nodiscard]] std::uint64_t flap_freezes() const noexcept {
    return flap_freezes_;
  }
  [[nodiscard]] std::uint64_t damped_pushes() const noexcept {
    return damped_pushes_;
  }
  [[nodiscard]] bool frozen() const noexcept { return freeze_remaining_ > 0; }
  [[nodiscard]] double damping_scale() const noexcept { return damping_; }
  // Mean L1 distance between successive applied rule sets.
  [[nodiscard]] double mean_flap_distance() const noexcept {
    return pushes_ > 1 ? flap_distance_sum_ / static_cast<double>(pushes_ - 1)
                       : 0.0;
  }

 private:
  RolloutOptions options_;

  std::shared_ptr<const RoutingRuleSet> current_;
  std::shared_ptr<const RoutingRuleSet> last_good_;
  std::uint64_t epoch_ = 0;

  // Canary state: >0 while a recent push is under evaluation.
  std::size_t canary_remaining_ = 0;
  double baseline_goodput_ = -1.0;
  double baseline_p99_ = -1.0;
  bool baseline_valid_ = false;

  std::size_t freeze_remaining_ = 0;
  double damping_ = 1.0;

  // Rolling L1 distances between successive pushes.
  std::vector<double> flap_ring_;
  std::size_t flap_next_ = 0;
  std::size_t flap_count_ = 0;

  std::uint64_t pushes_ = 0;
  std::uint64_t rollbacks_ = 0;
  std::uint64_t flap_freezes_ = 0;
  std::uint64_t damped_pushes_ = 0;
  double flap_distance_sum_ = 0.0;
};

}  // namespace slate
