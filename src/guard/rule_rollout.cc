#include "guard/rule_rollout.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/routing_rules.h"
#include "util/logging.h"

namespace slate {

namespace {

// Largest per-rule L-inf weight change between matching keys. Keys present
// only in one set are ignored (a new rule has nothing to step from;
// blend_rule_sets copies it verbatim).
double max_linf_delta(const RoutingRuleSet& current,
                      const RoutingRuleSet& target) {
  double max_delta = 0.0;
  target.for_each([&](ClassId cls, std::size_t node, ClusterId from,
                      const RouteWeights& tw) {
    const RouteWeights* cw = current.find(cls, node, from);
    if (cw == nullptr) return;
    for (std::size_t i = 0; i < tw.clusters.size(); ++i) {
      max_delta = std::max(
          max_delta, std::abs(tw.weights[i] - cw->weight_for(tw.clusters[i])));
    }
    for (std::size_t i = 0; i < cw->clusters.size(); ++i) {
      max_delta = std::max(
          max_delta, std::abs(cw->weights[i] - tw.weight_for(cw->clusters[i])));
    }
  });
  return max_delta;
}

}  // namespace

RuleRollout::RuleRollout(RolloutOptions options)
    : options_(options),
      flap_ring_(std::max<std::size_t>(options.flap_window, 1), 0.0) {}

RolloutDecision RuleRollout::observe(double goodput_rps, double p99,
                                     std::uint64_t samples) {
  RolloutDecision decision;
  if (canary_remaining_ > 0) {
    const bool verdict_possible =
        baseline_valid_ && samples >= options_.min_samples;
    bool regressed = false;
    if (verdict_possible) {
      if (baseline_goodput_ > 0.0 &&
          goodput_rps <
              (1.0 - options_.goodput_drop) * baseline_goodput_) {
        regressed = true;
      }
      // A p99 rise alone is not actionable: per-period tail latency is
      // noisy under load (a transient queue burst blows p99 out 5-10x with
      // goodput untouched). It corroborates a regression only when goodput
      // is also sagging toward the drop threshold.
      if (baseline_p99_ > 0.0 && baseline_goodput_ > 0.0 &&
          p99 > (1.0 + options_.p99_rise) * baseline_p99_ &&
          goodput_rps <
              (1.0 - 0.5 * options_.goodput_drop) * baseline_goodput_) {
        regressed = true;
      }
    }
    if (regressed) {
      ++rollbacks_;
      SLATE_LOG(kWarn) << "rollout canary failed (goodput " << goodput_rps
                       << " vs baseline " << baseline_goodput_ << ", p99 "
                       << p99 << " vs " << baseline_p99_
                       << "): rolling back to last-known-good";
      current_ = last_good_ != nullptr
                     ? last_good_
                     : std::make_shared<const RoutingRuleSet>();
      ++epoch_;
      canary_remaining_ = 0;
      freeze_remaining_ = options_.freeze_periods;
      damping_ = std::max(options_.damping_floor, damping_ * 0.5);
      decision.rules = current_;
      decision.rolled_back = true;
      return decision;
    }
    --canary_remaining_;
    if (canary_remaining_ > 0) {
      decision.hold = true;  // keep evaluating before the next actuation
      return decision;
    }
    last_good_ = current_;  // survived the canary window
  }

  if (freeze_remaining_ > 0) {
    --freeze_remaining_;
    decision.hold = true;
    return decision;
  }

  // Record the healthy pre-push baseline the next canary will be judged
  // against.
  if (samples >= options_.min_samples) {
    baseline_goodput_ = goodput_rps;
    baseline_p99_ = p99;
    baseline_valid_ = true;
  }
  return decision;
}

RolloutDecision RuleRollout::apply(
    std::shared_ptr<const RoutingRuleSet> target) {
  RolloutDecision decision;
  if (target == nullptr) return decision;

  if (current_ == nullptr || current_->size() == 0) {
    // First actuation: nothing to damp or flap against.
    current_ = std::move(target);
    ++epoch_;
    ++pushes_;
    canary_remaining_ = options_.canary_periods;
    decision.rules = current_;
    return decision;
  }

  const double max_delta = max_linf_delta(*current_, *target);
  const double allowed = options_.max_weight_delta * damping_;
  std::shared_ptr<const RoutingRuleSet> blended;
  if (max_delta > allowed && max_delta > 0.0) {
    blended = blend_rule_sets(current_.get(), *target, allowed / max_delta);
    ++damped_pushes_;
  } else {
    blended = std::move(target);
  }

  const double dist = rule_set_distance(*current_, *blended);
  flap_ring_[flap_next_] = dist;
  flap_next_ = (flap_next_ + 1) % flap_ring_.size();
  flap_count_ = std::min(flap_count_ + 1, flap_ring_.size());
  if (flap_count_ == flap_ring_.size()) {
    double mean = 0.0;
    for (const double d : flap_ring_) mean += d;
    mean /= static_cast<double>(flap_ring_.size());
    if (mean > options_.flap_threshold) {
      ++flap_freezes_;
      freeze_remaining_ = options_.freeze_periods;
      damping_ = std::max(options_.damping_floor, damping_ * 0.5);
      flap_count_ = 0;  // restart detection after the freeze
      SLATE_LOG(kWarn) << "rollout flap detected (mean successive L1 "
                       << mean << "): freezing updates for "
                       << options_.freeze_periods << " periods";
      decision.hold = true;
      return decision;
    }
  }

  // Calm pushes slowly relax the damping tightened by freezes/rollbacks.
  damping_ = std::min(1.0, damping_ + 0.05);
  flap_distance_sum_ += dist;
  current_ = std::move(blended);
  ++epoch_;
  ++pushes_;
  canary_remaining_ = options_.canary_periods;
  decision.rules = current_;
  return decision;
}

}  // namespace slate
