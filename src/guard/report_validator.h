// Telemetry admission (docs/control_plane.md §admission).
//
// The global controller's inputs are the least trustworthy data in the
// system: every ClusterReport crossed a lossy network from a possibly
// misbehaving reporter. The validator sanitizes each report in place
// before ingest so a single poisoned field cannot swing the demand matrix
// or the fitted latency model cluster-wide:
//
//   * structural damage (out-of-range service/class ids, wrong-sized
//     vectors) is dropped;
//   * non-finite, negative, or implausibly large fields are replaced with
//     the last admitted value for that series (or dropped where the entry
//     is optional);
//   * per-(class, cluster) demand, latency, completion-rate, service-time,
//     and utilization spikes beyond a rolling MAD bound are clamped to the
//     admitted rolling median ("last-good interpolation") instead of
//     entering the EWMA / model fitter — only admitted values build the
//     reference window, and a coherent run of rejects is readmitted as a
//     genuine level shift;
//   * each cluster carries a trust score that decays on violations and
//     recovers on clean periods — the controller scales that cluster's
//     demand-smoothing gain by it, downweighting chronic noise.
#pragma once

#include <cstdint>
#include <vector>

#include "guard/guard_options.h"
#include "telemetry/cluster_report.h"
#include "util/ids.h"

namespace slate {

// Fixed-window rolling median / MAD per (row, col) series.
class MadTracker {
 public:
  MadTracker(std::size_t rows, std::size_t cols, std::size_t window);

  // True when `x` deviates from the rolling median by more than
  // `threshold * max(MAD, noise_floor * median)`; only armed once the
  // series holds at least `min_history` samples.
  [[nodiscard]] bool is_spike(std::size_t row, std::size_t col, double x,
                              double threshold, double noise_floor,
                              std::size_t min_history) const;
  [[nodiscard]] double median(std::size_t row, std::size_t col) const;
  // Median absolute deviation of the series (0 with < 2 samples).
  [[nodiscard]] double mad(std::size_t row, std::size_t col) const;
  [[nodiscard]] std::size_t history(std::size_t row, std::size_t col) const;
  void push(std::size_t row, std::size_t col, double x);
  // Forgets the series' samples (the spike gate re-arms after min_history).
  void clear(std::size_t row, std::size_t col);

 private:
  [[nodiscard]] std::size_t base(std::size_t row, std::size_t col) const {
    return (row * cols_ + col) * window_;
  }

  std::size_t cols_;
  std::size_t window_;
  std::vector<double> values_;       // (rows*cols) x window ring buffers
  std::vector<std::uint32_t> count_; // per series: samples seen (caps at window)
  std::vector<std::uint32_t> next_;  // per series: ring write index
};

class ReportValidator {
 public:
  ReportValidator(std::size_t service_count, std::size_t class_count,
                  std::size_t cluster_count, AdmissionOptions options);

  // Sanitizes `report` in place. Returns true when anything was rejected,
  // clamped, or dropped (the report was "dirty").
  bool admit(ClusterReport& report);

  // Trust score in [min_trust, 1] for a cluster's reporter.
  [[nodiscard]] double trust(ClusterId cluster) const {
    return trust_[cluster.index()];
  }

  [[nodiscard]] std::uint64_t reports_seen() const noexcept { return reports_; }
  [[nodiscard]] std::uint64_t dirty_reports() const noexcept { return dirty_; }
  // Non-finite / negative / implausible fields rejected (replaced or dropped).
  [[nodiscard]] std::uint64_t fields_rejected() const noexcept {
    return fields_rejected_;
  }
  // MAD-gate clamps (demand or latency spikes replaced with the median).
  [[nodiscard]] std::uint64_t spikes_clamped() const noexcept {
    return spikes_clamped_;
  }
  // Values substituted from last-good/median state (subset of the above
  // where a replacement existed, vs. outright drops).
  [[nodiscard]] std::uint64_t interpolations() const noexcept {
    return interpolations_;
  }

  [[nodiscard]] const AdmissionOptions& options() const noexcept {
    return options_;
  }

 private:
  // One gated series family: `main` holds only ADMITTED values (the
  // reference median a byzantine reporter cannot rot), `shadow` holds the
  // consecutive rejected raws the level-shift coherence test runs on.
  struct SpikeGate {
    SpikeGate(std::size_t rows, std::size_t cols, std::size_t window)
        : main(rows, cols, window), shadow(rows, cols, window) {}
    MadTracker main;
    MadTracker shadow;
  };

  // Replaces `value` with `fallback` when non-finite, negative, or above
  // `ceiling`; bumps counters. Returns true when replaced.
  bool sanitize_field(double& value, double fallback, double ceiling,
                      bool* dirty);
  // MAD-gates `value` against the ADMITTED history of its (row, col)
  // series. A spike is clamped to the admitted rolling median — never to a
  // window the attacker has already rotted. Rejected raws accumulate in
  // the gate's shadow ring; once `min_history` consecutive rejects agree
  // with each other (low dispersion around their own median), the value is
  // readmitted as a genuine level shift and the gate re-seeds. Returns
  // true when clamped.
  bool clamp_spike(SpikeGate& gate, std::size_t row, std::size_t col,
                   double& value, bool* dirty);

  std::size_t services_;
  std::size_t classes_;
  std::size_t clusters_;
  AdmissionOptions options_;

  SpikeGate ingress_mad_;   // class x cluster, RPS
  SpikeGate station_mad_;   // (service*classes + class) x cluster, latency
  SpikeGate rps_mad_;       // (service*classes + class) x cluster, completions
  SpikeGate service_mad_;   // (service*classes + class) x cluster, service time
  SpikeGate util_mad_;      // service x cluster, utilization
  SpikeGate e2e_mad_;       // class x cluster, latency
  std::vector<double> last_ingress_;  // class x cluster last admitted value
  std::vector<double> trust_;         // per cluster

  std::uint64_t reports_ = 0;
  std::uint64_t dirty_ = 0;
  std::uint64_t fields_rejected_ = 0;
  std::uint64_t spikes_clamped_ = 0;
  std::uint64_t interpolations_ = 0;
};

}  // namespace slate
