#include "guard/report_validator.h"

#include <algorithm>
#include <cmath>

namespace slate {

namespace {

constexpr std::size_t kMaxWindow = 256;

// Median of the first `n` entries of `buf` (buf is scratch, reordered).
double median_of(double* buf, std::size_t n) {
  const std::size_t mid = n / 2;
  std::nth_element(buf, buf + mid, buf + n);
  double m = buf[mid];
  if (n % 2 == 0) {
    std::nth_element(buf, buf + mid - 1, buf + mid);
    m = 0.5 * (m + buf[mid - 1]);
  }
  return m;
}

}  // namespace

MadTracker::MadTracker(std::size_t rows, std::size_t cols, std::size_t window)
    : cols_(cols),
      window_(std::max<std::size_t>(2, std::min(window, kMaxWindow))),
      values_(rows * cols * window_, 0.0),
      count_(rows * cols, 0),
      next_(rows * cols, 0) {}

std::size_t MadTracker::history(std::size_t row, std::size_t col) const {
  return count_[row * cols_ + col];
}

double MadTracker::median(std::size_t row, std::size_t col) const {
  const std::size_t n = count_[row * cols_ + col];
  if (n == 0) return 0.0;
  double scratch[kMaxWindow];
  const double* src = values_.data() + base(row, col);
  std::copy(src, src + n, scratch);
  return median_of(scratch, n);
}

double MadTracker::mad(std::size_t row, std::size_t col) const {
  const std::size_t n = count_[row * cols_ + col];
  if (n < 2) return 0.0;
  double scratch[kMaxWindow];
  const double* src = values_.data() + base(row, col);
  std::copy(src, src + n, scratch);
  const double med = median_of(scratch, n);
  for (std::size_t i = 0; i < n; ++i) scratch[i] = std::abs(scratch[i] - med);
  return median_of(scratch, n);
}

void MadTracker::clear(std::size_t row, std::size_t col) {
  const std::size_t series = row * cols_ + col;
  count_[series] = 0;
  next_[series] = 0;
}

bool MadTracker::is_spike(std::size_t row, std::size_t col, double x,
                          double threshold, double noise_floor,
                          std::size_t min_history) const {
  const std::size_t n = count_[row * cols_ + col];
  if (n < std::max<std::size_t>(min_history, 2)) return false;
  double scratch[kMaxWindow];
  const double* src = values_.data() + base(row, col);
  std::copy(src, src + n, scratch);
  const double med = median_of(scratch, n);
  for (std::size_t i = 0; i < n; ++i) scratch[i] = std::abs(scratch[i] - med);
  const double mad = median_of(scratch, n);
  const double scale =
      std::max({mad, noise_floor * std::abs(med), 1e-9});
  return std::abs(x - med) > threshold * scale;
}

void MadTracker::push(std::size_t row, std::size_t col, double x) {
  const std::size_t series = row * cols_ + col;
  values_[base(row, col) + next_[series]] = x;
  next_[series] = (next_[series] + 1) % static_cast<std::uint32_t>(window_);
  if (count_[series] < window_) ++count_[series];
}

ReportValidator::ReportValidator(std::size_t service_count,
                                 std::size_t class_count,
                                 std::size_t cluster_count,
                                 AdmissionOptions options)
    : services_(service_count),
      classes_(class_count),
      clusters_(cluster_count),
      options_(options),
      ingress_mad_(class_count, cluster_count, options.mad_window),
      station_mad_(service_count * class_count, cluster_count,
                   options.mad_window),
      rps_mad_(service_count * class_count, cluster_count, options.mad_window),
      service_mad_(service_count * class_count, cluster_count,
                   options.mad_window),
      util_mad_(service_count, cluster_count, options.mad_window),
      e2e_mad_(class_count, cluster_count, options.mad_window),
      last_ingress_(class_count * cluster_count, 0.0),
      trust_(cluster_count, 1.0) {}

bool ReportValidator::sanitize_field(double& value, double fallback,
                                     double ceiling, bool* dirty) {
  if (std::isfinite(value) && value >= 0.0 && value <= ceiling) return false;
  value = fallback;
  ++fields_rejected_;
  ++interpolations_;
  *dirty = true;
  return true;
}

bool ReportValidator::clamp_spike(SpikeGate& gate, std::size_t row,
                                  std::size_t col, double& value,
                                  bool* dirty) {
  if (!gate.main.is_spike(row, col, value, options_.mad_threshold,
                          options_.mad_noise_floor, options_.min_history)) {
    gate.main.push(row, col, value);
    // An in-band value breaks any rejected streak: the shadow only ever
    // holds CONSECUTIVE rejects, so incoherent noise cannot slowly
    // assemble a fake "level shift" across clean periods.
    gate.shadow.clear(row, col);
    return false;
  }

  // Out of band. A genuine level shift produces a run of rejects that
  // agree with each other; byzantine noise produces a run that does not.
  // Require min_history consecutive rejects whose dispersion around their
  // own median is small before treating the new level as real.
  gate.shadow.push(row, col, value);
  const std::size_t min_history = std::max<std::size_t>(options_.min_history, 2);
  if (gate.shadow.history(row, col) >= min_history) {
    const double med = gate.shadow.median(row, col);
    const double dispersion = gate.shadow.mad(row, col);
    const double tolerance =
        std::max(options_.mad_noise_floor * std::abs(med), 1e-9);
    if (dispersion <= tolerance &&
        std::abs(value - med) <= options_.mad_threshold * tolerance) {
      // Coherent new level: readmit and re-seed the reference window so
      // the gate re-arms around it.
      gate.main.clear(row, col);
      gate.main.push(row, col, value);
      gate.shadow.clear(row, col);
      return false;
    }
  }

  value = gate.main.median(row, col);
  ++spikes_clamped_;
  ++interpolations_;
  *dirty = true;
  return true;
}

bool ReportValidator::admit(ClusterReport& report) {
  ++reports_;
  bool dirty = false;
  const std::size_t c = report.cluster.index();
  if (c >= clusters_) {
    // A report from a cluster that does not exist: nothing downstream can
    // index it safely. Gut it rather than guessing.
    report.request_metrics.clear();
    report.station_metrics.clear();
    report.ingress_rps.clear();
    report.e2e.clear();
    ++dirty_;
    ++fields_rejected_;
    return true;
  }

  // Structural checks: out-of-range ids would index out of bounds in
  // ingest; wrong-sized per-class vectors would mis-attribute classes.
  auto drop_bad_ids = [&](auto& entries, auto&& valid) {
    const std::size_t before = entries.size();
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&](const auto& e) { return !valid(e); }),
                  entries.end());
    if (entries.size() != before) {
      fields_rejected_ += before - entries.size();
      dirty = true;
    }
  };
  drop_bad_ids(report.request_metrics, [&](const ServiceClassMetrics& m) {
    return m.service.valid() && m.service.index() < services_ &&
           m.cls.valid() && m.cls.index() < classes_;
  });
  drop_bad_ids(report.station_metrics, [&](const StationMetrics& m) {
    return m.service.valid() && m.service.index() < services_;
  });
  if (report.ingress_rps.size() != classes_) {
    report.ingress_rps.resize(classes_, 0.0);
    dirty = true;
    ++fields_rejected_;
  }
  if (report.e2e.size() != classes_) {
    report.e2e.resize(classes_);
    dirty = true;
    ++fields_rejected_;
  }

  // Ingress demand: the one series that must never carry poison — it is
  // EWMA-ed straight into the demand matrix the optimizer runs on.
  for (std::size_t k = 0; k < classes_; ++k) {
    double& v = report.ingress_rps[k];
    const double last = last_ingress_[k * clusters_ + c];
    const bool replaced = sanitize_field(v, last, options_.max_rps, &dirty);
    // Clamp spikes to the rolling median but remember the raw value: a
    // sustained level shift must become the new normal, not be rejected
    // forever.
    if (!replaced) clamp_spike(ingress_mad_, k, c, v, &dirty);
    last_ingress_[k * clusters_ + c] = v;
  }

  // Station metrics feed live_servers and the utilization attached to
  // model-fitter samples.
  for (auto& sm : report.station_metrics) {
    sanitize_field(sm.utilization, 0.0, options_.max_utilization, &dirty);
    sanitize_field(sm.queue_length, 0.0, 1e9, &dirty);
    clamp_spike(util_mad_, sm.service.index(), c, sm.utilization, &dirty);
  }

  // Request metrics feed the sample store / model fitter. A poisoned
  // latency is dropped outright (one missing sample is harmless; one
  // absurd sample skews the fit), a spiking one is MAD-clamped.
  {
    const std::size_t before = report.request_metrics.size();
    auto bad = [&](ServiceClassMetrics& m) {
      if (!std::isfinite(m.mean_latency) || m.mean_latency < 0.0 ||
          m.mean_latency > options_.max_latency ||
          !std::isfinite(m.mean_service_time) || m.mean_service_time < 0.0 ||
          !std::isfinite(m.completion_rps) || m.completion_rps < 0.0 ||
          m.completion_rps > options_.max_rps) {
        return true;
      }
      const std::size_t row = m.service.index() * classes_ + m.cls.index();
      clamp_spike(station_mad_, row, c, m.mean_latency, &dirty);
      // Completion rate and service time feed the model fitter's capacity
      // estimate directly; a spiked rate or zeroed service time talks the
      // optimizer into a phantom-capacity plan just as surely as poisoned
      // demand does.
      clamp_spike(rps_mad_, row, c, m.completion_rps, &dirty);
      clamp_spike(service_mad_, row, c, m.mean_service_time, &dirty);
      if (!std::isfinite(m.max_latency) || m.max_latency < m.mean_latency) {
        m.max_latency = m.mean_latency;
      }
      return false;
    };
    report.request_metrics.erase(
        std::remove_if(report.request_metrics.begin(),
                       report.request_metrics.end(), bad),
        report.request_metrics.end());
    if (report.request_metrics.size() != before) {
      fields_rejected_ += before - report.request_metrics.size();
      dirty = true;
    }
  }

  // End-to-end latency drives the guardrail / canary verdicts. A poisoned
  // cell is neutralized (count -> 0 removes it from every weighted mean),
  // a spiking one is clamped.
  for (std::size_t k = 0; k < classes_; ++k) {
    E2eMetrics& e = report.e2e[k];
    if (e.count == 0) continue;
    if (!std::isfinite(e.mean_latency) || e.mean_latency < 0.0 ||
        e.mean_latency > options_.max_latency) {
      e = E2eMetrics{};
      ++fields_rejected_;
      dirty = true;
      continue;
    }
    clamp_spike(e2e_mad_, k, c, e.mean_latency, &dirty);
    if (!std::isfinite(e.p99_latency) || e.p99_latency < e.mean_latency) {
      e.p99_latency = e.mean_latency;
    }
  }

  // Trust bookkeeping.
  double& t = trust_[c];
  t = dirty ? std::max(options_.min_trust, t - options_.trust_decay)
            : std::min(1.0, t + options_.trust_recovery);
  if (dirty) ++dirty_;
  return dirty;
}

}  // namespace slate
