// Control-plane hardening knobs (docs/control_plane.md).
//
// Three independent gates sit between telemetry ingest, the optimizer, and
// rule distribution:
//
//   * admission — per-cluster ClusterReport validation: non-finite /
//     negative / implausible fields are replaced with last-good values, and
//     per-(class, cluster) spikes beyond a rolling MAD bound are clamped
//     instead of poisoning the demand matrix;
//   * solver    — a fallback ladder around the optimizer: primary solver →
//     fast heuristic → capacity-proportional split → hold last-known-good;
//   * rollout   — versioned rule pushes with per-period weight-delta
//     damping, a canary window with auto-rollback, and a flap detector
//     that freezes updates while the weight vector oscillates.
//
// Each gate is off by default; scenario `guard` directives or RunConfig
// arm them independently (config overrides scenario per enabled gate,
// mirroring overload-policy merging).
#pragma once

#include <cstddef>
#include <cstdint>

namespace slate {

struct AdmissionOptions {
  bool enabled = false;
  // Hard plausibility ceilings. Anything above is treated like a
  // non-finite field: rejected and replaced with the last-good value.
  double max_rps = 1e6;
  double max_latency = 300.0;      // seconds
  double max_utilization = 8.0;    // utilization is busy-fraction-ish; >> 1
                                   // only under pathological reporting
  // Rolling median-absolute-deviation spike gate, per (class, cluster)
  // series. A value x is a spike when |x - median| exceeds
  // mad_threshold * max(MAD, mad_noise_floor * median). Only ADMITTED
  // values enter the reference window — a byzantine reporter cannot rot
  // the median it is judged against. A genuine level shift is readmitted
  // once min_history CONSECUTIVE rejects agree with each other (their
  // dispersion around their own median stays within the noise floor).
  std::size_t mad_window = 16;
  std::size_t min_history = 5;     // samples before the spike gate arms
  double mad_threshold = 8.0;
  double mad_noise_floor = 0.1;
  // Per-cluster trust score in [min_trust, 1]. Each period with any
  // violation decays it, each clean period recovers it; the controller
  // scales a cluster's demand-smoothing gain by its trust, so chronically
  // noisy reporters move the demand matrix slowly.
  double trust_decay = 0.25;
  double trust_recovery = 0.05;
  double min_trust = 0.05;
};

struct SolverGuardOptions {
  bool enabled = false;
  // Wall-clock budget per solve, seconds; 0 = unlimited. Solve times are
  // always measured and reported. Enforcement (descending the ladder when
  // the primary overruns) is opt-in because it makes the chosen rung
  // depend on host timing — reproducible runs keep it off and rely on
  // status-based descent (infeasibility, iteration limits, injected
  // outages), which is deterministic.
  double wall_budget = 0.25;
  bool enforce_budget = false;
  // Local-preference multiplier for the capacity-split rung: the origin
  // cluster's own capacity counts this many times before normalizing.
  double split_local_bias = 2.0;
  // When an actuated plan exists, the ladder settles on hold-last-good for
  // this many consecutive degraded periods before actuating the
  // demand-blind capacity split: a freshly-solved plan beats a synthetic
  // one for a short outage, while a dragging outage still actuates the
  // split (live capacity may have moved since the plan was cut). 0
  // actuates immediately.
  std::size_t hold_fresh_periods = 15;
};

struct RolloutOptions {
  bool enabled = false;
  // Largest per-rule L-inf weight change applied in one push; bigger
  // targets are approached in steps (hysteresis against rule swings).
  double max_weight_delta = 0.25;
  // Periods a fresh push is canaried against the pre-push baseline.
  std::size_t canary_periods = 2;
  // Roll back when goodput falls below (1 - goodput_drop) x baseline, or
  // observed p99 rises above (1 + p99_rise) x baseline during the canary.
  double goodput_drop = 0.25;
  double p99_rise = 0.75;
  // Canary verdicts need at least this many e2e samples on both sides.
  std::uint64_t min_samples = 50;
  // Flap detector: mean L1 distance between successive pushed weight
  // vectors over flap_window pushes; above flap_threshold updates freeze
  // for freeze_periods and damping tightens until pushes calm down.
  double flap_threshold = 0.5;
  std::size_t flap_window = 4;
  std::size_t freeze_periods = 3;
  double damping_floor = 0.25;
};

struct GuardOptions {
  AdmissionOptions admission;
  SolverGuardOptions solver;
  RolloutOptions rollout;

  [[nodiscard]] bool any_enabled() const noexcept {
    return admission.enabled || solver.enabled || rollout.enabled;
  }
};

}  // namespace slate
