// Solver fallback chain (docs/control_plane.md §solver).
//
// A control loop that returns nothing when its solver hiccups leaves the
// fleet executing stale weights indefinitely. The guard wraps the
// optimizers in a descending ladder of cheaper, more robust plans:
//
//   rung 0  primary      the configured optimizer (exact LP/MILP or the
//                        fast heuristic)
//   rung 1  fast         the marginal-cost descent heuristic
//   rung 2  ripup        negotiated-congestion rip-up-and-reroute over the
//                        call graph — cheaper than descent per unit of
//                        plan quality on planet-scale instances, selected
//                        when the exact solve blows its wall budget
//   rung 3  split        capacity-proportional weights with local bias,
//                        computed directly from deployment + live servers
//                        (a Waterfall-equivalent plan: demand-blind but
//                        always feasible)
//   rung 4  hold         no rules — the data plane keeps last-known-good
//
// Descent is deterministic: a rung is skipped when its solver reports
// infeasibility/failure or when an injected solver outage marks the
// model-driven rungs (0-2) down. Wall-clock budgets are measured and
// reported always, but only enforce descent when opted in — host timing
// must not change the plan in reproducible runs.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>

#include "core/fast_optimizer.h"
#include "core/optimizer.h"
#include "core/ripup_optimizer.h"
#include "guard/guard_options.h"

namespace slate {

enum class SolverRung : std::uint8_t {
  kPrimary = 0,
  kFastHeuristic = 1,
  kRipup = 2,
  kCapacitySplit = 3,
  kHoldLastGood = 4,
};

const char* to_string(SolverRung rung) noexcept;

class SolverGuard {
 public:
  SolverGuard(const Application& app, const Deployment& deployment,
              const Topology& topology, SolverGuardOptions options);

  struct Outcome {
    OptimizerResult result;
    SolverRung rung = SolverRung::kHoldLastGood;
  };

  // Runs the ladder. `primary` / `fast` / `ripup` are the controller's
  // optimizers (when `primary_is_fast`, rung 0 already is the heuristic and
  // rung 1 collapses into it). `cache`, if non-null, carries the primary
  // optimizer's warm-start state across periods (rung 0 only). `solver_down`
  // marks the model-driven rungs 0-2 unavailable (an injected outage /
  // forced timeout). `have_last_good` says the caller
  // holds an actuated plan: for the first `hold_fresh_periods` consecutive
  // degraded periods the ladder then settles on hold instead of the
  // demand-blind capacity split — a fresh solved plan beats a synthetic
  // one for a short outage, while a dragging outage still actuates the
  // split (live capacity may have moved since the plan was cut). The
  // returned result's rules are null only on the hold rung.
  Outcome solve(const RouteOptimizer& primary, const FastRouteOptimizer& fast,
                const RipupRouteOptimizer& ripup, bool primary_is_fast,
                const LatencyModel& model, const FlatMatrix<double>& demand,
                const std::vector<unsigned>* live_servers,
                OptimizerCache* cache, bool solver_down, bool have_last_good);

  [[nodiscard]] std::uint64_t rung_count(SolverRung rung) const noexcept {
    return rung_counts_[static_cast<std::size_t>(rung)];
  }
  // Solves settled below the primary rung.
  [[nodiscard]] std::uint64_t fallbacks() const noexcept {
    return rung_counts_[1] + rung_counts_[2] + rung_counts_[3] +
           rung_counts_[4];
  }
  [[nodiscard]] SolverRung last_rung() const noexcept { return last_rung_; }
  [[nodiscard]] double last_solve_seconds() const noexcept {
    return last_solve_seconds_;
  }
  [[nodiscard]] double max_solve_seconds() const noexcept {
    return max_solve_seconds_;
  }
  // Solves whose measured wall time exceeded the budget (enforced or not).
  [[nodiscard]] std::uint64_t budget_overruns() const noexcept {
    return budget_overruns_;
  }

 private:
  // Rung 2: capacity-proportional weights with local preference for every
  // (class, call-node, origin) the optimizer would emit a rule for.
  [[nodiscard]] OptimizerResult capacity_split(
      const LatencyModel& model, const std::vector<unsigned>* live_servers) const;

  // Records wall time; returns true when the result is usable (and, with
  // enforcement on, within budget).
  bool accept(const OptimizerResult& result, double elapsed_seconds);

  const Application* app_;
  const Deployment* deployment_;
  const Topology* topology_;
  SolverGuardOptions options_;

  std::uint64_t rung_counts_[5] = {0, 0, 0, 0, 0};
  // Consecutive periods the model-driven rungs (0-2) have been unusable.
  std::size_t consecutive_degraded_ = 0;
  SolverRung last_rung_ = SolverRung::kPrimary;
  double last_solve_seconds_ = 0.0;
  double max_solve_seconds_ = 0.0;
  std::uint64_t budget_overruns_ = 0;
};

}  // namespace slate
