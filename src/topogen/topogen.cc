#include "topogen/topogen.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/strfmt.h"

namespace slate {
namespace {

// Stable fork tags — adding a concern must never reshuffle another's draws.
constexpr std::uint64_t kForkCoords = 1;
constexpr std::uint64_t kForkPlacement = 2;
constexpr std::uint64_t kForkClassBase = 100;  // + class id

std::string padded_name(char prefix, std::size_t i, std::size_t count) {
  std::size_t width = 1;
  for (std::size_t v = count > 0 ? count - 1 : 0; v >= 10; v /= 10) ++width;
  std::string digits = std::to_string(i);
  std::string out(1, prefix);
  out.append(width > digits.size() ? width - digits.size() : 0, '0');
  out += digits;
  return out;
}

double zipf_weight(std::size_t rank, double skew) {
  return std::pow(static_cast<double>(rank + 1), -skew);
}

// FNV-1a accumulation helpers for scenario_digest.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (b * 8)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
  void mix(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  }
  void mix(std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    mix(std::uint64_t{s.size()});
  }
};

}  // namespace

void TopoGenOptions::validate() const {
  if (clusters < 2) {
    throw std::invalid_argument("topogen: clusters must be >= 2");
  }
  if (classes < 1) {
    throw std::invalid_argument("topogen: classes must be >= 1");
  }
  if (services < classes) {
    throw std::invalid_argument(
        "topogen: services must be >= classes (one private entry each)");
  }
  if (chain_weight < 0.0 || fanout_weight < 0.0 || diamond_weight < 0.0 ||
      chain_weight + fanout_weight + diamond_weight <= 0.0) {
    throw std::invalid_argument("topogen: pattern weights must be >= 0, sum > 0");
  }
  if (depth_min < 2 || depth_max < depth_min) {
    throw std::invalid_argument("topogen: need 2 <= depth_min <= depth_max");
  }
  if (width_min < 2 || width_max < width_min) {
    throw std::invalid_argument("topogen: need 2 <= width_min <= width_max");
  }
  if (shared_fraction < 0.0 || shared_fraction >= 1.0 ||
      shared_call_probability < 0.0 || shared_call_probability > 1.0) {
    throw std::invalid_argument("topogen: shared knobs out of range");
  }
  if (compute_min_ms <= 0.0 || compute_max_ms < compute_min_ms) {
    throw std::invalid_argument("topogen: bad compute time range");
  }
  if (request_bytes_max < request_bytes_min ||
      response_bytes_max < response_bytes_min) {
    throw std::invalid_argument("topogen: bad message size range");
  }
  if (replicas_min < 1 || replicas_max < replicas_min) {
    throw std::invalid_argument("topogen: bad replica range");
  }
  if (servers_min < 1 || servers_max < servers_min) {
    throw std::invalid_argument("topogen: bad server range");
  }
  if (!(target_utilization > 0.0 && target_utilization < 1.0)) {
    throw std::invalid_argument("topogen: target_utilization must be in (0,1)");
  }
  if (!(total_rps > 0.0)) {
    throw std::invalid_argument("topogen: total_rps must be > 0");
  }
  if (class_skew < 0.0 || cluster_skew < 0.0) {
    throw std::invalid_argument("topogen: skews must be >= 0");
  }
  if (!(map_extent_ms > 0.0) || rtt_floor_ms < 0.0) {
    throw std::invalid_argument("topogen: bad geography");
  }
  if (egress_near < 0.0 || egress_far < egress_near) {
    throw std::invalid_argument("topogen: need 0 <= egress_near <= egress_far");
  }
}

Scenario make_synth_scenario(const TopoGenOptions& options) {
  options.validate();
  const std::size_t C = options.clusters;
  const std::size_t S = options.services;
  const std::size_t K = options.classes;
  Rng root_rng(options.seed);

  Scenario scenario;
  scenario.name = strfmt("synth-c%zu-s%zu-k%zu-seed%llu", C, S, K,
                         static_cast<unsigned long long>(options.seed));

  // --- Geography -----------------------------------------------------------
  // Clusters on a 2D map in one-way-millisecond units; distance IS latency.
  scenario.topology = std::make_unique<Topology>();
  Rng coord_rng = root_rng.fork(kForkCoords);
  std::vector<double> xs(C), ys(C);
  for (std::size_t c = 0; c < C; ++c) {
    scenario.topology->add_cluster(padded_name('c', c, C));
    xs[c] = coord_rng.uniform(0.0, options.map_extent_ms);
    ys[c] = coord_rng.uniform(0.0, options.map_extent_ms);
  }
  const double diagonal = options.map_extent_ms * std::sqrt(2.0);
  for (std::size_t a = 0; a < C; ++a) {
    for (std::size_t b = a + 1; b < C; ++b) {
      const double dist =
          std::hypot(xs[a] - xs[b], ys[a] - ys[b]);  // one-way ms
      const double one_way = (options.rtt_floor_ms * 0.5 + dist) / 1000.0;
      scenario.topology->set_one_way_latency(ClusterId{a}, ClusterId{b}, one_way);
      scenario.topology->set_one_way_latency(ClusterId{b}, ClusterId{a}, one_way);
      const double price =
          options.egress_near +
          (options.egress_far - options.egress_near) * (dist / diagonal);
      scenario.topology->set_egress_price(ClusterId{a}, ClusterId{b}, price);
      scenario.topology->set_egress_price(ClusterId{b}, ClusterId{a}, price);
    }
  }

  // --- Services: shared pool + per-class private blocks --------------------
  scenario.app = std::make_unique<Application>();
  for (std::size_t s = 0; s < S; ++s) {
    scenario.app->add_service(padded_name('s', s, S));
  }
  const std::size_t shared_count = std::min(
      static_cast<std::size_t>(static_cast<double>(S) * options.shared_fraction),
      S - K);
  // Shared pool takes the tail of the id space; the head splits round-robin
  // into private blocks, so class k's entry service is simply id k.
  std::vector<std::size_t> shared_pool;
  for (std::size_t s = S - shared_count; s < S; ++s) shared_pool.push_back(s);
  std::vector<std::vector<std::size_t>> private_block(K);
  for (std::size_t s = 0; s < S - shared_count; ++s) {
    private_block[s % K].push_back(s);
  }

  // --- Traffic classes: chain / fan-out / diamond mix ----------------------
  const double pattern_weights[3] = {options.chain_weight, options.fanout_weight,
                                     options.diamond_weight};
  for (std::size_t k = 0; k < K; ++k) {
    Rng rng = root_rng.fork(kForkClassBase + k);
    const auto& block = private_block[k];
    // Cycle fresh private services first so large service counts actually
    // get used; fall back to uniform re-use once the block is exhausted.
    std::size_t next_private = 1;  // 0 is the entry service
    auto pick_service = [&](std::size_t avoid) {
      for (int attempt = 0; attempt < 4; ++attempt) {
        std::size_t s;
        if (!shared_pool.empty() &&
            rng.bernoulli(options.shared_call_probability)) {
          s = shared_pool[rng.uniform_u64(shared_pool.size())];
        } else if (next_private < block.size()) {
          s = block[next_private++];
        } else {
          s = block[rng.uniform_u64(block.size())];
        }
        if (s != avoid) return s;
      }
      return block[rng.uniform_u64(block.size())];
    };
    auto compute_s = [&] {
      return rng.uniform(options.compute_min_ms, options.compute_max_ms) / 1000.0;
    };
    auto req_bytes = [&] {
      return options.request_bytes_min +
             rng.uniform_u64(options.request_bytes_max -
                             options.request_bytes_min + 1);
    };
    auto resp_bytes = [&] {
      return options.response_bytes_min +
             rng.uniform_u64(options.response_bytes_max -
                             options.response_bytes_min + 1);
    };

    TrafficClassSpec spec;
    spec.name = strfmt("class-%zu", k);
    spec.attributes.path = strfmt("/%s", spec.name.c_str());
    const std::size_t entry = block[0];
    const std::size_t root =
        spec.graph.set_root(ServiceId{entry}, compute_s(), req_bytes(),
                            resp_bytes());

    switch (rng.weighted_pick(pattern_weights)) {
      case 0: {  // deep chain
        const std::size_t depth =
            options.depth_min +
            rng.uniform_u64(options.depth_max - options.depth_min + 1);
        std::size_t parent = root;
        std::size_t parent_svc = entry;
        for (std::size_t d = 1; d < depth; ++d) {
          const std::size_t svc = pick_service(parent_svc);
          parent = spec.graph.add_call(parent, ServiceId{svc}, compute_s(),
                                       req_bytes(), resp_bytes());
          parent_svc = svc;
        }
        break;
      }
      case 1: {  // fan-out
        const std::size_t width =
            options.width_min +
            rng.uniform_u64(options.width_max - options.width_min + 1);
        for (std::size_t w = 0; w < width; ++w) {
          spec.graph.add_call(root, ServiceId{pick_service(entry)}, compute_s(),
                              req_bytes(), resp_bytes());
        }
        spec.graph.set_invocation_mode(root, InvocationMode::kParallel);
        break;
      }
      default: {  // diamond: parallel branches reconverging on one service
        const std::size_t width =
            options.width_min +
            rng.uniform_u64(options.width_max - options.width_min + 1);
        const std::size_t join =
            !shared_pool.empty()
                ? shared_pool[rng.uniform_u64(shared_pool.size())]
                : pick_service(entry);
        for (std::size_t w = 0; w < width; ++w) {
          const std::size_t mid =
              spec.graph.add_call(root, ServiceId{pick_service(join)},
                                  compute_s(), req_bytes(), resp_bytes());
          spec.graph.add_call(mid, ServiceId{join}, compute_s(), req_bytes(),
                              resp_bytes());
        }
        spec.graph.set_invocation_mode(root, InvocationMode::kParallel);
        break;
      }
    }
    scenario.app->add_class(std::move(spec));
  }

  // --- Demand: power-law class rates, rotated Zipf ingress -----------------
  std::vector<double> class_rate(K, 0.0);
  {
    double norm = 0.0;
    for (std::size_t k = 0; k < K; ++k) norm += zipf_weight(k, options.class_skew);
    for (std::size_t k = 0; k < K; ++k) {
      class_rate[k] = options.total_rps * zipf_weight(k, options.class_skew) / norm;
    }
  }
  for (std::size_t k = 0; k < K; ++k) {
    const std::size_t rotation = (k * 7919) % C;
    double norm = 0.0;
    for (std::size_t p = 0; p < C; ++p) norm += zipf_weight(p, options.cluster_skew);
    for (std::size_t p = 0; p < C; ++p) {
      const std::size_t c = (rotation + p) % C;
      const double rate =
          class_rate[k] * zipf_weight(p, options.cluster_skew) / norm;
      scenario.demand.set_rate(ClassId{k}, ClusterId{c}, rate);
    }
  }

  // --- Capacity planning ---------------------------------------------------
  // Expected server-seconds/sec per service implied by the demand and call
  // graphs; server counts target `target_utilization` so the world is
  // feasible by construction.
  std::vector<double> work(S, 0.0);       // server-seconds per second
  std::vector<double> exec_rate(S, 0.0);  // executions per second
  for (std::size_t k = 0; k < K; ++k) {
    const CallGraph& graph = scenario.app->traffic_class(ClassId{k}).graph;
    for (std::size_t n = 0; n < graph.node_count(); ++n) {
      const std::size_t s = graph.node(n).service.index();
      const double execs = class_rate[k] * graph.executions_per_request(n);
      work[s] += execs * graph.node(n).compute_time_mean;
      exec_rate[s] += execs;
    }
  }
  std::vector<bool> is_entry(S, false);
  for (std::size_t k = 0; k < K; ++k) is_entry[private_block[k][0]] = true;

  scenario.deployment = std::make_unique<Deployment>(*scenario.app, C);
  Rng place_rng = root_rng.fork(kForkPlacement);
  for (std::size_t s = 0; s < S; ++s) {
    std::size_t replicas;
    if (exec_rate[s] <= 0.0) {
      replicas = 1;  // unused service: minimal single-site presence
    } else if (is_entry[s]) {
      replicas = std::min(C, options.replicas_max);  // wide front door
    } else {
      replicas = std::min(
          C, options.replicas_min +
                 place_rng.uniform_u64(options.replicas_max -
                                       options.replicas_min + 1));
    }
    // Anchor + nearest neighbors, so a service's replicas form a region
    // rather than a uniform scatter (data-locality realism).
    const std::size_t anchor = place_rng.uniform_u64(C);
    std::vector<std::size_t> order(C);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double da = std::hypot(xs[a] - xs[anchor], ys[a] - ys[anchor]);
      const double db = std::hypot(xs[b] - xs[anchor], ys[b] - ys[anchor]);
      return da != db ? da < db : a < b;
    });

    const double mean_st =
        exec_rate[s] > 0.0 ? work[s] / exec_rate[s]
                           : 0.5 * (options.compute_min_ms + options.compute_max_ms) /
                                 1000.0;
    const double servers_needed =
        exec_rate[s] > 0.0 ? work[s] / options.target_utilization : 0.0;
    const unsigned per_replica = static_cast<unsigned>(std::clamp(
        std::ceil(servers_needed / static_cast<double>(replicas)),
        static_cast<double>(options.servers_min),
        static_cast<double>(options.servers_max)));
    const double capacity =
        static_cast<double>(per_replica) / std::max(mean_st, 1e-6);
    for (std::size_t r = 0; r < replicas; ++r) {
      scenario.deployment->deploy(ServiceId{s}, ClusterId{order[r]}, per_replica,
                                  capacity);
    }
  }

  scenario.app->validate();
  scenario.deployment->validate();
  return scenario;
}

TopoGenOptions parse_topogen_spec(std::string_view spec) {
  TopoGenOptions options;
  std::size_t pos = 0;
  auto fail = [&](const std::string& why) {
    throw std::invalid_argument("topogen spec: " + why);
  };
  while (pos < spec.size()) {
    while (pos < spec.size() &&
           (spec[pos] == ',' || spec[pos] == ' ' || spec[pos] == '\t')) {
      ++pos;
    }
    if (pos >= spec.size()) break;
    std::size_t end = pos;
    while (end < spec.size() && spec[end] != ',' && spec[end] != ' ' &&
           spec[end] != '\t') {
      ++end;
    }
    const std::string_view token = spec.substr(pos, end - pos);
    pos = end;
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      fail("expected key=value, got '" + std::string(token) + "'");
    }
    const std::string key(token.substr(0, eq));
    const std::string value(token.substr(eq + 1));
    double num = 0.0;
    try {
      std::size_t used = 0;
      num = std::stod(value, &used);
      if (used != value.size()) fail("bad number '" + value + "' for " + key);
    } catch (const std::invalid_argument&) {
      fail("bad number '" + value + "' for " + key);
    }
    auto as_count = [&] { return static_cast<std::size_t>(num); };

    if (key == "seed") options.seed = static_cast<std::uint64_t>(num);
    else if (key == "clusters") options.clusters = as_count();
    else if (key == "services") options.services = as_count();
    else if (key == "classes") options.classes = as_count();
    else if (key == "chain") options.chain_weight = num;
    else if (key == "fanout") options.fanout_weight = num;
    else if (key == "diamond") options.diamond_weight = num;
    else if (key == "depth_min") options.depth_min = as_count();
    else if (key == "depth_max") options.depth_max = as_count();
    else if (key == "width_min") options.width_min = as_count();
    else if (key == "width_max") options.width_max = as_count();
    else if (key == "shared") options.shared_fraction = num;
    else if (key == "shared_call") options.shared_call_probability = num;
    else if (key == "compute_min_ms") options.compute_min_ms = num;
    else if (key == "compute_max_ms") options.compute_max_ms = num;
    else if (key == "req_bytes_min") options.request_bytes_min = static_cast<std::uint64_t>(num);
    else if (key == "req_bytes_max") options.request_bytes_max = static_cast<std::uint64_t>(num);
    else if (key == "resp_bytes_min") options.response_bytes_min = static_cast<std::uint64_t>(num);
    else if (key == "resp_bytes_max") options.response_bytes_max = static_cast<std::uint64_t>(num);
    else if (key == "replicas_min") options.replicas_min = as_count();
    else if (key == "replicas_max") options.replicas_max = as_count();
    else if (key == "servers_min") options.servers_min = static_cast<unsigned>(num);
    else if (key == "servers_max") options.servers_max = static_cast<unsigned>(num);
    else if (key == "target_util") options.target_utilization = num;
    else if (key == "total_rps") options.total_rps = num;
    else if (key == "class_skew") options.class_skew = num;
    else if (key == "cluster_skew") options.cluster_skew = num;
    else if (key == "map_extent_ms") options.map_extent_ms = num;
    else if (key == "rtt_floor_ms") options.rtt_floor_ms = num;
    else if (key == "egress_near") options.egress_near = num;
    else if (key == "egress_far") options.egress_far = num;
    else fail("unknown key '" + key + "'");
  }
  options.validate();
  return options;
}

std::uint64_t scenario_digest(const Scenario& scenario) {
  Fnv fnv;
  fnv.mix(scenario.name);

  const Topology& topo = *scenario.topology;
  const std::size_t C = topo.cluster_count();
  fnv.mix(std::uint64_t{C});
  for (std::size_t a = 0; a < C; ++a) {
    fnv.mix(topo.cluster_name(ClusterId{a}));
    for (std::size_t b = 0; b < C; ++b) {
      fnv.mix(topo.one_way_latency(ClusterId{a}, ClusterId{b}));
      fnv.mix(topo.egress_price_per_gb(ClusterId{a}, ClusterId{b}));
    }
  }

  const Application& app = *scenario.app;
  fnv.mix(std::uint64_t{app.service_count()});
  for (std::size_t s = 0; s < app.service_count(); ++s) {
    fnv.mix(app.service_name(ServiceId{s}));
  }
  fnv.mix(std::uint64_t{app.class_count()});
  for (std::size_t k = 0; k < app.class_count(); ++k) {
    const TrafficClassSpec& spec = app.traffic_class(ClassId{k});
    fnv.mix(spec.name);
    fnv.mix(spec.attributes.path);
    fnv.mix(std::uint64_t{spec.graph.node_count()});
    for (const CallNode& node : spec.graph.nodes()) {
      fnv.mix(std::uint64_t{node.service.index()});
      fnv.mix(std::uint64_t{node.parent});
      fnv.mix(std::uint64_t{static_cast<std::uint64_t>(node.mode)});
      fnv.mix(node.compute_time_mean);
      fnv.mix(node.request_bytes);
      fnv.mix(node.response_bytes);
      fnv.mix(node.multiplicity);
    }
  }

  const Deployment& deployment = *scenario.deployment;
  for (std::size_t s = 0; s < app.service_count(); ++s) {
    for (std::size_t c = 0; c < C; ++c) {
      if (!deployment.is_deployed(ServiceId{s}, ClusterId{c})) continue;
      fnv.mix(std::uint64_t{s});
      fnv.mix(std::uint64_t{c});
      fnv.mix(std::uint64_t{deployment.servers(ServiceId{s}, ClusterId{c})});
      fnv.mix(deployment.capacity_rps(ServiceId{s}, ClusterId{c}));
    }
  }

  for (const auto& stream : scenario.demand.streams()) {
    fnv.mix(std::uint64_t{stream.cls.index()});
    fnv.mix(std::uint64_t{stream.cluster.index()});
    for (const RateStep& step : stream.steps) {
      fnv.mix(step.start_time);
      fnv.mix(step.rps);
    }
  }
  return fnv.h;
}

}  // namespace slate
