// Deterministic planet-scale scenario synthesis (docs/scenario_format.md
// §topology-synth).
//
// Hand-written .slate files top out at a handful of clusters and services;
// the paper's motivating deployments are tens of clusters and hundreds of
// services. This generator emits a first-class Scenario — topology,
// application, deployment, demand — from a dozen knobs and one seed, so
// every existing gauntlet, policy arm, and subsystem (faults, overload,
// guard, forecast) runs unchanged on big topologies:
//
//   - clusters are dropped on a 2D map (coordinates in milliseconds); the
//     one-way latency between two clusters is a floor plus their euclidean
//     distance, and the egress price interpolates from `egress_near` to
//     `egress_far` with distance — so RTT and dollar cost are correlated,
//     as on real clouds;
//   - services split into per-class private blocks plus a shared
//     infrastructure pool; each traffic class draws a call graph from the
//     chain / fan-out / diamond mix (diamonds reconverge by targeting one
//     shared service from parallel branches);
//   - demand is multi-class with configurable skew: class rates follow a
//     power law, and each class's ingress distribution is a Zipf over a
//     per-class rotation of the clusters (no two classes load the map the
//     same way);
//   - capacity is planned, not guessed: expected per-station load implied
//     by the demand and call graphs sizes server counts to a target
//     utilization, so generated scenarios are feasible by construction and
//     overload comes from the knobs, not from accidents.
//
// Generation is pure: the same options (seed included) produce a
// byte-identical scenario on every run, independent of platform threading —
// pinned by the golden test in tests/topogen_test.cc.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "runtime/experiment.h"

namespace slate {

struct TopoGenOptions {
  std::uint64_t seed = 1;

  // World size. The issue-scale envelope is 20-50 clusters and 100-500
  // services; smaller values are allowed (tests, smoke runs).
  std::size_t clusters = 20;
  std::size_t services = 100;
  std::size_t classes = 8;

  // Call-graph pattern mix (relative weights; need not sum to 1).
  double chain_weight = 1.0;
  double fanout_weight = 1.0;
  double diamond_weight = 1.0;
  // Chain length and diamond/fan-out width, inclusive bounds.
  std::size_t depth_min = 3;
  std::size_t depth_max = 6;
  std::size_t width_min = 2;
  std::size_t width_max = 4;

  // Fraction of services placed in the shared infrastructure pool (callable
  // from any class) instead of a single class's private block. 0 makes
  // every class's service set disjoint — the fully decomposable case.
  double shared_fraction = 0.25;
  // Probability a non-root call targets the shared pool (when non-empty).
  double shared_call_probability = 0.35;

  // Per-node compute time and message size ranges.
  double compute_min_ms = 1.0;
  double compute_max_ms = 20.0;
  std::uint64_t request_bytes_min = 256;
  std::uint64_t request_bytes_max = 16384;
  std::uint64_t response_bytes_min = 512;
  std::uint64_t response_bytes_max = 65536;

  // Placement: clusters per service (entry services always get
  // replicas_max) and the server-count envelope per station.
  std::size_t replicas_min = 2;
  std::size_t replicas_max = 5;
  unsigned servers_min = 2;
  unsigned servers_max = 512;
  // Server counts are sized so the expected utilization at the generated
  // demand is about this.
  double target_utilization = 0.55;

  // Demand. Total offered load across all classes and clusters; class k's
  // share is proportional to (k+1)^-class_skew, and its per-cluster split
  // is a Zipf((p+1)^-cluster_skew) over a per-class rotation of the
  // clusters.
  double total_rps = 2000.0;
  double class_skew = 0.8;
  double cluster_skew = 1.0;

  // Geography. Clusters land uniformly on a map_extent_ms-sized square (in
  // one-way milliseconds); rtt_floor_ms is the same-metro floor.
  double map_extent_ms = 120.0;
  double rtt_floor_ms = 1.0;
  // $/GB at zero distance and at the map diagonal.
  double egress_near = 0.02;
  double egress_far = 0.12;

  // Throws std::invalid_argument on out-of-range values.
  void validate() const;
};

// Generates the full scenario world. Faults/overload/guard/forecast ship
// empty — layer them with the usual directives or RunConfig.
Scenario make_synth_scenario(const TopoGenOptions& options);

// Parses "clusters=30,services=200,seed=42" (comma- and/or
// whitespace-separated key=value pairs) over the defaults above. Unknown
// keys and malformed values throw std::invalid_argument. This is the
// argument syntax of both the `topology synth` scenario directive and
// slate_cli's `synth:<spec>` scenario selector.
TopoGenOptions parse_topogen_spec(std::string_view spec);

// Order-insensitive-free content digest of a scenario (FNV-1a over a
// canonical serialization of topology, application, deployment, and
// demand). Used to pin byte-identical generation across runs and across
// serial-vs-parallel harnesses.
std::uint64_t scenario_digest(const Scenario& scenario);

}  // namespace slate
