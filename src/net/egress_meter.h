// Egress accounting.
//
// Every message that crosses a cluster boundary is charged here; the meter is
// how experiments report "egress bandwidth cost" (the paper's 11.6x headline).
#pragma once

#include <cstdint>

#include "net/topology.h"
#include "util/ids.h"
#include "util/matrix.h"

namespace slate {

class EgressMeter {
 public:
  explicit EgressMeter(const Topology& topology);

  // Records `bytes` sent from `from` to `to`. Intra-cluster traffic is
  // tracked separately (bytes only; it never accrues cost).
  void record(ClusterId from, ClusterId to, std::uint64_t bytes);

  [[nodiscard]] std::uint64_t total_egress_bytes() const noexcept {
    return total_egress_bytes_;
  }
  [[nodiscard]] std::uint64_t total_local_bytes() const noexcept {
    return total_local_bytes_;
  }
  [[nodiscard]] std::uint64_t egress_bytes(ClusterId from, ClusterId to) const;
  // Dollars, priced by the topology's per-pair $/GB.
  [[nodiscard]] double total_cost_dollars() const noexcept { return total_cost_; }

  void reset() noexcept;

  // Adds another meter's counters into this one (same topology shape).
  // Used to merge per-shard meters into the run total.
  void absorb(const EgressMeter& other);

 private:
  const Topology* topology_;
  FlatMatrix<std::uint64_t> bytes_;
  std::uint64_t total_egress_bytes_ = 0;
  std::uint64_t total_local_bytes_ = 0;
  double total_cost_ = 0.0;
};

}  // namespace slate
