#include "net/gcp_topology.h"

#include "util/strfmt.h"

namespace slate {

Topology make_gcp_topology(double egress_dollars_per_gb) {
  Topology topo;
  const ClusterId orc = topo.add_cluster(kGcpRegionOR);
  const ClusterId ut = topo.add_cluster(kGcpRegionUT);
  const ClusterId iow = topo.add_cluster(kGcpRegionIOW);
  const ClusterId sc = topo.add_cluster(kGcpRegionSC);

  topo.set_rtt(orc, ut, 30e-3);
  topo.set_rtt(ut, iow, 20e-3);
  topo.set_rtt(iow, sc, 35e-3);
  topo.set_rtt(orc, sc, 66e-3);
  topo.set_rtt(orc, iow, 37e-3);
  topo.set_rtt(ut, sc, 52e-3);  // unreported in the paper; see header.

  topo.set_uniform_egress_price(egress_dollars_per_gb);
  return topo;
}

Topology make_two_cluster_topology(double rtt_seconds,
                                   double egress_dollars_per_gb) {
  Topology topo;
  const ClusterId west = topo.add_cluster("west");
  const ClusterId east = topo.add_cluster("east");
  topo.set_rtt(west, east, rtt_seconds);
  topo.set_uniform_egress_price(egress_dollars_per_gb);
  return topo;
}

Topology make_line_topology(std::size_t n, double hop_rtt_seconds,
                            double egress_dollars_per_gb) {
  Topology topo;
  for (std::size_t i = 0; i < n; ++i) {
    topo.add_cluster(strfmt("line-%zu", i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double hops = static_cast<double>(i < j ? j - i : i - j);
      topo.set_one_way_latency(ClusterId{i}, ClusterId{j},
                               hops * hop_rtt_seconds / 2.0);
    }
  }
  topo.set_uniform_egress_price(egress_dollars_per_gb);
  return topo;
}

}  // namespace slate
