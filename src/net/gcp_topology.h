// Topology presets used by the paper's evaluation.
#pragma once

#include "net/topology.h"

namespace slate {

// Names of the four GCP regions in the paper's §4.2 scenario, in id order.
inline constexpr const char* kGcpRegionOR = "us-west1-or";
inline constexpr const char* kGcpRegionUT = "us-west3-ut";
inline constexpr const char* kGcpRegionIOW = "us-central1-iow";
inline constexpr const char* kGcpRegionSC = "us-east1-sc";

// The paper's measured GCP inter-region median VM-to-VM RTTs:
//   OR-UT 30ms, UT-IOW 20ms, IOW-SC 35ms, OR-SC 66ms, OR-IOW 37ms.
// The UT-SC pair is not reported; we use 52ms (slightly under the
// UT-IOW-SC relay path of 55ms, as direct WAN paths typically are).
// Egress price defaults to $0.08/GB for every inter-region pair
// (GCP North-America inter-region tier 1 pricing).
Topology make_gcp_topology(double egress_dollars_per_gb = 0.08);

// Two clusters "west" (id 0) and "east" (id 1) connected with the given RTT,
// as in the paper's Fig. 4 / Fig. 6a setup.
Topology make_two_cluster_topology(double rtt_seconds,
                                   double egress_dollars_per_gb = 0.08);

// `n` clusters on a line, RTT between neighbours = `hop_rtt_seconds`,
// accumulating per hop. Handy for scalability benches.
Topology make_line_topology(std::size_t n, double hop_rtt_seconds,
                            double egress_dollars_per_gb = 0.08);

}  // namespace slate
