#include "net/topology.h"

#include <limits>
#include <stdexcept>

#include "util/strfmt.h"

namespace slate {

Topology::Topology(std::size_t cluster_count) {
  for (std::size_t i = 0; i < cluster_count; ++i) {
    add_cluster(strfmt("cluster-%zu", i));
  }
}

ClusterId Topology::add_cluster(std::string name) {
  const ClusterId id{names_.size()};
  names_.push_back(std::move(name));
  server_price_.push_back(0.0);
  // Grow both matrices, preserving existing entries.
  FlatMatrix<double> new_latency(names_.size(), names_.size(), 0.0);
  FlatMatrix<double> new_price(names_.size(), names_.size(), 0.0);
  for (std::size_t r = 0; r + 1 < names_.size(); ++r) {
    for (std::size_t c = 0; c + 1 < names_.size(); ++c) {
      new_latency(r, c) = latency_(r, c);
      new_price(r, c) = price_(r, c);
    }
  }
  latency_ = std::move(new_latency);
  price_ = std::move(new_price);
  return id;
}

void Topology::check(ClusterId c) const {
  if (!c.valid() || c.index() >= names_.size()) {
    throw std::out_of_range("Topology: bad cluster id");
  }
}

const std::string& Topology::cluster_name(ClusterId c) const {
  check(c);
  return names_[c.index()];
}

ClusterId Topology::find_cluster(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return ClusterId{i};
  }
  return ClusterId{};
}

void Topology::set_rtt(ClusterId a, ClusterId b, double rtt_seconds) {
  if (rtt_seconds < 0.0) throw std::invalid_argument("Topology: negative rtt");
  set_one_way_latency(a, b, rtt_seconds / 2.0);
  set_one_way_latency(b, a, rtt_seconds / 2.0);
}

void Topology::set_one_way_latency(ClusterId from, ClusterId to, double seconds) {
  check(from);
  check(to);
  if (seconds < 0.0) throw std::invalid_argument("Topology: negative latency");
  latency_(from.index(), to.index()) = seconds;
}

double Topology::one_way_latency(ClusterId from, ClusterId to) const {
  check(from);
  check(to);
  return latency_(from.index(), to.index());
}

double Topology::rtt(ClusterId a, ClusterId b) const {
  return one_way_latency(a, b) + one_way_latency(b, a);
}

void Topology::set_egress_price(ClusterId from, ClusterId to,
                                double dollars_per_gb) {
  check(from);
  check(to);
  if (dollars_per_gb < 0.0) throw std::invalid_argument("Topology: negative price");
  price_(from.index(), to.index()) = dollars_per_gb;
}

void Topology::set_uniform_egress_price(double dollars_per_gb) {
  for (std::size_t r = 0; r < names_.size(); ++r) {
    for (std::size_t c = 0; c < names_.size(); ++c) {
      if (r != c) price_(r, c) = dollars_per_gb;
    }
  }
}

double Topology::egress_price_per_gb(ClusterId from, ClusterId to) const {
  check(from);
  check(to);
  return price_(from.index(), to.index());
}

void Topology::set_server_price(ClusterId c, double dollars_per_hour) {
  check(c);
  if (dollars_per_hour < 0.0) {
    throw std::invalid_argument("Topology: negative server price");
  }
  server_price_[c.index()] = dollars_per_hour;
}

void Topology::set_uniform_server_price(double dollars_per_hour) {
  if (dollars_per_hour < 0.0) {
    throw std::invalid_argument("Topology: negative server price");
  }
  for (double& p : server_price_) p = dollars_per_hour;
}

double Topology::server_price_per_hour(ClusterId c) const {
  check(c);
  return server_price_[c.index()];
}

void Topology::set_jitter_fraction(double j) {
  if (j < 0.0 || j >= 1.0) {
    throw std::invalid_argument("Topology: jitter must be in [0, 1)");
  }
  jitter_ = j;
}

double Topology::sample_latency(ClusterId from, ClusterId to, Rng& rng) const {
  const double base = one_way_latency(from, to);
  if (base == 0.0 || jitter_ == 0.0) return base;
  return base * (1.0 + rng.uniform(-jitter_, jitter_));
}

ClusterId Topology::nearest(ClusterId from,
                            const std::vector<ClusterId>& candidates) const {
  check(from);
  ClusterId best;
  double best_latency = std::numeric_limits<double>::infinity();
  for (ClusterId c : candidates) {
    check(c);
    if (c == from && candidates.size() > 1) continue;
    const double l = one_way_latency(from, c);
    if (l < best_latency || (l == best_latency && (!best.valid() || c < best))) {
      best_latency = l;
      best = c;
    }
  }
  if (!best.valid() && !candidates.empty()) best = candidates.front();
  return best;
}

std::vector<ClusterId> Topology::all_clusters() const {
  std::vector<ClusterId> out;
  out.reserve(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) out.emplace_back(i);
  return out;
}

}  // namespace slate
