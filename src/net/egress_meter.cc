#include "net/egress_meter.h"

namespace slate {
namespace {
constexpr double kBytesPerGb = 1024.0 * 1024.0 * 1024.0;
}

EgressMeter::EgressMeter(const Topology& topology)
    : topology_(&topology),
      bytes_(topology.cluster_count(), topology.cluster_count(), 0) {}

void EgressMeter::record(ClusterId from, ClusterId to, std::uint64_t bytes) {
  bytes_(from.index(), to.index()) += bytes;
  if (from == to) {
    total_local_bytes_ += bytes;
    return;
  }
  total_egress_bytes_ += bytes;
  total_cost_ += static_cast<double>(bytes) / kBytesPerGb *
                 topology_->egress_price_per_gb(from, to);
}

std::uint64_t EgressMeter::egress_bytes(ClusterId from, ClusterId to) const {
  return bytes_(from.index(), to.index());
}

void EgressMeter::absorb(const EgressMeter& other) {
  const std::size_t n = bytes_.rows();
  for (std::size_t f = 0; f < n; ++f) {
    for (std::size_t t = 0; t < n; ++t) {
      bytes_(f, t) += other.bytes_(f, t);
    }
  }
  total_egress_bytes_ += other.total_egress_bytes_;
  total_local_bytes_ += other.total_local_bytes_;
  total_cost_ += other.total_cost_;
}

void EgressMeter::reset() noexcept {
  bytes_.fill(0);
  total_egress_bytes_ = 0;
  total_local_bytes_ = 0;
  total_cost_ = 0.0;
}

}  // namespace slate
