// Inter-cluster network model.
//
// Clusters are vertices; between every ordered pair we model a one-way
// propagation latency (with optional jitter) and an egress price in dollars
// per gigabyte. This is the "tc netem + cloud billing" substrate of the
// paper's testbed: crossing a cluster boundary costs time and money, staying
// local costs neither.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/ids.h"
#include "util/matrix.h"
#include "util/rng.h"

namespace slate {

class Topology {
 public:
  // Creates a topology with `cluster_count` clusters named "cluster-<i>".
  explicit Topology(std::size_t cluster_count = 0);

  // Adds a cluster and returns its id. Latencies to existing clusters
  // default to 0 (same-site); set them explicitly.
  ClusterId add_cluster(std::string name);

  [[nodiscard]] std::size_t cluster_count() const noexcept { return names_.size(); }
  [[nodiscard]] const std::string& cluster_name(ClusterId c) const;
  // Returns an invalid id if no cluster has `name`.
  [[nodiscard]] ClusterId find_cluster(std::string_view name) const noexcept;

  // Symmetric convenience: one-way latency in both directions = rtt/2.
  void set_rtt(ClusterId a, ClusterId b, double rtt_seconds);
  void set_one_way_latency(ClusterId from, ClusterId to, double seconds);
  [[nodiscard]] double one_way_latency(ClusterId from, ClusterId to) const;
  [[nodiscard]] double rtt(ClusterId a, ClusterId b) const;

  // Egress pricing, $/GB for traffic leaving `from` toward `to`.
  void set_egress_price(ClusterId from, ClusterId to, double dollars_per_gb);
  // Sets every inter-cluster pair to `dollars_per_gb`; intra stays 0.
  void set_uniform_egress_price(double dollars_per_gb);
  [[nodiscard]] double egress_price_per_gb(ClusterId from, ClusterId to) const;

  // Compute pricing, $/server-hour for capacity provisioned in `c`
  // (regions price the same VM differently — the other half of the
  // egress-vs-servers cost trade the bi-level objective optimizes).
  // Defaults to 0: server time is free unless a scenario prices it.
  void set_server_price(ClusterId c, double dollars_per_hour);
  void set_uniform_server_price(double dollars_per_hour);
  [[nodiscard]] double server_price_per_hour(ClusterId c) const;

  // Multiplicative jitter: sampled latency = base * (1 + U(-j, +j)).
  // j = 0 (default) disables jitter. Requires 0 <= j < 1.
  void set_jitter_fraction(double j);
  [[nodiscard]] double jitter_fraction() const noexcept { return jitter_; }

  // One latency draw for a message from -> to. Intra-cluster is 0.
  [[nodiscard]] double sample_latency(ClusterId from, ClusterId to, Rng& rng) const;

  // The cluster nearest to `from` among `candidates` by one-way latency
  // (excluding `from` itself unless it is the only candidate). Ties break to
  // the lowest id, mirroring a deterministic priority list.
  [[nodiscard]] ClusterId nearest(ClusterId from,
                                  const std::vector<ClusterId>& candidates) const;

  [[nodiscard]] std::vector<ClusterId> all_clusters() const;

 private:
  void check(ClusterId c) const;

  std::vector<std::string> names_;
  FlatMatrix<double> latency_;  // one-way seconds
  FlatMatrix<double> price_;    // $/GB
  std::vector<double> server_price_;  // $/server-hour, per cluster
  double jitter_ = 0.0;
};

}  // namespace slate
