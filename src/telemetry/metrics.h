// Per-cluster request metrics.
//
// Each cluster's proxies record request-level telemetry here (paper §3.1:
// load, latency, class). Two consumers with different needs share the data:
//   * the cluster controller snapshots-and-resets per control period to
//     build its report for the global controller;
//   * baseline policies (Waterfall) need an instantaneous load estimate,
//     served by exponentially-weighted rate meters.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.h"
#include "util/stats.h"

namespace slate {

// Exponentially weighted arrival-rate estimator. Event-driven: each call to
// observe() decays the estimate by the elapsed gap. The estimate converges to
// the true rate with time constant `tau` seconds.
class RateMeter {
 public:
  explicit RateMeter(double tau = 1.0) : tau_(tau) {}

  void observe(double now) noexcept;
  // Rate estimate at time `now` (decays if no recent events).
  [[nodiscard]] double rate(double now) const noexcept;

 private:
  double tau_;
  double rate_ = 0.0;
  double last_ = -1.0;
};

// Accumulated per-(service, class) statistics for one control period.
// Assembled on demand from the registry's SoA columns — see stats().
struct RequestStats {
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  StreamingStats latency;  // station-local (queue + service) seconds
  // Pure service (application handler) seconds, excluding queueing. The
  // sidecar observes this split directly, which is what lets the model
  // fitter recover per-class compute costs even at saturated stations.
  StreamingStats service;
};

// Registry for one cluster. Indexing is dense over (service, class).
class MetricsRegistry {
 public:
  MetricsRegistry(std::size_t service_count, std::size_t class_count,
                  double rate_tau = 1.0);

  void record_start(ServiceId service, ClassId cls, double now);
  void record_end(ServiceId service, ClassId cls, double latency_seconds,
                  double service_seconds = 0.0);

  // Ingress demand tracking: class-k requests entering this cluster.
  void record_ingress(ClassId cls, double now);
  // Class-k requests refused at this cluster's front door (admission
  // control). Kept out of record_ingress so the demand estimate the
  // controller solves on reflects admitted work only.
  void record_ingress_rejected(ClassId cls);
  [[nodiscard]] std::uint64_t ingress_rejected_count(ClassId cls) const;

  // End-to-end latency of a class-k request that entered at this cluster
  // (root span duration). Feeds the guarded controller's live objective.
  void record_e2e(ClassId cls, double latency_seconds);
  [[nodiscard]] const StreamingStats& e2e(ClassId cls) const;
  // Exact period-local e2e quantile (0 with no samples). Backed by a full
  // sample window that resets with the period, so the tail reflects only
  // the current control interval.
  [[nodiscard]] double e2e_quantile(ClassId cls, double q) const;

  // Period stats for one (service, class) cell, assembled from the SoA
  // columns. Snapshot semantics: callers read it once per control period.
  [[nodiscard]] RequestStats stats(ServiceId service, ClassId cls) const;
  // Instantaneous per-service arrival rate (all classes), for Waterfall.
  [[nodiscard]] double service_rate(ServiceId service, double now) const;
  [[nodiscard]] double ingress_rate(ClassId cls, double now) const;
  [[nodiscard]] std::uint64_t ingress_count(ClassId cls) const;
  [[nodiscard]] std::size_t inflight(ServiceId service) const;

  [[nodiscard]] std::size_t service_count() const noexcept { return services_; }
  [[nodiscard]] std::size_t class_count() const noexcept { return classes_; }

  // Clears period-accumulated stats (RequestStats, ingress counts) but keeps
  // rate meters running.
  void reset_period();

 private:
  [[nodiscard]] std::size_t key(ServiceId s, ClassId k) const;

  std::size_t services_;
  std::size_t classes_;
  // Structure-of-arrays over (service x class): the data plane increments a
  // bare counter per request start, so the hot column stays 8 bytes/cell
  // instead of dragging a whole RequestStats line into cache.
  std::vector<std::uint64_t> started_;       // services x classes
  std::vector<std::uint64_t> completed_;     // services x classes
  std::vector<StreamingStats> latency_;      // services x classes
  std::vector<StreamingStats> service_time_; // services x classes
  std::vector<RateMeter> service_rates_;     // per service
  std::vector<std::size_t> inflight_;        // per service
  std::vector<RateMeter> ingress_rates_;     // per class
  std::vector<std::uint64_t> ingress_counts_;  // per class, period-scoped
  std::vector<std::uint64_t> ingress_rejected_;  // per class, period-scoped
  std::vector<StreamingStats> e2e_;          // per class, period-scoped
  std::vector<SampleSet> e2e_samples_;       // per class, period-scoped
};

}  // namespace slate
