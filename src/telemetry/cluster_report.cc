// cluster_report.h is data-only; this file anchors the library target.
#include "telemetry/cluster_report.h"
