#include "telemetry/graph_inference.h"

#include <algorithm>
#include <unordered_map>

#include "util/strfmt.h"

namespace slate {

std::string ObservedTree::signature() const {
  if (calls.empty()) return "<empty>";
  std::string root = strfmt("root=%u", calls.front().service.value());
  // Multiset of parent->child service edges.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> edges;
  for (const auto& call : calls) {
    if (call.parent == ObservedCall::kNoParent) continue;
    ++edges[{calls[call.parent].service.value(), call.service.value()}];
  }
  std::string sig = root;
  for (const auto& [edge, count] : edges) {
    sig += strfmt(";%u->%u x%llu", edge.first, edge.second,
                  static_cast<unsigned long long>(count));
  }
  return sig;
}

ObservedTree infer_tree(const std::vector<Span>& spans) {
  ObservedTree tree;
  if (spans.empty()) return tree;
  tree.request = spans.front().request;
  tree.cls = spans.front().cls;

  // Sort by start time; the earliest-starting span is the root candidate.
  std::vector<Span> sorted = spans;
  std::sort(sorted.begin(), sorted.end(), [](const Span& a, const Span& b) {
    if (a.start_time != b.start_time) return a.start_time < b.start_time;
    return a.end_time > b.end_time;  // containing span first on ties
  });

  tree.calls.reserve(sorted.size());
  for (const auto& span : sorted) {
    ObservedCall call;
    call.service = span.service;
    call.start = span.start_time;
    call.end = span.end_time;
    tree.calls.push_back(call);
  }

  // Preferred: trace-context linkage (every span carries its parent's span
  // id, as propagated data planes provide). This is exact even for parallel
  // siblings, whose intervals overlap.
  bool have_context = true;
  for (const auto& span : sorted) {
    if (span.span_id == 0) {
      have_context = false;
      break;
    }
  }
  if (have_context) {
    std::unordered_map<std::uint64_t, std::size_t> by_span_id;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      by_span_id[sorted[i].span_id] = i;
    }
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      const auto it = by_span_id.find(sorted[i].parent_span_id);
      tree.calls[i].parent =
          it != by_span_id.end() ? it->second : ObservedCall::kNoParent;
    }
    return tree;
  }

  // Fallback without context: parent of call i is the minimal-duration
  // earlier call whose interval contains i's. Exact for sequential trees
  // (network delays make child intervals strictly interior); parallel
  // siblings can be mis-nested — which is why real meshes propagate
  // context.
  for (std::size_t i = 1; i < tree.calls.size(); ++i) {
    std::size_t best = ObservedCall::kNoParent;
    double best_duration = 0.0;
    for (std::size_t j = 0; j < i; ++j) {
      const auto& cand = tree.calls[j];
      if (cand.start <= tree.calls[i].start && cand.end >= tree.calls[i].end) {
        const double duration = cand.end - cand.start;
        if (best == ObservedCall::kNoParent || duration < best_duration) {
          best = j;
          best_duration = duration;
        }
      }
    }
    tree.calls[i].parent = best;
  }
  return tree;
}

double ClassGraphStats::homogeneity() const {
  if (requests == 0 || signatures.empty()) return 1.0;
  return static_cast<double>(signatures.front().second) /
         static_cast<double>(requests);
}

const std::string& ClassGraphStats::modal_signature() const {
  static const std::string kEmpty = "<none>";
  return signatures.empty() ? kEmpty : signatures.front().first;
}

std::vector<ClassGraphStats> analyze_call_graphs(
    const TraceCollector& traces, std::size_t min_spans_per_request) {
  // Group spans by request.
  std::unordered_map<std::uint32_t, std::vector<Span>> by_request;
  traces.for_each(
      [&](const Span& span) { by_request[span.request.value()].push_back(span); });

  // Count signatures per class.
  std::map<std::uint32_t, std::map<std::string, std::uint64_t>> counts;
  std::map<std::uint32_t, std::uint64_t> totals;
  for (const auto& [request, spans] : by_request) {
    (void)request;
    if (spans.size() < min_spans_per_request) continue;
    const ObservedTree tree = infer_tree(spans);
    ++counts[tree.cls.value()][tree.signature()];
    ++totals[tree.cls.value()];
  }

  std::vector<ClassGraphStats> out;
  for (const auto& [cls, sig_counts] : counts) {
    ClassGraphStats stats;
    stats.cls = ClassId{cls};
    stats.requests = totals[cls];
    stats.signatures.assign(sig_counts.begin(), sig_counts.end());
    std::sort(stats.signatures.begin(), stats.signatures.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    out.push_back(std::move(stats));
  }
  return out;
}

}  // namespace slate
