// Distributed-tracing spans.
//
// SLATE-proxy reports trace information per request (paper §3.1). A span
// covers one service invocation: which request, class, call-tree node,
// service, and cluster, and when it started/ended. The collector keeps a
// bounded ring so long experiments cannot exhaust memory; tests and the
// call-graph sanity checks read traces back via request id.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "util/ids.h"

namespace slate {

struct Span {
  RequestId request;
  ClassId cls;
  std::size_t call_node = 0;
  ServiceId service;
  ClusterId cluster;
  // Trace-context propagation (W3C traceparent style): a per-request-unique
  // span id, and the id of the span whose service issued this call (0 for
  // the root span, and for data planes that do not propagate context).
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  double start_time = 0.0;
  double end_time = 0.0;
  // Time spent queued at the station before processing began.
  double queue_time = 0.0;
  // Station-local time (queue + compute), excluding child calls and network.
  // This is what load-to-latency model fitting needs; duration() is the
  // inclusive span used for end-to-end accounting at root nodes.
  double exclusive_time = 0.0;
  // True when the subtree below this invocation failed (rejection, timeout,
  // exhausted retries) and this service returned an error to its caller.
  bool error = false;

  [[nodiscard]] double duration() const noexcept { return end_time - start_time; }
};

class TraceCollector {
 public:
  // `capacity` bounds retained spans (oldest evicted first). 0 disables
  // collection entirely (record() becomes a no-op).
  explicit TraceCollector(std::size_t capacity = 0);

  void record(const Span& span);

  [[nodiscard]] bool enabled() const noexcept { return capacity_ > 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint64_t total_recorded() const noexcept { return recorded_; }

  // All retained spans of one request, in recording order.
  [[nodiscard]] std::vector<Span> spans_for(RequestId request) const;

  // Visits every retained span, oldest first.
  template <typename F>
  void for_each(F&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) {
      fn(ring_[(head_ + i) % capacity_]);
    }
  }

  void clear() noexcept;

 private:
  std::size_t capacity_;
  std::vector<Span> ring_;
  std::size_t head_ = 0;  // index of oldest
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
};

}  // namespace slate
