// The cluster controller's periodic report to the global controller.
//
// Proxies do not know which cluster they run in; the cluster controller
// attaches its cluster id when aggregating (paper §3.2).
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.h"

namespace slate {

// One (service, class) cell of the report.
struct ServiceClassMetrics {
  ServiceId service;
  ClassId cls;
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  double completion_rps = 0.0;   // completed / period
  double mean_latency = 0.0;     // station-local seconds (queue + compute)
  double max_latency = 0.0;
  // Mean pure service time (handler time, no queueing); 0 when the data
  // plane cannot provide the split.
  double mean_service_time = 0.0;
};

// Per-station (service) utilization summary.
struct StationMetrics {
  ServiceId service;
  unsigned servers = 0;
  double utilization = 0.0;      // busy fraction over the period
  double queue_length = 0.0;     // instantaneous at period end
};

// End-to-end latency summary for one class entering at this cluster.
struct E2eMetrics {
  std::uint64_t count = 0;
  double mean_latency = 0.0;  // seconds
  // Period-local p99 (exact over the period's samples; equals the mean
  // when too few samples landed to resolve a tail). Drives the rollout
  // canary's tail-regression check.
  double p99_latency = 0.0;
};

struct ClusterReport {
  ClusterId cluster;
  double period_start = 0.0;
  double period_end = 0.0;
  std::vector<ServiceClassMetrics> request_metrics;
  std::vector<StationMetrics> station_metrics;
  // Observed ingress demand per class (index = class id), requests/second.
  std::vector<double> ingress_rps;
  // End-to-end latency per class (index = class id).
  std::vector<E2eMetrics> e2e;

  [[nodiscard]] double period() const noexcept { return period_end - period_start; }
};

}  // namespace slate
