#include "telemetry/span.h"

namespace slate {

TraceCollector::TraceCollector(std::size_t capacity) : capacity_(capacity) {
  ring_.resize(capacity_);
}

void TraceCollector::record(const Span& span) {
  if (capacity_ == 0) return;
  ++recorded_;
  if (size_ < capacity_) {
    ring_[(head_ + size_) % capacity_] = span;
    ++size_;
  } else {
    ring_[head_] = span;
    head_ = (head_ + 1) % capacity_;
  }
}

std::vector<Span> TraceCollector::spans_for(RequestId request) const {
  std::vector<Span> out;
  for_each([&](const Span& s) {
    if (s.request == request) out.push_back(s);
  });
  return out;
}

void TraceCollector::clear() noexcept {
  head_ = 0;
  size_ = 0;
}

}  // namespace slate
