#include "telemetry/metrics.h"

#include <cmath>
#include <stdexcept>

namespace slate {

void RateMeter::observe(double now) noexcept {
  if (last_ < 0.0) {
    last_ = now;
    rate_ = 1.0 / tau_;  // first event: seed with one event per tau
    return;
  }
  const double gap = now - last_;
  last_ = now;
  if (gap <= 0.0) {
    // Simultaneous events: each adds one event's worth of instantaneous mass.
    rate_ += 1.0 / tau_;
    return;
  }
  const double decay = std::exp(-gap / tau_);
  rate_ = rate_ * decay + (1.0 - decay) / gap;
}

double RateMeter::rate(double now) const noexcept {
  if (last_ < 0.0) return 0.0;
  const double gap = now - last_;
  if (gap <= 0.0) return rate_;
  return rate_ * std::exp(-gap / tau_);
}

MetricsRegistry::MetricsRegistry(std::size_t service_count,
                                 std::size_t class_count, double rate_tau)
    : services_(service_count),
      classes_(class_count),
      started_(service_count * class_count, 0),
      completed_(service_count * class_count, 0),
      latency_(service_count * class_count),
      service_time_(service_count * class_count),
      service_rates_(service_count, RateMeter(rate_tau)),
      inflight_(service_count, 0),
      ingress_rates_(class_count, RateMeter(rate_tau)),
      ingress_counts_(class_count, 0),
      ingress_rejected_(class_count, 0),
      e2e_(class_count),
      e2e_samples_(class_count) {}

std::size_t MetricsRegistry::key(ServiceId s, ClassId k) const {
  if (!s.valid() || s.index() >= services_ || !k.valid() || k.index() >= classes_) {
    throw std::out_of_range("MetricsRegistry: bad service/class id");
  }
  return s.index() * classes_ + k.index();
}

void MetricsRegistry::record_start(ServiceId service, ClassId cls, double now) {
  ++started_[key(service, cls)];
  ++inflight_[service.index()];
  service_rates_[service.index()].observe(now);
}

void MetricsRegistry::record_end(ServiceId service, ClassId cls,
                                 double latency_seconds,
                                 double service_seconds) {
  const std::size_t i = key(service, cls);
  ++completed_[i];
  latency_[i].add(latency_seconds);
  service_time_[i].add(service_seconds);
  if (inflight_[service.index()] > 0) --inflight_[service.index()];
}

void MetricsRegistry::record_ingress(ClassId cls, double now) {
  if (!cls.valid() || cls.index() >= classes_) {
    throw std::out_of_range("MetricsRegistry: bad class id");
  }
  ingress_rates_[cls.index()].observe(now);
  ++ingress_counts_[cls.index()];
}

void MetricsRegistry::record_ingress_rejected(ClassId cls) {
  if (!cls.valid() || cls.index() >= classes_) {
    throw std::out_of_range("MetricsRegistry: bad class id");
  }
  ++ingress_rejected_[cls.index()];
}

std::uint64_t MetricsRegistry::ingress_rejected_count(ClassId cls) const {
  if (!cls.valid() || cls.index() >= classes_) {
    throw std::out_of_range("MetricsRegistry: bad class id");
  }
  return ingress_rejected_[cls.index()];
}

void MetricsRegistry::record_e2e(ClassId cls, double latency_seconds) {
  if (!cls.valid() || cls.index() >= classes_) {
    throw std::out_of_range("MetricsRegistry: bad class id");
  }
  e2e_[cls.index()].add(latency_seconds);
  e2e_samples_[cls.index()].add(latency_seconds);
}

double MetricsRegistry::e2e_quantile(ClassId cls, double q) const {
  if (!cls.valid() || cls.index() >= classes_) {
    throw std::out_of_range("MetricsRegistry: bad class id");
  }
  return e2e_samples_[cls.index()].quantile(q);
}

const StreamingStats& MetricsRegistry::e2e(ClassId cls) const {
  if (!cls.valid() || cls.index() >= classes_) {
    throw std::out_of_range("MetricsRegistry: bad class id");
  }
  return e2e_[cls.index()];
}

RequestStats MetricsRegistry::stats(ServiceId service, ClassId cls) const {
  const std::size_t i = key(service, cls);
  return RequestStats{started_[i], completed_[i], latency_[i],
                      service_time_[i]};
}

double MetricsRegistry::service_rate(ServiceId service, double now) const {
  if (!service.valid() || service.index() >= services_) {
    throw std::out_of_range("MetricsRegistry: bad service id");
  }
  return service_rates_[service.index()].rate(now);
}

double MetricsRegistry::ingress_rate(ClassId cls, double now) const {
  if (!cls.valid() || cls.index() >= classes_) {
    throw std::out_of_range("MetricsRegistry: bad class id");
  }
  return ingress_rates_[cls.index()].rate(now);
}

std::uint64_t MetricsRegistry::ingress_count(ClassId cls) const {
  if (!cls.valid() || cls.index() >= classes_) {
    throw std::out_of_range("MetricsRegistry: bad class id");
  }
  return ingress_counts_[cls.index()];
}

std::size_t MetricsRegistry::inflight(ServiceId service) const {
  if (!service.valid() || service.index() >= services_) {
    throw std::out_of_range("MetricsRegistry: bad service id");
  }
  return inflight_[service.index()];
}

void MetricsRegistry::reset_period() {
  for (auto& c : started_) c = 0;
  for (auto& c : completed_) c = 0;
  for (auto& l : latency_) l.reset();
  for (auto& s : service_time_) s.reset();
  for (auto& c : ingress_counts_) c = 0;
  for (auto& c : ingress_rejected_) c = 0;
  for (auto& e : e2e_) e.reset();
  for (auto& s : e2e_samples_) s.clear();
}

}  // namespace slate
