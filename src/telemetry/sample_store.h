// Load/latency observation store for online model fitting.
//
// Every control period the global controller receives, per (service, class,
// cluster): the offered rate, mean latency, and the station's utilization in
// that period. These samples accumulate here (bounded ring per key) and the
// model fitter (core/model_fitter.h) turns them into latency-model
// parameters — the paper's "learn latency profiles dynamically in
// production, rather than profiling offline".
#pragma once

#include <cstddef>
#include <vector>

#include "util/ids.h"

namespace slate {

struct LoadSample {
  double time = 0.0;         // period end, seconds
  double rps = 0.0;          // per-(service,class,cluster) completion rate
  double mean_latency = 0.0; // seconds, station-local (queue + compute)
  // Mean pure service time (0 when the data plane lacks the queue/service
  // split; the fitter then falls back to low-load inference).
  double mean_service_time = 0.0;
  double utilization = 0.0;  // station utilization during the period, [0,1]
  std::size_t count = 0;     // completions the sample is based on
};

class SampleStore {
 public:
  SampleStore(std::size_t service_count, std::size_t class_count,
              std::size_t cluster_count, std::size_t capacity_per_key = 256);

  void add(ServiceId s, ClassId k, ClusterId c, const LoadSample& sample);

  // Samples for a key, oldest first.
  [[nodiscard]] std::vector<LoadSample> samples(ServiceId s, ClassId k,
                                                ClusterId c) const;
  [[nodiscard]] std::size_t sample_count(ServiceId s, ClassId k, ClusterId c) const;

  void clear();

 private:
  struct Ring {
    std::vector<LoadSample> buf;
    std::size_t head = 0;
    std::size_t size = 0;
  };
  [[nodiscard]] std::size_t key(ServiceId s, ClassId k, ClusterId c) const;

  std::size_t services_, classes_, clusters_, capacity_;
  std::vector<Ring> rings_;
};

}  // namespace slate
