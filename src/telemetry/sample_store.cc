#include "telemetry/sample_store.h"

#include <stdexcept>

namespace slate {

SampleStore::SampleStore(std::size_t service_count, std::size_t class_count,
                         std::size_t cluster_count,
                         std::size_t capacity_per_key)
    : services_(service_count),
      classes_(class_count),
      clusters_(cluster_count),
      capacity_(capacity_per_key),
      rings_(service_count * class_count * cluster_count) {
  if (capacity_per_key == 0) {
    throw std::invalid_argument("SampleStore: zero capacity");
  }
}

std::size_t SampleStore::key(ServiceId s, ClassId k, ClusterId c) const {
  if (!s.valid() || s.index() >= services_ || !k.valid() ||
      k.index() >= classes_ || !c.valid() || c.index() >= clusters_) {
    throw std::out_of_range("SampleStore: bad key");
  }
  return (s.index() * classes_ + k.index()) * clusters_ + c.index();
}

void SampleStore::add(ServiceId s, ClassId k, ClusterId c,
                      const LoadSample& sample) {
  Ring& ring = rings_[key(s, k, c)];
  if (ring.buf.size() < capacity_) {
    ring.buf.push_back(sample);
    ++ring.size;
    return;
  }
  ring.buf[ring.head] = sample;
  ring.head = (ring.head + 1) % capacity_;
}

std::vector<LoadSample> SampleStore::samples(ServiceId s, ClassId k,
                                             ClusterId c) const {
  const Ring& ring = rings_[key(s, k, c)];
  std::vector<LoadSample> out;
  out.reserve(ring.size);
  for (std::size_t i = 0; i < ring.size; ++i) {
    out.push_back(ring.buf[(ring.head + i) % ring.buf.size()]);
  }
  return out;
}

std::size_t SampleStore::sample_count(ServiceId s, ClassId k, ClusterId c) const {
  return rings_[key(s, k, c)].size;
}

void SampleStore::clear() {
  for (auto& ring : rings_) {
    ring.buf.clear();
    ring.head = 0;
    ring.size = 0;
  }
}

}  // namespace slate
