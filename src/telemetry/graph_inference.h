// Call-graph reconstruction from trace spans.
//
// Paper §5 ("Traffic classification"): "the majority of requests in a
// meaningful traffic class should spawn the same child call graph". This
// module checks that property from telemetry alone: it rebuilds each
// request's call tree from its spans using only (service, start, end)
// interval containment — NOT the simulator's ground-truth call_node — and
// reports, per traffic class, how homogeneous the observed trees are.
// A low homogeneity score is the signal that a class is too coarse and
// should be split (or that the classifier is mis-keyed).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/span.h"
#include "util/ids.h"

namespace slate {

// One reconstructed call within a request's tree.
struct ObservedCall {
  ServiceId service;
  // Index of the parent call within ObservedTree::calls, or kNoParent.
  std::size_t parent = kNoParent;
  double start = 0.0;
  double end = 0.0;

  static constexpr std::size_t kNoParent = ~std::size_t{0};
};

struct ObservedTree {
  RequestId request;
  ClassId cls;
  std::vector<ObservedCall> calls;  // sorted by start time; root first

  // Canonical signature: sorted "parentService->childService xCount" edge
  // multiset plus the root service. Two trees with the same signature have
  // the same call structure (ignoring timing and cluster placement).
  [[nodiscard]] std::string signature() const;
};

// Rebuilds the call tree of one request from its spans (any order).
// When every span carries trace context (span_id != 0), parents come from
// parent_span_id — exact even for overlapping parallel siblings. Without
// context the parent is the shortest span containing the child's interval,
// which is exact for sequential trees only. Returns an empty tree when
// `spans` is empty.
ObservedTree infer_tree(const std::vector<Span>& spans);

// Per-class homogeneity over every complete trace in a collector.
struct ClassGraphStats {
  ClassId cls;
  std::uint64_t requests = 0;
  // Distinct observed signatures and their frequencies, most common first.
  std::vector<std::pair<std::string, std::uint64_t>> signatures;

  // Fraction of requests whose tree matches the modal signature; 1.0 for a
  // perfectly homogeneous class.
  [[nodiscard]] double homogeneity() const;
  [[nodiscard]] const std::string& modal_signature() const;
};

// Groups the collector's retained spans by request and analyzes each class.
// Requests with truncated traces (evicted spans) are skipped when
// `min_spans_per_request` > the retained span count. Results are keyed in
// class-id order.
std::vector<ClassGraphStats> analyze_call_graphs(
    const TraceCollector& traces, std::size_t min_spans_per_request = 1);

}  // namespace slate
