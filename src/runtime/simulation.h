// The multi-cluster request execution engine.
//
// Simulation wires a Scenario (application, deployment, topology, demand)
// together with a routing policy and — in SLATE mode — the full control
// hierarchy (proxies -> cluster controllers -> global controller), then
// executes every request's call tree event-by-event on the discrete-event
// simulator:
//
//   arrival -> entry station (queue + compute) -> per-child routing query ->
//   network hop -> child subtree -> network hop back -> ... -> response.
//
// Cross-cluster messages charge the egress meter and add sampled one-way
// network latency in each direction. All telemetry flows through the same
// SlateProxy objects a real deployment would use.
//
// Failure semantics: every inter-service call can fail — a down cluster
// refuses the request, a partitioned link drops it, a timeout abandons it —
// and the error propagates up the call tree to the root (a sequential chain
// aborts at the first failed child; a parallel fan-out fails if any child
// failed). With RunConfig::failure enabled, failed attempts retry with
// exponential backoff under a token-bucket budget, preferring a different
// candidate cluster. Faults come from the FaultPlan via a FaultInjector the
// engine consults at each decision point.
//
// Execution engines (RunConfig::shards; docs/performance.md):
//   shards == 0  — the legacy serial engine: one Simulator, one execution
//                  context, bit-identical to previous releases.
//   shards >= 1  — conservative-lookahead parallel engine: clusters are
//                  grouped into latency islands (connected components over
//                  zero-latency pairs), each island becomes one logical
//                  process with a private Simulator and a private execution
//                  context (pools, RNG stream, telemetry accumulators);
//                  cross-island calls travel as by-value RPC messages
//                  through the ShardedSimulator's deterministic mailboxes.
//                  The shard count only caps worker threads — the partition
//                  and the schedule are island-determined, so every sharded
//                  run of a config is byte-identical regardless of count.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "admission/admission_controller.h"
#include "bilevel/coordinator.h"
#include "cluster/service_station.h"
#include "contingency/drain_orchestrator.h"
#include "core/cluster_controller.h"
#include "core/slate_proxy.h"
#include "fault/fault_injector.h"
#include "net/egress_meter.h"
#include "overload/circuit_breaker.h"
#include "overload/overload_policy.h"
#include "routing/policy.h"
#include "runtime/experiment.h"
#include "sim/sharded_simulator.h"
#include "sim/simulator.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "util/inline_function.h"
#include "util/pool.h"
#include "workload/arrival.h"

namespace slate {

class Simulation {
 public:
  Simulation(const Scenario& scenario, const RunConfig& config);
  ~Simulation();  // out-of-line: members use types incomplete in this header
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Runs to completion and returns the measurements. Call once.
  ExperimentResult run();

  // Introspection (valid after run()).
  [[nodiscard]] const GlobalController* global_controller() const noexcept {
    return global_.get();
  }
  [[nodiscard]] const TraceCollector& traces() const noexcept { return traces_; }
  // Null unless the merged scenario+config fault plan is non-empty.
  [[nodiscard]] const FaultInjector* fault_injector() const noexcept {
    return injector_.get();
  }
  // Null unless circuit breaking is enabled. Under the sharded engine this
  // is the first island's caller-side bank (banks are per island).
  [[nodiscard]] const CircuitBreakerBank* circuit_breakers() const noexcept {
    if (breakers_ != nullptr) return breakers_.get();
    return ctxs_.empty() ? nullptr : ctxs_.front()->breakers;
  }
  // Null for baseline policies; indexed by cluster id under SLATE.
  [[nodiscard]] const ClusterController* cluster_controller(
      ClusterId c) const noexcept {
    return c.index() < cluster_controllers_.size()
               ? cluster_controllers_[c.index()].get()
               : nullptr;
  }
  // Latency islands the sharded engine partitions into (1 on the legacy
  // engine) and the conservative lookahead window width in seconds
  // (+infinity with a single island).
  [[nodiscard]] std::size_t island_count() const noexcept {
    return island_count_;
  }
  [[nodiscard]] double lookahead_seconds() const noexcept { return lookahead_; }
  // Null unless front-door admission control is armed.
  [[nodiscard]] const AdmissionController* admission_controller() const noexcept {
    return admission_.get();
  }
  // Null unless at least one coordinated drain is scheduled.
  [[nodiscard]] const DrainOrchestrator* drain_orchestrator() const noexcept {
    return drain_orch_.get();
  }
  // Null unless bi-level co-design is armed (kSlate + autoscaler required).
  [[nodiscard]] const BilevelCoordinator* bilevel_coordinator() const noexcept {
    return bilevel_.get();
  }

 private:
  // Continuation of one call-tree node; `ok` is false when the subtree
  // failed (rejection, timeout, exhausted retries). 32-byte inline buffer:
  // hot-path continuations capture {this, pooled-state handle} and stay
  // allocation-free; only rare cold paths (front-door redirects, cross-
  // island RPC legs) spill.
  using Done = InlineFunction<void(bool ok), 32>;

  struct RequestState {
    RequestId id;
    ClassId cls;
    ClusterId ingress;
    double arrival_time = 0.0;
    // End-to-end deadline (absolute sim time; +inf when deadlines are off).
    double deadline = 0.0;
  };
  using ReqPtr = PoolPtr<RequestState>;

  // The realized child-call list of one node. Multiplicities are small;
  // the inline array covers the common case, a heap vector the tail.
  class CallList {
   public:
    void push_back(std::uint32_t node) {
      if (count_ < kInline) {
        inline_[count_] = node;
      } else {
        overflow_.push_back(node);
      }
      ++count_;
    }
    [[nodiscard]] std::size_t size() const noexcept { return count_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
    [[nodiscard]] std::uint32_t operator[](std::size_t i) const noexcept {
      return i < kInline ? inline_[i] : overflow_[i - kInline];
    }

   private:
    static constexpr std::size_t kInline = 8;
    std::array<std::uint32_t, kInline> inline_{};
    std::uint32_t count_ = 0;
    std::vector<std::uint32_t> overflow_;
  };

  // One executing call-tree node: alive from station submission until its
  // span is emitted and `done` fired.
  struct NodeState {
    ReqPtr req;
    std::uint32_t node = 0;
    ClusterId cluster;
    std::uint64_t span_id = 0;
    std::uint64_t parent_span = 0;
    double enqueue_time = 0.0;
    double queue_s = 0.0;
    double service_s = 0.0;
    // Remaining time budget for this node's subtree (absolute; +inf = none).
    double deadline = 0.0;
    Done done;
  };

  // Sequential child chain of one node.
  struct ChainState {
    ReqPtr req;
    ClusterId cluster;
    std::uint64_t parent_span = 0;
    CallList calls;
    std::size_t index = 0;
    double deadline = 0.0;
    Done done;
  };

  // Parallel child fan-out of one node.
  struct FanoutState {
    std::size_t remaining = 0;
    bool all_ok = true;
    Done done;
  };

  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  // One logical call (possibly several routed attempts). Reused across
  // retries; `attempt` doubles as the generation counter that lets stale
  // events of a superseded attempt recognize themselves. `slot` is the
  // attempt's entry in its context's cross-island RPC registry (kNilSlot
  // until the first remote leg; released at the terminal verdict).
  struct AttemptState {
    ReqPtr req;
    std::uint32_t node = 0;
    ClusterId from;
    ClusterId to;
    ClusterId exclude;  // cluster the previous attempt failed on
    std::uint64_t parent_span = 0;
    std::uint32_t attempt = 0;
    std::uint32_t slot = kNilSlot;
    bool settled = false;
    double deadline = 0.0;
    Done done;
  };

  // Caller-side registry entry for a call with a remote leg in flight. The
  // held handle pins the attempt alive until the slot is released; `gen`
  // invalidates responses addressed to a recycled slot.
  struct PendingRemote {
    PoolPtr<AttemptState> as;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNilSlot;
  };

  // Routing stamp a remote request leg carries so the response (or a stale
  // duplicate of it) can find — or correctly miss — its attempt.
  struct RemoteToken {
    std::uint32_t slot = kNilSlot;
    std::uint32_t slot_gen = 0;
    std::uint32_t attempt_gen = 0;
  };

  // Everything the data plane mutates per request, owned per latency island
  // so shards never contend: object pools, the routing RNG stream, result
  // accumulators, egress/trace/breaker telemetry, the retry-token budget,
  // and id counters (island-tagged so merged traces stay unique). The
  // legacy serial engine runs with exactly one context wired to the
  // Simulation-level members, preserving bit-identical behavior.
  struct ExecCtx {
    ExecCtx(const Topology& topo, std::size_t trace_capacity)
        : egress(topo), traces_owned(trace_capacity) {}

    std::uint32_t island = 0;
    Simulator* sim = nullptr;
    Rng rng_routing;

    // Hot-path control-block pools. Declared before the slot registry: a
    // pending slot holds a PoolPtr and must release before its pool dies.
    Pool<RequestState> request_pool;
    Pool<NodeState> node_pool;
    Pool<ChainState> chain_pool;
    Pool<FanoutState> fanout_pool;
    Pool<AttemptState> attempt_pool;

    EgressMeter egress;
    TraceCollector traces_owned;       // sharded sink; merged at run end
    TraceCollector* traces = nullptr;  // what this island's proxies record to
    std::unique_ptr<CircuitBreakerBank> breakers_owned;  // sharded only
    CircuitBreakerBank* breakers = nullptr;
    std::unique_ptr<RoutingPolicy> baseline_owned;  // sharded only
    RoutingPolicy* baseline = nullptr;
    std::unique_ptr<ExperimentResult> res_owned;  // sharded only
    ExperimentResult* res = nullptr;
    // Per-island Waterfall load observations, summed into the shared
    // snapshot at each window barrier (empty unless sharded + Waterfall).
    std::vector<RateMeter> load_meters;

    double retry_tokens = 0.0;  // token-bucket retry budget
    std::uint64_t next_request = 0;
    std::uint64_t next_span = 1;  // 0 is "no span" in trace context
    // Reused candidate-filter scratch for start_attempt (hot path:
    // allocating a fresh vector per attempt dominated allocs/request).
    std::vector<ClusterId> filter_scratch;

    // Cross-island RPC slots; after the pools (see above).
    std::vector<PendingRemote> slots;
    std::uint32_t free_slot = kNilSlot;
  };

  [[nodiscard]] std::size_t station_index(ServiceId s, ClusterId c) const {
    return s.index() * cluster_count_ + c.index();
  }
  [[nodiscard]] ServiceStation* station(ServiceId s, ClusterId c) {
    return stations_[station_index(s, c)].get();
  }
  SlateProxy& proxy(ServiceId s, ClusterId c) {
    return *proxies_[station_index(s, c)];
  }
  [[nodiscard]] bool sharded() const noexcept { return sharded_ != nullptr; }
  // The simulator control-plane machinery lives on: the single engine in
  // legacy mode, the coordinator's global LP in sharded mode.
  [[nodiscard]] Simulator& global_sim() noexcept {
    return sharded_ != nullptr ? sharded_->global() : sim_;
  }
  [[nodiscard]] std::uint32_t island_of(ClusterId c) const noexcept {
    return island_of_[c.index()];
  }
  // The execution context every event touching `c` runs under.
  [[nodiscard]] ExecCtx& ctx_of(ClusterId c) noexcept {
    return *ctxs_[island_of_[c.index()]];
  }

  void on_arrival(ClassId cls, ClusterId cluster);
  // Executes call node `node` of `req`'s class at `cluster`; `done` fires at
  // the node's response time (network back to the caller NOT included), with
  // ok=false when the cluster refused the request or a child subtree
  // failed. `parent_span` is the caller's span id (trace-context
  // propagation; 0 at the root). `deadline` is the remaining time budget
  // (absolute sim time; kNoDeadline when deadlines are off) — with deadline
  // propagation on, expired work is cancelled instead of executed.
  // Runs on (and its `done` fires on) `cluster`'s island.
  void execute_node(ReqPtr req, std::size_t node, ClusterId cluster,
                    std::uint64_t parent_span, double deadline, Done done);
  // Emits the node's span and fires its continuation.
  void finish_node(const PoolPtr<NodeState>& ns, bool ok);
  // Issues the call for child `node` from `from`: routes, pays the network
  // and egress both ways, recurses, retrying failed attempts per
  // config_.failure. `done` fires when the call settles at `from`.
  void issue_call(ReqPtr req, std::size_t node, ClusterId from,
                  std::uint64_t parent_span, double deadline, Done done);
  // One routed attempt of the call described by `as` (fields set by
  // issue_call / the preceding attempt's retry path).
  void start_attempt(const PoolPtr<AttemptState>& as);
  // Terminal verdict of the current attempt: ok completes the call, a
  // failure retries (budget permitting) or fails the call.
  void settle_attempt(const PoolPtr<AttemptState>& as, bool ok);
  // Runs `children[index...]` per the parent's invocation mode.
  void run_children(ReqPtr req, std::size_t parent_node, ClusterId cluster,
                    std::uint64_t parent_span, double deadline, Done done);
  // Advances a sequential child chain after the previous child settled.
  void chain_next(const PoolPtr<ChainState>& cs, bool ok);

  // Cross-island RPC plumbing (sharded engine only). A remote request leg
  // carries the request state by value plus a RemoteToken; the response
  // finds its attempt through the caller context's slot registry.
  std::uint32_t acquire_slot(ExecCtx& cx, const PoolPtr<AttemptState>& as);
  void release_slot(ExecCtx& cx, AttemptState& as);
  void on_remote_response(ExecCtx& cx, RemoteToken tok, bool ok);

  // One fault-aware network latency draw for a message from -> to, from the
  // issuing context's routing stream.
  [[nodiscard]] double net_delay(ExecCtx& cx, ClusterId from, ClusterId to);
  [[nodiscard]] bool cluster_down(ClusterId c) const noexcept {
    return injector_ != nullptr && injector_->cluster_down(c);
  }
  // Terminal outcome of one request (success or error), at its ingress.
  void finish_request(ExecCtx& cx, const RequestState& req, bool ok,
                      ServiceId entry, ClusterId entry_cluster);
  // The ingress-side half: time-series bucket + measurement counters.
  // (Cross-island redirects record the root proxy's e2e callee-side and
  // ship only this part home.) `admitted` is false only for requests the
  // admission gate fast-failed — they must not feed the adaptation
  // loop's outcome evidence.
  void finish_request_tail(ExecCtx& cx, ClassId cls, ClusterId ingress,
                           bool ok, double e2e, bool admitted);
  // Arrival-rate observation for Waterfall: the live view in legacy mode,
  // the context's snapshot meters in sharded mode.
  void observe_load(ExecCtx& cx, ServiceId s, ClusterId c);

  void control_tick();
  // Propagates a drain keep-fraction change to the data plane (ingress
  // shedding), the solver's capacity view, and the cluster's autoscalers.
  // Runs on the global timeline only (DrainOrchestrator::Hooks::apply_keep).
  void apply_drain_keep(ClusterId cluster, double keep);
  // Applies a telemetry-corruption fault to a collected report: finite
  // garbage only (spikes, zeros, sign flips) — the byzantine-reporter
  // recipe the admission guard is benchmarked against. Non-finite payloads
  // are exercised in unit/fuzz tests against the validator directly.
  void corrupt_report(ClusterReport& report, double factor);
  void begin_measurement();

  // Groups clusters into latency islands (union over zero-latency pairs)
  // and derives the conservative lookahead from the cross-island latency
  // floor. Sharded mode only.
  void compute_islands();
  // Constructs the configured baseline routing policy (non-SLATE kinds).
  [[nodiscard]] std::unique_ptr<RoutingPolicy> make_baseline(
      const LoadView* view) const;
  // Sizes the per-class containers of a result accumulator.
  void init_result_shape(ExperimentResult& r) const;
  // Folds per-island accumulators into result_, in island order (the order
  // is island-determined, so merged output is invariant to worker count).
  void merge_results();
  // Barrier hook: per-island Waterfall meters -> shared load snapshot.
  void refresh_waterfall_snapshot();

  const Scenario& scenario_;
  RunConfig config_;
  std::size_t cluster_count_;

  // Effective overload policy: scenario's, with each enabled sub-policy of
  // the config overriding its counterpart.
  OverloadPolicy overload_;
  // Precomputed per-class knobs (kNoDeadline / 0 when the sub-policy is off).
  std::vector<double> deadline_by_class_;
  std::vector<int> priority_by_class_;
  // Legacy-engine bank (null when sharded: each context owns its own).
  std::unique_ptr<CircuitBreakerBank> breakers_;

  // Effective front-door admission policy (config overrides scenario
  // wholesale when enabled) and its controller, null unless armed. The
  // controller is shared across islands but every (class, cluster) cell
  // is touched only from its cluster's island between barriers; the
  // adaptation loop runs on the global timeline at window barriers.
  AdmissionPolicy admission_policy_;
  std::unique_ptr<AdmissionController> admission_;

  // Coordinated drains: the merged scenario+config schedule, the
  // orchestrator driving it (null when no drains — an undrained run adds
  // zero events and zero RNG draws), and the per-cluster keep-fraction the
  // data plane reads. drain_keep_ changes only at global barriers.
  std::vector<DrainSpec> drains_;
  std::unique_ptr<DrainOrchestrator> drain_orch_;
  std::vector<double> drain_keep_;
  // True once any cluster's keep-fraction hit 0 (fully evacuated): arms the
  // candidate-filter exclusion in start_attempt.
  bool have_fully_drained_ = false;

  // Latency-island partition (all zeros / 1 island on the legacy engine).
  std::vector<std::uint32_t> island_of_;  // per cluster
  std::size_t island_count_ = 1;
  double lookahead_ = 0.0;

  // Execution contexts, one per island (exactly one on the legacy engine).
  // Declared before both engines and the stations: events and queued jobs
  // hold PoolPtrs into these contexts' pools, so the contexts die last.
  std::vector<std::unique_ptr<ExecCtx>> ctxs_;

  Simulator sim_;  // legacy serial engine (idle when sharded_ is set)
  std::unique_ptr<ShardedSimulator> sharded_;

  Rng rng_root_;
  Rng rng_chaos_;  // telemetry-corruption draws (fork 3 of the root)

  // Per service: clusters hosting it (ascending id order).
  std::vector<std::vector<ClusterId>> candidates_;
  // Per (service, cluster); null where not deployed.
  std::vector<std::unique_ptr<ServiceStation>> stations_;
  std::vector<std::unique_ptr<Autoscaler>> autoscalers_;
  std::vector<std::unique_ptr<SlateProxy>> proxies_;
  std::vector<std::unique_ptr<MetricsRegistry>> registries_;  // per cluster
  std::vector<std::shared_ptr<WeightedRulesPolicy>> rule_policies_;  // per cluster
  std::vector<std::unique_ptr<ClusterController>> cluster_controllers_;
  std::unique_ptr<GlobalController> global_;
  // Bi-level co-design coordinator (docs/autoscaling.md), created in run()
  // once the autoscalers exist; null when the subsystem is off — a disabled
  // run touches neither the capacity view nor the autoscalers.
  std::unique_ptr<BilevelCoordinator> bilevel_;
  std::unique_ptr<RoutingPolicy> baseline_policy_;  // legacy engine

  // Live load signal for Waterfall (legacy engine).
  class LiveLoadView;
  std::unique_ptr<LiveLoadView> load_view_;
  // Sharded Waterfall: per-island meters sum into this snapshot at every
  // window barrier; routing reads it (at most one window stale).
  class SnapshotLoadView;
  FlatMatrix<double> waterfall_snapshot_;
  std::unique_ptr<SnapshotLoadView> snapshot_view_;

  TraceCollector traces_;
  // One driver on the legacy engine; one per island (stream-partitioned)
  // on the sharded engine.
  std::vector<std::unique_ptr<WorkloadDriver>> workloads_;
  std::unique_ptr<FaultInjector> injector_;
  // RAII: destroying the Simulation cancels the control loop, so an
  // injected controller shutdown cannot leak a live timer.
  Simulator::ScopedPeriodic control_timer_;
  // Admission adaptation loop (scheduled only when admission is armed
  // with adapt on — an unarmed run adds zero events).
  Simulator::ScopedPeriodic admission_timer_;
  // Drain orchestrator tick (scheduled only when drains are present).
  Simulator::ScopedPeriodic drain_timer_;

  // Measurement state.
  bool measuring_ = false;
  ExperimentResult result_;
  std::uint64_t rule_pushes_ = 0;
  // Previous pushed rule set, for the successive-push L1 churn signal.
  std::shared_ptr<const RoutingRuleSet> last_pushed_rules_;
};

}  // namespace slate
