#include "runtime/scenario_loader.h"

#include <cmath>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "contingency/contingency.h"
#include "fault/chaos_campaign.h"
#include "topogen/topogen.h"
#include "util/strfmt.h"
#include "workload/generators.h"

namespace slate {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::runtime_error(strfmt("line %zu: %s", line, message.c_str()));
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) {
    if (token[0] == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

// "25ms" -> 0.025; "3s" -> 3; "150us" -> 1.5e-4; bare numbers are seconds.
// Durations are spans of time: negatives are always a spec error.
double parse_duration(const std::string& text, std::size_t line) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    fail(line, "bad duration '" + text + "'");
  }
  if (value < 0.0) fail(line, "negative duration '" + text + "'");
  const std::string unit = text.substr(pos);
  if (unit.empty() || unit == "s") return value;
  if (unit == "ms") return value * 1e-3;
  if (unit == "us") return value * 1e-6;
  fail(line, "unknown duration unit '" + unit + "'");
}

// "2KB" -> 2048; "1MB" -> 1048576; "512B"/"512" -> 512.
std::uint64_t parse_bytes(const std::string& text, std::size_t line) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    fail(line, "bad size '" + text + "'");
  }
  if (value < 0.0) fail(line, "negative size '" + text + "'");
  const std::string unit = text.substr(pos);
  double scale = 1.0;
  if (unit.empty() || unit == "B") {
    scale = 1.0;
  } else if (unit == "KB") {
    scale = 1024.0;
  } else if (unit == "MB") {
    scale = 1024.0 * 1024.0;
  } else {
    fail(line, "unknown size unit '" + unit + "'");
  }
  return static_cast<std::uint64_t>(value * scale);
}

double parse_number(const std::string& text, std::size_t line) {
  try {
    return std::stod(text);
  } catch (const std::exception&) {
    fail(line, "bad number '" + text + "'");
  }
}

// A whole number >= `min` (replica counts, queue limits, probe counts):
// "servers=-2" must not wrap into a huge unsigned, and "servers=1.5"
// must not silently truncate.
std::uint64_t parse_count(const std::string& text, std::size_t line,
                          std::uint64_t min, const char* what) {
  const double v = parse_number(text, line);
  if (v != std::floor(v)) {
    fail(line, std::string(what) + " must be an integer, got '" + text + "'");
  }
  if (v < static_cast<double>(min)) {
    fail(line, std::string(what) + " must be >= " + std::to_string(min) +
                   ", got '" + text + "'");
  }
  return static_cast<std::uint64_t>(v);
}

bool parse_on_off(const std::string& text, std::size_t line, const char* what) {
  if (text == "on") return true;
  if (text == "off") return false;
  fail(line, std::string(what) + " must be on or off, got '" + text + "'");
}

// Splits "key=value"; returns nullopt for tokens without '='.
std::optional<std::pair<std::string, std::string>> split_kv(
    const std::string& token) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) return std::nullopt;
  return std::make_pair(token.substr(0, eq), token.substr(eq + 1));
}

// Build-time info per class: node label -> node index.
struct ClassBuild {
  ClassId id;
  std::map<std::string, std::size_t> labels;
};

struct DeployDirective {
  std::size_t line;
  std::string service;  // "*" = all
  std::string cluster;  // "*" = all
  unsigned servers = 1;
  double capacity = 0.0;
  bool undeploy = false;
};

// Plain steps and the time-varying generators share one directive list so
// finalize replays them in file order — steps for one stream must land in
// increasing time order regardless of which form produced them.
struct DemandDirective {
  std::size_t line;
  std::string kind = "step";  // step | diurnal | ramp | pulse
  std::string cls;
  std::string cluster;
  double start_time = 0.0;
  double rps = 0.0;
  DiurnalSpec diurnal;
  RampSpec ramp;
  PulseSpec pulse;
};

// Names are resolved at finalize time: faults may reference clusters and
// services declared later in the file.
struct FaultDirective {
  std::size_t line;
  std::string kind;  // outage | blackout | corrupt | slowdown | link | solver
  std::string a;     // cluster / service / edge source
  std::string b;     // slowdown cluster ("*" = all) / edge destination
  double start = 0.0;
  double duration = 0.0;
  double factor = 1.0;
  double extra = 0.0;
  bool partition = false;
  bool has_factor = false;
  bool has_extra = false;
};

// Per-class overload settings reference classes that may be declared later;
// resolved at finalize like faults.
struct OverloadClassDirective {
  std::size_t line;
  std::string kind;  // deadline | priority
  std::string cls;
  double deadline = 0.0;
  int priority = 0;
};

// Per-class admission override ("admission class <name> ..."); class names
// may be forward references, resolved at finalize.
struct AdmissionClassDirective {
  std::size_t line;
  std::string cls;
  double rate = 0.0;  // 0 = keep default
  double slo = 0.0;   // 0 = keep default
};

// Coordinated drain; the cluster may be a forward reference, resolved at
// finalize like faults.
struct DrainDirective {
  std::size_t line;
  std::string cluster;
  DrainSpec spec;  // spec.cluster filled at finalize
};

// Seeded chaos campaign; expanded at finalize against the finished world
// (cluster/service counts must be known).
struct CampaignDirective {
  std::size_t line;
  CampaignSpec spec;
};

}  // namespace

Scenario load_scenario(std::istream& input) {
  Scenario scenario;
  scenario.app = std::make_unique<Application>();
  scenario.topology = std::make_unique<Topology>();

  std::map<std::string, ClassBuild> classes;
  // Class specs are accumulated and registered with the Application at the
  // end (graphs must be complete before add_class).
  std::map<std::string, TrafficClassSpec> class_specs;
  std::vector<std::string> class_order;
  std::vector<DeployDirective> deploys;
  std::vector<DemandDirective> demands;
  std::vector<FaultDirective> faults;
  std::vector<OverloadClassDirective> overloads;
  std::vector<AdmissionClassDirective> admissions;
  std::vector<DrainDirective> drains;
  std::vector<CampaignDirective> campaigns;
  double default_egress = -1.0;
  // `topology synth` replaces the hand-written world wholesale; structural
  // directives on either side of it would silently fight the generator, so
  // both orders are spec errors.
  bool synthesized = false;

  std::string raw;
  std::size_t line_number = 0;
  while (std::getline(input, raw)) {
    ++line_number;
    const auto tokens = tokenize(raw);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];

    auto need = [&](std::size_t count, const char* usage) {
      if (tokens.size() < count) {
        fail(line_number, std::string("usage: ") + usage);
      }
    };
    // Fixed-arity directives reject trailing garbage instead of silently
    // ignoring it (a misspelled attribute must not become a no-op).
    auto exact = [&](std::size_t count, const char* usage) {
      need(count, usage);
      if (tokens.size() > count) {
        fail(line_number, "unexpected trailing token '" + tokens[count] +
                              "' (usage: " + usage + ")");
      }
    };
    auto find_cluster = [&](const std::string& name) {
      const ClusterId id = scenario.topology->find_cluster(name);
      if (!id.valid()) fail(line_number, "unknown cluster '" + name + "'");
      return id;
    };
    auto find_service = [&](const std::string& name) {
      const ServiceId id = scenario.app->find_service(name);
      if (!id.valid()) fail(line_number, "unknown service '" + name + "'");
      return id;
    };

    // Structural directives describe the world by hand; they are mutually
    // exclusive with `topology synth` (which generates all of them).
    auto reject_after_synth = [&] {
      if (synthesized) {
        fail(line_number, "'" + directive +
                              "' cannot follow 'topology synth' (the "
                              "generator owns clusters, services, classes, "
                              "and pricing)");
      }
    };

    if (directive == "scenario") {
      exact(2, "scenario <name>");
      scenario.name = tokens[1];
    } else if (directive == "topology") {
      need(3, "topology synth key=value [key=value...]");
      if (tokens[1] != "synth") {
        fail(line_number, "unknown topology directive '" + tokens[1] +
                              "' (expected synth)");
      }
      if (synthesized) {
        fail(line_number, "duplicate 'topology synth'");
      }
      if (scenario.topology->cluster_count() != 0 ||
          scenario.app->service_count() != 0 || !class_specs.empty()) {
        fail(line_number,
             "'topology synth' must precede all cluster/service/class "
             "directives");
      }
      std::string spec;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        if (!spec.empty()) spec += ' ';
        spec += tokens[i];
      }
      Scenario synth;
      try {
        synth = make_synth_scenario(parse_topogen_spec(spec));
      } catch (const std::invalid_argument& e) {
        fail(line_number, e.what());
      }
      const std::string keep_name = scenario.name;
      scenario.app = std::move(synth.app);
      scenario.topology = std::move(synth.topology);
      scenario.deployment = std::move(synth.deployment);
      scenario.demand = std::move(synth.demand);
      scenario.name = keep_name.empty() ? synth.name : keep_name;
      // Later demand/overload directives resolve generated class names.
      for (ClassId k : scenario.app->all_classes()) {
        classes[scenario.app->traffic_class(k).name].id = k;
      }
      synthesized = true;
    } else if (directive == "cluster") {
      reject_after_synth();
      exact(2, "cluster <name>");
      if (scenario.topology->find_cluster(tokens[1]).valid()) {
        fail(line_number, "duplicate cluster '" + tokens[1] + "'");
      }
      scenario.topology->add_cluster(tokens[1]);
    } else if (directive == "rtt") {
      exact(4, "rtt <a> <b> <duration>");
      scenario.topology->set_rtt(find_cluster(tokens[1]), find_cluster(tokens[2]),
                                 parse_duration(tokens[3], line_number));
    } else if (directive == "one_way") {
      exact(4, "one_way <from> <to> <duration>");
      scenario.topology->set_one_way_latency(
          find_cluster(tokens[1]), find_cluster(tokens[2]),
          parse_duration(tokens[3], line_number));
    } else if (directive == "egress_price") {
      reject_after_synth();
      exact(2, "egress_price <dollars-per-GB>");
      default_egress = parse_number(tokens[1], line_number);
      if (default_egress < 0.0) {
        fail(line_number, "egress_price must be >= 0");
      }
    } else if (directive == "jitter") {
      exact(2, "jitter <fraction>");
      try {
        scenario.topology->set_jitter_fraction(
            parse_number(tokens[1], line_number));
      } catch (const std::invalid_argument& e) {
        fail(line_number, e.what());
      }
    } else if (directive == "service") {
      reject_after_synth();
      exact(2, "service <name>");
      scenario.app->add_service(tokens[1]);
    } else if (directive == "class") {
      reject_after_synth();
      need(2, "class <name> [<method> <path>]");
      if (class_specs.count(tokens[1]) != 0) {
        fail(line_number, "duplicate class '" + tokens[1] + "'");
      }
      TrafficClassSpec spec;
      spec.name = tokens[1];
      if (tokens.size() >= 3) spec.attributes.method = tokens[2];
      if (tokens.size() >= 4) spec.attributes.path = tokens[3];
      class_specs[tokens[1]] = std::move(spec);
      class_order.push_back(tokens[1]);
    } else if (directive == "call") {
      reject_after_synth();
      need(4, "call <class> <parent|root> <service> [key=value...]");
      auto spec_it = class_specs.find(tokens[1]);
      if (spec_it == class_specs.end()) {
        fail(line_number, "unknown class '" + tokens[1] + "'");
      }
      TrafficClassSpec& spec = spec_it->second;
      ClassBuild& build = classes[tokens[1]];
      const ServiceId service = find_service(tokens[3]);

      double compute = 0.0;
      std::uint64_t req = 512, resp = 512;
      double mult = 1.0;
      std::string label = tokens[3];
      InvocationMode mode = InvocationMode::kSequential;
      for (std::size_t i = 4; i < tokens.size(); ++i) {
        const auto kv = split_kv(tokens[i]);
        if (!kv) fail(line_number, "expected key=value, got '" + tokens[i] + "'");
        const auto& [key, value] = *kv;
        if (key == "compute") {
          compute = parse_duration(value, line_number);
        } else if (key == "req") {
          req = parse_bytes(value, line_number);
        } else if (key == "resp") {
          resp = parse_bytes(value, line_number);
        } else if (key == "mult") {
          mult = parse_number(value, line_number);
          if (mult < 0.0) fail(line_number, "mult must be >= 0");
        } else if (key == "label") {
          label = value;
        } else if (key == "mode") {
          if (value == "seq") {
            mode = InvocationMode::kSequential;
          } else if (value == "par") {
            mode = InvocationMode::kParallel;
          } else {
            fail(line_number, "mode must be seq or par");
          }
        } else {
          fail(line_number, "unknown call attribute '" + key + "'");
        }
      }

      std::size_t node;
      if (tokens[2] == "root") {
        if (!spec.graph.empty()) {
          fail(line_number, "class '" + tokens[1] + "' already has a root call");
        }
        node = spec.graph.set_root(service, compute, req, resp);
      } else {
        const auto parent_it = build.labels.find(tokens[2]);
        if (parent_it == build.labels.end()) {
          fail(line_number, "unknown parent call '" + tokens[2] + "'");
        }
        node = spec.graph.add_call(parent_it->second, service, compute, req,
                                   resp, mult);
      }
      spec.graph.set_invocation_mode(node, mode);
      if (build.labels.count(label) != 0) {
        fail(line_number,
             "duplicate call label '" + label + "' (use label=<name>)");
      }
      build.labels[label] = node;
    } else if (directive == "deploy" || directive == "undeploy") {
      const bool undeploy = directive == "undeploy";
      need(3, "deploy <service|*> <cluster|*> [servers=N capacity=RPS]");
      DeployDirective d;
      d.line = line_number;
      d.service = tokens[1];
      d.cluster = tokens[2];
      d.undeploy = undeploy;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        const auto kv = split_kv(tokens[i]);
        if (!kv) fail(line_number, "expected key=value, got '" + tokens[i] + "'");
        if (kv->first == "servers") {
          d.servers = static_cast<unsigned>(
              parse_count(kv->second, line_number, 1, "servers"));
        } else if (kv->first == "capacity") {
          d.capacity = parse_number(kv->second, line_number);
        } else {
          fail(line_number, "unknown deploy attribute '" + kv->first + "'");
        }
      }
      if (!undeploy && d.capacity <= 0.0) {
        fail(line_number, "deploy requires capacity=<RPS>");
      }
      deploys.push_back(std::move(d));
    } else if (directive == "demand") {
      need(4, "demand <class> <cluster> [@t] <rps>");
      if (tokens[1] == "diurnal") {
        const char* usage =
            "demand diurnal <class> <cluster> base=<rps> amp=<rps> "
            "period=<dur> until=<t> [phase=<dur>] [start=<t>] [step=<dur>]";
        need(5, usage);
        DemandDirective d;
        d.line = line_number;
        d.kind = "diurnal";
        d.cls = tokens[2];
        d.cluster = tokens[3];
        bool has_base = false, has_amp = false, has_period = false,
             has_until = false;
        for (std::size_t i = 4; i < tokens.size(); ++i) {
          const auto kv = split_kv(tokens[i]);
          if (!kv) fail(line_number, "expected key=value, got '" + tokens[i] + "'");
          const auto& [key, value] = *kv;
          if (key == "base") {
            d.diurnal.base = parse_number(value, line_number);
            has_base = true;
          } else if (key == "amp") {
            d.diurnal.amplitude = parse_number(value, line_number);
            has_amp = true;
          } else if (key == "period") {
            d.diurnal.period = parse_duration(value, line_number);
            has_period = true;
          } else if (key == "until") {
            d.diurnal.end = parse_duration(value, line_number);
            has_until = true;
          } else if (key == "phase") {
            d.diurnal.phase = parse_duration(value, line_number);
          } else if (key == "start") {
            d.diurnal.start = parse_duration(value, line_number);
          } else if (key == "step") {
            d.diurnal.step = parse_duration(value, line_number);
          } else {
            fail(line_number, "unknown demand diurnal attribute '" + key + "'");
          }
        }
        if (!has_base || !has_amp || !has_period || !has_until) {
          fail(line_number, std::string("usage: ") + usage);
        }
        demands.push_back(std::move(d));
      } else if (tokens[1] == "ramp") {
        const char* usage =
            "demand ramp <class> <cluster> @<start> <duration> from=<rps> "
            "to=<rps> [step=<dur>]";
        need(8, usage);
        DemandDirective d;
        d.line = line_number;
        d.kind = "ramp";
        d.cls = tokens[2];
        d.cluster = tokens[3];
        if (tokens[4][0] != '@') {
          fail(line_number, "expected @<start-time>, got '" + tokens[4] + "'");
        }
        d.ramp.start = parse_duration(tokens[4].substr(1), line_number);
        d.ramp.duration = parse_duration(tokens[5], line_number);
        bool has_from = false, has_to = false;
        for (std::size_t i = 6; i < tokens.size(); ++i) {
          const auto kv = split_kv(tokens[i]);
          if (!kv) fail(line_number, "expected key=value, got '" + tokens[i] + "'");
          const auto& [key, value] = *kv;
          if (key == "from") {
            d.ramp.from_rps = parse_number(value, line_number);
            has_from = true;
          } else if (key == "to") {
            d.ramp.to_rps = parse_number(value, line_number);
            has_to = true;
          } else if (key == "step") {
            d.ramp.step = parse_duration(value, line_number);
          } else {
            fail(line_number, "unknown demand ramp attribute '" + key + "'");
          }
        }
        if (!has_from || !has_to) {
          fail(line_number, std::string("usage: ") + usage);
        }
        demands.push_back(std::move(d));
      } else if (tokens[1] == "pulse") {
        const char* usage =
            "demand pulse <class> <cluster> @<start> <width> base=<rps> "
            "peak=<rps> [decay=<dur>] [step=<dur>]";
        need(8, usage);
        DemandDirective d;
        d.line = line_number;
        d.kind = "pulse";
        d.cls = tokens[2];
        d.cluster = tokens[3];
        if (tokens[4][0] != '@') {
          fail(line_number, "expected @<start-time>, got '" + tokens[4] + "'");
        }
        d.pulse.start = parse_duration(tokens[4].substr(1), line_number);
        d.pulse.width = parse_duration(tokens[5], line_number);
        bool has_base = false, has_peak = false;
        for (std::size_t i = 6; i < tokens.size(); ++i) {
          const auto kv = split_kv(tokens[i]);
          if (!kv) fail(line_number, "expected key=value, got '" + tokens[i] + "'");
          const auto& [key, value] = *kv;
          if (key == "base") {
            d.pulse.base = parse_number(value, line_number);
            has_base = true;
          } else if (key == "peak") {
            d.pulse.peak = parse_number(value, line_number);
            has_peak = true;
          } else if (key == "decay") {
            d.pulse.decay = parse_duration(value, line_number);
          } else if (key == "step") {
            d.pulse.step = parse_duration(value, line_number);
          } else {
            fail(line_number, "unknown demand pulse attribute '" + key + "'");
          }
        }
        if (!has_base || !has_peak) {
          fail(line_number, std::string("usage: ") + usage);
        }
        demands.push_back(std::move(d));
      } else {
        DemandDirective d;
        d.line = line_number;
        d.cls = tokens[1];
        d.cluster = tokens[2];
        std::size_t rate_index = 3;
        if (tokens[3][0] == '@') {
          need(5, "demand <class> <cluster> @<t> <rps>");
          d.start_time = parse_duration(tokens[3].substr(1), line_number);
          rate_index = 4;
        }
        d.rps = parse_number(tokens[rate_index], line_number);
        if (d.rps < 0.0) fail(line_number, "demand rate must be >= 0");
        demands.push_back(std::move(d));
      }
    } else if (directive == "forecast") {
      need(2,
           "forecast <none|last|ewma|linear|holtwinters|oracle> "
           "[key=value...]");
      ForecastOptions& f = scenario.forecast;
      if (!forecast_kind_from_string(tokens[1], &f.kind)) {
        fail(line_number,
             "unknown forecast kind '" + tokens[1] +
                 "' (expected none, last, ewma, linear, holtwinters, oracle)");
      }
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const auto kv = split_kv(tokens[i]);
        if (!kv) fail(line_number, "expected key=value, got '" + tokens[i] + "'");
        const auto& [key, value] = *kv;
        if (key == "alpha") {
          f.ewma_alpha = parse_number(value, line_number);
          if (f.ewma_alpha <= 0.0 || f.ewma_alpha > 1.0) {
            fail(line_number, "alpha must be in (0, 1]");
          }
        } else if (key == "window") {
          f.window = static_cast<std::size_t>(
              parse_count(value, line_number, 2, "window"));
        } else if (key == "season") {
          f.season = static_cast<std::size_t>(
              parse_count(value, line_number, 2, "season"));
        } else if (key == "hw_alpha") {
          f.hw_alpha = parse_number(value, line_number);
          if (f.hw_alpha <= 0.0 || f.hw_alpha > 1.0) {
            fail(line_number, "hw_alpha must be in (0, 1]");
          }
        } else if (key == "hw_beta") {
          f.hw_beta = parse_number(value, line_number);
          if (f.hw_beta < 0.0 || f.hw_beta > 1.0) {
            fail(line_number, "hw_beta must be in [0, 1]");
          }
        } else if (key == "hw_gamma") {
          f.hw_gamma = parse_number(value, line_number);
          if (f.hw_gamma < 0.0 || f.hw_gamma > 1.0) {
            fail(line_number, "hw_gamma must be in [0, 1]");
          }
        } else if (key == "backtest") {
          f.backtest_window = static_cast<std::size_t>(
              parse_count(value, line_number, 1, "backtest"));
        } else if (key == "min_history") {
          f.min_history = static_cast<std::size_t>(
              parse_count(value, line_number, 0, "min_history"));
        } else if (key == "smape_scale") {
          f.smape_scale = parse_number(value, line_number);
          if (f.smape_scale <= 0.0) {
            fail(line_number, "smape_scale must be > 0");
          }
        } else if (key == "max_confidence") {
          f.max_confidence = parse_number(value, line_number);
          if (f.max_confidence < 0.0 || f.max_confidence > 1.0) {
            fail(line_number, "max_confidence must be in [0, 1]");
          }
        } else {
          fail(line_number, "unknown forecast attribute '" + key + "'");
        }
      }
    } else if (directive == "fault" && tokens.size() >= 2 &&
               tokens[1] == "campaign") {
      // Seeded chaos campaign: expands to a concrete fault/drain sequence at
      // finalize (a pure function of seed + world sizes; docs/resilience.md).
      need(3,
           "fault campaign seed=<n> events=<k> [start=<t>] [spacing=<dur>] "
           "[mean_duration=<dur>] [kinds=outage,gray,partition,drain]");
      CampaignDirective cd;
      cd.line = line_number;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const auto kv = split_kv(tokens[i]);
        if (!kv) fail(line_number, "expected key=value, got '" + tokens[i] + "'");
        const auto& [key, value] = *kv;
        if (key == "seed") {
          cd.spec.seed = parse_count(value, line_number, 0, "seed");
        } else if (key == "events") {
          cd.spec.events = static_cast<std::size_t>(
              parse_count(value, line_number, 1, "events"));
        } else if (key == "start") {
          cd.spec.start = parse_duration(value, line_number);
        } else if (key == "spacing") {
          cd.spec.spacing = parse_duration(value, line_number);
          if (cd.spec.spacing <= 0.0) fail(line_number, "spacing must be > 0");
        } else if (key == "mean_duration") {
          cd.spec.mean_duration = parse_duration(value, line_number);
          if (cd.spec.mean_duration <= 0.0) {
            fail(line_number, "mean_duration must be > 0");
          }
        } else if (key == "kinds") {
          cd.spec.kinds = CampaignKinds{false, false, false, false};
          std::string rest = value;
          while (!rest.empty()) {
            const std::size_t comma = rest.find(',');
            const std::string kind = rest.substr(0, comma);
            rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
            if (kind == "outage") {
              cd.spec.kinds.outage = true;
            } else if (kind == "gray") {
              cd.spec.kinds.gray = true;
            } else if (kind == "partition") {
              cd.spec.kinds.partition = true;
            } else if (kind == "drain") {
              cd.spec.kinds.drain = true;
            } else {
              fail(line_number,
                   "unknown campaign kind '" + kind +
                       "' (expected outage, gray, partition, drain)");
            }
          }
        } else {
          fail(line_number, "unknown campaign attribute '" + key + "'");
        }
      }
      if (cd.spec.events == 0) {
        fail(line_number, "fault campaign requires events=<k> (>= 1)");
      }
      campaigns.push_back(std::move(cd));
    } else if (directive == "fault") {
      need(2, "fault <outage|blackout|corrupt|slowdown|link|solver> ...");
      FaultDirective f;
      f.line = line_number;
      f.kind = tokens[1];
      std::size_t i = 0;  // index of @<start>
      if (f.kind == "outage" || f.kind == "blackout") {
        exact(5, "fault <outage|blackout> <cluster> @<start> <duration>");
        f.a = tokens[2];
        i = 3;
      } else if (f.kind == "corrupt") {
        need(5, "fault corrupt <cluster> @<start> <duration> [factor=<x>]");
        f.a = tokens[2];
        i = 3;
      } else if (f.kind == "solver") {
        exact(4, "fault solver @<start> <duration>");
        i = 2;
      } else if (f.kind == "slowdown") {
        need(6,
             "fault slowdown <service> <cluster|*> @<start> <duration> "
             "factor=<x>");
        f.a = tokens[2];
        f.b = tokens[3];
        i = 4;
      } else if (f.kind == "link") {
        need(6,
             "fault link <from> <to> @<start> <duration> "
             "[factor=<x>] [extra=<duration>] [partition]");
        f.a = tokens[2];
        f.b = tokens[3];
        i = 4;
      } else {
        fail(line_number,
             "unknown fault kind '" + f.kind +
                 "' (expected outage, blackout, corrupt, slowdown, link, "
                 "solver, campaign)");
      }
      if (tokens[i][0] != '@') {
        fail(line_number, "expected @<start-time>, got '" + tokens[i] + "'");
      }
      f.start = parse_duration(tokens[i].substr(1), line_number);
      f.duration = parse_duration(tokens[i + 1], line_number);
      for (i += 2; i < tokens.size(); ++i) {
        if (f.kind == "link" && tokens[i] == "partition") {
          f.partition = true;
          continue;
        }
        const auto kv = split_kv(tokens[i]);
        if (!kv) fail(line_number, "expected key=value, got '" + tokens[i] + "'");
        if (kv->first == "factor" &&
            (f.kind == "slowdown" || f.kind == "link" || f.kind == "corrupt")) {
          f.factor = parse_number(kv->second, line_number);
          if (f.factor <= 0.0) fail(line_number, "factor must be > 0");
          if (f.kind == "corrupt" && f.factor <= 1.0) {
            fail(line_number, "corrupt factor must be > 1 (spike multiplier)");
          }
          f.has_factor = true;
        } else if (kv->first == "extra" && f.kind == "link") {
          f.extra = parse_duration(kv->second, line_number);
          f.has_extra = true;
        } else {
          fail(line_number, "unknown fault " + f.kind + " attribute '" +
                                kv->first + "'");
        }
      }
      if (f.kind == "slowdown" && !f.has_factor) {
        fail(line_number, "fault slowdown requires factor=<x>");
      }
      if (f.kind == "link" && !f.partition && !f.has_factor && !f.has_extra) {
        fail(line_number,
             "fault link needs an effect: factor=, extra=, or partition");
      }
      faults.push_back(std::move(f));
    } else if (directive == "overload") {
      need(2, "overload <queue|deadline|priority|breaker> ...");
      const std::string& sub = tokens[1];
      if (sub == "queue") {
        need(3,
             "overload queue limit=<n> [codel_target=<dur>] "
             "[codel_interval=<dur>] [priority_shedding=on|off]");
        QueuePolicy& q = scenario.overload.queue;
        for (std::size_t i = 2; i < tokens.size(); ++i) {
          const auto kv = split_kv(tokens[i]);
          if (!kv) fail(line_number, "expected key=value, got '" + tokens[i] + "'");
          const auto& [key, value] = *kv;
          if (key == "limit") {
            q.max_queue = static_cast<std::size_t>(
                parse_count(value, line_number, 0, "limit"));
          } else if (key == "codel_target") {
            q.codel_target = parse_duration(value, line_number);
            if (q.codel_target <= 0.0) {
              fail(line_number, "codel_target must be > 0");
            }
          } else if (key == "codel_interval") {
            q.codel_interval = parse_duration(value, line_number);
            if (q.codel_interval <= 0.0) {
              fail(line_number, "codel_interval must be > 0");
            }
          } else if (key == "priority_shedding") {
            q.priority_shedding =
                parse_on_off(value, line_number, "priority_shedding");
          } else {
            fail(line_number, "unknown overload queue attribute '" + key + "'");
          }
        }
      } else if (sub == "deadline") {
        // Two forms: a default for all classes (with optional propagate=),
        // or a per-class override ("overload deadline <class> <duration>").
        need(3, "overload deadline <duration>|<class> ...");
        if (tokens.size() >= 4 && tokens[3].find('=') == std::string::npos) {
          exact(4, "overload deadline <class> <duration>");
          OverloadClassDirective od;
          od.line = line_number;
          od.kind = "deadline";
          od.cls = tokens[2];
          od.deadline = parse_duration(tokens[3], line_number);
          if (od.deadline <= 0.0) fail(line_number, "deadline must be > 0");
          overloads.push_back(std::move(od));
        } else {
          DeadlinePolicy& dl = scenario.overload.deadline;
          dl.enabled = true;
          dl.default_deadline = parse_duration(tokens[2], line_number);
          if (dl.default_deadline <= 0.0) {
            fail(line_number, "deadline must be > 0");
          }
          for (std::size_t i = 3; i < tokens.size(); ++i) {
            const auto kv = split_kv(tokens[i]);
            if (!kv) {
              fail(line_number, "expected key=value, got '" + tokens[i] + "'");
            }
            if (kv->first == "propagate") {
              dl.propagate = parse_on_off(kv->second, line_number, "propagate");
            } else {
              fail(line_number,
                   "unknown overload deadline attribute '" + kv->first + "'");
            }
          }
        }
      } else if (sub == "priority") {
        exact(4, "overload priority <class> <level>");
        OverloadClassDirective od;
        od.line = line_number;
        od.kind = "priority";
        od.cls = tokens[2];
        const double level = parse_number(tokens[3], line_number);
        if (level != std::floor(level)) {
          fail(line_number, "priority level must be an integer");
        }
        od.priority = static_cast<int>(level);
        overloads.push_back(std::move(od));
      } else if (sub == "breaker") {
        BreakerPolicy& br = scenario.overload.breaker;
        br.enabled = true;
        for (std::size_t i = 2; i < tokens.size(); ++i) {
          const auto kv = split_kv(tokens[i]);
          if (!kv) fail(line_number, "expected key=value, got '" + tokens[i] + "'");
          const auto& [key, value] = *kv;
          if (key == "window") {
            br.window = parse_duration(value, line_number);
            if (br.window <= 0.0) fail(line_number, "window must be > 0");
          } else if (key == "ratio") {
            br.failure_ratio = parse_number(value, line_number);
            if (br.failure_ratio <= 0.0 || br.failure_ratio > 1.0) {
              fail(line_number, "ratio must be in (0, 1]");
            }
          } else if (key == "min_volume") {
            br.min_volume = static_cast<std::size_t>(
                parse_count(value, line_number, 1, "min_volume"));
          } else if (key == "eject") {
            br.ejection_base = parse_duration(value, line_number);
            if (br.ejection_base <= 0.0) fail(line_number, "eject must be > 0");
          } else if (key == "max_eject") {
            br.max_ejection = parse_duration(value, line_number);
            if (br.max_ejection <= 0.0) {
              fail(line_number, "max_eject must be > 0");
            }
          } else if (key == "probes") {
            br.half_open_probes = static_cast<std::size_t>(
                parse_count(value, line_number, 1, "probes"));
          } else {
            fail(line_number, "unknown overload breaker attribute '" + key + "'");
          }
        }
      } else {
        fail(line_number, "unknown overload kind '" + sub +
                              "' (expected queue, deadline, priority, breaker)");
      }
    } else if (directive == "guard") {
      need(2, "guard <admission|solver|rollout> [key=value...]");
      const std::string& sub = tokens[1];
      if (sub == "admission") {
        AdmissionOptions& g = scenario.guard.admission;
        g.enabled = true;
        for (std::size_t i = 2; i < tokens.size(); ++i) {
          const auto kv = split_kv(tokens[i]);
          if (!kv) fail(line_number, "expected key=value, got '" + tokens[i] + "'");
          const auto& [key, value] = *kv;
          if (key == "max_rps") {
            g.max_rps = parse_number(value, line_number);
            if (g.max_rps <= 0.0) fail(line_number, "max_rps must be > 0");
          } else if (key == "max_latency") {
            g.max_latency = parse_duration(value, line_number);
            if (g.max_latency <= 0.0) fail(line_number, "max_latency must be > 0");
          } else if (key == "max_utilization") {
            g.max_utilization = parse_number(value, line_number);
            if (g.max_utilization <= 0.0) {
              fail(line_number, "max_utilization must be > 0");
            }
          } else if (key == "window") {
            g.mad_window = static_cast<std::size_t>(
                parse_count(value, line_number, 2, "window"));
            if (g.mad_window > 256) {
              fail(line_number, "window must be <= 256");
            }
          } else if (key == "min_history") {
            g.min_history = static_cast<std::size_t>(
                parse_count(value, line_number, 1, "min_history"));
          } else if (key == "threshold") {
            g.mad_threshold = parse_number(value, line_number);
            if (g.mad_threshold <= 0.0) fail(line_number, "threshold must be > 0");
          } else if (key == "noise_floor") {
            g.mad_noise_floor = parse_number(value, line_number);
            if (g.mad_noise_floor < 0.0) {
              fail(line_number, "noise_floor must be >= 0");
            }
          } else if (key == "trust_decay") {
            g.trust_decay = parse_number(value, line_number);
            if (g.trust_decay <= 0.0 || g.trust_decay > 1.0) {
              fail(line_number, "trust_decay must be in (0, 1]");
            }
          } else if (key == "trust_recovery") {
            g.trust_recovery = parse_number(value, line_number);
            if (g.trust_recovery <= 0.0 || g.trust_recovery > 1.0) {
              fail(line_number, "trust_recovery must be in (0, 1]");
            }
          } else if (key == "min_trust") {
            g.min_trust = parse_number(value, line_number);
            if (g.min_trust <= 0.0 || g.min_trust > 1.0) {
              fail(line_number, "min_trust must be in (0, 1]");
            }
          } else {
            fail(line_number, "unknown guard admission attribute '" + key + "'");
          }
        }
      } else if (sub == "solver") {
        SolverGuardOptions& g = scenario.guard.solver;
        g.enabled = true;
        for (std::size_t i = 2; i < tokens.size(); ++i) {
          const auto kv = split_kv(tokens[i]);
          if (!kv) fail(line_number, "expected key=value, got '" + tokens[i] + "'");
          const auto& [key, value] = *kv;
          if (key == "budget") {
            g.wall_budget = parse_duration(value, line_number);
          } else if (key == "enforce_budget") {
            g.enforce_budget = parse_on_off(value, line_number, "enforce_budget");
          } else if (key == "local_bias") {
            g.split_local_bias = parse_number(value, line_number);
            if (g.split_local_bias < 1.0) {
              fail(line_number, "local_bias must be >= 1");
            }
          } else {
            fail(line_number, "unknown guard solver attribute '" + key + "'");
          }
        }
      } else if (sub == "rollout") {
        RolloutOptions& g = scenario.guard.rollout;
        g.enabled = true;
        for (std::size_t i = 2; i < tokens.size(); ++i) {
          const auto kv = split_kv(tokens[i]);
          if (!kv) fail(line_number, "expected key=value, got '" + tokens[i] + "'");
          const auto& [key, value] = *kv;
          if (key == "max_delta") {
            g.max_weight_delta = parse_number(value, line_number);
            if (g.max_weight_delta <= 0.0 || g.max_weight_delta > 1.0) {
              fail(line_number, "max_delta must be in (0, 1]");
            }
          } else if (key == "canary") {
            g.canary_periods = static_cast<std::size_t>(
                parse_count(value, line_number, 1, "canary"));
          } else if (key == "goodput_drop") {
            g.goodput_drop = parse_number(value, line_number);
            if (g.goodput_drop <= 0.0 || g.goodput_drop >= 1.0) {
              fail(line_number, "goodput_drop must be in (0, 1)");
            }
          } else if (key == "p99_rise") {
            g.p99_rise = parse_number(value, line_number);
            if (g.p99_rise <= 0.0) fail(line_number, "p99_rise must be > 0");
          } else if (key == "min_samples") {
            g.min_samples = parse_count(value, line_number, 1, "min_samples");
          } else if (key == "flap_threshold") {
            g.flap_threshold = parse_number(value, line_number);
            if (g.flap_threshold <= 0.0) {
              fail(line_number, "flap_threshold must be > 0");
            }
          } else if (key == "flap_window") {
            g.flap_window = static_cast<std::size_t>(
                parse_count(value, line_number, 2, "flap_window"));
          } else if (key == "freeze") {
            g.freeze_periods = static_cast<std::size_t>(
                parse_count(value, line_number, 1, "freeze"));
          } else if (key == "damping_floor") {
            g.damping_floor = parse_number(value, line_number);
            if (g.damping_floor <= 0.0 || g.damping_floor > 1.0) {
              fail(line_number, "damping_floor must be in (0, 1]");
            }
          } else {
            fail(line_number, "unknown guard rollout attribute '" + key + "'");
          }
        }
      } else {
        fail(line_number, "unknown guard kind '" + sub +
                              "' (expected admission, solver, rollout)");
      }
    } else if (directive == "admission") {
      // Front-door token-bucket admission (docs/overload.md). Two forms:
      //   admission rate=<rps> [burst=<dur>] [slo=<dur>] [key=value...]
      //   admission class <name> [rate=<rps>] [slo=<dur>]
      need(2, "admission rate=<rps> [key=value...] | admission class <name> ...");
      AdmissionPolicy& a = scenario.admission;
      if (tokens[1] == "class") {
        need(4, "admission class <name> [rate=<rps>] [slo=<dur>]");
        AdmissionClassDirective ad;
        ad.line = line_number;
        ad.cls = tokens[2];
        for (std::size_t i = 3; i < tokens.size(); ++i) {
          const auto kv = split_kv(tokens[i]);
          if (!kv) fail(line_number, "expected key=value, got '" + tokens[i] + "'");
          const auto& [key, value] = *kv;
          if (key == "rate") {
            ad.rate = parse_number(value, line_number);
            if (ad.rate <= 0.0) fail(line_number, "rate must be > 0");
          } else if (key == "slo") {
            ad.slo = parse_duration(value, line_number);
            if (ad.slo <= 0.0) fail(line_number, "slo must be > 0");
          } else {
            fail(line_number, "unknown admission class attribute '" + key + "'");
          }
        }
        admissions.push_back(std::move(ad));
      } else {
        a.enabled = true;
        for (std::size_t i = 1; i < tokens.size(); ++i) {
          const auto kv = split_kv(tokens[i]);
          if (!kv) fail(line_number, "expected key=value, got '" + tokens[i] + "'");
          const auto& [key, value] = *kv;
          if (key == "rate") {
            a.default_rate = parse_number(value, line_number);
            if (a.default_rate <= 0.0) fail(line_number, "rate must be > 0");
          } else if (key == "burst") {
            a.burst = parse_duration(value, line_number);
            if (a.burst <= 0.0) fail(line_number, "burst must be > 0");
          } else if (key == "slo") {
            a.default_slo = parse_duration(value, line_number);
            if (a.default_slo <= 0.0) fail(line_number, "slo must be > 0");
          } else if (key == "attainment") {
            a.target_attainment = parse_number(value, line_number);
            if (a.target_attainment <= 0.0 || a.target_attainment > 1.0) {
              fail(line_number, "attainment must be in (0, 1]");
            }
          } else if (key == "gain") {
            a.gain = parse_number(value, line_number);
            if (a.gain <= 0.0 || a.gain >= 1.0) {
              fail(line_number, "gain must be in (0, 1)");
            }
          } else if (key == "headroom") {
            a.headroom = parse_number(value, line_number);
            if (a.headroom < 1.0) fail(line_number, "headroom must be >= 1");
          } else if (key == "fair_floor") {
            a.fair_floor = parse_number(value, line_number);
            if (a.fair_floor < 0.0 || a.fair_floor > 1.0) {
              fail(line_number, "fair_floor must be in [0, 1]");
            }
          } else if (key == "evidence") {
            a.evidence = static_cast<double>(
                parse_count(value, line_number, 1, "evidence"));
          } else if (key == "min_rate") {
            a.min_rate = parse_number(value, line_number);
            if (a.min_rate <= 0.0) fail(line_number, "min_rate must be > 0");
          } else if (key == "max_rate") {
            a.max_rate = parse_number(value, line_number);
            if (a.max_rate <= 0.0) fail(line_number, "max_rate must be > 0");
          } else if (key == "adapt") {
            a.adapt = parse_on_off(value, line_number, "adapt");
          } else {
            fail(line_number, "unknown admission attribute '" + key + "'");
          }
        }
        if (a.max_rate < a.min_rate) {
          fail(line_number, "admission needs min_rate <= max_rate");
        }
      }
    } else if (directive == "contingency") {
      // N-1 headroom planning (docs/resilience.md). Attributes are all
      // optional; the bare directive arms the defaults.
      ContingencyOptions& co = scenario.contingency;
      co.enabled = true;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const auto kv = split_kv(tokens[i]);
        if (!kv) fail(line_number, "expected key=value, got '" + tokens[i] + "'");
        const auto& [key, value] = *kv;
        if (key == "cap") {
          co.max_post_failure_utilization = parse_number(value, line_number);
          if (co.max_post_failure_utilization <= 0.0 ||
              co.max_post_failure_utilization > 1.0) {
            fail(line_number, "cap must be in (0, 1]");
          }
        } else if (key == "pad_step") {
          co.pad_step = parse_number(value, line_number);
          if (co.pad_step <= 0.0 || co.pad_step >= 1.0) {
            fail(line_number, "pad_step must be in (0, 1)");
          }
        } else if (key == "min_cap") {
          co.min_utilization = parse_number(value, line_number);
          if (co.min_utilization <= 0.0 || co.min_utilization > 1.0) {
            fail(line_number, "min_cap must be in (0, 1]");
          }
        } else if (key == "hysteresis") {
          co.relax_hysteresis = parse_number(value, line_number);
          if (co.relax_hysteresis < 0.0) {
            fail(line_number, "hysteresis must be >= 0");
          }
        } else {
          fail(line_number, "unknown contingency attribute '" + key + "'");
        }
      }
      if (co.min_utilization > co.max_post_failure_utilization) {
        fail(line_number, "contingency needs min_cap <= cap");
      }
    } else if (directive == "drain") {
      // Coordinated drain (docs/resilience.md); cluster may be a forward
      // reference, resolved at finalize.
      need(4, "drain <cluster> @<start> over=<dur> [step=<frac>] [sag=<frac>]");
      DrainDirective dd;
      dd.line = line_number;
      dd.cluster = tokens[1];
      if (tokens[2][0] != '@') {
        fail(line_number, "expected @<start-time>, got '" + tokens[2] + "'");
      }
      dd.spec.start = parse_duration(tokens[2].substr(1), line_number);
      bool has_over = false;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        const auto kv = split_kv(tokens[i]);
        if (!kv) fail(line_number, "expected key=value, got '" + tokens[i] + "'");
        const auto& [key, value] = *kv;
        if (key == "over") {
          dd.spec.over = parse_duration(value, line_number);
          if (dd.spec.over <= 0.0) fail(line_number, "over must be > 0");
          has_over = true;
        } else if (key == "step") {
          dd.spec.step = parse_number(value, line_number);
          if (dd.spec.step <= 0.0 || dd.spec.step > 1.0) {
            fail(line_number, "step must be in (0, 1]");
          }
        } else if (key == "sag") {
          dd.spec.sag_threshold = parse_number(value, line_number);
          if (dd.spec.sag_threshold <= 0.0 || dd.spec.sag_threshold >= 1.0) {
            fail(line_number, "sag must be in (0, 1)");
          }
        } else {
          fail(line_number, "unknown drain attribute '" + key + "'");
        }
      }
      if (!has_over) fail(line_number, "drain requires over=<duration>");
      drains.push_back(std::move(dd));
    } else if (directive == "price") {
      // Per-cluster server pricing, the capacity half of the joint cost
      // objective (docs/autoscaling.md). Like rtt, clusters must already
      // exist; `*` prices every cluster uniformly.
      exact(3, "price <cluster|*> <dollars-per-server-hour>");
      const double rate = parse_number(tokens[2], line_number);
      if (rate < 0.0) fail(line_number, "price must be >= 0");
      if (tokens[1] == "*") {
        scenario.topology->set_uniform_server_price(rate);
      } else {
        scenario.topology->set_server_price(find_cluster(tokens[1]), rate);
      }
    } else if (directive == "bilevel") {
      // Bi-level autoscaling x TE co-design (docs/autoscaling.md).
      // Attributes are all optional; the bare directive arms the defaults.
      BilevelOptions& bo = scenario.bilevel;
      bo.enabled = true;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const auto kv = split_kv(tokens[i]);
        if (!kv) fail(line_number, "expected key=value, got '" + tokens[i] + "'");
        const auto& [key, value] = *kv;
        if (key == "horizon") {
          bo.horizon = parse_duration(value, line_number);
          if (bo.horizon <= 0.0) fail(line_number, "horizon must be > 0");
        } else if (key == "ttl") {
          bo.plan_ttl = parse_duration(value, line_number);
          if (bo.plan_ttl <= 0.0) fail(line_number, "ttl must be > 0");
        } else if (key == "weight") {
          bo.server_cost_weight = parse_number(value, line_number);
          if (bo.server_cost_weight < 0.0) {
            fail(line_number, "weight must be >= 0");
          }
        } else if (key == "target") {
          bo.price_target = parse_number(value, line_number);
          if (bo.price_target <= 0.0 || bo.price_target >= 1.0) {
            fail(line_number, "target must be in (0, 1)");
          }
        } else {
          fail(line_number, "unknown bilevel attribute '" + key + "'");
        }
      }
    } else {
      fail(line_number, "unknown directive '" + directive + "'");
    }
  }

  // Finalize: classes, egress pricing, deployment, demand. A synthesized
  // world arrives with all of these already built; only overrides (deploy,
  // demand, faults, overload) replay on top.
  if (scenario.topology->cluster_count() == 0) {
    throw std::runtime_error("scenario defines no clusters");
  }
  if (default_egress >= 0.0) {
    scenario.topology->set_uniform_egress_price(default_egress);
  }
  if (!synthesized) {
    for (const auto& name : class_order) {
      auto& spec = class_specs[name];
      if (spec.graph.empty()) {
        throw std::runtime_error("class '" + name + "' has no root call");
      }
      classes[name].id = scenario.app->add_class(std::move(spec));
    }
    scenario.app->validate();
  }

  // Two explicit directives naming the same (service, cluster) target:
  // the later one would silently overwrite the earlier (Deployment
  // re-deploy semantics), which is always a spec mistake. Wildcards are
  // exempt — `deploy * *` followed by a specific override is the
  // documented idiom.
  {
    std::map<std::pair<std::string, std::string>, std::size_t> explicit_targets;
    for (const auto& d : deploys) {
      if (d.service == "*" || d.cluster == "*") continue;
      const auto [it, inserted] =
          explicit_targets.emplace(std::make_pair(d.service, d.cluster), d.line);
      if (!inserted) {
        fail(d.line,
             strfmt("duplicate %s target '%s %s' (first declared at line %zu)",
                    d.undeploy ? "undeploy" : "deploy", d.service.c_str(),
                    d.cluster.c_str(), it->second));
      }
    }
  }

  if (!synthesized) {
    scenario.deployment = std::make_unique<Deployment>(
        *scenario.app, scenario.topology->cluster_count());
  }
  for (const auto& d : deploys) {
    std::vector<ServiceId> services;
    if (d.service == "*") {
      services = scenario.app->all_services();
    } else {
      const ServiceId id = scenario.app->find_service(d.service);
      if (!id.valid()) fail(d.line, "unknown service '" + d.service + "'");
      services.push_back(id);
    }
    std::vector<ClusterId> clusters;
    if (d.cluster == "*") {
      clusters = scenario.topology->all_clusters();
    } else {
      const ClusterId id = scenario.topology->find_cluster(d.cluster);
      if (!id.valid()) fail(d.line, "unknown cluster '" + d.cluster + "'");
      clusters.push_back(id);
    }
    for (ServiceId s : services) {
      for (ClusterId c : clusters) {
        if (d.undeploy) {
          scenario.deployment->undeploy(s, c);
        } else {
          scenario.deployment->deploy(s, c, d.servers, d.capacity);
        }
      }
    }
  }
  scenario.deployment->validate();

  for (const auto& d : demands) {
    const auto it = classes.find(d.cls);
    if (it == classes.end()) fail(d.line, "unknown class '" + d.cls + "'");
    const ClusterId cluster = scenario.topology->find_cluster(d.cluster);
    if (!cluster.valid()) fail(d.line, "unknown cluster '" + d.cluster + "'");
    try {
      if (d.kind == "diurnal") {
        add_diurnal(scenario.demand, it->second.id, cluster, d.diurnal);
      } else if (d.kind == "ramp") {
        add_ramp(scenario.demand, it->second.id, cluster, d.ramp);
      } else if (d.kind == "pulse") {
        add_pulse(scenario.demand, it->second.id, cluster, d.pulse);
      } else {
        scenario.demand.add_step(it->second.id, cluster, d.start_time, d.rps);
      }
    } catch (const std::invalid_argument& e) {
      fail(d.line, e.what());
    }
  }

  for (const auto& f : faults) {
    auto resolve_cluster = [&](const std::string& name) {
      const ClusterId id = scenario.topology->find_cluster(name);
      if (!id.valid()) fail(f.line, "unknown cluster '" + name + "'");
      return id;
    };
    try {
      if (f.kind == "outage") {
        scenario.faults.cluster_outage(resolve_cluster(f.a), f.start,
                                       f.duration);
      } else if (f.kind == "blackout") {
        scenario.faults.telemetry_blackout(resolve_cluster(f.a), f.start,
                                           f.duration);
      } else if (f.kind == "corrupt") {
        if (f.has_factor) {
          scenario.faults.telemetry_corruption(resolve_cluster(f.a), f.start,
                                               f.duration, f.factor);
        } else {
          scenario.faults.telemetry_corruption(resolve_cluster(f.a), f.start,
                                               f.duration);
        }
      } else if (f.kind == "solver") {
        scenario.faults.solver_outage(f.start, f.duration);
      } else if (f.kind == "slowdown") {
        const ServiceId service = scenario.app->find_service(f.a);
        if (!service.valid()) fail(f.line, "unknown service '" + f.a + "'");
        const ClusterId cluster =
            f.b == "*" ? ClusterId{} : resolve_cluster(f.b);
        scenario.faults.service_slowdown(service, cluster, f.start, f.duration,
                                         f.factor);
      } else {  // link
        const ClusterId from = resolve_cluster(f.a);
        const ClusterId to = resolve_cluster(f.b);
        FaultSpec spec;
        spec.kind = FaultKind::kLinkDegradation;
        spec.start = f.start;
        spec.duration = f.duration;
        spec.cluster = from;
        spec.to = to;
        spec.factor = f.factor;
        spec.extra_latency = f.extra;
        spec.partition = f.partition;
        scenario.faults.add(spec);
      }
    } catch (const std::invalid_argument& e) {
      fail(f.line, e.what());
    }
  }

  // Per-class overload settings (forward class references resolved here).
  for (const auto& od : overloads) {
    const auto it = classes.find(od.cls);
    if (it == classes.end()) fail(od.line, "unknown class '" + od.cls + "'");
    const std::size_t k = it->second.id.index();
    if (od.kind == "deadline") {
      auto& per_class = scenario.overload.deadline.per_class;
      if (per_class.size() <= k) per_class.resize(k + 1, 0.0);
      per_class[k] = od.deadline;
      scenario.overload.deadline.enabled = true;
    } else {
      auto& priority = scenario.overload.queue.class_priority;
      if (priority.size() <= k) priority.resize(k + 1, 0);
      priority[k] = od.priority;
    }
  }

  // Per-class admission overrides (forward class references resolved
  // here). A per-class directive arms the policy like the top-level form.
  for (const auto& ad : admissions) {
    const auto it = classes.find(ad.cls);
    if (it == classes.end()) fail(ad.line, "unknown class '" + ad.cls + "'");
    const std::size_t k = it->second.id.index();
    AdmissionPolicy& a = scenario.admission;
    if (ad.rate > 0.0) {
      if (a.class_rate.size() <= k) a.class_rate.resize(k + 1, 0.0);
      a.class_rate[k] = ad.rate;
    }
    if (ad.slo > 0.0) {
      if (a.class_slo.size() <= k) a.class_slo.resize(k + 1, 0.0);
      a.class_slo[k] = ad.slo;
    }
    a.enabled = true;
  }

  // Drains (forward cluster references resolved here).
  for (const auto& dd : drains) {
    const ClusterId id = scenario.topology->find_cluster(dd.cluster);
    if (!id.valid()) fail(dd.line, "unknown cluster '" + dd.cluster + "'");
    DrainSpec spec = dd.spec;
    spec.cluster = id;
    scenario.drains.push_back(spec);
  }

  // Chaos campaigns expand against the finished world: the fault plan and
  // drain list they append to are the same ones hand-written directives
  // feed, so a campaign scenario is just a scenario with a longer plan.
  for (const auto& cd : campaigns) {
    try {
      expand_campaign(cd.spec, scenario.topology->cluster_count(),
                      scenario.app->service_count(), &scenario.faults,
                      &scenario.drains);
    } catch (const std::invalid_argument& e) {
      fail(cd.line, e.what());
    }
  }
  return scenario;
}

Scenario load_scenario_from_string(const std::string& text) {
  std::istringstream stream(text);
  return load_scenario(stream);
}

Scenario load_scenario_from_file(const std::string& path) {
  std::ifstream stream(path);
  if (!stream) {
    throw std::runtime_error("cannot open scenario file: " + path);
  }
  return load_scenario(stream);
}

}  // namespace slate
