#include "runtime/simulation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>

#include "core/routing_rules.h"
#include "routing/local_only.h"
#include "routing/locality_failover.h"
#include "routing/round_robin.h"
#include "routing/static_weights.h"
#include "routing/waterfall.h"
#include "telemetry/metrics.h"
#include "util/logging.h"

namespace slate {

// Live per-(service, cluster) arrival-rate signal for Waterfall — the
// (fresh) analogue of the load reports Traffic Director distributes.
class Simulation::LiveLoadView final : public LoadView {
 public:
  LiveLoadView(const Simulator& sim, std::size_t services, std::size_t clusters,
               double tau = 1.0)
      : sim_(sim), clusters_(clusters), meters_(services * clusters, RateMeter(tau)) {}

  void observe(ServiceId s, ClusterId c) {
    meters_[s.index() * clusters_ + c.index()].observe(sim_.now());
  }

  [[nodiscard]] double load_rps(ServiceId s, ClusterId c) const override {
    return meters_[s.index() * clusters_ + c.index()].rate(sim_.now());
  }

 private:
  const Simulator& sim_;
  std::size_t clusters_;
  std::vector<RateMeter> meters_;
};

// Sharded Waterfall load signal: islands observe into private meters during
// a window; the barrier hook sums them into the shared snapshot this view
// reads. At most one lookahead window stale — the same kind of staleness a
// distributed load-report bus has.
class Simulation::SnapshotLoadView final : public LoadView {
 public:
  explicit SnapshotLoadView(const FlatMatrix<double>& snapshot)
      : snapshot_(&snapshot) {}

  [[nodiscard]] double load_rps(ServiceId s, ClusterId c) const override {
    return (*snapshot_)(s.index(), c.index());
  }

 private:
  const FlatMatrix<double>* snapshot_;
};

Simulation::~Simulation() = default;

Simulation::Simulation(const Scenario& scenario, const RunConfig& config)
    : scenario_(scenario),
      config_(config),
      cluster_count_(scenario.topology->cluster_count()),
      rng_root_(config.seed),
      // Forking mutates the parent stream; the chaos stream forks a fresh
      // copy of the seed so arming it never perturbs the workload/station/
      // routing draws of an otherwise-identical run.
      rng_chaos_([&config] { return Rng(config.seed).fork(3); }()),
      traces_(config.trace_capacity) {
  const Application& app = *scenario_.app;
  app.validate();
  scenario_.deployment->validate();
  if (scenario_.deployment->cluster_count() != cluster_count_) {
    throw std::invalid_argument("Simulation: deployment/topology mismatch");
  }
  if (config_.warmup >= config_.duration) {
    throw std::invalid_argument("Simulation: warmup must precede duration");
  }

  const std::size_t S = app.service_count();
  const std::size_t K = app.class_count();

  // Effective overload policy: the scenario ships one, each sub-policy the
  // config enables overrides its counterpart (mirrors fault-plan merging).
  overload_ = scenario_.overload;
  if (config_.overload.queue.enabled()) overload_.queue = config_.overload.queue;
  if (config_.overload.deadline.enabled) {
    overload_.deadline = config_.overload.deadline;
  }
  if (config_.overload.breaker.enabled) {
    overload_.breaker = config_.overload.breaker;
  }
  overload_.validate(K);
  deadline_by_class_.assign(K, ServiceStation::kNoDeadline);
  priority_by_class_.assign(K, 0);
  for (std::size_t k = 0; k < K; ++k) {
    if (overload_.deadline.enabled) {
      deadline_by_class_[k] = overload_.deadline.deadline_for(ClassId{k});
    }
    priority_by_class_[k] = overload_.queue.priority_of(ClassId{k});
  }
  if (overload_.breaker.enabled && config_.shards == 0) {
    // Legacy engine: one shared bank. The sharded engine gives each island
    // its own (caller-side health is island-local state).
    breakers_ = std::make_unique<CircuitBreakerBank>(overload_.breaker, S,
                                                     cluster_count_);
  }

  // Effective control-plane guard: the scenario ships one, each gate the
  // config enables overrides its counterpart (same merge the overload
  // policy uses). --no-guard disarms the scenario's gates entirely.
  {
    GuardOptions effective =
        config_.ignore_scenario_guard ? GuardOptions{} : scenario_.guard;
    if (config_.slate.guard.admission.enabled) {
      effective.admission = config_.slate.guard.admission;
    }
    if (config_.slate.guard.solver.enabled) {
      effective.solver = config_.slate.guard.solver;
    }
    if (config_.slate.guard.rollout.enabled) {
      effective.rollout = config_.slate.guard.rollout;
    }
    config_.slate.guard = effective;
  }

  // Effective front-door admission policy: the scenario ships one
  // (`admission` directives), a config-enabled policy overrides it
  // wholesale, and --no-admission disarms the scenario's. The controller
  // exists only when armed — a disabled policy leaves the data path
  // bit-identical to a build without the subsystem.
  {
    AdmissionPolicy effective = config_.ignore_scenario_admission
                                    ? AdmissionPolicy{}
                                    : scenario_.admission;
    if (config_.admission.enabled) effective = config_.admission;
    effective.validate(K);
    admission_policy_ = effective;
    if (admission_policy_.enabled) {
      admission_ = std::make_unique<AdmissionController>(admission_policy_, K,
                                                         cluster_count_);
    }
  }

  // Effective N-1 contingency options: the scenario ships one
  // (`contingency` directive), config-enabled options override it
  // wholesale, and --no-contingency disarms the scenario's. The planner
  // exists only when enabled — a disabled run solves exactly as before.
  {
    ContingencyOptions effective = config_.ignore_scenario_contingency
                                       ? ContingencyOptions{}
                                       : scenario_.contingency;
    if (config_.slate.contingency.enabled) {
      effective = config_.slate.contingency;
    }
    config_.slate.contingency = effective;
  }

  // Effective bi-level co-design options: the scenario ships one (`bilevel`
  // directive), config-enabled options override it wholesale, and
  // --no-bilevel disarms the scenario's. The loop needs both halves it
  // couples — the SLATE control plane and the autoscalers — so it silently
  // disarms without them (a scenario shipping `bilevel` must stay runnable
  // under baseline policies and fixed capacity).
  {
    BilevelOptions effective = config_.ignore_scenario_bilevel
                                   ? BilevelOptions{}
                                   : scenario_.bilevel;
    if (config_.bilevel.enabled) effective = config_.bilevel;
    if (effective.enabled && (config_.policy != PolicyKind::kSlate ||
                              !config_.autoscaler_enabled)) {
      effective.enabled = false;
    }
    config_.bilevel = effective;
    if (effective.enabled && effective.server_cost_weight > 0.0) {
      // Arm the joint $/hr objective before the controller is built below:
      // the solver prices planned busy work as the servers the autoscaler
      // must keep provisioned for it (docs/autoscaling.md).
      config_.slate.optimizer.server_cost_weight = effective.server_cost_weight;
      config_.slate.optimizer.server_price_target =
          effective.price_target > 0.0 ? effective.price_target
                                       : config_.autoscaler.target_utilization;
    }
  }

  // Effective drain schedule: the scenario's (unless --no-drains) plus the
  // config's, mirroring fault-plan merging. drain_keep_ is the data plane's
  // per-cluster view; it moves only at global control barriers.
  if (!config_.ignore_scenario_drains) drains_ = scenario_.drains;
  drains_.insert(drains_.end(), config_.drains.begin(), config_.drains.end());
  drain_keep_.assign(cluster_count_, 1.0);
  for (const DrainSpec& d : drains_) {
    if (!d.cluster.valid() || d.cluster.index() >= cluster_count_) {
      throw std::invalid_argument("Simulation: drain targets an unknown cluster");
    }
  }

  // Effective forecast mode: the scenario ships one (forecast directive),
  // a config-armed kind overrides it wholesale, and --no-forecast disarms
  // the scenario's. The harness owns the prediction horizon (one control
  // period) and, for the oracle, the schedule the future is read from.
  {
    ForecastOptions effective = config_.ignore_scenario_forecast
                                    ? ForecastOptions{}
                                    : scenario_.forecast;
    if (config_.slate.forecast.kind != ForecastKind::kNone) {
      effective = config_.slate.forecast;
    }
    effective.horizon = config_.control_period;
    effective.oracle_schedule = effective.kind == ForecastKind::kOracle
                                    ? &scenario_.demand
                                    : nullptr;
    config_.slate.forecast = effective;
  }

  // Execution engine. The island partition and the conservative lookahead
  // derive from the topology alone, so the schedule is independent of the
  // worker-thread count (byte-identical output for any --shards >= 1).
  if (config_.shards > 0) {
    compute_islands();
    // Worker threads clamp to hardware as well as to the island count:
    // oversubscribing cores buys nothing but context switches, and the
    // schedule (hence the output) never depends on the worker count.
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    sharded_ = std::make_unique<ShardedSimulator>(
        island_count_, lookahead_,
        std::min({config_.shards, island_count_, hw}));
  } else {
    island_of_.assign(cluster_count_, 0);
    island_count_ = 1;
    lookahead_ = std::numeric_limits<double>::infinity();
  }

  // Fault injection: the scenario's shipped plan plus the config's. Fault
  // transitions are control-plane events; they run on the global timeline
  // (at window barriers when sharded) so every island observes each
  // transition at the same boundary.
  FaultPlan merged = scenario_.faults;
  merged.append(config_.faults);
  if (!merged.empty()) {
    injector_ = std::make_unique<FaultInjector>(global_sim(), std::move(merged),
                                                cluster_count_, S);
  }

  // Per-cluster telemetry and rule executors.
  registries_.reserve(cluster_count_);
  rule_policies_.reserve(cluster_count_);
  for (std::size_t c = 0; c < cluster_count_; ++c) {
    registries_.push_back(std::make_unique<MetricsRegistry>(S, K));
    rule_policies_.push_back(
        std::make_shared<WeightedRulesPolicy>(*scenario_.topology));
  }

  // Execution contexts. The fork order on the root stream is load-bearing
  // and mirrors the legacy engine exactly: fork(2) routing (here), fork(1)
  // stations (below), fork(0) workload (in run()).
  Rng routing_parent = rng_root_.fork(2);
  const std::size_t n_ctx = sharded_ != nullptr ? island_count_ : 1;
  ctxs_.reserve(n_ctx);
  for (std::size_t i = 0; i < n_ctx; ++i) {
    auto cx = std::make_unique<ExecCtx>(
        *scenario_.topology, sharded_ != nullptr ? config_.trace_capacity : 0);
    cx->island = static_cast<std::uint32_t>(i);
    if (sharded_ != nullptr) {
      cx->sim = &sharded_->lp(i);
      // Per-island routing stream: each island forks the same parent state
      // with its own tag, so streams are decorrelated and — critically —
      // independent of every other island's draw count. A single island
      // takes the parent stream itself and reproduces the legacy engine's
      // draws exactly.
      if (island_count_ == 1) {
        cx->rng_routing = routing_parent;
      } else {
        Rng parent = routing_parent;
        cx->rng_routing = parent.fork(i);
      }
      // Island-tagged id counters keep merged traces collision-free.
      cx->next_request = static_cast<std::uint64_t>(i) << 24;
      cx->next_span = (static_cast<std::uint64_t>(i) << 48) | 1;
      cx->res_owned = std::make_unique<ExperimentResult>();
      cx->res = cx->res_owned.get();
      cx->traces = cx->traces_owned.enabled() ? &cx->traces_owned : nullptr;
      if (overload_.breaker.enabled) {
        cx->breakers_owned = std::make_unique<CircuitBreakerBank>(
            overload_.breaker, S, cluster_count_);
        cx->breakers = cx->breakers_owned.get();
      }
      if (config_.policy == PolicyKind::kWaterfall) {
        cx->load_meters.assign(S * cluster_count_, RateMeter(1.0));
      }
    } else {
      cx->sim = &sim_;
      cx->rng_routing = routing_parent;  // the legacy fork(2) stream itself
      cx->res = &result_;
      cx->traces = traces_.enabled() ? &traces_ : nullptr;
      cx->breakers = breakers_.get();
    }
    ctxs_.push_back(std::move(cx));
  }

  // Stations and proxies where deployed, each on its cluster's island.
  stations_.resize(S * cluster_count_);
  proxies_.resize(S * cluster_count_);
  Rng station_rng = rng_root_.fork(1);
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t c = 0; c < cluster_count_; ++c) {
      const ServiceId svc{s};
      const ClusterId cluster{c};
      if (!scenario_.deployment->is_deployed(svc, cluster)) continue;
      stations_[station_index(svc, cluster)] = std::make_unique<ServiceStation>(
          *ctx_of(cluster).sim, station_rng.fork(s * cluster_count_ + c), svc,
          cluster, scenario_.deployment->servers(svc, cluster));
      if (overload_.queue.enabled() || overload_.deadline.enabled) {
        StationOverloadConfig sc;
        sc.max_queue = overload_.queue.max_queue;
        sc.priority_shedding = overload_.queue.priority_shedding;
        sc.codel_target = overload_.queue.codel_target;
        sc.codel_interval = overload_.queue.codel_interval;
        sc.cancel_expired =
            overload_.deadline.enabled && overload_.deadline.propagate;
        stations_[station_index(svc, cluster)]->configure_overload(sc);
      }
      proxies_[station_index(svc, cluster)] = std::make_unique<SlateProxy>(
          svc, *registries_[c], rule_policies_[c], ctx_of(cluster).traces);
    }
  }

  if (sharded_ == nullptr) {
    load_view_ = std::make_unique<LiveLoadView>(sim_, S, cluster_count_);
  } else if (config_.policy == PolicyKind::kWaterfall) {
    waterfall_snapshot_ = FlatMatrix<double>(S, cluster_count_, 0.0);
    snapshot_view_ = std::make_unique<SnapshotLoadView>(waterfall_snapshot_);
  }

  // Candidate clusters per service (deployment is immutable during a run).
  candidates_.resize(S);
  for (std::size_t s = 0; s < S; ++s) {
    candidates_[s] = scenario_.deployment->clusters_for(ServiceId{s});
  }

  // Routing scheme.
  if (config_.policy == PolicyKind::kSlate) {
    global_ = std::make_unique<GlobalController>(
        app, *scenario_.deployment, *scenario_.topology, config_.slate);
    for (std::size_t c = 0; c < cluster_count_; ++c) {
      std::vector<ServiceStation*> cluster_stations(S, nullptr);
      for (std::size_t s = 0; s < S; ++s) {
        cluster_stations[s] = stations_[s * cluster_count_ + c].get();
      }
      cluster_controllers_.push_back(std::make_unique<ClusterController>(
          ClusterId{c}, K, *registries_[c], std::move(cluster_stations),
          rule_policies_[c]));
    }
  } else if (sharded_ == nullptr) {
    baseline_policy_ = make_baseline(load_view_.get());
    ctxs_[0]->baseline = baseline_policy_.get();
  } else {
    // Per-island policy instances: stateful baselines (round-robin cursors,
    // waterfall internals) are data-plane state and must not be shared
    // across concurrently executing islands.
    for (auto& cx : ctxs_) {
      cx->baseline_owned = make_baseline(snapshot_view_.get());
      cx->baseline = cx->baseline_owned.get();
    }
  }

  // Result containers.
  result_.scenario = scenario_.name;
  result_.policy = to_string(config_.policy);
  init_result_shape(result_);
  if (sharded_ != nullptr) {
    for (auto& cx : ctxs_) init_result_shape(*cx->res_owned);
  }

  // Pre-size the event queues: walk each demand stream's piecewise-constant
  // schedule for its peak rate and size for the implied in-flight event
  // population (a handful of events per request over a few tens of ms),
  // instead of growing through every power of two during warmup.
  {
    const auto& streams = scenario_.demand.streams();
    double peak_rps = 0.0;
    for (const auto& st : streams) {
      double peak = 0.0;
      double t = 0.0;
      for (int hop = 0; hop < 1024 && t < config_.duration; ++hop) {
        peak = std::max(peak, scenario_.demand.rate_at(st.cls, st.cluster, t));
        const double boundary =
            scenario_.demand.next_change_after(st.cls, st.cluster, t);
        if (!std::isfinite(boundary) || boundary <= t) break;
        t = boundary;
      }
      peak_rps += peak;
    }
    const double est = peak_rps * 0.25 + static_cast<double>(streams.size()) + 64.0;
    const std::size_t reserve = std::clamp(
        static_cast<std::size_t>(est), std::size_t{1024}, std::size_t{1} << 20);
    if (sharded_ != nullptr) {
      for (std::size_t i = 0; i < island_count_; ++i) {
        sharded_->lp(i).reserve_events(reserve / island_count_ + 64);
      }
    } else {
      sim_.reserve_events(reserve);
    }
  }
}

void Simulation::compute_islands() {
  const Topology& topo = *scenario_.topology;
  const std::size_t C = cluster_count_;

  // Union-find over zero-latency pairs: clusters a message can reach in
  // zero simulated time must share an event loop (no lookahead separates
  // them). Everything else is split apart.
  std::vector<std::size_t> parent(C);
  for (std::size_t i = 0; i < C; ++i) parent[i] = i;
  const auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t i = 0; i < C; ++i) {
    for (std::size_t j = i + 1; j < C; ++j) {
      if (topo.one_way_latency(ClusterId{i}, ClusterId{j}) <= 0.0 ||
          topo.one_way_latency(ClusterId{j}, ClusterId{i}) <= 0.0) {
        parent[find(i)] = find(j);
      }
    }
  }

  // Island ids in first-cluster order, so the partition (and with it every
  // island-tagged id and merge order) is deterministic.
  island_of_.assign(C, 0);
  std::vector<std::uint32_t> id_of_root(C, 0xffffffffu);
  std::uint32_t next = 0;
  for (std::size_t c = 0; c < C; ++c) {
    const std::size_t r = find(c);
    if (id_of_root[r] == 0xffffffffu) id_of_root[r] = next++;
    island_of_[c] = id_of_root[r];
  }
  island_count_ = next;

  // Conservative lookahead: no cross-island message can arrive sooner than
  // the cross-island latency floor, even at maximum negative jitter.
  if (island_count_ <= 1) {
    lookahead_ = std::numeric_limits<double>::infinity();
    return;
  }
  double floor = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < C; ++i) {
    for (std::size_t j = 0; j < C; ++j) {
      if (island_of_[i] == island_of_[j]) continue;
      floor = std::min(floor, topo.one_way_latency(ClusterId{i}, ClusterId{j}));
    }
  }
  lookahead_ = floor * (1.0 - topo.jitter_fraction());
}

std::unique_ptr<RoutingPolicy> Simulation::make_baseline(
    const LoadView* view) const {
  switch (config_.policy) {
    case PolicyKind::kLocalOnly:
      return std::make_unique<LocalOnlyPolicy>();
    case PolicyKind::kRoundRobin:
      return std::make_unique<RoundRobinPolicy>();
    case PolicyKind::kLocalityFailover:
      return std::make_unique<LocalityFailoverPolicy>(*scenario_.topology);
    case PolicyKind::kStaticWeights:
      return std::make_unique<StaticWeightsPolicy>(
          StaticWeightsPolicy::make_uniform_spread(*scenario_.topology,
                                                   config_.static_local_share));
    case PolicyKind::kWaterfall:
      return std::make_unique<WaterfallPolicy>(*scenario_.topology,
                                               *scenario_.deployment, *view,
                                               config_.waterfall);
    case PolicyKind::kSlate:
      break;
  }
  return nullptr;
}

void Simulation::init_result_shape(ExperimentResult& r) const {
  const Application& app = *scenario_.app;
  const std::size_t K = app.class_count();
  r.e2e_by_class.resize(K);
  r.failed_by_class.assign(K, 0);
  r.call_retries_by_class.assign(K, 0);
  r.call_timeouts_by_class.assign(K, 0);
  r.retry_budget_denials_by_class.assign(K, 0);
  r.admission_admitted_by_class.assign(K, 0);
  r.admission_rejected_by_class.assign(K, 0);
  r.slo_hits_by_class.assign(K, 0);
  r.flows.resize(K);
  for (std::size_t k = 0; k < K; ++k) {
    const std::size_t nodes = app.traffic_class(ClassId{k}).graph.node_count();
    r.flows[k].assign(
        nodes, FlatMatrix<std::uint64_t>(cluster_count_, cluster_count_, 0));
  }
  if (config_.timeseries_bucket > 0.0) {
    const auto buckets = static_cast<std::size_t>(std::ceil(
                             config_.duration / config_.timeseries_bucket)) +
                         1;
    r.completed_series.assign(buckets, 0);
    r.failed_series.assign(buckets, 0);
    r.series_bucket = config_.timeseries_bucket;
  }
}

double Simulation::net_delay(ExecCtx& cx, ClusterId from, ClusterId to) {
  double d = scenario_.topology->sample_latency(from, to, cx.rng_routing);
  if (injector_ != nullptr) {
    d = d * injector_->latency_factor(from, to) +
        injector_->extra_latency(from, to);
  }
  return d;
}

void Simulation::observe_load(ExecCtx& cx, ServiceId s, ClusterId c) {
  if (load_view_ != nullptr) {
    load_view_->observe(s, c);
    return;
  }
  if (!cx.load_meters.empty()) {
    cx.load_meters[s.index() * cluster_count_ + c.index()].observe(
        cx.sim->now());
  }
}

void Simulation::finish_request_tail(ExecCtx& cx, ClassId cls,
                                     ClusterId ingress, bool ok, double e2e,
                                     bool admitted) {
  // Outcome evidence for the admission adaptation loop (whole run —
  // the loop needs signal during warmup too). Gate-rejected requests
  // are excluded: feeding their fast-fails back would spiral every
  // cut into more cuts.
  if (admission_ != nullptr && admitted) {
    admission_->on_outcome(cls, ingress, ok, e2e);
  }
  if (config_.timeseries_bucket > 0.0) {
    const auto b =
        static_cast<std::size_t>(cx.sim->now() / config_.timeseries_bucket);
    auto& series = ok ? cx.res->completed_series : cx.res->failed_series;
    if (b < series.size()) ++series[b];
  }
  if (!measuring_) return;
  if (ok) {
    ++cx.res->completed;
    cx.res->e2e.add(e2e);
    cx.res->e2e_by_class[cls.index()].add(e2e);
    if (admission_ != nullptr && e2e <= admission_->slo_for(cls)) {
      ++cx.res->slo_hits_by_class[cls.index()];
    }
  } else {
    ++cx.res->failed;
    ++cx.res->failed_by_class[cls.index()];
  }
}

void Simulation::finish_request(ExecCtx& cx, const RequestState& req, bool ok,
                                ServiceId entry, ClusterId entry_cluster) {
  const double e2e = cx.sim->now() - req.arrival_time;
  if (ok) proxy(entry, entry_cluster).on_root_response(req.cls, e2e);
  finish_request_tail(cx, req.cls, req.ingress, ok, e2e, /*admitted=*/true);
}

void Simulation::on_arrival(ClassId cls, ClusterId cluster) {
  const Application& app = *scenario_.app;
  ExecCtx& cx = ctx_of(cluster);
  ++cx.res->generated;

  ReqPtr req = cx.request_pool.make();
  req->id = RequestId{cx.next_request++};
  req->cls = cls;
  req->ingress = cluster;
  req->arrival_time = cx.sim->now();
  // End-to-end budget: the class deadline starts at the front door
  // (kNoDeadline when deadlines are off).
  req->deadline = cx.sim->now() + deadline_by_class_[cls.index()];

  // Front-door admission gate: before the redirect logic, before the
  // telemetry the controller solves on (TE sees admitted demand only),
  // and before execute_node ever runs. A rejection completes
  // synchronously as a fast-fail error.
  if (admission_ != nullptr) {
    if (!admission_->try_admit(cls, cluster, cx.sim->now())) {
      ++cx.res->admission_rejected;
      ++cx.res->admission_rejected_by_class[cls.index()];
      registries_[cluster.index()]->record_ingress_rejected(cls);
      finish_request_tail(cx, cls, cluster, /*ok=*/false, /*e2e=*/0.0,
                          /*admitted=*/false);
      return;
    }
    ++cx.res->admission_admitted;
    ++cx.res->admission_admitted_by_class[cls.index()];
  }

  registries_[cluster.index()]->record_ingress(cls, cx.sim->now());

  const ServiceId entry = app.entry_service(cls);
  ClusterId entry_cluster = cluster;
  // Coordinated drain: the front door sheds (1 - keep) of this cluster's
  // new arrivals to the nearest healthy edge — the DNS/anycast weight shift
  // a real evacuation starts with. Zero RNG draws unless this cluster is
  // mid-drain, so undrained runs stay byte-identical.
  bool drain_divert = false;
  if (drain_orch_ != nullptr) {
    const double keep = drain_keep_[cluster.index()];
    if (keep < 1.0 &&
        (keep <= 0.0 || cx.rng_routing.next_double() >= keep)) {
      drain_divert = true;
    }
  }
  if (!scenario_.deployment->is_deployed(entry, cluster) ||
      cluster_down(cluster) || drain_divert) {
    // Front-door failover: the nearest up cluster hosting the entry service
    // (clients reach a healthy edge via DNS/anycast; the client edge itself
    // is not subject to link partitions).
    std::vector<ClusterId> alive;
    for (ClusterId c : candidates_[entry.index()]) {
      if (cluster_down(c)) continue;
      if (drain_divert && c == cluster) continue;
      if (drain_orch_ != nullptr && c != cluster &&
          drain_keep_[c.index()] <= 0.0) {
        continue;  // never divert INTO a fully evacuated cluster
      }
      alive.push_back(c);
    }
    if (alive.empty() && have_fully_drained_) {
      // Panic: every live alternative is evacuated. An evacuated-but-up
      // cluster beats stranding the request (same rule the breaker's
      // panic-threshold applies to ejections).
      for (ClusterId c : candidates_[entry.index()]) {
        if (cluster_down(c)) continue;
        if (drain_divert && c == cluster) continue;
        alive.push_back(c);
      }
    }
    if (alive.empty()) {
      if (drain_divert &&
          scenario_.deployment->is_deployed(entry, cluster) &&
          !cluster_down(cluster)) {
        // Nowhere to divert to: a drain must degrade to serving locally,
        // never strand traffic the way a real outage would.
        entry_cluster = cluster;
      } else {
        // Every cluster hosting the entry service is down.
        ++cx.res->call_rejections;
        finish_request(cx, *req, false, entry, cluster);
        return;
      }
    } else {
      entry_cluster = scenario_.topology->nearest(cluster, alive);
    }
  }

  if (measuring_) {
    cx.res->flows[cls.index()][0](cluster.index(), entry_cluster.index())++;
  }
  observe_load(cx, entry, entry_cluster);

  if (entry_cluster == cluster) {
    Done finish = [this, req, entry, entry_cluster](bool ok) {
      finish_request(ctx_of(req->ingress), *req, ok, entry, entry_cluster);
    };
    const double deadline = req->deadline;
    execute_node(std::move(req), 0, entry_cluster, 0, deadline,
                 std::move(finish));
    return;
  }

  // Front-door redirect to the nearest cluster hosting the entry service.
  // Cold path: these closures may exceed the inline buffers and spill to
  // the heap — redirects only happen under partial deployments or faults.
  const CallGraph& graph = app.traffic_class(cls).graph;
  cx.egress.record(cluster, entry_cluster, graph.node(0).request_bytes);
  const double d1 = net_delay(cx, cluster, entry_cluster);

  if (island_of(entry_cluster) == cx.island) {
    Done finish = [this, req, entry, entry_cluster](bool ok) {
      finish_request(ctx_of(req->ingress), *req, ok, entry, entry_cluster);
    };
    cx.sim->schedule_after(d1, [this, req = std::move(req), entry_cluster,
                                cluster, finish = std::move(finish)]() mutable {
      ReqPtr r = req;
      ExecCtx& ce = ctx_of(entry_cluster);
      if (overload_.deadline.enabled && r->deadline <= ce.sim->now()) {
        // Born dead in transit: the end-to-end budget expired during the
        // redirect hop. Cancel before execute_node ever runs — even
        // without propagation, work already expired at arrival must not
        // be enqueued.
        ++ce.res->deadline_cancellations;
        const double d2 = net_delay(ce, entry_cluster, cluster);
        ce.sim->schedule_after(d2, [finish = std::move(finish)]() mutable {
          finish(false);
        });
        return;
      }
      const double deadline = r->deadline;
      execute_node(std::move(r), 0, entry_cluster, 0, deadline,
                   [this, req = std::move(req), entry_cluster, cluster,
                    finish = std::move(finish)](bool ok) mutable {
                     ExecCtx& ce = ctx_of(entry_cluster);
                     if (ok) {
                       const CallGraph& g =
                           scenario_.app->traffic_class(req->cls).graph;
                       ce.egress.record(entry_cluster, cluster,
                                        g.node(0).response_bytes);
                     }
                     const double d2 = net_delay(ce, entry_cluster, cluster);
                     ce.sim->schedule_after(
                         d2, [finish = std::move(finish), ok]() mutable {
                           finish(ok);
                         });
                   });
    });
    return;
  }

  // Cross-island redirect: ship the request state by value to the entry
  // island's event loop; no pooled handle crosses the boundary. The entry
  // proxy records the root e2e at response-send time (same value the
  // ingress later counts — the network delay home is added before the
  // observation, not after); the ingress island keeps the run counters.
  const RequestState snap = *req;
  sharded_->send(
      cx.island, island_of(entry_cluster), cx.sim->now() + d1,
      [this, snap, entry, entry_cluster, cluster]() {
        ExecCtx& ce = ctx_of(entry_cluster);
        if (overload_.deadline.enabled && snap.deadline <= ce.sim->now()) {
          // Born dead in transit (cross-island): cancel at delivery,
          // before the remote pool entry or execute_node exist.
          ++ce.res->deadline_cancellations;
          const double d2 = net_delay(ce, entry_cluster, cluster);
          const double e2e = (ce.sim->now() - snap.arrival_time) + d2;
          sharded_->send(ce.island, island_of(cluster), ce.sim->now() + d2,
                         [this, cluster, cls = snap.cls, e2e]() {
                           finish_request_tail(ctx_of(cluster), cls, cluster,
                                               false, e2e, /*admitted=*/true);
                         });
          return;
        }
        ReqPtr r = ce.request_pool.make();
        *r = snap;
        const double deadline = snap.deadline;
        execute_node(
            std::move(r), 0, entry_cluster, 0, deadline,
            [this, arrival = snap.arrival_time, cls = snap.cls, entry,
             entry_cluster, cluster](bool ok) {
              ExecCtx& ce2 = ctx_of(entry_cluster);
              if (ok) {
                const CallGraph& g = scenario_.app->traffic_class(cls).graph;
                ce2.egress.record(entry_cluster, cluster,
                                  g.node(0).response_bytes);
              }
              const double d2 = net_delay(ce2, entry_cluster, cluster);
              const double e2e = (ce2.sim->now() - arrival) + d2;
              if (ok) proxy(entry, entry_cluster).on_root_response(cls, e2e);
              sharded_->send(ce2.island, island_of(cluster),
                             ce2.sim->now() + d2, [this, cluster, cls, ok, e2e]() {
                               finish_request_tail(ctx_of(cluster), cls, cluster,
                                                   ok, e2e, /*admitted=*/true);
                             });
            });
      });
}

void Simulation::execute_node(ReqPtr req, std::size_t node, ClusterId cluster,
                              std::uint64_t parent_span, double deadline,
                              Done done) {
  ExecCtx& cx = ctx_of(cluster);
  if (cluster_down(cluster)) {
    // Every station in a down cluster refuses new work; in-flight jobs run
    // to completion (no preemption).
    ++cx.res->call_rejections;
    done(false);
    return;
  }
  if (overload_.deadline.enabled && overload_.deadline.propagate &&
      deadline <= cx.sim->now()) {
    // The budget is gone before the node even starts: cancel instead of
    // queueing doomed work.
    ++cx.res->deadline_cancellations;
    done(false);
    return;
  }
  const CallGraph& graph = scenario_.app->traffic_class(req->cls).graph;
  const CallNode& cnode = graph.node(node);
  ServiceStation* st = station(cnode.service, cluster);
  if (st == nullptr) {
    throw std::logic_error("Simulation: routed to a cluster without the service");
  }
  SlateProxy& px = proxy(cnode.service, cluster);
  px.on_request_start(req->cls, cx.sim->now());

  double compute = cnode.compute_time_mean;
  if (injector_ != nullptr) {
    // Gray failure: the service is up but slow.
    compute *= injector_->compute_factor(cnode.service, cluster);
  }

  ServiceStation::JobSpec spec;
  spec.service_time_mean = compute;
  spec.priority = priority_by_class_[req->cls.index()];
  spec.deadline = deadline;

  auto ns = cx.node_pool.make();
  ns->req = std::move(req);
  ns->node = static_cast<std::uint32_t>(node);
  ns->cluster = cluster;
  ns->span_id = cx.next_span++;
  ns->parent_span = parent_span;
  ns->enqueue_time = cx.sim->now();
  ns->deadline = deadline;
  ns->done = std::move(done);

  // {this, pool handle} captures: both continuations stay inline. Shed and
  // cancelled jobs fail the node — the error feeds the caller's retry
  // budget exactly like any other fast failure.
  st->submit(spec, [this, ns = std::move(ns)](ServiceStation::JobOutcome outcome,
                                              double queue_s,
                                              double service_s) mutable {
    using JobOutcome = ServiceStation::JobOutcome;
    ns->queue_s = queue_s;
    ns->service_s = service_s;
    if (outcome != JobOutcome::kServed) {
      ExecCtx& c2 = ctx_of(ns->cluster);
      switch (outcome) {
        case JobOutcome::kShedQueueFull: ++c2.res->shed_queue_full; break;
        case JobOutcome::kShedQueueDelay: ++c2.res->shed_queue_delay; break;
        case JobOutcome::kEvicted: ++c2.res->shed_evictions; break;
        case JobOutcome::kCancelled:
        case JobOutcome::kExpired: ++c2.res->deadline_cancellations; break;
        case JobOutcome::kServed: break;
      }
      finish_node(ns, false);
      return;
    }
    ReqPtr req = ns->req;
    const std::uint32_t node = ns->node;
    const ClusterId cluster = ns->cluster;
    const std::uint64_t span_id = ns->span_id;
    const double deadline = ns->deadline;
    run_children(std::move(req), node, cluster, span_id, deadline,
                 [this, ns = std::move(ns)](bool ok) mutable {
                   finish_node(ns, ok);
                 });
  });
}

void Simulation::finish_node(const PoolPtr<NodeState>& ns, bool ok) {
  ExecCtx& cx = ctx_of(ns->cluster);
  const CallGraph& g = scenario_.app->traffic_class(ns->req->cls).graph;
  const CallNode& n = g.node(ns->node);
  Span span;
  span.request = ns->req->id;
  span.cls = ns->req->cls;
  span.call_node = ns->node;
  span.service = n.service;
  span.cluster = ns->cluster;
  span.span_id = ns->span_id;
  span.parent_span_id = ns->parent_span;
  span.start_time = ns->enqueue_time;
  span.end_time = cx.sim->now();
  span.queue_time = ns->queue_s;
  span.exclusive_time = ns->queue_s + ns->service_s;
  span.error = !ok;
  proxy(n.service, ns->cluster).on_request_end(ns->req->cls, span);
  Done done = std::move(ns->done);
  done(ok);
}

void Simulation::run_children(ReqPtr req, std::size_t parent_node,
                              ClusterId cluster, std::uint64_t parent_span,
                              double deadline, Done done) {
  const CallGraph& graph = scenario_.app->traffic_class(req->cls).graph;
  const CallNode& parent = graph.node(parent_node);
  if (parent.children.empty()) {
    done(true);
    return;
  }

  ExecCtx& cx = ctx_of(cluster);
  // Realize per-child multiplicities (floor + Bernoulli fraction).
  auto cs = cx.chain_pool.make();
  for (std::size_t child : parent.children) {
    const double mult = graph.node(child).multiplicity;
    std::size_t count = static_cast<std::size_t>(std::floor(mult));
    if (cx.rng_routing.bernoulli(mult - std::floor(mult))) ++count;
    for (std::size_t i = 0; i < count; ++i) {
      cs->calls.push_back(static_cast<std::uint32_t>(child));
    }
  }
  if (cs->calls.empty()) {
    done(true);
    return;
  }

  if (parent.mode == InvocationMode::kParallel) {
    // A parallel fan-out fails if any child failed; siblings are not
    // cancelled (their responses are awaited, then discarded). The chain
    // record only carried the realized call list; it recycles on return.
    auto fs = cx.fanout_pool.make();
    fs->remaining = cs->calls.size();
    fs->all_ok = true;
    fs->done = std::move(done);
    for (std::size_t i = 0; i < cs->calls.size(); ++i) {
      issue_call(req, cs->calls[i], cluster, parent_span, deadline,
                 [this, fs](bool ok) mutable {
                   if (!ok) fs->all_ok = false;
                   if (--fs->remaining == 0) {
                     Done d = std::move(fs->done);
                     d(fs->all_ok);
                   }
                 });
    }
    return;
  }

  // Sequential chain; aborts at the first failed child. The chain record
  // owns the parent continuation; the per-child wrapper holds a pool handle,
  // so requests still in flight when the simulation ends cannot leak a
  // closure cycle.
  cs->req = std::move(req);
  cs->cluster = cluster;
  cs->parent_span = parent_span;
  cs->deadline = deadline;
  cs->done = std::move(done);
  chain_next(cs, true);
}

void Simulation::chain_next(const PoolPtr<ChainState>& cs, bool ok) {
  if (!ok || cs->index == cs->calls.size()) {
    Done done = std::move(cs->done);
    done(ok);
    return;
  }
  const std::uint32_t child = cs->calls[cs->index++];
  issue_call(cs->req, child, cs->cluster, cs->parent_span, cs->deadline,
             [this, cs = cs](bool child_ok) mutable { chain_next(cs, child_ok); });
}

void Simulation::issue_call(ReqPtr req, std::size_t node, ClusterId from,
                            std::uint64_t parent_span, double deadline,
                            Done done) {
  ExecCtx& cx = ctx_of(from);
  if (config_.failure.enabled) {
    // Each first attempt earns fractional retry credit (Finagle-style
    // budget): retries are bounded at ~ratio x offered call volume.
    cx.retry_tokens = std::min(cx.retry_tokens + config_.failure.retry_budget_ratio,
                               config_.failure.retry_budget_cap);
  }
  auto as = cx.attempt_pool.make();
  as->req = std::move(req);
  as->node = static_cast<std::uint32_t>(node);
  as->from = from;
  as->exclude = ClusterId{};
  as->parent_span = parent_span;
  as->attempt = 0;
  as->slot = kNilSlot;
  as->settled = false;
  as->deadline = deadline;
  as->done = std::move(done);
  start_attempt(as);
}

std::uint32_t Simulation::acquire_slot(ExecCtx& cx,
                                       const PoolPtr<AttemptState>& as) {
  std::uint32_t slot;
  if (cx.free_slot != kNilSlot) {
    slot = cx.free_slot;
    cx.free_slot = cx.slots[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(cx.slots.size());
    cx.slots.emplace_back();
  }
  PendingRemote& pr = cx.slots[slot];
  pr.as = as;  // pins the attempt until release
  pr.next_free = kNilSlot;
  as->slot = slot;
  return slot;
}

void Simulation::release_slot(ExecCtx& cx, AttemptState& as) {
  if (as.slot == kNilSlot) return;
  PendingRemote& pr = cx.slots[as.slot];
  ++pr.gen;  // any response still in flight for this slot is now stale
  pr.as.reset();
  pr.next_free = cx.free_slot;
  cx.free_slot = as.slot;
  as.slot = kNilSlot;
}

void Simulation::on_remote_response(ExecCtx& cx, RemoteToken tok, bool ok) {
  if (tok.slot >= cx.slots.size()) return;
  PendingRemote& pr = cx.slots[tok.slot];
  if (pr.gen != tok.slot_gen || !pr.as) return;  // slot recycled: stale
  const PoolPtr<AttemptState> as = pr.as;        // keep alive across settle
  if (as->attempt != tok.attempt_gen || as->settled) return;
  as->settled = true;
  settle_attempt(as, ok);
}

void Simulation::start_attempt(const PoolPtr<AttemptState>& as) {
  ExecCtx& cx = ctx_of(as->from);
  const Application& app = *scenario_.app;
  const CallGraph& graph = app.traffic_class(as->req->cls).graph;
  const CallNode& cnode = graph.node(as->node);
  const ServiceId child_svc = cnode.service;
  const ClusterId from = as->from;
  const double now = cx.sim->now();

  if (overload_.deadline.enabled && overload_.deadline.propagate &&
      as->deadline <= now) {
    // The call's remaining budget is gone (e.g. burned by earlier attempts'
    // backoff): fail fast without issuing another attempt.
    ++cx.res->deadline_cancellations;
    as->settled = true;
    release_slot(cx, *as);
    Done done = std::move(as->done);
    done(false);
    return;
  }

  const auto& candidates = candidates_[child_svc.index()];

  // Candidate filtering: steer away from the cluster the previous attempt
  // failed on (retry-on-different-cluster) and from clusters the circuit
  // breaker has ejected for this service. Local-only routing has exactly
  // one viable target, so filtering is skipped entirely (the panic-routing
  // rule: with no alternative, ejections and exclusions must not strand
  // the request).
  CircuitBreakerBank* bank = cx.breakers;
  const bool can_reroute = config_.policy != PolicyKind::kLocalOnly;
  const bool exclude_failed = can_reroute && as->exclude.valid() &&
                              config_.failure.retry_excludes_failed;
  // Fully evacuated clusters are filtered like breaker ejections. The flag
  // flips only at global barriers, so the filter set is window-stable.
  const bool exclude_drained = can_reroute && have_fully_drained_;
  // The filter runs on every attempt when breakers are armed, so it reuses
  // the context's scratch vector: a local here would heap-allocate per
  // attempt (the chain-2c-overload allocation regression). The scratch is
  // consumed synchronously below — route() and nearest() read it before any
  // event is scheduled — so reuse across attempts is safe.
  const std::vector<ClusterId>* cand = &candidates;
  std::vector<ClusterId>& filtered = cx.filter_scratch;
  if (exclude_failed || exclude_drained || (can_reroute && bank != nullptr)) {
    filtered.clear();
    for (ClusterId c : candidates) {
      if (exclude_failed && c == as->exclude) continue;
      if (exclude_drained && drain_keep_[c.index()] <= 0.0) continue;
      if (bank != nullptr && !bank->allowed(child_svc, c, now)) {
        continue;
      }
      filtered.push_back(c);
    }
    if (filtered.empty() && (bank != nullptr || exclude_drained)) {
      // Panic routing (Envoy's panic-threshold idea): every candidate is
      // ejected or evacuated, so those filters are ignored rather than
      // failing all traffic.
      for (ClusterId c : candidates) {
        if (exclude_failed && c == as->exclude) continue;
        filtered.push_back(c);
      }
    }
    if (!filtered.empty()) cand = &filtered;
  }

  RouteQuery query;
  query.cls = as->req->cls;
  query.call_node = as->node;
  query.child_service = child_svc;
  query.from = from;
  query.candidates = cand;

  const ServiceId parent_svc = graph.node(cnode.parent).service;
  ClusterId to;
  if (config_.policy == PolicyKind::kSlate) {
    to = proxy(parent_svc, from).route(query, cx.rng_routing);
  } else {
    to = cx.baseline->route(query, cx.rng_routing);
  }
  if (cand == &filtered && filtered.size() != candidates.size()) {
    // Weighted rules ignore the candidate filter; force the failover when
    // the pick is excluded or ejected.
    bool in_filtered = false;
    for (ClusterId c : filtered) {
      if (c == to) {
        in_filtered = true;
        break;
      }
    }
    if (!in_filtered) to = scenario_.topology->nearest(from, filtered);
  }
  as->to = to;

  if (measuring_) {
    cx.res->flows[as->req->cls.index()][as->node](from.index(), to.index())++;
  }
  observe_load(cx, child_svc, to);
  cx.egress.record(from, to, cnode.request_bytes);

  const FailurePolicy& fp = config_.failure;

  // Attempt settlement: the first of {response, timeout, deadline} wins.
  // The attempt record is reused across retries, so every event of this
  // attempt carries its generation and drops itself if a retry has
  // superseded it.
  const std::uint32_t gen = as->attempt;

  // The attempt is abandoned at the per-attempt timeout or the remaining
  // end-to-end budget, whichever comes first.
  double timeout_after = ServiceStation::kNoDeadline;
  if (fp.enabled && fp.call_timeout > 0.0) timeout_after = fp.call_timeout;
  if (overload_.deadline.enabled && overload_.deadline.propagate) {
    timeout_after = std::min(timeout_after, as->deadline - now);
  }
  if (timeout_after < ServiceStation::kNoDeadline) {
    cx.sim->schedule_after(timeout_after, [this, as, gen]() {
      if (as->attempt != gen || as->settled) return;
      ExecCtx& c = ctx_of(as->from);
      as->settled = true;
      ++c.res->call_timeouts;
      ++c.res->call_timeouts_by_class[as->req->cls.index()];
      settle_attempt(as, false);
    });
  }

  // The remaining budget the callee's subtree inherits: the caller stops
  // waiting at now + timeout_after, so any work past that point is wasted
  // regardless of the request deadline. Without propagation the raw
  // deadline is carried for wasted-work accounting only.
  double child_deadline = ServiceStation::kNoDeadline;
  if (overload_.deadline.enabled) {
    child_deadline = overload_.deadline.propagate
                         ? std::min(as->deadline, now + timeout_after)
                         : as->deadline;
  }

  // Request leg. A partitioned link swallows the message: with a timeout
  // the caller notices at the deadline; without one the call hangs — the
  // honest price of a fair-weather configuration in a faulty world.
  if (injector_ != nullptr && injector_->link_partitioned(from, to)) return;

  const double out = net_delay(cx, from, to);

  if (island_of(to) == cx.island) {
    cx.sim->schedule_after(out, [this, as, gen, child_deadline]() mutable {
      // Deadline propagation: an attempt abandoned before the request
      // arrived is not executed by the server.
      if (as->attempt != gen || as->settled) return;
      ReqPtr req = as->req;
      const ClusterId from = as->from;
      const ClusterId to = as->to;
      // The response continuation pins this generation's endpoints by value:
      // by the time it fires a retry may have re-aimed the attempt record.
      execute_node(
          std::move(req), as->node, to, as->parent_span, child_deadline,
          [this, as, gen, from, to](bool ok) mutable {
            // Response leg (errors travel back too, but pay no egress).
            if (injector_ != nullptr && injector_->link_partitioned(to, from)) {
              return;  // response lost; the caller's timeout settles it
            }
            ExecCtx& ct = ctx_of(to);
            if (ok) {
              const CallGraph& g =
                  scenario_.app->traffic_class(as->req->cls).graph;
              ct.egress.record(to, from, g.node(as->node).response_bytes);
            }
            const double back = net_delay(ct, to, from);
            ct.sim->schedule_after(back, [this, as, gen, ok]() {
              if (as->attempt != gen || as->settled) return;
              as->settled = true;
              settle_attempt(as, ok);
            });
          });
    });
    return;
  }

  // Remote leg: the request crosses islands as a by-value message; the
  // response finds its way back through the caller's slot registry. The
  // staleness checks that the local path performs on request arrival run
  // here at send time only — an attempt abandoned while the message is in
  // flight still executes callee-side (wasted work the timeout already
  // charges for), and the late response is dropped by the token.
  if (as->slot == kNilSlot) acquire_slot(cx, as);
  const RemoteToken tok{as->slot, cx.slots[as->slot].gen, gen};
  const RequestState snap = *as->req;
  sharded_->send(
      cx.island, island_of(to), now + out,
      [this, snap, node = as->node, parent_span = as->parent_span,
       child_deadline, from, to, tok]() {
        ExecCtx& ce = ctx_of(to);
        ReqPtr r = ce.request_pool.make();
        *r = snap;
        execute_node(
            std::move(r), node, to, parent_span, child_deadline,
            [this, cls = snap.cls, node, from, to, tok](bool ok) {
              if (injector_ != nullptr &&
                  injector_->link_partitioned(to, from)) {
                return;  // response lost; the caller's timeout settles it
              }
              ExecCtx& ce2 = ctx_of(to);
              if (ok) {
                const CallGraph& g = scenario_.app->traffic_class(cls).graph;
                ce2.egress.record(to, from, g.node(node).response_bytes);
              }
              const double back = net_delay(ce2, to, from);
              sharded_->send(ce2.island, island_of(from),
                             ce2.sim->now() + back, [this, from, tok, ok]() {
                               on_remote_response(ctx_of(from), tok, ok);
                             });
            });
      });
}

void Simulation::settle_attempt(const PoolPtr<AttemptState>& as, bool ok) {
  ExecCtx& cx = ctx_of(as->from);
  if (cx.breakers != nullptr) {
    // Outlier detection: every settled attempt is a health datapoint for
    // the (service, destination) breaker.
    const CallGraph& g = scenario_.app->traffic_class(as->req->cls).graph;
    cx.breakers->on_result(g.node(as->node).service, as->to, ok, cx.sim->now());
  }
  if (ok) {
    release_slot(cx, *as);
    Done done = std::move(as->done);
    done(true);
    return;
  }
  const FailurePolicy& policy = config_.failure;
  // Retrying past the deadline cannot help anyone; the failure is terminal.
  const bool budget_left =
      !(overload_.deadline.enabled && overload_.deadline.propagate &&
        as->deadline <= cx.sim->now());
  if (policy.enabled && budget_left && as->attempt < policy.max_retries) {
    if (cx.retry_tokens >= 1.0) {
      cx.retry_tokens -= 1.0;
      ++cx.res->call_retries;
      ++cx.res->call_retries_by_class[as->req->cls.index()];
      const double backoff =
          policy.backoff_base *
          std::pow(policy.backoff_multiplier, static_cast<double>(as->attempt));
      // Re-arm the same attempt record: bump the generation (stale events
      // of this attempt drop themselves) and steer away from the cluster
      // that just failed. The remote slot — if any — stays held: a late
      // response addressed to the old generation must find the registry
      // entry and miss on the generation check, not hit a recycled slot.
      as->exclude = as->to;
      ++as->attempt;
      as->settled = false;
      cx.sim->schedule_after(backoff, [this, as]() { start_attempt(as); });
      return;
    }
    ++cx.res->retry_budget_denials;
    ++cx.res->retry_budget_denials_by_class[as->req->cls.index()];
  }
  release_slot(cx, *as);
  Done done = std::move(as->done);
  done(false);
}

void Simulation::corrupt_report(ClusterReport& report, double factor) {
  // Finite garbage only: a NaN entering the demand EWMA would persist
  // forever, turning "corrupted period" into "bricked controller" — real
  // byzantine reporters emit wrong numbers, not signalling values.
  // Underreports dominate the mix: dropped counters and truncated
  // accumulators are the common byzantine-reporter failure, and they are
  // the dangerous direction here — an ingress estimate that sags below
  // local capacity talks the controller out of spilling entirely.
  for (double& v : report.ingress_rps) {
    const double roll = rng_chaos_.next_double();
    if (roll < 0.4) {
      v = 0.0;  // dropped counter
    } else if (roll < 0.65) {
      v /= factor;  // truncated accumulator
    } else if (roll < 0.9) {
      v *= factor;  // phantom demand spike
    } else {
      v = -v * factor;  // sign-flipped accumulator
    }
  }
  for (auto& m : report.request_metrics) {
    const double roll = rng_chaos_.next_double();
    if (roll < 0.5) {
      m.mean_latency *= factor;
      m.max_latency *= factor;
    } else if (roll < 0.75) {
      m.completion_rps *= factor;
    } else {
      m.mean_latency = 0.0;
      m.mean_service_time = 0.0;
    }
  }
  for (auto& sm : report.station_metrics) {
    if (rng_chaos_.bernoulli(0.5)) sm.utilization *= factor;
  }
  for (auto& e : report.e2e) {
    if (rng_chaos_.bernoulli(0.5)) {
      e.mean_latency *= factor;
      e.p99_latency *= factor;
    }
  }
}

void Simulation::control_tick() {
  const double now = global_sim().now();
  std::vector<ClusterReport> reports;
  reports.reserve(cluster_controllers_.size());
  for (auto& cc : cluster_controllers_) {
    const bool dark =
        injector_ != nullptr && injector_->telemetry_blackout(cc->cluster());
    ClusterReport report = cc->collect(now);  // local aggregation always runs
    if (dark) {
      // The report is lost in flight, and this period's rule push will not
      // arrive either. After enough missed periods the cluster degrades
      // itself to locality failover rather than executing stale weights.
      cc->age_rules(now, config_.control_period,
                    config_.control_staleness_periods);
      continue;
    }
    if (injector_ != nullptr && injector_->telemetry_corrupt(cc->cluster())) {
      corrupt_report(report, injector_->corrupt_factor(cc->cluster()));
    }
    reports.push_back(std::move(report));
  }
  if (injector_ != nullptr) {
    global_->set_solver_chaos(injector_->solver_down());
  }
  // Bi-level upward coupling: overlay each autoscaler's provisioning-lag-
  // aware effective capacity onto the solver's live-server view.
  if (bilevel_ != nullptr) bilevel_->pre_solve();
  auto rules = global_->on_reports(reports, now);
  // Downward coupling: push the solved plan's per-station busy work into
  // the autoscalers as their planned load.
  if (bilevel_ != nullptr) bilevel_->post_solve();
  const std::uint64_t epoch = global_->last_push_epoch();
  for (auto& cc : cluster_controllers_) {
    if (injector_ != nullptr && injector_->telemetry_blackout(cc->cluster())) {
      continue;
    }
    cc->heartbeat(now);
    if (rules != nullptr) cc->push_rules(rules, epoch);
  }
  if (rules != nullptr) {
    ++rule_pushes_;
    if (last_pushed_rules_ != nullptr) {
      result_.rule_delta_sum += rule_set_distance(*last_pushed_rules_, *rules);
      ++result_.rule_delta_count;
    }
    last_pushed_rules_ = rules;
  } else if (last_pushed_rules_ != nullptr) {
    // A hold period (canary window, solver hold, flap freeze) leaves the
    // fleet executing the same weights: zero movement, but it still counts
    // toward the per-period mean — otherwise a controller that pushes
    // rarely but wildly would score BETTER on flap than one that pushes
    // every period with tiny steps.
    ++result_.rule_delta_count;
  }

  if (config_.record_demand_trace) {
    const FlatMatrix<double>& estimated = global_->demand();
    // Forecast column: the live next-period prediction when a forecaster
    // is armed, else whatever demand the last solve consumed (the oracle's
    // future, or the estimate itself when reactive).
    const FlatMatrix<double>& forecast =
        global_->forecaster() != nullptr ? global_->forecaster()->predicted()
                                         : global_->solve_demand();
    for (std::size_t k = 0; k < estimated.rows(); ++k) {
      for (std::size_t c = 0; c < estimated.cols(); ++c) {
        DemandTracePoint p;
        p.time = now;
        p.cls = static_cast<std::uint32_t>(k);
        p.cluster = static_cast<std::uint32_t>(c);
        p.offered_rps = scenario_.demand.rate_at(ClassId{k}, ClusterId{c}, now);
        p.estimated_rps = estimated(k, c);
        p.forecast_rps = forecast(k, c);
        result_.demand_trace.push_back(p);
      }
    }
  }
}

void Simulation::apply_drain_keep(ClusterId cluster, double keep) {
  drain_keep_[cluster.index()] = keep;
  have_fully_drained_ = false;
  for (double k : drain_keep_) {
    if (k <= 0.0) {
      have_fully_drained_ = true;
      break;
    }
  }
  // The solver sees the draining cluster as shrinking capacity, so weights
  // walk off it ahead of the evacuation instead of reacting to it.
  if (global_ != nullptr) global_->set_drain_scale(cluster, keep);
  // The cluster's autoscalers must not fight the drain by re-adding
  // replicas to capacity the drain is walking away from.
  if (!autoscalers_.empty()) {
    const std::size_t S = scenario_.app->service_count();
    for (std::size_t s = 0; s < S; ++s) {
      const std::size_t idx = s * cluster_count_ + cluster.index();
      if (autoscalers_[idx] != nullptr) {
        autoscalers_[idx]->set_scale_up_inhibited(keep < 1.0);
      }
    }
  }
}

void Simulation::begin_measurement() {
  measuring_ = true;
  for (auto& cx : ctxs_) cx->egress.reset();
  // Stations keep running; utilization for results is derived from
  // lifetime_busy_seconds deltas captured here.
}

void Simulation::refresh_waterfall_snapshot() {
  // At a window barrier every island's clock sits at the window end.
  const double now = sharded_->lp(0).now();
  const std::size_t S = waterfall_snapshot_.rows();
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t c = 0; c < cluster_count_; ++c) {
      double sum = 0.0;
      for (const auto& cx : ctxs_) {
        sum += cx->load_meters[s * cluster_count_ + c].rate(now);
      }
      waterfall_snapshot_(s, c) = sum;
    }
  }
}

void Simulation::merge_results() {
  const std::size_t K = scenario_.app->class_count();
  for (const auto& cp : ctxs_) {
    const ExperimentResult& r = *cp->res_owned;
    result_.generated += r.generated;
    result_.completed += r.completed;
    result_.failed += r.failed;
    result_.call_retries += r.call_retries;
    result_.call_timeouts += r.call_timeouts;
    result_.call_rejections += r.call_rejections;
    result_.retry_budget_denials += r.retry_budget_denials;
    result_.shed_queue_full += r.shed_queue_full;
    result_.shed_queue_delay += r.shed_queue_delay;
    result_.shed_evictions += r.shed_evictions;
    result_.deadline_cancellations += r.deadline_cancellations;
    result_.admission_admitted += r.admission_admitted;
    result_.admission_rejected += r.admission_rejected;
    for (std::size_t k = 0; k < K; ++k) {
      result_.failed_by_class[k] += r.failed_by_class[k];
      result_.call_retries_by_class[k] += r.call_retries_by_class[k];
      result_.call_timeouts_by_class[k] += r.call_timeouts_by_class[k];
      result_.retry_budget_denials_by_class[k] +=
          r.retry_budget_denials_by_class[k];
      result_.admission_admitted_by_class[k] += r.admission_admitted_by_class[k];
      result_.admission_rejected_by_class[k] += r.admission_rejected_by_class[k];
      result_.slo_hits_by_class[k] += r.slo_hits_by_class[k];
    }
    result_.e2e.reserve(result_.e2e.count() + r.e2e.count());
    for (double v : r.e2e.samples()) result_.e2e.add(v);
    for (std::size_t k = 0; k < K; ++k) {
      for (double v : r.e2e_by_class[k].samples()) {
        result_.e2e_by_class[k].add(v);
      }
    }
    for (std::size_t k = 0; k < K; ++k) {
      for (std::size_t n = 0; n < result_.flows[k].size(); ++n) {
        FlatMatrix<std::uint64_t>& dst = result_.flows[k][n];
        const FlatMatrix<std::uint64_t>& src = r.flows[k][n];
        for (std::size_t i = 0; i < dst.rows(); ++i) {
          for (std::size_t j = 0; j < dst.cols(); ++j) {
            dst(i, j) += src(i, j);
          }
        }
      }
    }
    for (std::size_t b = 0; b < result_.completed_series.size(); ++b) {
      result_.completed_series[b] += r.completed_series[b];
      result_.failed_series[b] += r.failed_series[b];
    }
    if (traces_.enabled()) {
      cp->traces_owned.for_each([this](const Span& s) { traces_.record(s); });
    }
  }
}

ExperimentResult Simulation::run() {
  const Application& app = *scenario_.app;
  const std::size_t S = app.service_count();

  // Autoscalers (paper §5 interaction study): one per deployed station,
  // driven by the station's own event loop.
  if (config_.autoscaler_enabled) {
    // Station-indexed (null where not deployed) so a drain can find the
    // scalers of one cluster; the counter loop below skips the holes.
    autoscalers_.resize(stations_.size());
    for (std::size_t i = 0; i < stations_.size(); ++i) {
      if (stations_[i] == nullptr) continue;
      const ClusterId cluster{i % cluster_count_};
      autoscalers_[i] = std::make_unique<Autoscaler>(
          *ctx_of(cluster).sim, *stations_[i], config_.autoscaler);
    }
  }

  // Bi-level coordinator: bridges the controller and the autoscalers once
  // per control period, on the global timeline (control_tick). The merge
  // block already disarmed config_.bilevel unless both halves exist.
  if (config_.bilevel.enabled) {
    bilevel_ = std::make_unique<BilevelCoordinator>(
        *global_, config_.bilevel, config_.control_period, S, cluster_count_);
    for (std::size_t i = 0; i < autoscalers_.size(); ++i) {
      if (autoscalers_[i] != nullptr) bilevel_->attach(i, autoscalers_[i].get());
    }
  }

  // Scheduled capacity changes (failures, manual provisioning). Global
  // timeline: under the sharded engine these apply at window barriers,
  // like every other operator-plane action.
  for (const CapacityEvent& event : config_.capacity_events) {
    ServiceStation* st = station(event.service, event.cluster);
    if (st == nullptr) {
      throw std::invalid_argument(
          "Simulation: capacity event targets an undeployed station");
    }
    global_sim().schedule_at(
        event.time, [st, servers = event.servers]() { st->set_servers(servers); });
  }

  // Faults.
  if (injector_ != nullptr) injector_->arm();

  // Warmup boundary.
  std::vector<double> busy_at_warmup(S * cluster_count_, 0.0);
  std::vector<double> provisioned_at_warmup(S * cluster_count_, 0.0);
  global_sim().schedule_at(
      config_.warmup, [this, &busy_at_warmup, &provisioned_at_warmup]() {
        begin_measurement();
        for (std::size_t i = 0; i < stations_.size(); ++i) {
          if (stations_[i] != nullptr) {
            busy_at_warmup[i] = stations_[i]->lifetime_busy_seconds();
            provisioned_at_warmup[i] = stations_[i]->lifetime_server_seconds();
          }
        }
      });

  // Drain orchestrator: one tick per control period on the global timeline,
  // scheduled before the control loop so a capacity change lands ahead of
  // the same period's solve. Unscheduled (zero events) with no drains.
  if (!drains_.empty()) {
    DrainOrchestrator::Hooks hooks;
    hooks.jobs_served = [this]() {
      std::uint64_t total = 0;
      for (const auto& st : stations_) {
        if (st != nullptr) total += st->jobs_completed();
      }
      return total;
    };
    hooks.cluster_down = [this](ClusterId c) { return cluster_down(c); };
    hooks.apply_keep = [this](ClusterId c, double keep) {
      apply_drain_keep(c, keep);
    };
    drain_orch_ = std::make_unique<DrainOrchestrator>(
        drains_, config_.control_period, std::move(hooks));
    drain_timer_ = global_sim().schedule_scoped_periodic(
        config_.control_period,
        [this]() { drain_orch_->tick(global_sim().now()); });
  }

  // Control loop (RAII handle: cancelled when the Simulation dies).
  if (config_.policy == PolicyKind::kSlate) {
    control_timer_ = global_sim().schedule_scoped_periodic(
        config_.control_period, [this]() { control_tick(); });
  }

  // Admission adaptation loop: once per control period on the global
  // timeline (at window barriers under the sharded engine, where every
  // island is quiesced). Scheduled only when armed with adapt on, so an
  // unarmed run executes zero extra events.
  if (admission_ != nullptr && admission_policy_.adapt) {
    admission_timer_ = global_sim().schedule_scoped_periodic(
        config_.control_period, [this]() {
          const DemandForecaster* f =
              global_ != nullptr ? global_->forecaster() : nullptr;
          admission_->adapt(global_sim().now(),
                            f != nullptr ? &f->predicted() : nullptr,
                            f != nullptr ? &f->confidence() : nullptr);
        });
  }

  // Workload. Each driver forks every stream's RNG from an identical copy
  // of the fork(0) parent, so a stream's arrival sequence is the same no
  // matter which driver owns it — the partitioned sharded workload matches
  // the legacy single-driver workload stream for stream.
  Rng workload_rng = rng_root_.fork(0);
  if (sharded_ == nullptr) {
    workloads_.push_back(std::make_unique<WorkloadDriver>(
        sim_, workload_rng, scenario_.demand, config_.duration,
        [this](ClassId cls, ClusterId cluster) { on_arrival(cls, cluster); }));
    sim_.run_until(config_.duration);
  } else {
    if (config_.policy == PolicyKind::kWaterfall) {
      sharded_->set_barrier_hook([this]() { refresh_waterfall_snapshot(); });
    }
    const auto& streams = scenario_.demand.streams();
    for (std::size_t i = 0; i < island_count_; ++i) {
      const auto island = static_cast<std::uint32_t>(i);
      workloads_.push_back(std::make_unique<WorkloadDriver>(
          sharded_->lp(i), workload_rng, scenario_.demand, config_.duration,
          [this](ClassId cls, ClusterId cluster) { on_arrival(cls, cluster); },
          [this, &streams, island](std::size_t s) {
            return island_of_[streams[s].cluster.index()] == island;
          }));
    }
    sharded_->run_until(config_.duration);
    merge_results();
  }

  // Finalize.
  result_.sim_events = sharded_ != nullptr ? sharded_->events_executed()
                                           : sim_.events_executed();
  result_.measured_seconds = config_.duration - config_.warmup;
  for (const auto& cx : ctxs_) {
    result_.egress_bytes += cx->egress.total_egress_bytes();
    result_.local_bytes += cx->egress.total_local_bytes();
    result_.egress_cost_dollars += cx->egress.total_cost_dollars();
  }
  result_.station_utilization.assign(S * cluster_count_, -1.0);
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    if (stations_[i] == nullptr) continue;
    const double busy = stations_[i]->lifetime_busy_seconds() - busy_at_warmup[i];
    result_.station_utilization[i] =
        busy / (result_.measured_seconds *
                static_cast<double>(stations_[i]->servers()));
    // Provisioned-capacity spend over the measurement window, priced at the
    // station's cluster rate (0 when no `price` directives are set).
    const double provisioned =
        stations_[i]->lifetime_server_seconds() - provisioned_at_warmup[i];
    result_.server_seconds += provisioned;
    result_.server_cost_dollars +=
        provisioned / 3600.0 *
        scenario_.topology->server_price_per_hour(ClusterId{i % cluster_count_});
  }
  if (bilevel_ != nullptr) {
    result_.bilevel_capacity_overrides = bilevel_->capacity_overrides();
    result_.bilevel_plans_pushed = bilevel_->plans_pushed();
  }
  if (global_ != nullptr) {
    result_.controller_rounds = global_->rounds();
    result_.controller_reverts = global_->reverts();
    result_.solver_holds = global_->solver_holds();
    result_.solver_resolve_skips = global_->resolve_skips();
    result_.forecast_solves = global_->forecast_solves();
    const SolveTelemetry& st = global_->solve_telemetry();
    result_.solver_solves = st.solves;
    result_.solver_last_seconds = st.last_seconds;
    result_.solver_max_seconds = st.max_seconds;
    result_.solver_total_seconds = st.total_seconds;
    result_.solver_exact_cold = st.exact_cold;
    result_.solver_exact_warm = st.exact_warm;
    result_.solver_arm_fast = st.fast;
    result_.solver_arm_ripup = st.ripup;
    result_.solver_arm_split = st.split;
    result_.solver_arm_hold = st.hold;
    if (const DemandForecaster* f = global_->forecaster()) {
      result_.forecast_mean_smape = f->mean_smape();
      result_.forecast_mean_confidence = f->mean_confidence();
    }
    if (const ReportValidator* v = global_->validator()) {
      result_.guard_fields_rejected = v->fields_rejected();
      result_.guard_spikes_clamped = v->spikes_clamped();
      result_.guard_interpolations = v->interpolations();
    }
    if (const SolverGuard* sg = global_->solver_guard()) {
      result_.solver_fallbacks = sg->fallbacks();
    }
    if (const RuleRollout* ro = global_->rollout()) {
      result_.rollout_rollbacks = ro->rollbacks();
      result_.rollout_flap_freezes = ro->flap_freezes();
      result_.rollout_damped_pushes = ro->damped_pushes();
    }
    result_.contingency_evals = global_->contingency_evals();
    result_.contingency_resolves = global_->contingency_resolves();
    result_.contingency_margin_last = global_->contingency_margin_last();
    result_.contingency_margin_worst = global_->contingency_margin_worst();
    result_.contingency_pad_level = global_->contingency_pad_level();
  }
  if (drain_orch_ != nullptr) {
    result_.drains_started = drain_orch_->drains_started();
    result_.drains_completed = drain_orch_->drains_completed();
    result_.drains_cancelled = drain_orch_->drains_cancelled();
    result_.drain_pause_periods = drain_orch_->drain_pause_periods();
    result_.drain_steps = drain_orch_->drain_steps();
  }
  for (const auto& cc : cluster_controllers_) {
    result_.stale_rule_pushes += cc->stale_rule_pushes();
  }
  result_.rule_pushes = rule_pushes_;
  if (injector_ != nullptr) {
    result_.fault_transitions = injector_->transitions();
  }
  for (const auto& scaler : autoscalers_) {
    if (scaler == nullptr) continue;
    result_.autoscaler_scale_ups += scaler->scale_ups();
    result_.autoscaler_scale_downs += scaler->scale_downs();
  }
  result_.final_servers.assign(S * cluster_count_, 0);
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    if (stations_[i] != nullptr) {
      result_.final_servers[i] = stations_[i]->servers();
    }
  }
  if (admission_ != nullptr) {
    result_.admission_adapt_rounds = admission_->adapt_rounds();
    result_.admission_rate_raises = admission_->rate_raises();
    result_.admission_rate_cuts = admission_->rate_cuts();
    result_.admission_floor_raises = admission_->floor_raises();
    result_.admission_forecast_widenings = admission_->forecast_widenings();
  }
  if (breakers_ != nullptr) {
    result_.breaker_ejections = breakers_->ejections();
  } else {
    for (const auto& cx : ctxs_) {
      if (cx->breakers_owned != nullptr) {
        result_.breaker_ejections += cx->breakers_owned->ejections();
      }
    }
  }
  // Station-level job conservation and doomed-work accounting.
  for (const auto& st : stations_) {
    if (st == nullptr) continue;
    result_.jobs_submitted += st->jobs_submitted();
    result_.jobs_served += st->jobs_completed();
    result_.jobs_cancelled += st->jobs_cancelled();
    result_.jobs_evicted += st->jobs_evicted();
    result_.jobs_shed += st->jobs_shed();
    result_.jobs_in_flight_at_end += st->busy_servers() + st->queue_length();
    result_.wasted_server_seconds += st->wasted_server_seconds();
  }
  return result_;
}

}  // namespace slate
