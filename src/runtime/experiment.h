// Experiment configuration and results.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "app/application.h"
#include "cluster/autoscaler.h"
#include "cluster/deployment.h"
#include "core/global_controller.h"
#include "net/topology.h"
#include "routing/waterfall.h"
#include "util/stats.h"
#include "workload/demand.h"

namespace slate {

// Which request-routing scheme the data plane runs.
enum class PolicyKind {
  kLocalOnly,         // always local (strict; entry must be deployed)
  kRoundRobin,        // cluster-level round robin
  kLocalityFailover,  // local, else nearest (Istio failover)
  kStaticWeights,     // fixed operator-configured distribution (Istio
                      // locality weighted distribution)
  kWaterfall,         // greedy capacity-based offloading (TD / ServiceRouter)
  kSlate,             // global controller + weighted rules
};

const char* to_string(PolicyKind kind) noexcept;

// A self-contained experiment world. Scenario owns the application,
// topology, deployment (which references the application), and demand
// schedule; heap members keep addresses stable across moves.
struct Scenario {
  std::string name;
  std::unique_ptr<Application> app;
  std::unique_ptr<Topology> topology;
  std::unique_ptr<Deployment> deployment;
  DemandSchedule demand;
};

// A scheduled change to a station's replica count mid-run: failure
// injection (shrink), manual provisioning (grow), cluster degradation.
struct CapacityEvent {
  double time = 0.0;
  ServiceId service;
  ClusterId cluster;
  unsigned servers = 1;
};

struct RunConfig {
  PolicyKind policy = PolicyKind::kSlate;
  double duration = 60.0;  // simulated seconds
  double warmup = 10.0;    // measurements start here
  std::uint64_t seed = 1;
  // Control period for cluster->global reporting and rule pushes.
  double control_period = 1.0;
  WaterfallOptions waterfall;
  // kStaticWeights: share of traffic each cluster keeps at home (the rest
  // spreads evenly across the other clusters).
  double static_local_share = 0.7;
  GlobalControllerOptions slate;
  // Retained spans (0 disables tracing).
  std::size_t trace_capacity = 0;

  // Horizontal autoscaling of every station (paper §5 interaction study).
  bool autoscaler_enabled = false;
  AutoscalerOptions autoscaler;

  // Scheduled capacity changes (applied in addition to autoscaling).
  std::vector<CapacityEvent> capacity_events;
};

struct ExperimentResult {
  std::string scenario;
  std::string policy;

  std::uint64_t generated = 0;  // arrivals in the full run
  std::uint64_t completed = 0;  // completions inside the measurement window

  SampleSet e2e;                        // end-to-end latency, seconds
  std::vector<SampleSet> e2e_by_class;  // index = class id

  // Post-warmup egress accounting.
  std::uint64_t egress_bytes = 0;
  std::uint64_t local_bytes = 0;
  double egress_cost_dollars = 0.0;

  // Post-warmup station utilization, indexed service * clusters + cluster
  // (-1 where not deployed).
  std::vector<double> station_utilization;

  // Post-warmup call routing counts: flows[k][n](i, j) = class-k calls of
  // node n issued from cluster i and served in cluster j.
  std::vector<std::vector<FlatMatrix<std::uint64_t>>> flows;

  // SLATE control-plane counters (zero for baselines).
  std::uint64_t controller_rounds = 0;
  std::uint64_t controller_reverts = 0;
  std::uint64_t rule_pushes = 0;

  // Autoscaler activity (zero when disabled).
  std::uint64_t autoscaler_scale_ups = 0;
  std::uint64_t autoscaler_scale_downs = 0;
  // Final server count per station (service * clusters + cluster; 0 where
  // not deployed) — shows where autoscaling/failures left the fleet.
  std::vector<unsigned> final_servers;

  double measured_seconds = 0.0;

  [[nodiscard]] double mean_latency() const { return e2e.mean(); }
  [[nodiscard]] double p50() const { return e2e.quantile(0.5); }
  [[nodiscard]] double p95() const { return e2e.quantile(0.95); }
  [[nodiscard]] double p99() const { return e2e.quantile(0.99); }
  [[nodiscard]] double throughput_rps() const {
    return measured_seconds > 0.0
               ? static_cast<double>(completed) / measured_seconds
               : 0.0;
  }
  // Fraction of node-n class-k calls served outside their source cluster.
  [[nodiscard]] double remote_fraction(ClassId k, std::size_t node) const;
  // Same, restricted to calls issued from cluster `from`.
  [[nodiscard]] double remote_fraction_from(ClassId k, std::size_t node,
                                            ClusterId from) const;
  // Bytes sent across cluster boundaries per completed request.
  [[nodiscard]] double egress_bytes_per_request() const {
    return completed > 0
               ? static_cast<double>(egress_bytes) / static_cast<double>(completed)
               : 0.0;
  }
};

// Runs `scenario` under `config` and returns measurements.
ExperimentResult run_experiment(const Scenario& scenario, const RunConfig& config);

}  // namespace slate
