// Experiment configuration and results.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "admission/admission_policy.h"
#include "app/application.h"
#include "bilevel/bilevel.h"
#include "cluster/autoscaler.h"
#include "contingency/contingency.h"
#include "cluster/deployment.h"
#include "core/global_controller.h"
#include "fault/fault_plan.h"
#include "net/topology.h"
#include "overload/overload_policy.h"
#include "routing/waterfall.h"
#include "util/stats.h"
#include "workload/demand.h"

namespace slate {

// Which request-routing scheme the data plane runs.
enum class PolicyKind {
  kLocalOnly,         // always local (strict; entry must be deployed)
  kRoundRobin,        // cluster-level round robin
  kLocalityFailover,  // local, else nearest (Istio failover)
  kStaticWeights,     // fixed operator-configured distribution (Istio
                      // locality weighted distribution)
  kWaterfall,         // greedy capacity-based offloading (TD / ServiceRouter)
  kSlate,             // global controller + weighted rules
};

const char* to_string(PolicyKind kind) noexcept;

// A self-contained experiment world. Scenario owns the application,
// topology, deployment (which references the application), and demand
// schedule; heap members keep addresses stable across moves.
struct Scenario {
  std::string name;
  std::unique_ptr<Application> app;
  std::unique_ptr<Topology> topology;
  std::unique_ptr<Deployment> deployment;
  DemandSchedule demand;
  // Scheduled faults shipped with the world (scenario files' `fault`
  // directives). Merged with RunConfig::faults at run time.
  FaultPlan faults;
  // Overload control shipped with the world (`overload` directives). Each
  // enabled sub-policy of RunConfig::overload overrides its counterpart
  // here at run time.
  OverloadPolicy overload;
  // Control-plane hardening shipped with the world (`guard` directives).
  // Each enabled gate of RunConfig::slate.guard overrides its counterpart
  // here at run time; see docs/control_plane.md.
  GuardOptions guard;
  // Demand forecasting shipped with the world (`forecast` directive). A
  // RunConfig-armed kind overrides it wholesale; --no-forecast disarms it.
  // See docs/forecasting.md.
  ForecastOptions forecast;
  // Front-door admission control shipped with the world (`admission`
  // directives). A RunConfig-enabled policy overrides it wholesale;
  // --no-admission disarms it. See docs/overload.md.
  AdmissionPolicy admission;
  // N-1 contingency planning shipped with the world (`contingency`
  // directive). RunConfig-enabled options override it wholesale;
  // --no-contingency disarms it. See docs/resilience.md.
  ContingencyOptions contingency;
  // Coordinated drains shipped with the world (`drain` directives and
  // campaign-expanded drain events). Merged with RunConfig::drains at run
  // time; --no-drains disarms the scenario's.
  std::vector<DrainSpec> drains;
  // Bi-level autoscaling x TE co-design shipped with the world (`bilevel`
  // directive). RunConfig-enabled options override it wholesale;
  // --no-bilevel disarms it. See docs/autoscaling.md.
  BilevelOptions bilevel;
};

// A scheduled change to a station's replica count mid-run: failure
// injection (shrink), manual provisioning (grow), cluster degradation.
struct CapacityEvent {
  double time = 0.0;
  ServiceId service;
  ClusterId cluster;
  unsigned servers = 1;
};

// Per-call failure semantics of the data plane. Disabled (the default) the
// engine behaves as a fair-weather world: calls cannot time out and
// fault-induced failures are terminal on the first attempt. Enabled, every
// inter-service call gets a deadline and retries with exponential backoff
// under a token-bucket retry budget (the standard mesh discipline: Envoy
// retry policies, Finagle budgets).
struct FailurePolicy {
  bool enabled = false;
  // Per-attempt deadline, seconds. The caller abandons the attempt at the
  // deadline; work already queued remains (no cancellation — timed-out work
  // is wasted, as in real meshes). 0 disables timeouts.
  double call_timeout = 0.5;
  // Retries per call after the first attempt.
  std::size_t max_retries = 2;
  // Delay before retry n is backoff_base * backoff_multiplier^n.
  double backoff_base = 0.01;
  double backoff_multiplier = 2.0;
  // Token bucket: each first attempt earns `retry_budget_ratio` tokens, a
  // retry costs 1; at most `retry_budget_cap` tokens bank up. Caps retry
  // amplification during a full outage at ~ratio x offered load.
  double retry_budget_ratio = 0.2;
  double retry_budget_cap = 64.0;
  // A retry prefers a candidate cluster other than the one that just
  // failed, when one exists (retry-on-different-host).
  bool retry_excludes_failed = true;
};

struct RunConfig {
  PolicyKind policy = PolicyKind::kSlate;
  double duration = 60.0;  // simulated seconds
  double warmup = 10.0;    // measurements start here
  std::uint64_t seed = 1;
  // Control period for cluster->global reporting and rule pushes.
  double control_period = 1.0;
  WaterfallOptions waterfall;
  // kStaticWeights: share of traffic each cluster keeps at home (the rest
  // spreads evenly across the other clusters).
  double static_local_share = 0.7;
  GlobalControllerOptions slate;
  // Retained spans (0 disables tracing).
  std::size_t trace_capacity = 0;

  // Parallel sharded execution (docs/performance.md). 0 runs the legacy
  // serial engine, bit-identical to previous releases. Any value >= 1
  // partitions the simulation into one logical process per latency island
  // (for GCP-like topologies, per cluster) under conservative-lookahead
  // synchronization, with up to `shards` worker threads; shards=1 runs the
  // same partitioned schedule single-threaded. All sharded runs of a config
  // produce identical results regardless of the shard count.
  std::size_t shards = 0;

  // Horizontal autoscaling of every station (paper §5 interaction study).
  bool autoscaler_enabled = false;
  AutoscalerOptions autoscaler;

  // Bi-level autoscaling x TE co-design (docs/autoscaling.md). Requires
  // kSlate and autoscaler_enabled; silently inert otherwise. Enabled here
  // overrides the scenario's wholesale.
  BilevelOptions bilevel;
  // Run the scenario with its `bilevel` directive disarmed (slate_cli
  // --no-bilevel). RunConfig::bilevel still applies when enabled.
  bool ignore_scenario_bilevel = false;

  // Scheduled capacity changes (applied in addition to autoscaling).
  std::vector<CapacityEvent> capacity_events;

  // Scheduled faults (merged with Scenario::faults) and the data plane's
  // failure semantics.
  FaultPlan faults;
  FailurePolicy failure;
  // Overload control (bounded queues, deadlines, circuit breaking). Each
  // enabled sub-policy overrides the scenario's; see docs/overload.md.
  OverloadPolicy overload;
  // Control-plane staleness tolerance, in control periods: a cluster
  // controller out of contact with the global controller for longer falls
  // back to locality failover; the global controller decays the demand
  // estimate of clusters unheard from for longer.
  std::size_t control_staleness_periods = 3;
  // When > 0, record per-bucket completion/error counts over the whole run
  // (not just the measurement window) into ExperimentResult::*_series —
  // the goodput-over-time signal fault experiments are judged by.
  double timeseries_bucket = 0.0;
  // Run the scenario with its `guard` directives disarmed (slate_cli
  // --no-guard): only RunConfig::slate.guard gates apply. The unguarded
  // arm of control-plane chaos comparisons.
  bool ignore_scenario_guard = false;
  // Run the scenario with its `forecast` directive disarmed (slate_cli
  // --no-forecast): the reactive arm of predictive comparisons. A kind
  // armed in RunConfig::slate.forecast still applies.
  bool ignore_scenario_forecast = false;
  // Front-door admission control (token buckets at request birth). An
  // enabled policy here overrides the scenario's wholesale; see
  // docs/overload.md.
  AdmissionPolicy admission;
  // Run the scenario with its `admission` directives disarmed (slate_cli
  // --no-admission). RunConfig::admission still applies when enabled.
  bool ignore_scenario_admission = false;
  // Run the scenario with its `contingency` directive disarmed (slate_cli
  // --no-contingency): the reactive-only arm of failover comparisons.
  // RunConfig::slate.contingency still applies when enabled.
  bool ignore_scenario_contingency = false;
  // Run the scenario with its `drain` directives (and campaign-expanded
  // drains) disarmed (slate_cli --no-drains). RunConfig::drains still apply.
  bool ignore_scenario_drains = false;
  // Coordinated drains scheduled by the harness (merged with the
  // scenario's). See docs/resilience.md.
  std::vector<DrainSpec> drains;
  // Record the per-control-period demand trace (offered vs. estimated vs.
  // forecast, per class x cluster cell) into ExperimentResult::demand_trace
  // — the slate_cli --dump-demand signal. Off by default: the trace is
  // periods x classes x clusters doubles.
  bool record_demand_trace = false;
};

// One (control period, class, cluster) sample of the three demand signals:
// what the workload actually offered, what the controller estimated from
// telemetry, and what the armed forecast mode handed the optimizer.
struct DemandTracePoint {
  double time = 0.0;
  std::uint32_t cls = 0;
  std::uint32_t cluster = 0;
  double offered_rps = 0.0;
  double estimated_rps = 0.0;
  double forecast_rps = 0.0;
};

struct ExperimentResult {
  std::string scenario;
  std::string policy;

  std::uint64_t generated = 0;  // arrivals in the full run
  // Successful completions inside the measurement window. With failure
  // semantics disabled and no faults every finished request lands here.
  std::uint64_t completed = 0;
  // Requests that finished with an error (exhausted retries, timeout, or a
  // fault rejection) inside the measurement window.
  std::uint64_t failed = 0;
  std::vector<std::uint64_t> failed_by_class;  // index = class id

  // Data-plane failure-handling activity (whole run, not just measured).
  std::uint64_t call_retries = 0;          // retry attempts issued
  std::uint64_t call_timeouts = 0;         // attempts abandoned at deadline
  std::uint64_t call_rejections = 0;       // attempts refused by a down cluster
  std::uint64_t retry_budget_denials = 0;  // retries suppressed by the budget
  std::uint64_t fault_transitions = 0;     // injector activations + clearings
  // Per-class breakdowns of the above (index = class id).
  std::vector<std::uint64_t> call_retries_by_class;
  std::vector<std::uint64_t> call_timeouts_by_class;
  std::vector<std::uint64_t> retry_budget_denials_by_class;

  // Overload-control activity (whole run; zero with the subsystem off).
  std::uint64_t shed_queue_full = 0;   // arrivals rejected by a full queue
  std::uint64_t shed_queue_delay = 0;  // arrivals rejected by the CoDel shedder
  std::uint64_t shed_evictions = 0;    // queued jobs evicted by higher priority
  // Work cancelled because its deadline had expired (at call issue, at
  // station admission, or at dispatch).
  std::uint64_t deadline_cancellations = 0;
  std::uint64_t breaker_ejections = 0;  // circuit-breaker trips
  // Server-seconds burned on jobs already past their deadline at dispatch —
  // >0 only when deadlines are carried without propagation.
  double wasted_server_seconds = 0.0;
  [[nodiscard]] std::uint64_t total_shed() const noexcept {
    return shed_queue_full + shed_queue_delay + shed_evictions;
  }

  // Front-door admission activity (whole run; zero with the subsystem
  // off). When armed, every arrival is gated before any call-tree work:
  // generated = admission_admitted + admission_rejected, and rejections
  // complete synchronously as fast-fail errors.
  std::uint64_t admission_admitted = 0;
  std::uint64_t admission_rejected = 0;
  std::vector<std::uint64_t> admission_admitted_by_class;  // index = class id
  std::vector<std::uint64_t> admission_rejected_by_class;
  // Measured-window successes that landed inside their class SLO
  // (admission armed only) — p99-vs-SLO attainment is
  // slo_hits_by_class[k] / e2e_by_class[k].count().
  std::vector<std::uint64_t> slo_hits_by_class;
  // Adaptation-loop telemetry (zero with adapt off).
  std::uint64_t admission_adapt_rounds = 0;
  std::uint64_t admission_rate_raises = 0;
  std::uint64_t admission_rate_cuts = 0;
  std::uint64_t admission_floor_raises = 0;
  std::uint64_t admission_forecast_widenings = 0;

  // Station-level job conservation, summed over stations at run end:
  // jobs_submitted = jobs_served + jobs_cancelled + jobs_evicted +
  // jobs_in_flight_at_end (jobs_shed were refused and never admitted).
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_served = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t jobs_evicted = 0;
  std::uint64_t jobs_shed = 0;
  std::uint64_t jobs_in_flight_at_end = 0;

  SampleSet e2e;                        // end-to-end latency of successes, seconds
  std::vector<SampleSet> e2e_by_class;  // index = class id

  // Post-warmup egress accounting.
  std::uint64_t egress_bytes = 0;
  std::uint64_t local_bytes = 0;
  double egress_cost_dollars = 0.0;

  // Post-warmup provisioned-capacity accounting: the integral of servers()
  // over measured time summed across stations, and its cost at each
  // cluster's $/server-hour price (0 when no prices are set). Always
  // recorded — it is pure bookkeeping with no simulation events.
  double server_seconds = 0.0;
  double server_cost_dollars = 0.0;
  // Egress + server spend — the joint objective the bi-level co-design
  // minimizes (docs/autoscaling.md).
  [[nodiscard]] double total_cost_dollars() const noexcept {
    return egress_cost_dollars + server_cost_dollars;
  }

  // Bi-level co-design activity (zero with the subsystem off).
  std::uint64_t bilevel_capacity_overrides = 0;  // overlay cells != live view
  std::uint64_t bilevel_plans_pushed = 0;        // periods pushed downward

  // Post-warmup station utilization, indexed service * clusters + cluster
  // (-1 where not deployed).
  std::vector<double> station_utilization;

  // Post-warmup call routing counts: flows[k][n](i, j) = class-k calls of
  // node n issued from cluster i and served in cluster j.
  std::vector<std::vector<FlatMatrix<std::uint64_t>>> flows;

  // SLATE control-plane counters (zero for baselines).
  std::uint64_t controller_rounds = 0;
  std::uint64_t controller_reverts = 0;
  std::uint64_t rule_pushes = 0;

  // Control-plane hardening activity (zero with every gate off; see
  // docs/control_plane.md).
  std::uint64_t guard_fields_rejected = 0;  // admission: poisoned fields
  std::uint64_t guard_spikes_clamped = 0;   // admission: MAD-gate clamps
  std::uint64_t guard_interpolations = 0;   // admission: last-good substitutions
  std::uint64_t solver_fallbacks = 0;       // solves settled below rung 0
  std::uint64_t solver_holds = 0;           // periods held with no usable plan
  // Periods skipped by the resolve_tolerance gate (demand flat since the
  // last solve; rules held with zero churn and zero solver time).
  std::uint64_t solver_resolve_skips = 0;

  // Per-period solver wall time and arm selection (SLATE runs only; see
  // SolveTelemetry in core/global_controller.h). Measurement-only: reported
  // here and in the slate_cli summary, never fed back into plan selection.
  std::uint64_t solver_solves = 0;
  double solver_last_seconds = 0.0;
  double solver_max_seconds = 0.0;
  double solver_total_seconds = 0.0;
  std::uint64_t solver_exact_cold = 0;   // exact LP, cold simplex
  std::uint64_t solver_exact_warm = 0;   // exact LP, warm-started (memo/basis)
  std::uint64_t solver_arm_fast = 0;     // marginal-cost descent arm
  std::uint64_t solver_arm_ripup = 0;    // negotiated-congestion rip-up arm
  std::uint64_t solver_arm_split = 0;    // capacity-split arm
  std::uint64_t solver_arm_hold = 0;     // periods that produced no plan
  [[nodiscard]] double mean_solve_seconds() const noexcept {
    return solver_solves > 0
               ? solver_total_seconds / static_cast<double>(solver_solves)
               : 0.0;
  }
  std::uint64_t rollout_rollbacks = 0;      // canary-triggered reverts
  std::uint64_t rollout_flap_freezes = 0;   // flap-detector freezes
  std::uint64_t rollout_damped_pushes = 0;  // pushes clipped by the delta cap
  std::uint64_t stale_rule_pushes = 0;      // epoch-stale pushes discarded
  // Rule-churn signal: per-control-period L1 distance between successive
  // actuated rule sets. Periods that hold the previous rules (canary
  // window, solver hold, flap freeze) contribute zero movement but still
  // count, so the mean measures actuation churn per unit time rather than
  // per push.
  double rule_delta_sum = 0.0;
  std::uint64_t rule_delta_count = 0;
  [[nodiscard]] double mean_rule_delta() const noexcept {
    return rule_delta_count > 0
               ? rule_delta_sum / static_cast<double>(rule_delta_count)
               : 0.0;
  }

  // N-1 contingency planning activity (zero with the subsystem off; see
  // docs/resilience.md). Margins are worst-case post-failure max station
  // utilization: the load the hottest station would see if the worst single
  // cluster failed right now and its traffic rerouted along the data plane's
  // failover rules.
  std::uint64_t contingency_evals = 0;      // periods margin-checked
  std::uint64_t contingency_resolves = 0;   // padded re-solves issued
  double contingency_margin_last = 0.0;     // final period's margin
  double contingency_margin_worst = 0.0;    // max margin over the run
  std::uint64_t contingency_pad_level = 0;  // pad level at run end

  // Coordinated drain activity (zero with no drains scheduled).
  std::uint64_t drains_started = 0;
  std::uint64_t drains_completed = 0;
  std::uint64_t drains_cancelled = 0;     // overlapped by an outage
  std::uint64_t drain_pause_periods = 0;  // steps held on goodput sag
  std::uint64_t drain_steps = 0;          // weight steps actually taken

  // Forecast activity (zero/-1 with forecasting off; docs/forecasting.md).
  std::uint64_t forecast_solves = 0;     // optimizations fed forecast demand
  double forecast_mean_smape = -1.0;     // rolling backtest error, [0, 2]
  double forecast_mean_confidence = 0.0; // mean blend weight across cells

  // Per-period demand signals (RunConfig::record_demand_trace).
  std::vector<DemandTracePoint> demand_trace;

  // Autoscaler activity (zero when disabled).
  std::uint64_t autoscaler_scale_ups = 0;
  std::uint64_t autoscaler_scale_downs = 0;
  // Final server count per station (service * clusters + cluster; 0 where
  // not deployed) — shows where autoscaling/failures left the fleet.
  std::vector<unsigned> final_servers;

  // Whole-run success/error counts per RunConfig::timeseries_bucket-second
  // bucket (empty when the timeseries is disabled). Index i covers
  // [i * bucket, (i+1) * bucket).
  std::vector<std::uint64_t> completed_series;
  std::vector<std::uint64_t> failed_series;
  double series_bucket = 0.0;

  // Discrete events the simulator executed over the whole run — the raw
  // work unit the engine's perf (bench/micro_simulator) is measured in.
  std::uint64_t sim_events = 0;

  double measured_seconds = 0.0;

  [[nodiscard]] double mean_latency() const { return e2e.mean(); }
  [[nodiscard]] double p50() const { return e2e.quantile(0.5); }
  [[nodiscard]] double p95() const { return e2e.quantile(0.95); }
  [[nodiscard]] double p99() const { return e2e.quantile(0.99); }
  // Finished requests (success + error) per measured second.
  [[nodiscard]] double throughput_rps() const {
    return measured_seconds > 0.0
               ? static_cast<double>(completed + failed) / measured_seconds
               : 0.0;
  }
  // Successful requests per measured second — the number faults depress.
  [[nodiscard]] double goodput_rps() const {
    return measured_seconds > 0.0
               ? static_cast<double>(completed) / measured_seconds
               : 0.0;
  }
  // Errors as a fraction of finished requests (0 when nothing finished).
  [[nodiscard]] double error_rate() const {
    const std::uint64_t finished = completed + failed;
    return finished > 0
               ? static_cast<double>(failed) / static_cast<double>(finished)
               : 0.0;
  }
  [[nodiscard]] double error_rate(ClassId k) const;
  // Mean goodput RPS over timeseries buckets intersecting [from, to).
  [[nodiscard]] double goodput_in_window(double from, double to) const;
  // Fraction of node-n class-k calls served outside their source cluster.
  [[nodiscard]] double remote_fraction(ClassId k, std::size_t node) const;
  // Same, restricted to calls issued from cluster `from`.
  [[nodiscard]] double remote_fraction_from(ClassId k, std::size_t node,
                                            ClusterId from) const;
  // Bytes sent across cluster boundaries per completed request.
  [[nodiscard]] double egress_bytes_per_request() const {
    return completed > 0
               ? static_cast<double>(egress_bytes) / static_cast<double>(completed)
               : 0.0;
  }
};

// Runs `scenario` under `config` and returns measurements.
ExperimentResult run_experiment(const Scenario& scenario, const RunConfig& config);

}  // namespace slate
