// Text scenario format.
//
// Lets users describe a complete experiment world — clusters, services,
// per-class call trees, deployment, demand — in a plain-text file and run it
// with the bundled CLI (examples/slate_cli.cc) instead of writing C++.
//
// Format: one directive per line; '#' starts a comment; case-sensitive
// names; durations accept s/ms/us suffixes, sizes accept B/KB/MB.
//
//   scenario checkout-demo
//
//   cluster west
//   cluster east
//   rtt west east 25ms          # symmetric; one_way A B 10ms also exists
//   egress_price 0.08           # $/GB for every inter-cluster pair
//   jitter 0.05                 # optional +-5% latency jitter
//
//   service ingress
//   service worker
//
//   class checkout POST /api/checkout
//   call checkout root ingress compute=0.1ms req=512B resp=2KB
//   call checkout ingress worker compute=2ms req=512B resp=2KB mult=1 mode=seq
//
//   deploy * * servers=1 capacity=450
//   deploy worker east servers=2 capacity=900
//   undeploy worker west
//
//   demand checkout west 400
//   demand checkout west @30s 800   # piecewise-constant step at t=30s
//   demand checkout east 100
//
// `call <class> <parent> <service> ...` attaches a call under the node
// labelled <parent> ("root" for the entry call; a call's label defaults to
// its service name, override with label=<name> when a service appears more
// than once in a tree).
#pragma once

#include <iosfwd>
#include <string>

#include "runtime/experiment.h"

namespace slate {

// Parses a scenario description. Throws std::runtime_error with a
// "line N: message" diagnostic on malformed input.
Scenario load_scenario(std::istream& input);
Scenario load_scenario_from_string(const std::string& text);
Scenario load_scenario_from_file(const std::string& path);

}  // namespace slate
