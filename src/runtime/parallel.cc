#include "runtime/parallel.h"

#include <atomic>
#include <cmath>
#include <exception>
#include <utility>

namespace slate {

WorkerPool::WorkerPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? hw : 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void WorkerPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into its future
  }
}

std::vector<ExperimentResult> run_experiment_grid(
    const std::vector<GridJob>& jobs, const GridOptions& options) {
  std::vector<ExperimentResult> results(jobs.size());
  if (jobs.empty()) return results;

  std::size_t width = options.jobs;
  if (width == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    width = hw > 0 ? hw : 1;
  }
  width = std::min(width, jobs.size());

  std::mutex progress_mutex;
  std::size_t finished = 0;

  WorkerPool pool(width);
  std::vector<std::future<void>> futures;
  futures.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    futures.push_back(pool.submit([&, i]() {
      const GridJob& job = jobs[i];
      if (job.scenario == nullptr) {
        throw std::invalid_argument("run_experiment_grid: job without scenario");
      }
      // Each job builds a private Simulation seeded from its own config —
      // no state is shared between jobs, so the result is byte-identical
      // to a serial run of the same job.
      results[i] = run_experiment(*job.scenario, job.config);
      if (options.progress) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        options.progress(++finished, jobs.size());
      }
    }));
  }

  // Collect in job order; remember the first failure but let every job
  // finish (futures are drained regardless).
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::uint64_t replicate_seed(std::uint64_t base, std::size_t index) noexcept {
  if (index == 0) return base;
  // SplitMix64 finalizer over (base, index) — decorrelates replicates even
  // for adjacent base seeds.
  std::uint64_t z = base + 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(index);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

MeanCI mean_ci95(const std::vector<double>& values) noexcept {
  MeanCI out;
  out.n = values.size();
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  if (values.size() < 2) return out;
  double ss = 0.0;
  for (double v : values) {
    const double d = v - out.mean;
    ss += d * d;
  }
  const double stddev =
      std::sqrt(ss / static_cast<double>(values.size() - 1));
  out.ci95 = 1.96 * stddev / std::sqrt(static_cast<double>(values.size()));
  return out;
}

}  // namespace slate
