// Parallel experiment execution.
//
// Every (Scenario, RunConfig) job is an independent world: run_experiment
// constructs a private Simulator and derives every random stream from the
// job's own seed, and the engine keeps no global mutable state. Jobs
// therefore parallelize perfectly — run_experiment_grid fans a job list
// across a fixed-size worker pool and returns results in job order,
// byte-identical to running the same list serially.
//
// The paper asks for control loops that react in seconds at planet scale
// (§5); validating that across scenario × policy × seed grids is only
// practical when experiment throughput scales with cores (cf. ServiceRouter,
// OSDI '23, validated across thousands of configurations).
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <condition_variable>
#include <deque>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "runtime/experiment.h"

namespace slate {

// A fixed-size thread pool. Tasks run in submission order (single FIFO
// queue); submit() returns a future through which results and exceptions
// propagate. The destructor drains outstanding tasks, then joins.
class WorkerPool {
 public:
  // `threads` = 0 uses hardware_concurrency() (minimum 1).
  explicit WorkerPool(std::size_t threads = 0);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  // Enqueues `fn` for execution; the returned future yields fn's result or
  // rethrows whatever it threw.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

// One cell of an experiment grid. The scenario is borrowed: it must outlive
// the grid run and must not be mutated while jobs execute (concurrent
// *const* access from several jobs is safe — a Simulation only reads it).
struct GridJob {
  const Scenario* scenario = nullptr;
  RunConfig config;
  std::string label;  // optional caller bookkeeping; not interpreted
};

struct GridOptions {
  // Worker threads; 0 = hardware_concurrency(). 1 degenerates to serial
  // execution on a single worker thread.
  std::size_t jobs = 0;
  // Called after each job completes, with (finished, total). Invoked under
  // an internal mutex, from worker threads; keep it cheap.
  std::function<void(std::size_t finished, std::size_t total)> progress;
};

// Runs every job and returns results in job order. If any job throws, the
// remaining jobs still run to completion and the first failing job's
// exception (in job order) is rethrown.
std::vector<ExperimentResult> run_experiment_grid(
    const std::vector<GridJob>& jobs, const GridOptions& options = {});

// Derives the seed for replicate `index` of a replication study from a base
// seed. SplitMix64-mixed so neighbouring replicates share no obvious
// structure, and stable across platforms (documented contract: replicate 0
// is the base seed itself).
[[nodiscard]] std::uint64_t replicate_seed(std::uint64_t base,
                                           std::size_t index) noexcept;

// Mean and 95% confidence half-width (normal approximation; 0 for n < 2)
// of a metric across replicates.
struct MeanCI {
  double mean = 0.0;
  double ci95 = 0.0;
  std::size_t n = 0;
};
[[nodiscard]] MeanCI mean_ci95(const std::vector<double>& values) noexcept;

}  // namespace slate
