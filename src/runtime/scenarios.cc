#include "runtime/scenarios.h"

#include <algorithm>

#include "net/gcp_topology.h"

namespace slate {
namespace {

// Nominal service rate of `service` (requests/second per server) as the
// inverse of its largest per-class compute mean — the conservative figure an
// operator would provision against.
double nominal_mu_per_server(const Application& app, ServiceId service) {
  double worst_compute = 0.0;
  for (ClassId k : app.all_classes()) {
    const CallGraph& graph = app.traffic_class(k).graph;
    for (std::size_t n : graph.nodes_for_service(service)) {
      worst_compute = std::max(worst_compute, graph.node(n).compute_time_mean);
    }
  }
  // A service that does no measurable compute is effectively unbounded.
  return worst_compute > 0.0 ? 1.0 / worst_compute : 1e9;
}

}  // namespace

Scenario make_two_cluster_chain_scenario(const TwoClusterChainParams& params) {
  Scenario scenario;
  scenario.name = "two-cluster-chain";
  scenario.app = std::make_unique<Application>(make_linear_chain_app(params.app));
  scenario.topology = std::make_unique<Topology>(
      make_two_cluster_topology(params.rtt, params.egress_dollars_per_gb));
  scenario.deployment =
      std::make_unique<Deployment>(*scenario.app, scenario.topology->cluster_count());

  const ClusterId west{0}, east{1};
  for (ServiceId s : scenario.app->all_services()) {
    const double mu = nominal_mu_per_server(*scenario.app, s);
    scenario.deployment->deploy(s, west, params.west_servers,
                                params.capacity_fraction * mu * params.west_servers);
    scenario.deployment->deploy(s, east, params.east_servers,
                                params.capacity_fraction * mu * params.east_servers);
  }

  const ClassId chain = scenario.app->find_class("chain");
  scenario.demand.set_rate(chain, west, params.west_rps);
  scenario.demand.set_rate(chain, east, params.east_rps);
  return scenario;
}

Scenario make_gcp_chain_scenario(const GcpChainParams& params) {
  Scenario scenario;
  scenario.name = "gcp-chain";
  scenario.app = std::make_unique<Application>(make_linear_chain_app(params.app));
  scenario.topology = std::make_unique<Topology>(
      make_gcp_topology(params.egress_dollars_per_gb));
  scenario.deployment =
      std::make_unique<Deployment>(*scenario.app, scenario.topology->cluster_count());

  for (ServiceId s : scenario.app->all_services()) {
    const double mu = nominal_mu_per_server(*scenario.app, s);
    for (std::size_t c = 0; c < 4; ++c) {
      scenario.deployment->deploy(
          s, ClusterId{c}, params.servers[c],
          params.capacity_fraction * mu * params.servers[c]);
    }
  }

  const ClassId chain = scenario.app->find_class("chain");
  for (std::size_t c = 0; c < 4; ++c) {
    scenario.demand.set_rate(chain, ClusterId{c}, params.rps[c]);
  }
  return scenario;
}

Scenario make_anomaly_scenario(const AnomalyParams& params) {
  Scenario scenario;
  scenario.name = "anomaly-detection";
  scenario.app =
      std::make_unique<Application>(make_anomaly_detection_app(params.app));
  scenario.topology = std::make_unique<Topology>(
      make_two_cluster_topology(params.rtt, params.egress_dollars_per_gb));
  scenario.deployment =
      std::make_unique<Deployment>(*scenario.app, scenario.topology->cluster_count());

  const ClusterId west{0}, east{1};
  const ServiceId fr = scenario.app->find_service("frontend");
  const ServiceId mp = scenario.app->find_service("metrics-processor");
  const ServiceId db = scenario.app->find_service("metrics-db");

  const double fr_mu = nominal_mu_per_server(*scenario.app, fr);
  const double mp_mu = nominal_mu_per_server(*scenario.app, mp);
  const double db_mu = nominal_mu_per_server(*scenario.app, db);

  scenario.deployment->deploy(fr, west, params.fr_servers,
                              params.capacity_fraction * fr_mu * params.fr_servers);
  scenario.deployment->deploy(fr, east, params.fr_servers,
                              params.capacity_fraction * fr_mu * params.fr_servers);
  scenario.deployment->deploy(
      mp, west, params.mp_servers_west,
      params.capacity_fraction * mp_mu * params.mp_servers_west);
  scenario.deployment->deploy(
      mp, east, params.mp_servers_east,
      params.capacity_fraction * mp_mu * params.mp_servers_east);
  // DB exists only in East (paper §4.3: degraded or absent in West).
  scenario.deployment->deploy(db, east, params.db_servers,
                              params.capacity_fraction * db_mu * params.db_servers);

  const ClassId detect = scenario.app->find_class("detect");
  scenario.demand.set_rate(detect, west, params.west_rps);
  scenario.demand.set_rate(detect, east, params.east_rps);
  return scenario;
}

Scenario make_two_class_scenario(const TwoClassParams& params) {
  Scenario scenario;
  scenario.name = "two-class";
  scenario.app = std::make_unique<Application>(make_two_class_app(params.app));
  scenario.topology = std::make_unique<Topology>(
      make_two_cluster_topology(params.rtt, params.egress_dollars_per_gb));
  scenario.deployment =
      std::make_unique<Deployment>(*scenario.app, scenario.topology->cluster_count());

  const ClusterId west{0}, east{1};
  const ServiceId ingress = scenario.app->find_service("ingress");
  const ServiceId worker = scenario.app->find_service("worker");
  const double ingress_mu = nominal_mu_per_server(*scenario.app, ingress);

  for (ClusterId c : {west, east}) {
    scenario.deployment->deploy(ingress, c, 1, 0.95 * ingress_mu);
    scenario.deployment->deploy(worker, c, params.worker_servers,
                                params.worker_capacity_rps);
  }

  const ClassId light = scenario.app->find_class("L");
  const ClassId heavy = scenario.app->find_class("H");
  scenario.demand.set_rate(light, west, params.west_light_rps);
  scenario.demand.set_rate(heavy, west, params.west_heavy_rps);
  scenario.demand.set_rate(light, east, params.east_light_rps);
  scenario.demand.set_rate(heavy, east, params.east_heavy_rps);
  return scenario;
}

Scenario make_uniform_scenario(std::string name, Application app,
                               Topology topology, unsigned servers,
                               double capacity_fraction) {
  Scenario scenario;
  scenario.name = std::move(name);
  scenario.app = std::make_unique<Application>(std::move(app));
  scenario.topology = std::make_unique<Topology>(std::move(topology));
  scenario.deployment =
      std::make_unique<Deployment>(*scenario.app, scenario.topology->cluster_count());
  for (ServiceId s : scenario.app->all_services()) {
    const double mu = nominal_mu_per_server(*scenario.app, s);
    for (ClusterId c : scenario.topology->all_clusters()) {
      scenario.deployment->deploy(s, c, servers,
                                  capacity_fraction * mu * servers);
    }
  }
  return scenario;
}

}  // namespace slate
