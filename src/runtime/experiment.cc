#include "runtime/experiment.h"

#include <algorithm>

#include "runtime/simulation.h"

namespace slate {

const char* to_string(PolicyKind kind) noexcept {
  switch (kind) {
    case PolicyKind::kLocalOnly: return "local-only";
    case PolicyKind::kRoundRobin: return "round-robin";
    case PolicyKind::kLocalityFailover: return "locality-failover";
    case PolicyKind::kStaticWeights: return "static-weights";
    case PolicyKind::kWaterfall: return "waterfall";
    case PolicyKind::kSlate: return "slate";
  }
  return "?";
}

double ExperimentResult::error_rate(ClassId k) const {
  if (k.index() >= failed_by_class.size()) return 0.0;
  const std::uint64_t errors = failed_by_class[k.index()];
  const std::uint64_t ok =
      k.index() < e2e_by_class.size() ? e2e_by_class[k.index()].count() : 0;
  const std::uint64_t finished = ok + errors;
  return finished > 0
             ? static_cast<double>(errors) / static_cast<double>(finished)
             : 0.0;
}

double ExperimentResult::goodput_in_window(double from, double to) const {
  if (series_bucket <= 0.0 || completed_series.empty() || to <= from) return 0.0;
  const auto first = static_cast<std::size_t>(from / series_bucket);
  auto last = static_cast<std::size_t>(to / series_bucket);
  if (last * series_bucket < to) ++last;  // include the partial tail bucket
  last = std::min(last, completed_series.size());
  if (first >= last) return 0.0;
  std::uint64_t total = 0;
  for (std::size_t i = first; i < last; ++i) total += completed_series[i];
  return static_cast<double>(total) /
         (static_cast<double>(last - first) * series_bucket);
}

double ExperimentResult::remote_fraction(ClassId k, std::size_t node) const {
  if (k.index() >= flows.size() || node >= flows[k.index()].size()) return 0.0;
  const auto& m = flows[k.index()][node];
  std::uint64_t total = 0, remote = 0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      total += m(i, j);
      if (i != j) remote += m(i, j);
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(remote) / static_cast<double>(total);
}

double ExperimentResult::remote_fraction_from(ClassId k, std::size_t node,
                                              ClusterId from) const {
  if (k.index() >= flows.size() || node >= flows[k.index()].size()) return 0.0;
  const auto& m = flows[k.index()][node];
  if (from.index() >= m.rows()) return 0.0;
  std::uint64_t total = 0, remote = 0;
  for (std::size_t j = 0; j < m.cols(); ++j) {
    total += m(from.index(), j);
    if (j != from.index()) remote += m(from.index(), j);
  }
  return total == 0 ? 0.0
                    : static_cast<double>(remote) / static_cast<double>(total);
}

ExperimentResult run_experiment(const Scenario& scenario,
                                const RunConfig& config) {
  Simulation sim(scenario, config);
  return sim.run();
}

}  // namespace slate
