// Scenario presets reproducing the paper's evaluation setups (§4).
//
// Each maker returns a self-contained Scenario; benches/tests/examples tweak
// the parameter structs to sweep loads, latencies, and placement.
#pragma once

#include "app/builders.h"
#include "runtime/experiment.h"

namespace slate {

// --- Fig. 4 / Fig. 6a: two clusters, linear chain ------------------------
//
// West is the variable-load (potentially overloaded) cluster, East the
// lightly loaded one. Chain: ingress -> svc-1 -> svc-2 -> svc-3, each
// service-stage ~2ms compute (500 RPS per server).
struct TwoClusterChainParams {
  double rtt = 25e-3;
  double west_rps = 800.0;
  double east_rps = 100.0;
  unsigned west_servers = 1;
  unsigned east_servers = 2;
  // Waterfall's static capacity = fraction * (servers / compute_mean).
  double capacity_fraction = 0.95;
  double egress_dollars_per_gb = 0.08;
  LinearChainOptions app;
};
Scenario make_two_cluster_chain_scenario(const TwoClusterChainParams& params = {});

// --- Fig. 6b: GCP 4-cluster topology, OR & IOW overloaded ----------------
struct GcpChainParams {
  // Demand per cluster in topology id order: OR, UT, IOW, SC.
  double rps[4] = {800.0, 100.0, 800.0, 100.0};
  unsigned servers[4] = {1, 2, 1, 2};
  double capacity_fraction = 0.95;
  double egress_dollars_per_gb = 0.08;
  LinearChainOptions app;
};
Scenario make_gcp_chain_scenario(const GcpChainParams& params = {});

// --- Fig. 6c: anomaly-detection app, DB absent in West -------------------
//
// FR -> MP -> DB with a 10x response-size blow-up on DB -> MP. The DB is
// deployed only in East (security / regulation / failure, §4.3), so every
// request must cross clusters somewhere; the question is where the cut goes.
struct AnomalyParams {
  double rtt = 25e-3;
  double west_rps = 200.0;
  double east_rps = 30.0;
  unsigned fr_servers = 2;
  unsigned mp_servers_west = 1;
  unsigned mp_servers_east = 2;
  unsigned db_servers = 2;
  double capacity_fraction = 0.95;
  double egress_dollars_per_gb = 0.08;
  AnomalyDetectionOptions app;
};
Scenario make_anomaly_scenario(const AnomalyParams& params = {});

// --- Fig. 6d: light/heavy traffic classes at one service -----------------
//
// Class H costs 10x class L in compute; the overload is driven by H volume.
// Waterfall's per-service RPS capacity cannot tell them apart.
struct TwoClassParams {
  double rtt = 25e-3;
  double west_light_rps = 400.0;
  double west_heavy_rps = 80.0;
  double east_light_rps = 100.0;
  double east_heavy_rps = 10.0;
  unsigned worker_servers = 1;
  // Waterfall's class-blind worker capacity, total RPS. At the default
  // demand mix (L=400 @1ms + H=80 @10ms = 1.2 server-equivalents of work)
  // a 380-RPS threshold leaves ~0.95 utilization local — stable but deep in
  // the queueing blow-up, exactly the miscalibration a per-request-count
  // capacity suffers under heterogeneous classes (§4.4).
  double worker_capacity_rps = 380.0;
  double egress_dollars_per_gb = 0.08;
  TwoClassOptions app;
};
Scenario make_two_class_scenario(const TwoClassParams& params = {});

// --- Generic helper -------------------------------------------------------
//
// Deploys every service of `app` in every cluster of `topology` with
// `servers` workers and nominal capacity `capacity_fraction * servers /
// mean_compute_of_the_service` (per the busiest class). Demands are supplied
// by the caller on the returned scenario.
Scenario make_uniform_scenario(std::string name, Application app,
                               Topology topology, unsigned servers,
                               double capacity_fraction = 0.95);

}  // namespace slate
