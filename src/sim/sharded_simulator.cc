#include "sim/sharded_simulator.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <utility>

namespace slate {

ShardedSimulator::ShardedSimulator(std::size_t lp_count, SimTime lookahead,
                                   std::size_t workers)
    : lookahead_(lookahead),
      workers_(std::max<std::size_t>(1, std::min(workers, lp_count))) {
  if (lp_count == 0) {
    throw std::invalid_argument("ShardedSimulator: lp_count == 0");
  }
  if (lp_count > 1 && !(lookahead > 0.0)) {
    throw std::invalid_argument("ShardedSimulator: lookahead must be > 0");
  }
  lps_.reserve(lp_count);
  for (std::size_t i = 0; i < lp_count; ++i) {
    lps_.push_back(std::make_unique<Simulator>());
  }
  outboxes_.resize(lp_count);
  if (workers_ > 1) {
    threads_.reserve(workers_);
    for (std::size_t w = 0; w < workers_; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  }
}

ShardedSimulator::~ShardedSimulator() {
  if (!threads_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }
}

void ShardedSimulator::send(std::size_t from, std::size_t to, SimTime when,
                            InlineCallback fn) {
  assert(from < lps_.size() && to < lps_.size());
  Outbox& box = outboxes_[from];
  box.messages.push_back(Message{when, static_cast<std::uint32_t>(from),
                                 static_cast<std::uint32_t>(to),
                                 box.next_seq++, std::move(fn)});
}

void ShardedSimulator::worker_loop(std::size_t worker_index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    SimTime w_end;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      w_end = window_end_;
    }
    std::exception_ptr error;
    try {
      // Static LP-to-worker assignment: partition i always runs on worker
      // i % W, so per-LP state never migrates between threads mid-run.
      for (std::size_t i = worker_index; i < lps_.size(); i += workers_) {
        lps_[i]->run_until(w_end);
      }
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error && !worker_error_) worker_error_ = error;
      ++done_;
    }
    done_cv_.notify_one();
  }
}

void ShardedSimulator::run_window(SimTime w_end) {
  if (threads_.empty()) {
    for (auto& lp : lps_) lp->run_until(w_end);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    window_end_ = w_end;
    done_ = 0;
    ++epoch_;
  }
  work_cv_.notify_all();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return done_ == workers_; });
    if (worker_error_) {
      error = worker_error_;
      worker_error_ = nullptr;
    }
  }
  if (error) std::rethrow_exception(error);
}

void ShardedSimulator::drain_outboxes(SimTime w_end) {
  drain_scratch_.clear();
  for (Outbox& box : outboxes_) {
    for (Message& m : box.messages) drain_scratch_.push_back(std::move(m));
    box.messages.clear();
  }
  if (drain_scratch_.empty()) return;
  // (when, from, seq) is a strict total order — (from, seq) is unique — so
  // the receiving simulators number these events identically on every run.
  std::sort(drain_scratch_.begin(), drain_scratch_.end(),
            [](const Message& a, const Message& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.from != b.from) return a.from < b.from;
              return a.seq < b.seq;
            });
  for (Message& m : drain_scratch_) {
    // The latency floor makes `when >= w_end` in the fault-free case; a
    // fault arm that scales latencies below the floor is clamped here so
    // causality (and determinism) survive, at the cost of delivering those
    // messages at the boundary.
    lps_[m.to]->schedule_at(std::max(m.when, w_end), std::move(m.fn));
  }
  drain_scratch_.clear();
}

std::uint64_t ShardedSimulator::run_until(SimTime t_end) {
  const std::uint64_t before = events_executed();
  while (now_ < t_end) {
    const SimTime w_end = std::min(
        {now_ + lookahead_, global_.peek_next_time(), t_end});
    run_window(w_end);
    drain_outboxes(w_end);
    if (barrier_hook_) barrier_hook_();
    global_.run_until(w_end);
    now_ = w_end;
  }
  return events_executed() - before;
}

std::uint64_t ShardedSimulator::events_executed() const noexcept {
  std::uint64_t total = global_.events_executed();
  for (const auto& lp : lps_) total += lp->events_executed();
  return total;
}

}  // namespace slate
