#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <utility>

namespace slate {

Simulator::Simulator() {
  // Typical experiments keep thousands of events in flight; start with a
  // capacity that makes early growth reallocations rare.
  events_.reserve(1024);
}

void Simulator::push_event(Event event) {
  events_.push_back(std::move(event));
  // Sift up with a hole: move parents down until the new event's position
  // is found, then drop it in — one relocation per level instead of a swap.
  std::size_t i = events_.size() - 1;
  Event item = std::move(events_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!runs_before(item, events_[parent])) break;
    events_[i] = std::move(events_[parent]);
    i = parent;
  }
  events_[i] = std::move(item);
}

void Simulator::pop_min() {
  assert(!events_.empty());
  Event tail = std::move(events_.back());
  events_.pop_back();
  if (events_.empty()) return;
  // Sift the old tail down from the root.
  const std::size_t n = events_.size();
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = i * kHeapArity + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + kHeapArity, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (runs_before(events_[c], events_[best])) best = c;
    }
    if (!runs_before(events_[best], tail)) break;
    events_[i] = std::move(events_[best]);
    i = best;
  }
  events_[i] = std::move(tail);
}

void Simulator::schedule_at(SimTime when, Callback fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  push_event(Event{when, next_seq_++, std::move(fn)});
}

void Simulator::schedule_after(SimTime delay, Callback fn) {
  if (delay < 0.0) delay = 0.0;
  schedule_at(now_ + delay, std::move(fn));
}

std::uint64_t Simulator::run() {
  return run_until(std::numeric_limits<SimTime>::infinity());
}

std::uint64_t Simulator::run_until(SimTime until) {
  stopped_ = false;
  std::uint64_t ran = 0;
  while (!events_.empty() && !stopped_) {
    Event& top = events_.front();
    if (top.time > until) break;
    // Move the callback out before popping so it can schedule new events.
    Callback fn = std::move(top.fn);
    now_ = top.time;
    pop_min();
    fn();
    ++ran;
    ++executed_;
  }
  if (!stopped_ && until != std::numeric_limits<SimTime>::infinity() &&
      now_ < until) {
    now_ = until;
  }
  return ran;
}

Simulator::PeriodicHandle Simulator::schedule_periodic(SimTime interval,
                                                       Callback fn) {
  if (!(interval > 0.0)) {
    throw std::invalid_argument("Simulator::schedule_periodic: interval <= 0");
  }
  // Drop owners whose tasks were cancelled (their closures are already
  // released; this bounds the owner list under timer churn).
  std::erase_if(periodic_tasks_, [](const std::shared_ptr<PeriodicTask>& t) {
    return t->cancelled;
  });

  auto task = std::make_shared<PeriodicTask>();
  task->user = std::move(fn);
  periodic_tasks_.push_back(task);

  PeriodicHandle handle;
  handle.alive_ = std::make_shared<bool>(true);
  handle.task_ = task;
  arm_periodic(task, handle.alive_, interval);
  return handle;
}

void Simulator::arm_periodic(std::weak_ptr<PeriodicTask> task,
                             std::shared_ptr<bool> alive, SimTime interval) {
  // The tick holds only a weak reference to the closure owner, so a
  // destroyed simulator (or a cancelled task) cannot keep it alive.
  schedule_after(interval, [this, task = std::move(task),
                            alive = std::move(alive), interval]() {
    if (!*alive) return;
    const auto strong = task.lock();
    if (strong == nullptr || strong->cancelled || !strong->user) return;
    strong->running = true;
    strong->user();
    strong->running = false;
    if (!*alive || strong->cancelled) {
      // Cancelled from inside user(): release the closure now that it has
      // returned (PeriodicHandle::cancel deferred to us).
      strong->cancelled = true;
      strong->user = nullptr;
      return;
    }
    arm_periodic(task, alive, interval);
  });
}

}  // namespace slate
