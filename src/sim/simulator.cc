#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace slate {

Simulator::Simulator() {
  // Typical experiments keep thousands of events in flight; start with a
  // capacity that makes early growth reallocations rare.
  events_.reserve(1024);
}

void Simulator::push_event(Event event) {
  events_.push_back(std::move(event));
  // Sift up with a hole: move parents down until the new event's position
  // is found, then drop it in — one relocation per level instead of a swap.
  std::size_t i = events_.size() - 1;
  Event item = std::move(events_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!runs_before(item, events_[parent])) break;
    events_[i] = std::move(events_[parent]);
    i = parent;
  }
  events_[i] = std::move(item);
}

void Simulator::pop_min() {
  assert(!events_.empty());
  Event tail = std::move(events_.back());
  events_.pop_back();
  if (events_.empty()) return;
  // Sift the old tail down from the root.
  const std::size_t n = events_.size();
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = i * kHeapArity + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + kHeapArity, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (runs_before(events_[c], events_[best])) best = c;
    }
    if (!runs_before(events_[best], tail)) break;
    events_[i] = std::move(events_[best]);
    i = best;
  }
  events_[i] = std::move(tail);
}

void Simulator::insert_event(Event event) {
  if (!calendar_engaged_) {
    push_event(std::move(event));
    if (events_.size() > calendar_threshold_) engage_calendar();
    return;
  }
  route_far(std::move(event));
}

void Simulator::route_far(Event event) {
  // Non-finite times can never land in a finite-width bucket; park them in
  // the overflow list (they only ever run under run()'s infinite horizon).
  if (!std::isfinite(event.time)) {
    beyond_.push_back(std::move(event));
    return;
  }
  const double idx = std::floor((event.time - far_origin_) / bucket_width_);
  if (idx < static_cast<double>(cur_bucket_abs_)) {
    push_event(std::move(event));
  } else if (idx >= static_cast<double>(cur_bucket_abs_) +
                        static_cast<double>(kNumBuckets)) {
    beyond_.push_back(std::move(event));
  } else {
    buckets_[static_cast<std::size_t>(
                 static_cast<std::uint64_t>(idx) % kNumBuckets)]
        .push_back(std::move(event));
    ++bucket_population_;
  }
}

void Simulator::engage_calendar() {
  calendar_engaged_ = true;
  buckets_.resize(kNumBuckets);
  // Spread the present population across the bucket range: width from the
  // span of finite event times, floored so identical times still engage.
  SimTime hi = now_;
  for (const Event& e : events_) {
    if (std::isfinite(e.time) && e.time > hi) hi = e.time;
  }
  far_origin_ = now_;
  cur_bucket_abs_ = 0;
  bucket_width_ =
      std::max((hi - now_) / static_cast<double>(kNumBuckets - 1),
               kMinBucketWidth);
  std::vector<Event> old;
  old.swap(events_);
  events_.reserve(old.size() / kNumBuckets + 64);
  for (Event& e : old) route_far(std::move(e));
}

bool Simulator::refill_near() {
  while (events_.empty()) {
    // Entering a new lap of the bucket ring: overflow events routed during
    // earlier laps may now fall inside the ring's window — re-route them
    // before consuming any bucket of this lap, or they would run late.
    const std::uint64_t lap = cur_bucket_abs_ / kNumBuckets;
    if (lap > beyond_swept_lap_) {
      beyond_swept_lap_ = lap;
      if (!beyond_.empty()) sweep_beyond();
    }
    if (bucket_population_ == 0) {
      if (beyond_.empty()) return false;
      reanchor_from_beyond();
      continue;
    }
    std::vector<Event>& bucket = buckets_[current_bucket_index()];
    if (!bucket.empty()) {
      bucket_population_ -= bucket.size();
      for (Event& e : bucket) push_event(std::move(e));
      bucket.clear();
    }
    // This bucket's range now belongs to the heap.
    ++cur_bucket_abs_;
  }
  return true;
}

void Simulator::sweep_beyond() {
  std::vector<Event> old;
  old.swap(beyond_);
  for (Event& e : old) route_far(std::move(e));
}

void Simulator::reanchor_from_beyond() {
  assert(events_.empty() && bucket_population_ == 0 && !beyond_.empty());
  SimTime lo = std::numeric_limits<SimTime>::infinity();
  SimTime hi = -std::numeric_limits<SimTime>::infinity();
  for (const Event& e : beyond_) {
    if (!std::isfinite(e.time)) continue;
    lo = std::min(lo, e.time);
    hi = std::max(hi, e.time);
  }
  std::vector<Event> old;
  old.swap(beyond_);
  if (!std::isfinite(lo)) {
    // Only non-finite times remain; the heap orders them by (time, seq).
    for (Event& e : old) push_event(std::move(e));
    return;
  }
  far_origin_ = lo;
  cur_bucket_abs_ = 0;
  beyond_swept_lap_ = 0;
  bucket_width_ =
      std::max((hi - lo) / static_cast<double>(kNumBuckets - 1),
               kMinBucketWidth);
  for (Event& e : old) route_far(std::move(e));
}

Simulator::Event* Simulator::peek_top() {
  if (events_.empty()) {
    if (!calendar_engaged_ || !refill_near()) return nullptr;
  }
  return &events_.front();
}

SimTime Simulator::peek_next_time() {
  const Event* top = peek_top();
  return top != nullptr ? top->time
                        : std::numeric_limits<SimTime>::infinity();
}

void Simulator::schedule_at(SimTime when, Callback fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  insert_event(Event{when, next_seq_++, std::move(fn)});
}

void Simulator::schedule_after(SimTime delay, Callback fn) {
  if (delay < 0.0) delay = 0.0;
  schedule_at(now_ + delay, std::move(fn));
}

std::uint64_t Simulator::run() {
  return run_until(std::numeric_limits<SimTime>::infinity());
}

std::uint64_t Simulator::run_until(SimTime until) {
  stopped_ = false;
  std::uint64_t ran = 0;
  while (!stopped_) {
    Event* top = peek_top();
    if (top == nullptr || top->time > until) break;
    // Move the callback out before popping so it can schedule new events.
    Callback fn = std::move(top->fn);
    now_ = top->time;
    pop_min();
    fn();
    ++ran;
    ++executed_;
  }
  if (!stopped_ && until != std::numeric_limits<SimTime>::infinity() &&
      now_ < until) {
    now_ = until;
  }
  return ran;
}

Simulator::PeriodicHandle Simulator::schedule_periodic(SimTime interval,
                                                       Callback fn) {
  if (!(interval > 0.0)) {
    throw std::invalid_argument("Simulator::schedule_periodic: interval <= 0");
  }
  // Drop owners whose tasks were cancelled (their closures are already
  // released; this bounds the owner list under timer churn).
  std::erase_if(periodic_tasks_, [](const std::shared_ptr<PeriodicTask>& t) {
    return t->cancelled;
  });

  auto task = std::make_shared<PeriodicTask>();
  task->user = std::move(fn);
  periodic_tasks_.push_back(task);

  PeriodicHandle handle;
  handle.alive_ = std::make_shared<bool>(true);
  handle.task_ = task;
  arm_periodic(task, handle.alive_, interval);
  return handle;
}

void Simulator::arm_periodic(std::weak_ptr<PeriodicTask> task,
                             std::shared_ptr<bool> alive, SimTime interval) {
  // The tick holds only a weak reference to the closure owner, so a
  // destroyed simulator (or a cancelled task) cannot keep it alive.
  schedule_after(interval, [this, task = std::move(task),
                            alive = std::move(alive), interval]() {
    if (!*alive) return;
    const auto strong = task.lock();
    if (strong == nullptr || strong->cancelled || !strong->user) return;
    strong->running = true;
    strong->user();
    strong->running = false;
    if (!*alive || strong->cancelled) {
      // Cancelled from inside user(): release the closure now that it has
      // returned (PeriodicHandle::cancel deferred to us).
      strong->cancelled = true;
      strong->user = nullptr;
      return;
    }
    arm_periodic(task, alive, interval);
  });
}

}  // namespace slate
