#include "sim/simulator.h"

#include <cassert>
#include <limits>
#include <stdexcept>
#include <utility>

namespace slate {

void Simulator::schedule_at(SimTime when, Callback fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

void Simulator::schedule_after(SimTime delay, Callback fn) {
  if (delay < 0.0) delay = 0.0;
  schedule_at(now_ + delay, std::move(fn));
}

std::uint64_t Simulator::run() {
  return run_until(std::numeric_limits<SimTime>::infinity());
}

std::uint64_t Simulator::run_until(SimTime until) {
  stopped_ = false;
  std::uint64_t ran = 0;
  while (!queue_.empty() && !stopped_) {
    const Event& top = queue_.top();
    if (top.time > until) break;
    // Move the callback out before popping so it can schedule new events.
    Callback fn = std::move(const_cast<Event&>(top).fn);
    now_ = top.time;
    queue_.pop();
    fn();
    ++ran;
    ++executed_;
  }
  if (!stopped_ && until != std::numeric_limits<SimTime>::infinity() &&
      now_ < until) {
    now_ = until;
  }
  return ran;
}

Simulator::PeriodicHandle Simulator::schedule_periodic(SimTime interval,
                                                       Callback fn) {
  if (!(interval > 0.0)) {
    throw std::invalid_argument("Simulator::schedule_periodic: interval <= 0");
  }
  PeriodicHandle handle;
  handle.alive_ = std::make_shared<bool>(true);
  // The simulator owns the repeating closure; scheduled copies capture only
  // a weak reference, so no ownership cycle exists and still-active tasks
  // are released when the simulator is destroyed.
  auto tick = std::make_shared<Callback>();
  periodic_tasks_.push_back(tick);
  std::weak_ptr<Callback> weak_tick = tick;
  std::shared_ptr<bool> alive = handle.alive_;
  *tick = [this, interval, alive, weak_tick, user = std::move(fn)]() {
    if (!*alive) return;
    user();
    if (*alive) {
      if (const auto strong = weak_tick.lock()) {
        schedule_after(interval, *strong);
      }
    }
  };
  schedule_after(interval, *tick);
  return handle;
}

}  // namespace slate
