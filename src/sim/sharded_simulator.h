// Conservative parallel discrete-event coordinator.
//
// Partitions a simulation into N logical processes (LPs), each a private
// Simulator, plus one global LP for control-plane machinery that must observe
// every partition (controllers, fault transitions, warmup boundaries). The
// physical topology guarantees a latency floor between partitions, so every
// LP can execute all events in the window [t, t + lookahead) without seeing a
// message from a peer — classic conservative synchronization, with a barrier
// at each window boundary instead of null messages.
//
// Determinism contract: cross-LP sends are buffered in per-source outboxes,
// stamped (delivery time, source LP, per-source sequence), and drained at the
// barrier in that total order, so the receiving simulator assigns event
// sequence numbers identically regardless of worker count or OS scheduling.
// Window boundaries depend only on the lookahead and the global LP's event
// times — never on thread timing — so a run with W workers is byte-identical
// to the same run with 1.
//
// Global-LP events always fire exactly at a window boundary: the window end
// is clipped to the global LP's next event time, so when the coordinator
// drains the global LP every partition clock equals the global clock and the
// control plane sees a consistent world, exactly as in a serial run.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <thread>
#include <vector>

#include "sim/simulator.h"

namespace slate {

class ShardedSimulator {
 public:
  // `lp_count` partitions; `lookahead` is the guaranteed minimum cross-LP
  // message latency (> 0 unless lp_count == 1); `workers` caps the thread
  // count (clamped to lp_count; 1 runs everything inline on the caller).
  ShardedSimulator(std::size_t lp_count, SimTime lookahead,
                   std::size_t workers);
  ~ShardedSimulator();
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] std::size_t lp_count() const noexcept { return lps_.size(); }
  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }
  [[nodiscard]] SimTime lookahead() const noexcept { return lookahead_; }
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  [[nodiscard]] Simulator& lp(std::size_t i) noexcept { return *lps_[i]; }
  [[nodiscard]] Simulator& global() noexcept { return global_; }

  // Buffers `fn` for delivery into LP `to` at simulated time `when`
  // (clamped to the current window's end, which the latency floor makes a
  // no-op in the fault-free case). Must be called from code executing on LP
  // `from` — the outbox is single-writer. `from` may equal `to` only for
  // self-sends that intentionally defer to the next window.
  void send(std::size_t from, std::size_t to, SimTime when, InlineCallback fn);

  // Runs once per window at the barrier, after cross-LP messages are
  // delivered and before the global LP executes — the one safe place to
  // aggregate per-LP state into shared snapshots.
  void set_barrier_hook(std::function<void()> hook) {
    barrier_hook_ = std::move(hook);
  }

  // Advances every LP (and the global LP) to `t_end`. Returns the number of
  // events executed across all partitions during this call.
  std::uint64_t run_until(SimTime t_end);

  // Lifetime events executed across all LPs plus the global LP.
  [[nodiscard]] std::uint64_t events_executed() const noexcept;

 private:
  struct Message {
    SimTime when;
    std::uint32_t from;
    std::uint32_t to;
    std::uint64_t seq;
    InlineCallback fn;
  };
  // Single-writer: only the worker executing LP `from` appends; the
  // coordinator drains at the barrier.
  struct Outbox {
    std::vector<Message> messages;
    std::uint64_t next_seq = 0;
  };

  void run_window(SimTime w_end);
  void drain_outboxes(SimTime w_end);
  void worker_loop(std::size_t worker_index);

  std::vector<std::unique_ptr<Simulator>> lps_;
  Simulator global_;
  std::vector<Outbox> outboxes_;
  std::vector<Message> drain_scratch_;
  std::function<void()> barrier_hook_;
  SimTime lookahead_;
  SimTime now_ = 0.0;
  std::size_t workers_;

  // Generation-counted barrier. The coordinator bumps `epoch_` to release
  // workers into a window; workers bump `done_` as they finish. The mutex +
  // condvars also carry the happens-before edges that make the outbox and
  // per-LP state handoffs race-free.
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;
  std::size_t done_ = 0;
  SimTime window_end_ = 0.0;
  bool shutdown_ = false;
  std::exception_ptr worker_error_;
};

}  // namespace slate
