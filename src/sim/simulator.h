// Discrete-event simulation engine.
//
// A single-threaded event loop over a virtual clock. Events are closures
// ordered by (time, insertion sequence); the sequence tie-break makes runs
// fully deterministic regardless of heap internals. All SLATE experiments run
// on this engine; nothing in it knows about services or networks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace slate {

// Simulated time, in seconds.
using SimTime = double;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current virtual time. Starts at 0.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  // Schedules `fn` at absolute time `when`. `when` must not precede now();
  // same-time events run in scheduling order.
  void schedule_at(SimTime when, Callback fn);

  // Schedules `fn` `delay` seconds from now. Negative delays are clamped to 0.
  void schedule_after(SimTime delay, Callback fn);

  // Runs events until the queue is empty or stop() is called.
  // Returns the number of events executed.
  std::uint64_t run();

  // Runs events with time <= `until`, then advances the clock to `until`
  // (if the queue drained earlier). Returns the number of events executed.
  std::uint64_t run_until(SimTime until);

  // Makes run()/run_until() return after the current event completes.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }

  // A cancellable repeating task. Destroying the handle does NOT cancel;
  // call cancel(). First firing is at now() + interval.
  class PeriodicHandle {
   public:
    void cancel() noexcept {
      if (alive_) *alive_ = false;
    }
    [[nodiscard]] bool active() const noexcept { return alive_ && *alive_; }

   private:
    friend class Simulator;
    std::shared_ptr<bool> alive_;
  };

  // RAII wrapper over PeriodicHandle: cancels on destruction. Move-only.
  // Use for timers owned by components that can be torn down mid-run
  // (controllers under fault injection) so destroying the owner cannot leak
  // a live timer into the event queue.
  class ScopedPeriodic {
   public:
    ScopedPeriodic() = default;
    explicit ScopedPeriodic(PeriodicHandle handle) noexcept
        : handle_(handle) {}
    ~ScopedPeriodic() { handle_.cancel(); }
    ScopedPeriodic(const ScopedPeriodic&) = delete;
    ScopedPeriodic& operator=(const ScopedPeriodic&) = delete;
    ScopedPeriodic(ScopedPeriodic&& other) noexcept
        : handle_(other.handle_) {
      other.handle_ = PeriodicHandle{};
    }
    ScopedPeriodic& operator=(ScopedPeriodic&& other) noexcept {
      if (this != &other) {
        handle_.cancel();
        handle_ = other.handle_;
        other.handle_ = PeriodicHandle{};
      }
      return *this;
    }

    void cancel() noexcept { handle_.cancel(); }
    [[nodiscard]] bool active() const noexcept { return handle_.active(); }

   private:
    PeriodicHandle handle_;
  };

  // Runs `fn` every `interval` seconds until cancelled. Requires interval > 0.
  PeriodicHandle schedule_periodic(SimTime interval, Callback fn);
  // Same, returning the RAII form.
  [[nodiscard]] ScopedPeriodic schedule_scoped_periodic(SimTime interval,
                                                        Callback fn) {
    return ScopedPeriodic(schedule_periodic(interval, std::move(fn)));
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Owners of periodic-task closures (see schedule_periodic); entries live
  // until the simulator is destroyed.
  std::vector<std::shared_ptr<Callback>> periodic_tasks_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace slate
