// Discrete-event simulation engine.
//
// A single-threaded event loop over a virtual clock. Events are closures
// ordered by (time, insertion sequence); the sequence tie-break makes runs
// fully deterministic regardless of queue internals. All SLATE experiments run
// on this engine; nothing in it knows about services or networks.
//
// Hot-path design: callbacks are InlineCallback (64-byte small-buffer
// optimization — scheduling a typical closure allocates nothing), and the
// pending-event queue is two-tier. A reserved 4-ary implicit heap (shallower
// than a binary heap, sift path touches one cache line of children per level)
// holds the near future; once the population crosses a threshold a calendar
// tier engages — 1024 fixed-width circular buckets plus an overflow list —
// so far-future events cost O(1) to insert and only ever pass through a
// near-heap holding one bucket's worth of events. Tier routing is monotone
// in event time, so the exact (time, seq) total order of the plain heap is
// preserved bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "util/inline_function.h"

namespace slate {

// Simulated time, in seconds.
using SimTime = double;

// The engine's closure type: move-only, 64-byte inline capture buffer.
using InlineCallback = InlineFunction<void(), 64>;

class Simulator {
 public:
  using Callback = InlineCallback;

  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current virtual time. Starts at 0.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  // Schedules `fn` at absolute time `when`. `when` must not precede now();
  // same-time events run in scheduling order.
  void schedule_at(SimTime when, Callback fn);

  // Schedules `fn` `delay` seconds from now. Negative delays are clamped to 0.
  void schedule_after(SimTime delay, Callback fn);

  // Pre-sizes the event queue (amortizes vector growth for runs whose
  // event population is known to be large).
  void reserve_events(std::size_t n) { events_.reserve(n); }

  // Runs events until the queue is empty or stop() is called.
  // Returns the number of events executed.
  std::uint64_t run();

  // Runs events with time <= `until`, then advances the clock to `until`
  // (if the queue drained earlier). Returns the number of events executed.
  std::uint64_t run_until(SimTime until);

  // Makes run()/run_until() return after the current event completes.
  void stop() noexcept { stopped_ = true; }

  // Time of the earliest pending event, +infinity when none are pending.
  // May migrate calendar-tier events into the near heap, hence non-const.
  [[nodiscard]] SimTime peek_next_time();

  // Pending-event population above which the calendar tier engages (once,
  // for the simulator's lifetime). 0 engages on the first scheduled event;
  // std::numeric_limits<std::size_t>::max() keeps the plain heap forever.
  void set_calendar_threshold(std::size_t n) noexcept {
    calendar_threshold_ = n;
  }
  [[nodiscard]] bool calendar_engaged() const noexcept {
    return calendar_engaged_;
  }

  [[nodiscard]] bool empty() const noexcept { return pending() == 0; }
  [[nodiscard]] std::size_t pending() const noexcept {
    return events_.size() + bucket_population_ + beyond_.size();
  }
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }

 private:
  // Owner of one repeating task's closure. Shared by the simulator (owner),
  // weakly by the scheduled tick events, and weakly by handles.
  struct PeriodicTask {
    Callback user;
    bool running = false;    // user() currently executing
    bool cancelled = false;  // no further firings; user is (or will be) released
  };

 public:
  // A cancellable repeating task. Destroying the handle does NOT cancel;
  // call cancel(). First firing is at now() + interval. Cancelling releases
  // the task's closure immediately (or, if the closure is presently
  // executing, right after it returns) — cancelled timers do not accumulate
  // dead closures for the simulator's lifetime.
  class PeriodicHandle {
   public:
    void cancel() noexcept {
      if (alive_) *alive_ = false;
      if (const auto task = task_.lock()) {
        task->cancelled = true;
        // Release the owned closure now unless it is mid-execution (the
        // tick releases it on return in that case).
        if (!task->running) task->user = nullptr;
      }
    }
    [[nodiscard]] bool active() const noexcept { return alive_ && *alive_; }

   private:
    friend class Simulator;
    std::shared_ptr<bool> alive_;
    std::weak_ptr<PeriodicTask> task_;
  };

  // RAII wrapper over PeriodicHandle: cancels on destruction. Move-only.
  // Use for timers owned by components that can be torn down mid-run
  // (controllers under fault injection) so destroying the owner cannot leak
  // a live timer into the event queue.
  class ScopedPeriodic {
   public:
    ScopedPeriodic() = default;
    explicit ScopedPeriodic(PeriodicHandle handle) noexcept
        : handle_(handle) {}
    ~ScopedPeriodic() { handle_.cancel(); }
    ScopedPeriodic(const ScopedPeriodic&) = delete;
    ScopedPeriodic& operator=(const ScopedPeriodic&) = delete;
    ScopedPeriodic(ScopedPeriodic&& other) noexcept
        : handle_(other.handle_) {
      other.handle_ = PeriodicHandle{};
    }
    ScopedPeriodic& operator=(ScopedPeriodic&& other) noexcept {
      if (this != &other) {
        handle_.cancel();
        handle_ = other.handle_;
        other.handle_ = PeriodicHandle{};
      }
      return *this;
    }

    void cancel() noexcept { handle_.cancel(); }
    [[nodiscard]] bool active() const noexcept { return handle_.active(); }

   private:
    PeriodicHandle handle_;
  };

  // Runs `fn` every `interval` seconds until cancelled. Requires interval > 0.
  PeriodicHandle schedule_periodic(SimTime interval, Callback fn);
  // Same, returning the RAII form.
  [[nodiscard]] ScopedPeriodic schedule_scoped_periodic(SimTime interval,
                                                        Callback fn) {
    return ScopedPeriodic(schedule_periodic(interval, std::move(fn)));
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Callback fn;
  };

  // (time, seq) total order — `a` runs strictly before `b`.
  static bool runs_before(const Event& a, const Event& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void push_event(Event event);
  // Removes the minimum event. Requires a non-empty near heap.
  void pop_min();

  // Routes a new event to the near heap or a calendar tier, engaging the
  // calendar when the population crosses the threshold.
  void insert_event(Event event);
  void route_far(Event event);
  void engage_calendar();
  // First bucket (cyclically) not yet spliced into the heap.
  [[nodiscard]] std::uint64_t current_bucket_index() const noexcept {
    return static_cast<std::size_t>(cur_bucket_abs_ % kNumBuckets);
  }
  // Moves calendar events into the near heap until it is non-empty.
  // Returns false when no events remain anywhere.
  bool refill_near();
  // Re-routes every overflow event through route_far. Called once per lap of
  // the bucket ring: an event parked in beyond_ when the cursor was at c has
  // absolute index >= c + kNumBuckets, so the sweep at the next lap entry
  // (cursor <= c + kNumBuckets) always lands it in a not-yet-consumed bucket.
  void sweep_beyond();
  void reanchor_from_beyond();
  // Pointer to the earliest pending event (refilling the near heap from the
  // calendar as needed), or nullptr when none are pending.
  [[nodiscard]] Event* peek_top();

  void arm_periodic(std::weak_ptr<PeriodicTask> task,
                    std::shared_ptr<bool> alive, SimTime interval);

  // 4-ary implicit min-heap over (time, seq); the near tier.
  static constexpr std::size_t kHeapArity = 4;
  std::vector<Event> events_;

  // Calendar (far) tier. Bucket b holds events whose absolute bucket index
  // floor((time - far_origin_) / bucket_width_) equals b; indexes below
  // cur_bucket_abs_ belong to the heap, indexes cur_bucket_abs_ + kNumBuckets
  // and beyond overflow into beyond_. Because FP subtract/divide/floor are
  // monotone, the index is a monotone function of event time and tiers can
  // never misorder relative to each other.
  static constexpr std::size_t kNumBuckets = 1024;
  static constexpr double kMinBucketWidth = 1e-9;
  bool calendar_engaged_ = false;
  std::size_t calendar_threshold_ = 8192;
  SimTime far_origin_ = 0.0;
  double bucket_width_ = 0.0;
  std::uint64_t cur_bucket_abs_ = 0;
  std::vector<std::vector<Event>> buckets_;
  std::size_t bucket_population_ = 0;
  // Overflow events (index past the ring, or non-finite time). Swept back
  // through route_far each time the cursor enters a new lap of the ring, so
  // an overflow event re-enters its bucket before that bucket is consumed.
  std::vector<Event> beyond_;
  std::uint64_t beyond_swept_lap_ = 0;

  // Owners of periodic-task closures. Cancelled entries are pruned on the
  // next schedule_periodic; their closures are released at cancel time.
  std::vector<std::shared_ptr<PeriodicTask>> periodic_tasks_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace slate
