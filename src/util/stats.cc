#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace slate {

void StreamingStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::merge(const StreamingStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const noexcept { return std::sqrt(variance()); }

double SampleSet::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  assert(q >= 0.0 && q <= 1.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (samples_.size() == 1) return samples_.front();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

LinearFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  LinearFit fit;
  const std::size_t n = xs.size();
  if (n == 0) return fit;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace slate
