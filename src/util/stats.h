// Streaming statistics helpers.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace slate {

// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
// Numerically stable for long runs; O(1) memory.
class StreamingStats {
 public:
  void add(double x) noexcept;
  void merge(const StreamingStats& other) noexcept;
  void reset() noexcept { *this = StreamingStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Exact quantile over a retained sample vector. Used where sample counts are
// bounded (per-experiment latency distributions); for unbounded streams use
// LatencyHistogram instead.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
    sum_ += x;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  // O(1): the sum streams alongside add().
  [[nodiscard]] double mean() const noexcept {
    return samples_.empty() ? 0.0
                            : sum_ / static_cast<double>(samples_.size());
  }
  // Linear-interpolated quantile, q in [0, 1]. Returns 0 for an empty set
  // (mirrors mean()). Sorts lazily; amortized cost is one sort per batch of
  // queries, and interleaved add() calls only mark the cache dirty.
  [[nodiscard]] double quantile(double q) const;
  // O(1): extremes stream alongside add() — no sort needed.
  [[nodiscard]] double min() const noexcept {
    return samples_.empty() ? 0.0 : min_;
  }
  [[nodiscard]] double max() const noexcept {
    return samples_.empty() ? 0.0 : max_;
  }
  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }
  void clear() noexcept {
    samples_.clear();
    sorted_ = true;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Ordinary least squares fit of y = a + b*x. Returns {a, b, r_squared}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
LinearFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace slate
