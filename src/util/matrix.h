// Dense row-major matrix over a flat vector.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace slate {

template <typename T>
class FlatMatrix {
 public:
  FlatMatrix() = default;
  FlatMatrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  T& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  void fill(const T& value) { std::fill(data_.begin(), data_.end(), value); }
  [[nodiscard]] const std::vector<T>& data() const noexcept { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace slate
