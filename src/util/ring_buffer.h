// Growable ring-buffer FIFO for move-only elements.
//
// std::deque allocates and frees ~500-byte chunk nodes as the head and tail
// oscillate across chunk boundaries — on the station hot path that churn was
// ~1 heap allocation per simulated request (bench/micro_simulator). This
// ring keeps one power-of-two backing array, grows geometrically, and never
// touches the heap in steady state. Indexed access and ordered erase cover
// the priority-eviction scan the station queue needs.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>

namespace slate {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;
  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;
  RingBuffer(RingBuffer&& other) noexcept
      : slots_(std::move(other.slots_)),
        capacity_(other.capacity_),
        head_(other.head_),
        size_(other.size_) {
    other.capacity_ = other.head_ = other.size_ = 0;
  }
  RingBuffer& operator=(RingBuffer&& other) noexcept {
    if (this != &other) {
      clear();
      slots_ = std::move(other.slots_);
      capacity_ = other.capacity_;
      head_ = other.head_;
      size_ = other.size_;
      other.capacity_ = other.head_ = other.size_ = 0;
    }
    return *this;
  }
  ~RingBuffer() { clear(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  // Element `i` positions from the front (0 = oldest).
  [[nodiscard]] T& operator[](std::size_t i) noexcept {
    assert(i < size_);
    return *ptr(physical(i));
  }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    assert(i < size_);
    return *ptr(physical(i));
  }
  [[nodiscard]] T& front() noexcept { return (*this)[0]; }

  void push_back(T value) {
    if (size_ == capacity_) grow();
    ::new (static_cast<void*>(ptr(physical(size_)))) T(std::move(value));
    ++size_;
  }

  // Removes and returns the oldest element.
  T pop_front() {
    assert(size_ > 0);
    T* slot = ptr(head_);
    T out = std::move(*slot);
    slot->~T();
    head_ = (head_ + 1) & (capacity_ - 1);
    --size_;
    return out;
  }

  // Removes the element `i` positions from the front, preserving FIFO order
  // of the rest. O(distance to nearest end); the eviction path that uses it
  // is rare (queue-full shedding).
  T erase(std::size_t i) {
    assert(i < size_);
    T out = std::move((*this)[i]);
    if (i < size_ - i) {
      // Shift the prefix toward the back.
      for (std::size_t j = i; j > 0; --j) {
        (*this)[j] = std::move((*this)[j - 1]);
      }
      ptr(head_)->~T();
      head_ = (head_ + 1) & (capacity_ - 1);
    } else {
      // Shift the suffix toward the front.
      for (std::size_t j = i; j + 1 < size_; ++j) {
        (*this)[j] = std::move((*this)[j + 1]);
      }
      ptr(physical(size_ - 1))->~T();
    }
    --size_;
    return out;
  }

  void clear() noexcept {
    for (std::size_t i = 0; i < size_; ++i) ptr(physical(i))->~T();
    head_ = 0;
    size_ = 0;
  }

 private:
  [[nodiscard]] std::size_t physical(std::size_t i) const noexcept {
    return (head_ + i) & (capacity_ - 1);
  }
  [[nodiscard]] T* ptr(std::size_t physical_index) const noexcept {
    return std::launder(reinterpret_cast<T*>(
        slots_.get() + physical_index * sizeof(T)));
  }

  void grow() {
    const std::size_t new_capacity = capacity_ == 0 ? 8 : capacity_ * 2;
    auto fresh = std::unique_ptr<unsigned char[]>(
        new (std::align_val_t{alignof(T)}) unsigned char[new_capacity * sizeof(T)]);
    for (std::size_t i = 0; i < size_; ++i) {
      T* from = ptr(physical(i));
      ::new (static_cast<void*>(fresh.get() + i * sizeof(T))) T(std::move(*from));
      from->~T();
    }
    slots_ = std::move(fresh);
    capacity_ = new_capacity;
    head_ = 0;
  }

  std::unique_ptr<unsigned char[]> slots_;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace slate
