// Minimal leveled logging to stderr.
//
// The simulator's hot path never logs; logging exists for controllers and
// experiment harnesses. Level is a process-global that defaults to kWarn so
// tests and benches stay quiet unless asked.
#pragma once

#include <sstream>
#include <string>

namespace slate {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {
void log_line(LogLevel level, const std::string& message);
}

// Usage: SLATE_LOG(kInfo) << "solved in " << ms << " ms";
#define SLATE_LOG(level_name)                                              \
  for (bool slate_log_once =                                               \
           ::slate::log_level() <= ::slate::LogLevel::level_name;          \
       slate_log_once; slate_log_once = false)                             \
  ::slate::detail::LogStream(::slate::LogLevel::level_name)

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace slate
