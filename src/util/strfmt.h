// printf-style std::string formatting (libstdc++ 12 lacks <format>).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace slate {

[[gnu::format(printf, 1, 2)]] inline std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace slate
