// Small-buffer-optimized move-only callable wrapper.
//
// The simulator executes millions of closures per run; std::function's
// 16-byte inline buffer (libstdc++) pushes nearly every capture onto the
// heap. InlineFunction<Sig, N> stores callables up to N bytes inline (no
// allocation, default 64 — two cache lines including the vtable pointer)
// and falls back to the heap only for fat captures. Unlike std::function it
// requires only move-constructibility, so closures may own move-only
// resources (pool handles, other InlineFunctions).
//
// Deliberately minimal: no copy, no target_type, no allocator support —
// exactly what a hot event loop needs and nothing more.
#pragma once

#include <cstddef>
#include <functional>  // std::bad_function_call
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace slate {

template <typename Sig, std::size_t InlineSize = 64>
class InlineFunction;  // undefined; specialized below

template <typename R, typename... Args, std::size_t InlineSize>
class InlineFunction<R(Args...), InlineSize> {
 public:
  static constexpr std::size_t inline_size = InlineSize;

  // Does a callable of type F live in the inline buffer (vs the heap)?
  template <typename F>
  static constexpr bool stores_inline =
      sizeof(F) <= InlineSize && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    construct(std::forward<F>(fn));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction& operator=(F&& fn) {
    reset();
    construct(std::forward<F>(fn));
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  R operator()(Args... args) {
    if (vtable_ == nullptr) throw std::bad_function_call();
    return vtable_->invoke(storage_, std::forward<Args>(args)...);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vtable_ != nullptr;
  }

  // True when the held callable lives in the inline buffer. Empty functions
  // report true (nothing was heap-allocated).
  [[nodiscard]] bool is_inline() const noexcept {
    return vtable_ == nullptr || vtable_->heap == false;
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

 private:
  struct VTable {
    R (*invoke)(void* storage, Args&&... args);
    // Move-construct the callable of `src` into `dst`, then destroy src's.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool heap;
  };

  template <typename F>
  void construct(F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (stores_inline<Fn>) {
      static constexpr VTable vtable = {
          [](void* storage, Args&&... args) -> R {
            return (*std::launder(reinterpret_cast<Fn*>(storage)))(
                std::forward<Args>(args)...);
          },
          [](void* dst, void* src) noexcept {
            Fn* from = std::launder(reinterpret_cast<Fn*>(src));
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
          },
          [](void* storage) noexcept {
            std::launder(reinterpret_cast<Fn*>(storage))->~Fn();
          },
          /*heap=*/false,
      };
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      vtable_ = &vtable;
    } else {
      static constexpr VTable vtable = {
          [](void* storage, Args&&... args) -> R {
            return (**std::launder(reinterpret_cast<Fn**>(storage)))(
                std::forward<Args>(args)...);
          },
          [](void* dst, void* src) noexcept {
            // Heap target: relocation is a pointer move.
            Fn** from = std::launder(reinterpret_cast<Fn**>(src));
            ::new (dst) (Fn*)(*from);
          },
          [](void* storage) noexcept {
            delete *std::launder(reinterpret_cast<Fn**>(storage));
          },
          /*heap=*/true,
      };
      Fn* heap_fn = new Fn(std::forward<F>(fn));
      ::new (static_cast<void*>(storage_)) (Fn*)(heap_fn);
      vtable_ = &vtable;
    }
  }

  void move_from(InlineFunction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[InlineSize];
};

}  // namespace slate
