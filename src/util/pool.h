// Chunked freelist object pool with intrusive reference counting.
//
// The data plane creates short-lived per-request control blocks (request
// state, call-chain state, attempt state) at event rates of millions per
// second; allocating each from the global heap dominated the hot path.
// Pool<T> hands out slots from chunk-allocated arenas and recycles them
// through a freelist: after warmup, steady-state allocation cost is a
// pointer pop, and the heap is touched once per chunk, not once per object.
//
// PoolPtr<T> is the shared_ptr analogue: copies bump a (non-atomic) count
// in the slot header, and the slot returns to the freelist when the count
// hits zero. Single-threaded by design — each Simulation owns its pools,
// matching the one-simulator-per-thread execution model of the parallel
// experiment harness.
//
// Lifetime contract: the Pool must outlive every PoolPtr into it (declare
// pools before the structures whose members hold handles). Slots still
// live when the pool dies are NOT destroyed — the pool asserts in debug
// builds that none remain.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace slate {

template <typename T>
class Pool;

template <typename T>
class PoolPtr {
 public:
  PoolPtr() noexcept = default;
  PoolPtr(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  PoolPtr(const PoolPtr& other) noexcept : slot_(other.slot_) {
    if (slot_ != nullptr) ++slot_->refs;
  }
  PoolPtr(PoolPtr&& other) noexcept : slot_(other.slot_) {
    other.slot_ = nullptr;
  }
  PoolPtr& operator=(const PoolPtr& other) noexcept {
    if (slot_ != other.slot_) {
      release();
      slot_ = other.slot_;
      if (slot_ != nullptr) ++slot_->refs;
    }
    return *this;
  }
  PoolPtr& operator=(PoolPtr&& other) noexcept {
    if (this != &other) {
      release();
      slot_ = other.slot_;
      other.slot_ = nullptr;
    }
    return *this;
  }
  ~PoolPtr() { release(); }

  [[nodiscard]] T* get() const noexcept {
    return slot_ != nullptr ? slot_->object() : nullptr;
  }
  T* operator->() const noexcept { return get(); }
  T& operator*() const noexcept { return *get(); }
  [[nodiscard]] explicit operator bool() const noexcept {
    return slot_ != nullptr;
  }
  [[nodiscard]] std::size_t use_count() const noexcept {
    return slot_ != nullptr ? slot_->refs : 0;
  }

  void reset() noexcept { release(); }

  friend bool operator==(const PoolPtr& a, const PoolPtr& b) noexcept {
    return a.slot_ == b.slot_;
  }

 private:
  friend class Pool<T>;
  using Slot = typename Pool<T>::Slot;

  explicit PoolPtr(Slot* slot) noexcept : slot_(slot) {}

  void release() noexcept {
    if (slot_ == nullptr) return;
    if (--slot_->refs == 0) slot_->owner->recycle(slot_);
    slot_ = nullptr;
  }

  Slot* slot_ = nullptr;
};

template <typename T>
class Pool {
 public:
  // `chunk_objects` slots are carved per heap allocation.
  explicit Pool(std::size_t chunk_objects = 256)
      : chunk_objects_(chunk_objects > 0 ? chunk_objects : 1) {}

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;
  ~Pool() { assert(live_ == 0 && "PoolPtr outlived its Pool"); }

  // Constructs a T and returns an owning handle.
  template <typename... Args>
  PoolPtr<T> make(Args&&... args) {
    Slot* slot = free_;
    if (slot == nullptr) {
      grow();
      slot = free_;
    }
    free_ = slot->next_free;
    ::new (static_cast<void*>(slot->storage)) T(std::forward<Args>(args)...);
    slot->refs = 1;
    ++live_;
    return PoolPtr<T>(slot);
  }

  // Live objects (handles outstanding).
  [[nodiscard]] std::size_t live() const noexcept { return live_; }
  // Slots ever carved (high-water capacity).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return chunks_.size() * chunk_objects_;
  }
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunks_.size();
  }

 private:
  friend class PoolPtr<T>;

  struct Slot {
    alignas(T) unsigned char storage[sizeof(T)];
    std::size_t refs = 0;
    Slot* next_free = nullptr;
    Pool* owner = nullptr;

    [[nodiscard]] T* object() noexcept {
      return std::launder(reinterpret_cast<T*>(storage));
    }
  };

  void grow() {
    chunks_.push_back(std::make_unique<Slot[]>(chunk_objects_));
    Slot* chunk = chunks_.back().get();
    for (std::size_t i = 0; i < chunk_objects_; ++i) {
      chunk[i].owner = this;
      chunk[i].next_free = free_;
      free_ = &chunk[i];
    }
  }

  void recycle(Slot* slot) noexcept {
    slot->object()->~T();
    slot->next_free = free_;
    free_ = slot;
    --live_;
  }

  std::size_t chunk_objects_;
  Slot* free_ = nullptr;
  std::size_t live_ = 0;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
};

}  // namespace slate
