#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace slate {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  assert(lo <= hi);
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::exponential(double mean) noexcept {
  assert(mean > 0.0);
  // next_double() < 1, so the argument of log is in (0, 1]: never -inf.
  return -mean * std::log(1.0 - next_double());
}

double Rng::normal(double mean, double stddev) noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return mean + stddev * u * factor;
}

std::size_t Rng::weighted_pick(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  assert(total > 0.0);
  double r = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return 0;
}

bool Rng::bernoulli(double p) noexcept { return next_double() < p; }

Rng Rng::fork(std::uint64_t tag) noexcept {
  // Mix the tag into fresh draws so sibling forks are decorrelated.
  std::uint64_t s = next_u64() ^ (tag * 0xD1342543DE82EF95ull + 0x2545F4914F6CDD1Dull);
  return Rng(splitmix64(s));
}

}  // namespace slate
