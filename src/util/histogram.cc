#include "util/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace slate {

LatencyHistogram::LatencyHistogram(double min_value, double max_value,
                                   std::size_t buckets)
    : log_min_(std::log(min_value)),
      log_max_(std::log(max_value)),
      counts_(buckets, 0) {
  if (!(min_value > 0.0) || !(max_value > min_value) || buckets < 2) {
    throw std::invalid_argument("LatencyHistogram: bad bounds or bucket count");
  }
  inv_log_width_ = static_cast<double>(buckets) / (log_max_ - log_min_);
}

std::size_t LatencyHistogram::bucket_for(double value) const noexcept {
  if (!(value > 0.0)) return 0;
  const double pos = (std::log(value) - log_min_) * inv_log_width_;
  if (pos < 0.0) return 0;
  const auto idx = static_cast<std::size_t>(pos);
  return std::min(idx, counts_.size() - 1);
}

void LatencyHistogram::add(double value) noexcept {
  ++counts_[bucket_for(value)];
  ++count_;
  sum_ += value;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.counts_.size() != counts_.size() || other.log_min_ != log_min_ ||
      other.log_max_ != log_max_) {
    throw std::invalid_argument("LatencyHistogram::merge: shape mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
}

double LatencyHistogram::mean() const noexcept {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double LatencyHistogram::bucket_lower(std::size_t i) const {
  assert(i < counts_.size());
  const double width = (log_max_ - log_min_) / static_cast<double>(counts_.size());
  return std::exp(log_min_ + width * static_cast<double>(i));
}

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  assert(q >= 0.0 && q <= 1.0);
  const double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      // Interpolate within the bucket (geometric midpoint behaviour).
      const double lower = bucket_lower(i);
      const double upper = (i + 1 < counts_.size()) ? bucket_lower(i + 1)
                                                    : std::exp(log_max_);
      const double frac = counts_[i] == 0
                              ? 0.5
                              : (target - cumulative) / static_cast<double>(counts_[i]);
      return lower + (upper - lower) * frac;
    }
    cumulative = next;
  }
  return std::exp(log_max_);
}

}  // namespace slate
