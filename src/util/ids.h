// Strong integer identifier types.
//
// Clusters, services, traffic classes, call-graph edges, and requests are all
// referred to by dense indices throughout the library. Using a distinct type
// per entity prevents the classic bug of passing a service index where a
// cluster index was expected; the compiler rejects the mix-up.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace slate {

// A type-tagged integer id. `Tag` is an empty struct unique per entity kind.
// Ids are trivially copyable, totally ordered, hashable, and stream-printable.
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::uint32_t;

  // An id that refers to nothing; default-constructed ids are invalid.
  static constexpr underlying_type kInvalid = ~underlying_type{0};

  constexpr StrongId() noexcept = default;
  constexpr explicit StrongId(underlying_type value) noexcept : value_(value) {}
  constexpr explicit StrongId(std::size_t value) noexcept
      : value_(static_cast<underlying_type>(value)) {}
  constexpr explicit StrongId(int value) noexcept
      : value_(static_cast<underlying_type>(value)) {}

  [[nodiscard]] constexpr underlying_type value() const noexcept { return value_; }
  [[nodiscard]] constexpr std::size_t index() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != kInvalid; }

  friend constexpr bool operator==(StrongId, StrongId) = default;
  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value_;
  }

 private:
  underlying_type value_ = kInvalid;
};

struct ClusterTag {};
struct ServiceTag {};
struct ClassTag {};
struct EdgeTag {};
struct RequestTag {};

using ClusterId = StrongId<ClusterTag>;
using ServiceId = StrongId<ServiceTag>;
using ClassId = StrongId<ClassTag>;
using EdgeId = StrongId<EdgeTag>;    // A call-graph edge within a class's call tree.
using RequestId = StrongId<RequestTag>;

}  // namespace slate

namespace std {
template <typename Tag>
struct hash<slate::StrongId<Tag>> {
  size_t operator()(slate::StrongId<Tag> id) const noexcept {
    return std::hash<typename slate::StrongId<Tag>::underlying_type>{}(id.value());
  }
};
}  // namespace std
