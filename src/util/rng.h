// Deterministic pseudo-random number generation for simulations.
//
// We implement xoshiro256++ (public-domain algorithm by Blackman & Vigna)
// rather than using std::mt19937_64 because (a) it is several times faster on
// the simulator's hot path, and (b) its behaviour is fully pinned down by this
// file, so experiment results are reproducible across standard libraries.
//
// Streams: `Rng::fork(tag)` derives an independent generator from a parent,
// letting each workload source / station own a private stream so that adding
// one event source never perturbs another's draws.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace slate {

class Rng {
 public:
  // Seeds the four 64-bit words of state from `seed` via SplitMix64, which
  // guarantees a non-zero, well-mixed state for any seed value.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  // Uniform 64 random bits.
  std::uint64_t next_u64() noexcept;

  // Uniform double in [0, 1). 53 bits of precision.
  double next_double() noexcept;

  // Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  // Uniform integer in [0, n). Requires n > 0. Unbiased (rejection sampling).
  std::uint64_t uniform_u64(std::uint64_t n) noexcept;

  // Exponentially distributed value with the given mean (= 1/rate).
  // Requires mean > 0.
  double exponential(double mean) noexcept;

  // Standard normal via Marsaglia polar method.
  double normal(double mean, double stddev) noexcept;

  // Samples an index with probability proportional to weights[i].
  // Requires at least one strictly positive weight.
  std::size_t weighted_pick(std::span<const double> weights) noexcept;

  // True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  // Derives an independent generator; `tag` distinguishes sibling forks.
  [[nodiscard]] Rng fork(std::uint64_t tag) noexcept;

 private:
  std::uint64_t state_[4];
  // Cached second value from the polar method.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace slate
