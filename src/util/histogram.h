// Log-bucketed latency histogram.
//
// Fixed memory regardless of sample count; quantile error bounded by the
// bucket growth factor (~2.4% with the default 64 buckets per decade shape).
// Used for unbounded telemetry streams where SampleSet would grow without
// limit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace slate {

class LatencyHistogram {
 public:
  // Tracks values in [min_value, max_value]; values outside are clamped into
  // the first/last bucket. Defaults suit latencies in seconds (10us .. 100s).
  explicit LatencyHistogram(double min_value = 1e-5, double max_value = 100.0,
                            std::size_t buckets = 256);

  void add(double value) noexcept;
  void merge(const LatencyHistogram& other);
  void reset() noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept;
  // Approximate quantile (bucket midpoint interpolation); 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  // Lower edge of bucket i.
  [[nodiscard]] double bucket_lower(std::size_t i) const;

 private:
  [[nodiscard]] std::size_t bucket_for(double value) const noexcept;

  double log_min_;
  double log_max_;
  double inv_log_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

}  // namespace slate
