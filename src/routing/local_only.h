// Strictly-local routing: always the caller's own cluster.
//
// The "default option" of the paper's introduction. Throws if the child
// service is not deployed locally — use LocalityFailoverPolicy when partial
// replication is possible.
#pragma once

#include "routing/policy.h"

namespace slate {

class LocalOnlyPolicy final : public RoutingPolicy {
 public:
  ClusterId route(const RouteQuery& query, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "local-only"; }
};

}  // namespace slate
