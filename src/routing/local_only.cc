#include "routing/local_only.h"

#include <stdexcept>

namespace slate {

ClusterId LocalOnlyPolicy::route(const RouteQuery& query, Rng& /*rng*/) {
  for (ClusterId c : *query.candidates) {
    if (c == query.from) return c;
  }
  throw std::runtime_error(
      "LocalOnlyPolicy: child service not deployed in the local cluster");
}

}  // namespace slate
