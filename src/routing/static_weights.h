// Istio-style locality weighted distribution.
//
// The paper's operator survey (§2) lists "static load distribution [13]"
// among the mechanisms in production use: the operator hand-configures, per
// source cluster, fixed percentages of traffic toward each destination
// cluster, identical for every service and class and never adapting to
// load. This policy completes the baseline set; it is what SLATE's
// continuously re-optimized per-class weights generalize.
#pragma once

#include "net/topology.h"
#include "routing/policy.h"
#include "util/matrix.h"

namespace slate {

class StaticWeightsPolicy final : public RoutingPolicy {
 public:
  // `distribution(i, j)` = share of traffic originating in cluster i to send
  // to cluster j. Rows need not be normalized; negative entries are invalid.
  // Destinations where a service is not deployed are skipped at route time
  // (remaining weights renormalize implicitly); if no configured destination
  // hosts the service, falls back to the nearest candidate.
  StaticWeightsPolicy(const Topology& topology, FlatMatrix<double> distribution);

  // Convenience: keep `local_share` at home, split the rest evenly across
  // the other clusters (a common hand-tuned configuration).
  static StaticWeightsPolicy make_uniform_spread(const Topology& topology,
                                                 double local_share);

  ClusterId route(const RouteQuery& query, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "static-weights"; }

 private:
  const Topology* topology_;
  FlatMatrix<double> distribution_;
};

}  // namespace slate
