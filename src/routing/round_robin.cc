#include "routing/round_robin.h"

namespace slate {

ClusterId RoundRobinPolicy::route(const RouteQuery& query, Rng& /*rng*/) {
  const std::uint64_t key = (static_cast<std::uint64_t>(query.cls.value()) << 40) ^
                            (static_cast<std::uint64_t>(query.call_node) << 20) ^
                            query.from.value();
  std::size_t& cursor = cursors_[key];
  const auto& candidates = *query.candidates;
  const ClusterId pick = candidates[cursor % candidates.size()];
  ++cursor;
  return pick;
}

}  // namespace slate
