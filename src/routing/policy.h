// Request routing policy interface.
//
// A policy answers one question on the request critical path: for a call of
// traffic class `cls` at call-tree node `call_node`, issued from cluster
// `from` toward `child_service`, which candidate cluster should serve it?
// Candidates are exactly the clusters where the child service is deployed.
//
// Policies must be cheap: they run per request (paper §3.1, "simple and
// heavily optimized since it is in the critical path"). State they consult
// (loads, rules) is maintained off the critical path.
#pragma once

#include <string>
#include <vector>

#include "util/ids.h"
#include "util/rng.h"

namespace slate {

struct RouteQuery {
  ClassId cls;
  std::size_t call_node = 0;
  ServiceId child_service;
  ClusterId from;
  // Clusters where the child service is deployed, ascending id order,
  // non-empty.
  const std::vector<ClusterId>* candidates = nullptr;
};

class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  // Picks the serving cluster. `query.candidates` is non-empty; the result
  // must be one of them.
  virtual ClusterId route(const RouteQuery& query, Rng& rng) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

// Read-only view of instantaneous per-(service, cluster) load, provided by
// the runtime. Waterfall consults it; in real deployments this is the
// (slightly stale) load signal Traffic Director / ServiceRouter distribute.
class LoadView {
 public:
  virtual ~LoadView() = default;
  // Requests/second currently arriving at `service` in `cluster`.
  [[nodiscard]] virtual double load_rps(ServiceId service,
                                        ClusterId cluster) const = 0;
};

}  // namespace slate
