// Cluster-level round robin.
//
// Cycles across every cluster hosting the child service, ignoring locality,
// load, and cost — the strawman extension of single-cluster round robin to
// multi-cluster (paper §2: "simple load balancing (i.e., round robin, ...)").
// One cursor per (class, call node, source cluster) keeps streams fair.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "routing/policy.h"

namespace slate {

class RoundRobinPolicy final : public RoutingPolicy {
 public:
  ClusterId route(const RouteQuery& query, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "round-robin"; }

 private:
  std::unordered_map<std::uint64_t, std::size_t> cursors_;
};

}  // namespace slate
