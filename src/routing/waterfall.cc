#include "routing/waterfall.h"

#include <limits>

namespace slate {

WaterfallPolicy::WaterfallPolicy(const Topology& topology,
                                 const Deployment& deployment,
                                 const LoadView& loads,
                                 WaterfallOptions options)
    : topology_(&topology),
      deployment_(&deployment),
      loads_(&loads),
      options_(options) {}

double WaterfallPolicy::capacity(ServiceId service, ClusterId cluster) const {
  return deployment_->capacity_rps(service, cluster) * options_.threshold_scale;
}

ClusterId WaterfallPolicy::route(const RouteQuery& query, Rng& /*rng*/) {
  const auto& candidates = *query.candidates;
  const ServiceId service = query.child_service;

  // 1. Local first, while under threshold.
  for (ClusterId c : candidates) {
    if (c == query.from &&
        loads_->load_rps(service, c) < capacity(service, c)) {
      return c;
    }
  }

  // 2. Spill to the nearest candidate with headroom (greedy, single-hop view).
  ClusterId best;
  double best_latency = std::numeric_limits<double>::infinity();
  for (ClusterId c : candidates) {
    if (loads_->load_rps(service, c) >= capacity(service, c)) continue;
    const double l = topology_->one_way_latency(query.from, c);
    if (l < best_latency) {
      best_latency = l;
      best = c;
    }
  }
  if (best.valid()) return best;

  // 3. Everyone is saturated: least load relative to capacity.
  double best_ratio = std::numeric_limits<double>::infinity();
  for (ClusterId c : candidates) {
    const double ratio = loads_->load_rps(service, c) / capacity(service, c);
    if (ratio < best_ratio) {
      best_ratio = ratio;
      best = c;
    }
  }
  return best;
}

}  // namespace slate
