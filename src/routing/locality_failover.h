// Istio-style locality failover.
//
// Serve locally when the child service is deployed in the caller's cluster;
// otherwise fail over to the nearest cluster (by network latency) that hosts
// it. This is what the paper's surveyed operators run today and what existing
// service meshes do under partial replication (paper §2, §4.3): the
// cross-cluster cut always happens at the edge whose local replica is
// missing, with no view of cost or downstream hops.
#pragma once

#include "net/topology.h"
#include "routing/policy.h"

namespace slate {

class LocalityFailoverPolicy final : public RoutingPolicy {
 public:
  explicit LocalityFailoverPolicy(const Topology& topology)
      : topology_(&topology) {}

  ClusterId route(const RouteQuery& query, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "locality-failover"; }

 private:
  const Topology* topology_;
};

}  // namespace slate
