// The Waterfall algorithm: greedy capacity-based offloading.
//
// Faithful to the scheme the paper evaluates as its baseline (Google Traffic
// Director's "waterfall by region" / Meta ServiceRouter, paper §4):
//   * every (service, cluster) has an operator-configured static capacity in
//     requests/second (any class — Waterfall is class-blind);
//   * a request is served locally while the local replica pool's current
//     load is below capacity;
//   * load beyond capacity spills greedily to the NEAREST cluster (by
//     network latency from the caller) whose load is below its capacity;
//   * if no cluster has headroom, the least-loaded-relative-to-capacity
//     cluster is used (the request must go somewhere).
//
// The load signal comes from a LoadView, as in real deployments where the
// control plane distributes (slightly stale) replica-pool loads.
#pragma once

#include "cluster/deployment.h"
#include "net/topology.h"
#include "routing/policy.h"

namespace slate {

struct WaterfallOptions {
  // Scales every configured capacity, modelling conservative (<1) or
  // aggressive (>1) thresholds relative to nominal capacity (paper Fig. 3).
  double threshold_scale = 1.0;
};

class WaterfallPolicy final : public RoutingPolicy {
 public:
  WaterfallPolicy(const Topology& topology, const Deployment& deployment,
                  const LoadView& loads, WaterfallOptions options = {});

  ClusterId route(const RouteQuery& query, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "waterfall"; }

 private:
  [[nodiscard]] double capacity(ServiceId service, ClusterId cluster) const;

  const Topology* topology_;
  const Deployment* deployment_;
  const LoadView* loads_;
  WaterfallOptions options_;
};

}  // namespace slate
