#include "routing/locality_failover.h"

namespace slate {

ClusterId LocalityFailoverPolicy::route(const RouteQuery& query, Rng& /*rng*/) {
  for (ClusterId c : *query.candidates) {
    if (c == query.from) return c;
  }
  return topology_->nearest(query.from, *query.candidates);
}

}  // namespace slate
