#include "routing/static_weights.h"

#include <stdexcept>
#include <vector>

namespace slate {

StaticWeightsPolicy::StaticWeightsPolicy(const Topology& topology,
                                         FlatMatrix<double> distribution)
    : topology_(&topology), distribution_(std::move(distribution)) {
  if (distribution_.rows() != topology.cluster_count() ||
      distribution_.cols() != topology.cluster_count()) {
    throw std::invalid_argument("StaticWeightsPolicy: matrix shape mismatch");
  }
  for (double w : distribution_.data()) {
    if (w < 0.0) {
      throw std::invalid_argument("StaticWeightsPolicy: negative weight");
    }
  }
}

StaticWeightsPolicy StaticWeightsPolicy::make_uniform_spread(
    const Topology& topology, double local_share) {
  if (local_share < 0.0 || local_share > 1.0) {
    throw std::invalid_argument("StaticWeightsPolicy: local_share in [0,1]");
  }
  const std::size_t n = topology.cluster_count();
  FlatMatrix<double> dist(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        dist(i, j) = n == 1 ? 1.0 : local_share;
      } else {
        dist(i, j) = (1.0 - local_share) / static_cast<double>(n - 1);
      }
    }
  }
  return StaticWeightsPolicy(topology, std::move(dist));
}

ClusterId StaticWeightsPolicy::route(const RouteQuery& query, Rng& rng) {
  // Weights restricted to clusters actually hosting the service.
  std::vector<double> weights;
  weights.reserve(query.candidates->size());
  double total = 0.0;
  for (ClusterId c : *query.candidates) {
    const double w = distribution_(query.from.index(), c.index());
    weights.push_back(w);
    total += w;
  }
  if (total <= 0.0) {
    return topology_->nearest(query.from, *query.candidates);
  }
  return (*query.candidates)[rng.weighted_pick(weights)];
}

}  // namespace slate
