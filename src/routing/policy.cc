// policy.h is interface-only; this file anchors the library target.
#include "routing/policy.h"
