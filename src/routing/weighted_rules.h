// SLATE routing rules and their data-plane executor.
//
// A rule is exactly the paper's §3.3 output: "when a request matches class X
// (at this call edge, in this source cluster), send w1 of requests to
// cluster 1, w2 to cluster 2, ...". The global controller computes rule
// sets; cluster controllers push them; WeightedRulesPolicy executes them
// with one weighted draw per request.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/topology.h"
#include "routing/policy.h"

namespace slate {

struct RouteWeights {
  // Parallel arrays; weights are non-negative and sum to ~1.
  std::vector<ClusterId> clusters;
  std::vector<double> weights;

  [[nodiscard]] bool empty() const noexcept { return clusters.empty(); }
  // Largest-weight cluster (deterministic summary, used in reports/tests).
  [[nodiscard]] ClusterId primary() const;
  // Weight assigned to `cluster` (0 if absent).
  [[nodiscard]] double weight_for(ClusterId cluster) const noexcept;
  void normalize();
};

// Immutable once built; shared by reference into the data plane so a rule
// push is a single pointer swap per proxy.
class RoutingRuleSet {
 public:
  void set_rule(ClassId cls, std::size_t call_node, ClusterId from,
                RouteWeights weights);
  [[nodiscard]] const RouteWeights* find(ClassId cls, std::size_t call_node,
                                         ClusterId from) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return rules_.size(); }

  // Throws std::logic_error if any rule has negative weights, a zero total,
  // or mismatched array sizes.
  void validate() const;

  template <typename F>
  void for_each(F&& fn) const {
    for (const auto& [key, weights] : rules_) {
      fn(ClassId{static_cast<std::uint32_t>(key >> 40)},
         static_cast<std::size_t>((key >> 20) & 0xFFFFF),
         ClusterId{static_cast<std::uint32_t>(key & 0xFFFFF)}, weights);
    }
  }

  static std::uint64_t make_key(ClassId cls, std::size_t call_node,
                                ClusterId from) noexcept;

 private:
  std::unordered_map<std::uint64_t, RouteWeights> rules_;
};

// Executes a rule set; falls back to locality failover for calls with no
// rule (e.g. before the first optimization round).
class WeightedRulesPolicy final : public RoutingPolicy {
 public:
  explicit WeightedRulesPolicy(const Topology& topology);

  ClusterId route(const RouteQuery& query, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "slate-rules"; }

  // Atomically replaces the active rule set (the control-plane push).
  void update_rules(std::shared_ptr<const RoutingRuleSet> rules) noexcept {
    rules_ = std::move(rules);
  }
  [[nodiscard]] std::shared_ptr<const RoutingRuleSet> rules() const noexcept {
    return rules_;
  }

 private:
  const Topology* topology_;
  std::shared_ptr<const RoutingRuleSet> rules_;
};

}  // namespace slate
