#include "routing/weighted_rules.h"

#include <stdexcept>

namespace slate {

ClusterId RouteWeights::primary() const {
  ClusterId best;
  double best_weight = -1.0;
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    if (weights[i] > best_weight) {
      best_weight = weights[i];
      best = clusters[i];
    }
  }
  return best;
}

double RouteWeights::weight_for(ClusterId cluster) const noexcept {
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    if (clusters[i] == cluster) return weights[i];
  }
  return 0.0;
}

void RouteWeights::normalize() {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) {
    throw std::logic_error("RouteWeights: cannot normalize zero weights");
  }
  for (double& w : weights) w /= total;
}

std::uint64_t RoutingRuleSet::make_key(ClassId cls, std::size_t call_node,
                                       ClusterId from) noexcept {
  return (static_cast<std::uint64_t>(cls.value()) << 40) |
         (static_cast<std::uint64_t>(call_node & 0xFFFFF) << 20) |
         (from.value() & 0xFFFFF);
}

void RoutingRuleSet::set_rule(ClassId cls, std::size_t call_node,
                              ClusterId from, RouteWeights weights) {
  rules_[make_key(cls, call_node, from)] = std::move(weights);
}

const RouteWeights* RoutingRuleSet::find(ClassId cls, std::size_t call_node,
                                         ClusterId from) const noexcept {
  const auto it = rules_.find(make_key(cls, call_node, from));
  return it == rules_.end() ? nullptr : &it->second;
}

void RoutingRuleSet::validate() const {
  for (const auto& [key, rule] : rules_) {
    (void)key;
    if (rule.clusters.size() != rule.weights.size()) {
      throw std::logic_error("RoutingRuleSet: size mismatch");
    }
    double total = 0.0;
    for (double w : rule.weights) {
      if (w < 0.0) throw std::logic_error("RoutingRuleSet: negative weight");
      total += w;
    }
    if (total <= 0.0) throw std::logic_error("RoutingRuleSet: zero total weight");
  }
}

WeightedRulesPolicy::WeightedRulesPolicy(const Topology& topology)
    : topology_(&topology) {}

ClusterId WeightedRulesPolicy::route(const RouteQuery& query, Rng& rng) {
  const std::shared_ptr<const RoutingRuleSet> rules = rules_;
  if (rules != nullptr) {
    const RouteWeights* rule = rules->find(query.cls, query.call_node, query.from);
    if (rule != nullptr && !rule->empty()) {
      const std::size_t pick = rng.weighted_pick(rule->weights);
      return rule->clusters[pick];
    }
  }
  // No rule yet: locality failover.
  for (ClusterId c : *query.candidates) {
    if (c == query.from) return c;
  }
  return topology_->nearest(query.from, *query.candidates);
}

}  // namespace slate
