// Seeded chaos campaigns: deterministic randomized failure sequences.
//
// A campaign is a compact generator for a whole gauntlet of failure shapes —
// outages, gray failures (service slowdowns), link partitions, and
// coordinated drains — instead of one hand-scripted story. Expansion is a
// pure function of (spec, world sizes): the same seed always yields the same
// concrete FaultPlan and drain list, at scenario-load time, drawing nothing
// from any simulation RNG stream. The determinism contract is therefore the
// strongest possible: a campaign-bearing scenario is just a scenario with a
// longer fault plan, and every engine/shard-count identity guarantee applies
// unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "contingency/contingency.h"
#include "fault/fault_plan.h"

namespace slate {

// Which event families a campaign may draw from.
struct CampaignKinds {
  bool outage = true;
  bool gray = true;       // service slowdown (slow, not down)
  bool partition = true;  // directed link partition
  bool drain = true;      // coordinated drain (contingency subsystem)
};

struct CampaignSpec {
  std::uint64_t seed = 1;
  std::size_t events = 0;       // must be >= 1
  double start = 10.0;          // first event no earlier than this
  double spacing = 10.0;        // mean gap between event starts, > 0
  double mean_duration = 8.0;   // mean event duration, > 0
  CampaignKinds kinds;
};

// Expands `spec` into concrete faults/drains against a world with
// `cluster_count` clusters and `service_count` services. Appends to `plan`
// and `drains`. Throws std::invalid_argument (message suitable for loader
// line-located errors) on events == 0, non-positive spacing/duration, no
// enabled kinds, or a world too small to host the enabled kinds.
void expand_campaign(const CampaignSpec& spec, std::size_t cluster_count,
                     std::size_t service_count, FaultPlan* plan,
                     std::vector<DrainSpec>* drains);

}  // namespace slate
