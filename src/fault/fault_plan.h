// Declarative fault schedules.
//
// A FaultPlan is a list of timed fault specifications — the experiment's
// "chaos script". Four fault kinds cover the failure families the paper's
// production targets (Traffic Director, ServiceRouter) are defined by:
//
//   * cluster outage      — every station in a cluster rejects new work;
//   * link degradation    — latency surge (multiplier and/or additive) or a
//                           full partition on one directed topology edge;
//   * service slowdown    — a compute-time multiplier on one service in one
//                           cluster (gray failure: slow, not down);
//   * telemetry blackout  — the cluster controller loses contact with the
//                           global controller (reports and rule pushes both
//                           stop; the data plane keeps serving);
//   * telemetry corruption — the cluster's reports arrive but carry garbage
//                           (spiked demand, zeroed/negated latencies): the
//                           byzantine-reporter case the admission guard
//                           exists for;
//   * solver outage       — the global controller's model-driven solvers
//                           are unavailable (crash-looping optimizer, forced
//                           timeouts); the fallback ladder or a full hold
//                           takes over.
//
// Plans are pure data: validation happens against a topology/application
// size, and the FaultInjector (fault_injector.h) turns a plan into live
// state on the discrete-event simulator. Faults may overlap freely —
// overlapping effects stack (multipliers multiply, extra latencies add) and
// boolean effects hold until every covering fault has ended.
#pragma once

#include <cstddef>
#include <vector>

#include "util/ids.h"

namespace slate {

enum class FaultKind {
  kClusterOutage,
  kLinkDegradation,
  kServiceSlowdown,
  kTelemetryBlackout,
  kTelemetryCorruption,
  kSolverOutage,
};

const char* to_string(FaultKind kind) noexcept;

struct FaultSpec {
  FaultKind kind = FaultKind::kClusterOutage;
  // Activation window [start, start + duration).
  double start = 0.0;
  double duration = 0.0;

  // kClusterOutage / kTelemetryBlackout / kTelemetryCorruption: the
  // affected cluster. kLinkDegradation: the edge source. kServiceSlowdown:
  // the hosting cluster, or invalid for "every cluster". kSolverOutage:
  // unused (the outage is global).
  ClusterId cluster;
  // kLinkDegradation only: the edge destination. The effect applies to the
  // directed edge (cluster -> to); add a second spec for the reverse path.
  ClusterId to;
  // kServiceSlowdown only: the affected service.
  ServiceId service;

  // kLinkDegradation: sampled latency -> latency * factor + extra_latency.
  // kServiceSlowdown: compute time -> compute * factor.
  // kTelemetryCorruption: spike multiplier applied to corrupted fields.
  double factor = 1.0;
  double extra_latency = 0.0;
  // kLinkDegradation: when true, messages on the edge are dropped instead
  // of delayed (callers see timeouts, not slowness).
  bool partition = false;

  [[nodiscard]] double end() const noexcept { return start + duration; }
};

class FaultPlan {
 public:
  // Appends a fault. Throws std::invalid_argument for non-positive
  // durations, negative start times, factors < 0, or kind/field mismatches
  // that can be checked without a world (e.g. a link fault with no `to`).
  void add(const FaultSpec& spec);

  // Convenience builders (return the added spec's index).
  std::size_t cluster_outage(ClusterId cluster, double start, double duration);
  std::size_t link_degradation(ClusterId from, ClusterId to, double start,
                               double duration, double factor,
                               double extra_latency = 0.0);
  std::size_t link_partition(ClusterId from, ClusterId to, double start,
                             double duration);
  std::size_t service_slowdown(ServiceId service, ClusterId cluster,
                               double start, double duration, double factor);
  std::size_t telemetry_blackout(ClusterId cluster, double start,
                                 double duration);
  std::size_t telemetry_corruption(ClusterId cluster, double start,
                                   double duration, double factor = 50.0);
  std::size_t solver_outage(double start, double duration);

  // Checks every referenced id against the world's sizes. Throws
  // std::invalid_argument naming the offending fault index.
  void validate(std::size_t cluster_count, std::size_t service_count) const;

  void append(const FaultPlan& other);
  void clear() noexcept { faults_.clear(); }

  [[nodiscard]] bool empty() const noexcept { return faults_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return faults_.size(); }
  [[nodiscard]] const std::vector<FaultSpec>& faults() const noexcept {
    return faults_;
  }

 private:
  std::vector<FaultSpec> faults_;
};

}  // namespace slate
