#include "fault/fault_injector.h"

#include <stdexcept>

#include "util/logging.h"

namespace slate {

FaultInjector::FaultInjector(Simulator& sim, FaultPlan plan,
                             std::size_t cluster_count,
                             std::size_t service_count)
    : sim_(sim),
      plan_(std::move(plan)),
      cluster_count_(cluster_count),
      outage_depth_(cluster_count, 0),
      blackout_depth_(cluster_count, 0),
      corrupt_depth_(cluster_count, 0),
      corrupt_factor_(cluster_count, 1.0),
      partition_depth_(cluster_count, cluster_count, 0),
      latency_factor_(cluster_count, cluster_count, 1.0),
      extra_latency_(cluster_count, cluster_count, 0.0),
      compute_factor_(service_count * cluster_count, 1.0) {
  plan_.validate(cluster_count, service_count);
}

void FaultInjector::arm() {
  if (armed_) {
    throw std::logic_error("FaultInjector: arm() called twice");
  }
  armed_ = true;
  for (const FaultSpec& spec : plan_.faults()) {
    if (spec.end() <= sim_.now()) continue;  // already over
    // A fault whose start has passed activates immediately.
    const double start = spec.start < sim_.now() ? sim_.now() : spec.start;
    sim_.schedule_at(start, [this, &spec]() { apply(spec, true); });
    sim_.schedule_at(spec.end(), [this, &spec]() { apply(spec, false); });
  }
}

void FaultInjector::apply(const FaultSpec& spec, bool activate) {
  const int step = activate ? 1 : -1;
  switch (spec.kind) {
    case FaultKind::kClusterOutage:
      outage_depth_[spec.cluster.index()] += step;
      break;
    case FaultKind::kTelemetryBlackout:
      blackout_depth_[spec.cluster.index()] += step;
      break;
    case FaultKind::kTelemetryCorruption: {
      corrupt_depth_[spec.cluster.index()] += step;
      double& f = corrupt_factor_[spec.cluster.index()];
      if (activate) {
        f *= spec.factor;
      } else {
        f /= spec.factor;
      }
      break;
    }
    case FaultKind::kSolverOutage:
      solver_depth_ += step;
      break;
    case FaultKind::kLinkDegradation: {
      const std::size_t i = spec.cluster.index();
      const std::size_t j = spec.to.index();
      if (spec.partition) partition_depth_(i, j) += step;
      if (spec.factor != 1.0) {
        if (activate) {
          latency_factor_(i, j) *= spec.factor;
        } else {
          latency_factor_(i, j) /= spec.factor;
        }
      }
      extra_latency_(i, j) += activate ? spec.extra_latency : -spec.extra_latency;
      break;
    }
    case FaultKind::kServiceSlowdown: {
      // Invalid cluster means "this service everywhere".
      for (std::size_t c = 0; c < cluster_count_; ++c) {
        if (spec.cluster.valid() && spec.cluster.index() != c) continue;
        double& f = compute_factor_[spec.service.index() * cluster_count_ + c];
        if (activate) {
          f *= spec.factor;
        } else {
          f /= spec.factor;
        }
      }
      break;
    }
  }
  if (activate) {
    ++active_;
  } else {
    --active_;
  }
  ++transitions_;
  SLATE_LOG(kInfo) << "fault " << to_string(spec.kind)
                   << (activate ? " active" : " cleared") << " at t=" << sim_.now();
  if (on_transition) on_transition(spec, activate);
}

}  // namespace slate
