// Drives a FaultPlan on the discrete-event simulator.
//
// arm() schedules one activation and one clearing event per fault; between
// them the injector answers O(1) live queries from the data plane and the
// control loop:
//
//   cluster_down()         — should a station reject new work?
//   link_partitioned()     — is a directed edge dropping messages?
//   latency_factor() /
//   extra_latency()        — how degraded is a directed edge?
//   compute_factor()       — gray-failure compute multiplier for a station
//   telemetry_blackout()   — is a cluster cut off from the global controller?
//
// Overlapping faults stack: boolean effects are reference-counted (an edge
// stays partitioned until the last covering fault ends), multiplicative
// effects multiply, additive effects add. The injector never mutates the
// world itself — the Simulation consults it at each decision point, which
// keeps fault state and request state trivially consistent under the
// simulator's deterministic event order.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault_plan.h"
#include "sim/simulator.h"
#include "util/matrix.h"

namespace slate {

class FaultInjector {
 public:
  // The plan is copied; `cluster_count`/`service_count` size the state
  // tables and validate the plan (throws std::invalid_argument on
  // out-of-range ids). Nothing is scheduled until arm().
  FaultInjector(Simulator& sim, FaultPlan plan, std::size_t cluster_count,
                std::size_t service_count);

  // Schedules every fault's start/end on the simulator. Call once, before
  // running; faults whose window has already passed are skipped.
  void arm();

  // --- live queries --------------------------------------------------------
  [[nodiscard]] bool cluster_down(ClusterId c) const noexcept {
    return outage_depth_[c.index()] > 0;
  }
  [[nodiscard]] bool link_partitioned(ClusterId from, ClusterId to) const noexcept {
    return partition_depth_(from.index(), to.index()) > 0;
  }
  [[nodiscard]] double latency_factor(ClusterId from, ClusterId to) const noexcept {
    return latency_factor_(from.index(), to.index());
  }
  [[nodiscard]] double extra_latency(ClusterId from, ClusterId to) const noexcept {
    return extra_latency_(from.index(), to.index());
  }
  [[nodiscard]] double compute_factor(ServiceId s, ClusterId c) const noexcept {
    return compute_factor_[s.index() * cluster_count_ + c.index()];
  }
  [[nodiscard]] bool telemetry_blackout(ClusterId c) const noexcept {
    return blackout_depth_[c.index()] > 0;
  }
  // Is a cluster's reporting pipeline emitting garbage right now?
  [[nodiscard]] bool telemetry_corrupt(ClusterId c) const noexcept {
    return corrupt_depth_[c.index()] > 0;
  }
  // Spike multiplier of the corruption covering `c` (product when faults
  // overlap; 1 when clean).
  [[nodiscard]] double corrupt_factor(ClusterId c) const noexcept {
    return corrupt_factor_[c.index()];
  }
  // Are the global controller's model-driven solvers down?
  [[nodiscard]] bool solver_down() const noexcept { return solver_depth_ > 0; }

  // Number of faults currently in their active window.
  [[nodiscard]] std::size_t active_count() const noexcept { return active_; }
  // Activations seen so far (monotonic; equals 2*transitions at the end).
  [[nodiscard]] std::uint64_t transitions() const noexcept { return transitions_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  // Optional observer, fired on every activation (active=true) and clearing
  // (active=false) — experiment logs, bench annotations.
  std::function<void(const FaultSpec&, bool active)> on_transition;

 private:
  void apply(const FaultSpec& spec, bool activate);

  Simulator& sim_;
  FaultPlan plan_;
  std::size_t cluster_count_;
  bool armed_ = false;

  std::vector<int> outage_depth_;           // per cluster
  std::vector<int> blackout_depth_;         // per cluster
  std::vector<int> corrupt_depth_;          // per cluster
  std::vector<double> corrupt_factor_;      // per cluster, product
  int solver_depth_ = 0;
  FlatMatrix<int> partition_depth_;         // from x to
  FlatMatrix<double> latency_factor_;       // from x to, product of factors
  FlatMatrix<double> extra_latency_;        // from x to, sum of extras
  std::vector<double> compute_factor_;      // service x cluster, product
  std::size_t active_ = 0;
  std::uint64_t transitions_ = 0;
};

}  // namespace slate
