#include "fault/fault_plan.h"

#include <stdexcept>
#include <string>

#include "util/strfmt.h"

namespace slate {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kClusterOutage: return "cluster-outage";
    case FaultKind::kLinkDegradation: return "link-degradation";
    case FaultKind::kServiceSlowdown: return "service-slowdown";
    case FaultKind::kTelemetryBlackout: return "telemetry-blackout";
    case FaultKind::kTelemetryCorruption: return "telemetry-corruption";
    case FaultKind::kSolverOutage: return "solver-outage";
  }
  return "?";
}

void FaultPlan::add(const FaultSpec& spec) {
  if (spec.start < 0.0) {
    throw std::invalid_argument("FaultPlan: negative start time");
  }
  if (!(spec.duration > 0.0)) {
    throw std::invalid_argument("FaultPlan: duration must be positive");
  }
  if (spec.factor < 0.0) {
    throw std::invalid_argument("FaultPlan: negative factor");
  }
  if (spec.extra_latency < 0.0) {
    throw std::invalid_argument("FaultPlan: negative extra latency");
  }
  switch (spec.kind) {
    case FaultKind::kClusterOutage:
    case FaultKind::kTelemetryBlackout:
      if (!spec.cluster.valid()) {
        throw std::invalid_argument("FaultPlan: fault needs a cluster");
      }
      break;
    case FaultKind::kTelemetryCorruption:
      if (!spec.cluster.valid()) {
        throw std::invalid_argument("FaultPlan: fault needs a cluster");
      }
      if (spec.factor <= 1.0) {
        throw std::invalid_argument(
            "FaultPlan: corruption spike factor must exceed 1");
      }
      break;
    case FaultKind::kSolverOutage:
      // Global: no ids to check.
      break;
    case FaultKind::kLinkDegradation:
      if (!spec.cluster.valid() || !spec.to.valid()) {
        throw std::invalid_argument("FaultPlan: link fault needs two clusters");
      }
      if (spec.cluster == spec.to) {
        throw std::invalid_argument("FaultPlan: link fault endpoints equal");
      }
      if (!spec.partition && spec.factor == 1.0 && spec.extra_latency == 0.0) {
        throw std::invalid_argument("FaultPlan: link fault with no effect");
      }
      break;
    case FaultKind::kServiceSlowdown:
      if (!spec.service.valid()) {
        throw std::invalid_argument("FaultPlan: slowdown needs a service");
      }
      if (spec.factor == 1.0) {
        throw std::invalid_argument("FaultPlan: slowdown with factor 1");
      }
      break;
  }
  faults_.push_back(spec);
}

std::size_t FaultPlan::cluster_outage(ClusterId cluster, double start,
                                      double duration) {
  FaultSpec spec;
  spec.kind = FaultKind::kClusterOutage;
  spec.cluster = cluster;
  spec.start = start;
  spec.duration = duration;
  add(spec);
  return faults_.size() - 1;
}

std::size_t FaultPlan::link_degradation(ClusterId from, ClusterId to,
                                        double start, double duration,
                                        double factor, double extra_latency) {
  FaultSpec spec;
  spec.kind = FaultKind::kLinkDegradation;
  spec.cluster = from;
  spec.to = to;
  spec.start = start;
  spec.duration = duration;
  spec.factor = factor;
  spec.extra_latency = extra_latency;
  add(spec);
  return faults_.size() - 1;
}

std::size_t FaultPlan::link_partition(ClusterId from, ClusterId to,
                                      double start, double duration) {
  FaultSpec spec;
  spec.kind = FaultKind::kLinkDegradation;
  spec.cluster = from;
  spec.to = to;
  spec.start = start;
  spec.duration = duration;
  spec.partition = true;
  add(spec);
  return faults_.size() - 1;
}

std::size_t FaultPlan::service_slowdown(ServiceId service, ClusterId cluster,
                                        double start, double duration,
                                        double factor) {
  FaultSpec spec;
  spec.kind = FaultKind::kServiceSlowdown;
  spec.service = service;
  spec.cluster = cluster;
  spec.start = start;
  spec.duration = duration;
  spec.factor = factor;
  add(spec);
  return faults_.size() - 1;
}

std::size_t FaultPlan::telemetry_blackout(ClusterId cluster, double start,
                                          double duration) {
  FaultSpec spec;
  spec.kind = FaultKind::kTelemetryBlackout;
  spec.cluster = cluster;
  spec.start = start;
  spec.duration = duration;
  add(spec);
  return faults_.size() - 1;
}

std::size_t FaultPlan::telemetry_corruption(ClusterId cluster, double start,
                                            double duration, double factor) {
  FaultSpec spec;
  spec.kind = FaultKind::kTelemetryCorruption;
  spec.cluster = cluster;
  spec.start = start;
  spec.duration = duration;
  spec.factor = factor;
  add(spec);
  return faults_.size() - 1;
}

std::size_t FaultPlan::solver_outage(double start, double duration) {
  FaultSpec spec;
  spec.kind = FaultKind::kSolverOutage;
  spec.start = start;
  spec.duration = duration;
  add(spec);
  return faults_.size() - 1;
}

void FaultPlan::validate(std::size_t cluster_count,
                         std::size_t service_count) const {
  auto bad = [](std::size_t i, const char* what) {
    throw std::invalid_argument(
        strfmt("FaultPlan: fault %zu references %s", i, what));
  };
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    const FaultSpec& f = faults_[i];
    if (f.cluster.valid() && f.cluster.index() >= cluster_count) {
      bad(i, "an unknown cluster");
    }
    if (f.kind == FaultKind::kLinkDegradation && f.to.index() >= cluster_count) {
      bad(i, "an unknown cluster");
    }
    if (f.kind == FaultKind::kServiceSlowdown &&
        f.service.index() >= service_count) {
      bad(i, "an unknown service");
    }
  }
}

void FaultPlan::append(const FaultPlan& other) {
  faults_.insert(faults_.end(), other.faults_.begin(), other.faults_.end());
}

}  // namespace slate
