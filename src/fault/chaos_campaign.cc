#include "fault/chaos_campaign.h"

#include <stdexcept>

#include "util/rng.h"

namespace slate {

namespace {

enum class EventKind { kOutage, kGray, kPartition, kDrain };

}  // namespace

void expand_campaign(const CampaignSpec& spec, std::size_t cluster_count,
                     std::size_t service_count, FaultPlan* plan,
                     std::vector<DrainSpec>* drains) {
  if (spec.events == 0) {
    throw std::invalid_argument("campaign events must be >= 1");
  }
  if (spec.start < 0.0) {
    throw std::invalid_argument("campaign start must be >= 0");
  }
  if (spec.spacing <= 0.0) {
    throw std::invalid_argument("campaign spacing must be > 0");
  }
  if (spec.mean_duration <= 0.0) {
    throw std::invalid_argument("campaign mean duration must be > 0");
  }
  if (cluster_count == 0) {
    throw std::invalid_argument("campaign needs at least one cluster");
  }

  // Fixed enumeration order: the draw sequence (and therefore the expansion)
  // depends only on (seed, enabled kinds, world sizes).
  std::vector<EventKind> enabled;
  if (spec.kinds.outage) enabled.push_back(EventKind::kOutage);
  if (spec.kinds.gray) {
    if (service_count == 0) {
      throw std::invalid_argument("campaign gray events need a service");
    }
    enabled.push_back(EventKind::kGray);
  }
  if (spec.kinds.partition) {
    if (cluster_count < 2) {
      throw std::invalid_argument(
          "campaign partition events need at least two clusters");
    }
    enabled.push_back(EventKind::kPartition);
  }
  if (spec.kinds.drain) enabled.push_back(EventKind::kDrain);
  if (enabled.empty()) {
    throw std::invalid_argument("campaign enables no event kinds");
  }

  Rng rng(spec.seed);
  double t = spec.start;
  for (std::size_t i = 0; i < spec.events; ++i) {
    const EventKind kind = enabled[rng.uniform_u64(enabled.size())];
    // Durations jitter in [0.5, 1.5) x mean so overlapping shapes occur
    // without any event degenerating to zero length.
    const double duration = spec.mean_duration * (0.5 + rng.next_double());
    const ClusterId cluster{rng.uniform_u64(cluster_count)};
    switch (kind) {
      case EventKind::kOutage:
        plan->cluster_outage(cluster, t, duration);
        break;
      case EventKind::kGray: {
        const ServiceId service{rng.uniform_u64(service_count)};
        const double factor = 2.0 + 6.0 * rng.next_double();
        plan->service_slowdown(service, cluster, t, duration, factor);
        break;
      }
      case EventKind::kPartition: {
        // A distinct destination, drawn uniformly from the other clusters.
        std::uint64_t to = rng.uniform_u64(cluster_count - 1);
        if (to >= cluster.index()) ++to;
        plan->link_partition(cluster, ClusterId{to}, t, duration);
        break;
      }
      case EventKind::kDrain: {
        DrainSpec d;
        d.cluster = cluster;
        d.start = t;
        d.over = duration;
        drains->push_back(d);
        break;
      }
    }
    t += spec.spacing * (0.5 + rng.next_double());
  }
}

}  // namespace slate
