// Traffic classification (paper §3.3 "Deriving Classes").
//
// SLATE partitions the requests seen at a service into traffic classes so
// routing can differentiate cheap from expensive requests. Following the
// paper, the classifier keys on (service, HTTP method, HTTP path). Two
// modes:
//   * registered classes — the operator (or the application spec) binds
//     attribute tuples to class ids up front;
//   * discovery — unseen tuples are assigned fresh class ids up to a cap,
//     after which they fall into a catch-all class (the paper's point that
//     the class count must stay bounded for the optimizer and for getting
//     enough samples per class).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "app/application.h"
#include "util/ids.h"

namespace slate {

struct ClassifierOptions {
  // Maximum classes discovery may allocate (registered classes don't count).
  std::size_t max_discovered_classes = 64;
};

class TrafficClassifier {
 public:
  explicit TrafficClassifier(ClassifierOptions options = {});

  // Binds (entry service, method, path) -> cls. Duplicate keys overwrite.
  void register_class(ServiceId entry_service, const RequestAttributes& attrs,
                      ClassId cls);

  // Registers every class of `app` under its entry service and attributes.
  static TrafficClassifier from_application(const Application& app,
                                            ClassifierOptions options = {});

  // Classifies a request. Registered tuples map to their class; unknown
  // tuples allocate discovery classes (ids after `discovery_base`) until the
  // cap, then the catch-all. Never fails.
  [[nodiscard]] ClassId classify(ServiceId entry_service,
                                 const RequestAttributes& attrs);

  // Lookup without discovery side effects.
  [[nodiscard]] std::optional<ClassId> lookup(ServiceId entry_service,
                                              const RequestAttributes& attrs) const;

  // First id used for discovered classes (= number of registered ids passed
  // to set_discovery_base; defaults to 0 until set).
  void set_discovery_base(std::size_t base) noexcept { discovery_base_ = base; }
  [[nodiscard]] std::size_t discovered_count() const noexcept { return discovered_; }
  [[nodiscard]] std::size_t registered_count() const noexcept {
    return table_.size() - discovered_;
  }
  // The catch-all class returned once the discovery cap is hit (allocated
  // lazily; invalid until then).
  [[nodiscard]] ClassId overflow_class() const noexcept { return overflow_; }

 private:
  [[nodiscard]] static std::string make_key(ServiceId entry_service,
                                            const RequestAttributes& attrs);

  ClassifierOptions options_;
  std::unordered_map<std::string, ClassId> table_;
  std::size_t discovery_base_ = 0;
  std::size_t discovered_ = 0;
  ClassId overflow_;
};

}  // namespace slate
