#include "core/ripup_optimizer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "lp/piecewise.h"

namespace slate {
namespace {

constexpr double kBytesPerGb = 1024.0 * 1024.0 * 1024.0;

// Working state for one negotiation run. Weights are fractional in the data
// structure (so the final load-shedding sweep can split), but the rounds
// themselves only ever write 0/1.
struct Negotiation {
  const Application& app;
  const Deployment& deployment;
  const Topology& topology;
  const LatencyModel& model;
  const RipupOptions& options;

  std::size_t C, K, S;
  FlatMatrix<double> eff_demand;  // K x C
  // weights[k][n][i * C + j]; -1 marks "not deployable".
  std::vector<std::vector<std::vector<double>>> weights;
  std::vector<std::vector<std::vector<double>>> arrivals;  // [k][n][c]
  std::vector<double> utilization;                         // s * C + c
  std::vector<double> servers;                             // s * C + c
  std::vector<double> history;                             // s * C + c

  [[nodiscard]] double servers_at(std::size_t s, std::size_t c) const {
    return servers[s * C + c];
  }

  // Recomputes arrivals and utilizations from the weights.
  void forward() {
    for (auto& u : utilization) u = 0.0;
    for (std::size_t k = 0; k < K; ++k) {
      const CallGraph& graph = app.traffic_class(ClassId{k}).graph;
      for (std::size_t n = 0; n < graph.node_count(); ++n) {
        auto& a = arrivals[k][n];
        std::fill(a.begin(), a.end(), 0.0);
        if (n == 0) {
          for (std::size_t c = 0; c < C; ++c) a[c] = eff_demand(k, c);
        } else {
          const std::size_t p = graph.node(n).parent;
          const double mult = graph.node(n).multiplicity;
          for (std::size_t i = 0; i < C; ++i) {
            const double out = arrivals[k][p][i] * mult;
            if (out <= 0.0) continue;
            for (std::size_t j = 0; j < C; ++j) {
              const double w = weights[k][n][i * C + j];
              if (w > 0.0) a[j] += out * w;
            }
          }
        }
        const ServiceId svc = graph.node(n).service;
        for (std::size_t c = 0; c < C; ++c) {
          if (a[c] > 0.0) {
            utilization[svc.index() * C + c] +=
                a[c] * model.service_time(svc, ClassId{k}, ClusterId{c}) /
                servers_at(svc.index(), c);
          }
        }
      }
    }
  }

  // Exact objective at the current weights (same units as the other arms).
  [[nodiscard]] double objective() const {
    double total = 0.0;
    for (std::size_t s = 0; s < S; ++s) {
      for (std::size_t c = 0; c < C; ++c) {
        const double u = utilization[s * C + c];
        if (u <= 0.0) continue;
        total += servers_at(s, c) * (u + queue_cost(std::min(u, 0.999)));
      }
    }
    for (std::size_t k = 0; k < K; ++k) {
      const CallGraph& graph = app.traffic_class(ClassId{k}).graph;
      for (std::size_t n = 1; n < graph.node_count(); ++n) {
        const std::size_t p = graph.node(n).parent;
        const double mult = graph.node(n).multiplicity;
        for (std::size_t i = 0; i < C; ++i) {
          const double out = arrivals[k][p][i] * mult;
          if (out <= 0.0) continue;
          for (std::size_t j = 0; j < C; ++j) {
            if (i == j) continue;
            const double w = weights[k][n][i * C + j];
            if (w > 0.0) total += out * w * edge_cost(graph, n, i, j);
          }
        }
      }
    }
    return total;
  }

  [[nodiscard]] double edge_cost(const CallGraph& graph, std::size_t n,
                                 std::size_t i, std::size_t j) const {
    const ClusterId ci{i}, cj{j};
    const double rtt =
        topology.one_way_latency(ci, cj) + topology.one_way_latency(cj, ci);
    const double dollars =
        (static_cast<double>(graph.node(n).request_bytes) *
             topology.egress_price_per_gb(ci, cj) +
         static_cast<double>(graph.node(n).response_bytes) *
             topology.egress_price_per_gb(cj, ci)) /
        kBytesPerGb;
    return rtt + options.cost_weight * dollars;
  }

  // Negotiated price of serving class k's node n at cluster j: base cost
  // (compute time + queue slope at the capped utilization) inflated by
  // present congestion, plus the station's accumulated history.
  [[nodiscard]] double station_price(std::size_t k, const CallGraph& graph,
                                     std::size_t n, std::size_t j) const {
    const ServiceId svc = graph.node(n).service;
    const double st = model.service_time(svc, ClassId{k}, ClusterId{j});
    const double u = utilization[svc.index() * C + j];
    const double base =
        st * (1.0 + queue_cost_derivative(std::min(u, options.max_utilization)));
    const double over = std::max(0.0, u - options.max_utilization);
    return base * (1.0 + options.present_weight * over) +
           history[svc.index() * C + j];
  }
};

}  // namespace

RipupRouteOptimizer::RipupRouteOptimizer(const Application& app,
                                         const Deployment& deployment,
                                         const Topology& topology,
                                         RipupOptions options)
    : app_(&app),
      deployment_(&deployment),
      topology_(&topology),
      options_(options) {
  if (!(options_.max_utilization > 0.0 && options_.max_utilization < 1.0)) {
    throw std::invalid_argument(
        "RipupRouteOptimizer: max_utilization must be in (0,1)");
  }
  app.validate();
  deployment.validate();
}

OptimizerResult RipupRouteOptimizer::optimize(
    const LatencyModel& model, const FlatMatrix<double>& demand,
    const std::vector<unsigned>* live_servers) const {
  const std::size_t C = deployment_->cluster_count();
  const std::size_t K = app_->class_count();
  const std::size_t S = app_->service_count();
  if (demand.rows() != K || demand.cols() != C) {
    throw std::invalid_argument("RipupRouteOptimizer: demand shape mismatch");
  }

  Negotiation d{*app_,    *deployment_, *topology_,
                model,    options_,     C,
                K,        S,            FlatMatrix<double>(K, C, 0.0),
                {},       {},           {},
                {},       {}};

  // Effective demand (front-door anycast, same as the other arms).
  for (std::size_t k = 0; k < K; ++k) {
    const ServiceId entry = app_->entry_service(ClassId{k});
    const auto entry_clusters = deployment_->clusters_for(entry);
    for (std::size_t c = 0; c < C; ++c) {
      const double dem = demand(k, c);
      if (dem <= 0.0) continue;
      if (deployment_->is_deployed(entry, ClusterId{c})) {
        d.eff_demand(k, c) += dem;
      } else {
        d.eff_demand(k, topology_->nearest(ClusterId{c}, entry_clusters).index()) +=
            dem;
      }
    }
  }

  d.servers.assign(S * C, 0.0);
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t c = 0; c < C; ++c) {
      if (!deployment_->is_deployed(ServiceId{s}, ClusterId{c})) continue;
      unsigned n = deployment_->servers(ServiceId{s}, ClusterId{c});
      if (live_servers != nullptr && s * C + c < live_servers->size() &&
          (*live_servers)[s * C + c] > 0) {
        n = (*live_servers)[s * C + c];
      }
      d.servers[s * C + c] = static_cast<double>(n);
    }
  }

  // Initial routes: local where deployed, else nearest (the data plane's own
  // fallback, so round 0 prices reflect the do-nothing plan).
  d.weights.resize(K);
  d.arrivals.resize(K);
  d.utilization.assign(S * C, 0.0);
  d.history.assign(S * C, 0.0);
  for (std::size_t k = 0; k < K; ++k) {
    const CallGraph& graph = app_->traffic_class(ClassId{k}).graph;
    const std::size_t N = graph.node_count();
    d.weights[k].assign(N, {});
    d.arrivals[k].assign(N, std::vector<double>(C, 0.0));
    for (std::size_t n = 1; n < N; ++n) {
      d.weights[k][n].assign(C * C, -1.0);
      const ServiceId svc = graph.node(n).service;
      const ServiceId parent_svc = graph.node(graph.node(n).parent).service;
      const auto candidates = deployment_->clusters_for(svc);
      for (std::size_t i = 0; i < C; ++i) {
        if (!deployment_->is_deployed(parent_svc, ClusterId{i})) continue;
        for (ClusterId j : candidates) d.weights[k][n][i * C + j.index()] = 0.0;
        const ClusterId home = deployment_->is_deployed(svc, ClusterId{i})
                                   ? ClusterId{i}
                                   : topology_->nearest(ClusterId{i}, candidates);
        d.weights[k][n][i * C + home.index()] = 1.0;
      }
    }
  }

  // --- Negotiation rounds --------------------------------------------------
  d.forward();
  double best_objective = d.objective();
  auto best_weights = d.weights;
  std::size_t rounds = 0;
  bool settled = false;

  for (; rounds < options_.max_rounds; ++rounds) {
    // Rip up and reroute every knob at current prices. Utilization is
    // updated incrementally so later knobs in the same round see the moves
    // of earlier ones — that ordering is what lets one of two contending
    // classes yield within a single round.
    bool changed = false;
    for (std::size_t k = 0; k < K; ++k) {
      const CallGraph& graph = app_->traffic_class(ClassId{k}).graph;
      for (std::size_t n = 1; n < graph.node_count(); ++n) {
        const std::size_t p = graph.node(n).parent;
        const ServiceId svc = graph.node(n).service;
        for (std::size_t i = 0; i < C; ++i) {
          const double out = d.arrivals[k][p][i] * graph.node(n).multiplicity;
          if (out <= 0.0) continue;
          auto& w = d.weights[k][n];
          std::size_t current = C;
          for (std::size_t j = 0; j < C; ++j) {
            if (w[i * C + j] > 0.0) {
              current = j;
              break;
            }
          }
          // Rip up: remove this knob's load from its station so its own
          // congestion does not bias the re-route.
          if (current != C) {
            d.utilization[svc.index() * C + current] -=
                out * model.service_time(svc, ClassId{k}, ClusterId{current}) /
                d.servers_at(svc.index(), current);
          }
          std::size_t best_j = C;
          double best_price = 0.0;
          for (std::size_t j = 0; j < C; ++j) {
            if (w[i * C + j] < 0.0) continue;
            double price = d.station_price(k, graph, n, j);
            if (i != j) price += d.edge_cost(graph, n, i, j);
            if (best_j == C || price < best_price) {
              best_price = price;
              best_j = j;
            }
          }
          if (best_j == C) best_j = current;  // cannot happen post-validate
          if (best_j != current) {
            changed = true;
            if (current != C) w[i * C + current] = 0.0;
            w[i * C + best_j] = 1.0;
          }
          d.utilization[svc.index() * C + best_j] +=
              out * model.service_time(svc, ClassId{k}, ClusterId{best_j}) /
              d.servers_at(svc.index(), best_j);
        }
      }
    }

    // Re-derive arrivals (downstream edges shift with upstream reroutes) and
    // score the round against the best seen.
    d.forward();
    const double now = d.objective();
    if (now < best_objective) {
      best_objective = now;
      best_weights = d.weights;
    }
    if (!changed) {
      settled = true;
      break;
    }

    // Bump history for stations still over the cap: persistent contention
    // gets durably expensive, which is what breaks reroute oscillations.
    for (std::size_t s = 0; s < S * C; ++s) {
      const double over = d.utilization[s] - options_.max_utilization;
      if (over > 0.0) {
        d.history[s] +=
            options_.history_increment * over / options_.max_utilization;
      }
    }
  }

  // --- Load-shedding split sweep -------------------------------------------
  // All-or-nothing routing can leave a station over the cap when no single
  // destination fits the whole flow. One fractional sweep: shift the excess
  // share of each knob feeding an over-cap station onto its cheapest
  // under-cap alternative.
  d.weights = best_weights;
  d.forward();
  for (std::size_t k = 0; k < K; ++k) {
    const CallGraph& graph = app_->traffic_class(ClassId{k}).graph;
    for (std::size_t n = 1; n < graph.node_count(); ++n) {
      const std::size_t p = graph.node(n).parent;
      const ServiceId svc = graph.node(n).service;
      for (std::size_t i = 0; i < C; ++i) {
        const double out = d.arrivals[k][p][i] * graph.node(n).multiplicity;
        if (out <= 0.0) continue;
        auto& w = d.weights[k][n];
        std::size_t current = C;
        for (std::size_t j = 0; j < C; ++j) {
          if (w[i * C + j] > 0.0) {
            current = j;
            break;
          }
        }
        if (current == C) continue;
        const double u = d.utilization[svc.index() * C + current];
        const double over = u - options_.max_utilization;
        if (over <= 0.0) continue;
        // Cheapest alternative with headroom.
        std::size_t alt = C;
        double alt_price = 0.0;
        for (std::size_t j = 0; j < C; ++j) {
          if (j == current || w[i * C + j] < 0.0) continue;
          if (d.utilization[svc.index() * C + j] >=
              options_.max_utilization) {
            continue;
          }
          double price = d.station_price(k, graph, n, j);
          if (i != j) price += d.edge_cost(graph, n, i, j);
          if (alt == C || price < alt_price) {
            alt_price = price;
            alt = j;
          }
        }
        if (alt == C) continue;  // global overload: nothing has headroom
        // This knob's share of the station's utilization, and the fraction
        // of it that must move to bring the station back to the cap.
        const double st =
            model.service_time(svc, ClassId{k}, ClusterId{current});
        const double knob_u = out * w[i * C + current] * st /
                              d.servers_at(svc.index(), current);
        if (knob_u <= 0.0) continue;
        const double frac = std::min(1.0, over / knob_u) * w[i * C + current];
        w[i * C + current] -= frac;
        w[i * C + alt] += frac;
        d.utilization[svc.index() * C + current] -=
            out * frac * st / d.servers_at(svc.index(), current);
        d.utilization[svc.index() * C + alt] +=
            out * frac * model.service_time(svc, ClassId{k}, ClusterId{alt}) /
            d.servers_at(svc.index(), alt);
      }
    }
  }
  d.forward();
  const double shed_objective = d.objective();
  if (shed_objective < best_objective) {
    best_objective = shed_objective;
    best_weights = d.weights;
  } else {
    d.weights = best_weights;
    d.forward();
  }

  // --- Fractional polish ----------------------------------------------------
  // Negotiation finds the right coarse structure, but stations are sized for
  // fractional spreading and 0/1 assignment concentrates whole flows; the
  // residual gap vs the exact LP grows with cluster count. Bounded
  // marginal-cost descent from the negotiated plan recovers the splits. The
  // marginal price here is the clean base + edge cost — no present-weight
  // inflation or history, those are negotiation devices.
  double prev_objective = best_objective;
  double step = options_.polish_step;
  for (std::size_t sweep = 0; sweep < options_.polish_sweeps; ++sweep) {
    for (std::size_t k = 0; k < K; ++k) {
      const CallGraph& graph = app_->traffic_class(ClassId{k}).graph;
      for (std::size_t n = 1; n < graph.node_count(); ++n) {
        const std::size_t p = graph.node(n).parent;
        const ServiceId svc = graph.node(n).service;
        for (std::size_t i = 0; i < C; ++i) {
          const double out = d.arrivals[k][p][i] * graph.node(n).multiplicity;
          if (out <= 0.0) continue;
          auto& w = d.weights[k][n];
          std::size_t src = C, dst = C;
          double src_price = 0.0, dst_price = 0.0;
          for (std::size_t j = 0; j < C; ++j) {
            if (w[i * C + j] < 0.0) continue;
            const double st =
                model.service_time(svc, ClassId{k}, ClusterId{j});
            const double u = d.utilization[svc.index() * C + j];
            double price =
                st * (1.0 + queue_cost_derivative(
                                std::min(u, options_.max_utilization)));
            if (i != j) price += d.edge_cost(graph, n, i, j);
            if (w[i * C + j] > 1e-12 && (src == C || price > src_price)) {
              src_price = price;
              src = j;
            }
            if (dst == C || price < dst_price) {
              dst_price = price;
              dst = j;
            }
          }
          if (src == C || dst == C || src == dst) continue;
          if (src_price - dst_price <= 1e-12) continue;
          const double delta = step * w[i * C + src];
          w[i * C + src] -= delta;
          w[i * C + dst] += delta;
          d.utilization[svc.index() * C + src] -=
              out * delta * model.service_time(svc, ClassId{k}, ClusterId{src}) /
              d.servers_at(svc.index(), src);
          d.utilization[svc.index() * C + dst] +=
              out * delta * model.service_time(svc, ClassId{k}, ClusterId{dst}) /
              d.servers_at(svc.index(), dst);
        }
      }
    }
    d.forward();
    const double now = d.objective();
    if (now < best_objective) {
      best_objective = now;
      best_weights = d.weights;
    }
    if (now >= prev_objective * (1.0 - options_.polish_tolerance)) {
      // Stalled or overshot: back off the step and restart from the best
      // plan rather than abandoning the phase on one bad sweep.
      step *= 0.5;
      if (step < options_.polish_step / 16.0) break;
      d.weights = best_weights;
      d.forward();
      prev_objective = best_objective;
    } else {
      prev_objective = now;
    }
  }
  d.weights = best_weights;
  d.forward();

  // --- Package the result (same contract as the other arms) ----------------
  OptimizerResult result;
  result.status = settled ? LpStatus::kOptimal : LpStatus::kIterationLimit;
  result.objective = best_objective;
  result.simplex_stats.iterations = rounds;

  auto rules = std::make_shared<RoutingRuleSet>();
  for (std::size_t k = 0; k < K; ++k) {
    const CallGraph& graph = app_->traffic_class(ClassId{k}).graph;
    for (std::size_t n = 1; n < graph.node_count(); ++n) {
      const ServiceId parent_svc = graph.node(graph.node(n).parent).service;
      for (std::size_t i = 0; i < C; ++i) {
        if (!deployment_->is_deployed(parent_svc, ClusterId{i})) continue;
        RouteWeights rule;
        for (std::size_t j = 0; j < C; ++j) {
          const double w = d.weights[k][n][i * C + j];
          if (w < 0.0) continue;
          rule.clusters.push_back(ClusterId{j});
          rule.weights.push_back(std::max(w, 0.0));
        }
        rule.normalize();
        rules->set_rule(ClassId{k}, n, ClusterId{i}, std::move(rule));
      }
    }
  }
  rules->validate();
  result.rules = std::move(rules);

  double total_demand = 0.0;
  for (double dem : d.eff_demand.data()) total_demand += dem;
  double latency = 0.0, egress = 0.0;
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t c = 0; c < C; ++c) {
      const double u = d.utilization[s * C + c];
      if (d.servers[s * C + c] <= 0.0) continue;
      result.station_plans.push_back(
          StationPlan{ServiceId{s}, ClusterId{c}, u, std::max(0.0, u - 1.0)});
      if (u > options_.max_utilization + 1e-9) result.overloaded = true;
      latency += d.servers[s * C + c] * (u + queue_cost(std::min(u, 0.999)));
    }
  }
  for (std::size_t k = 0; k < K; ++k) {
    const CallGraph& graph = app_->traffic_class(ClassId{k}).graph;
    for (std::size_t n = 1; n < graph.node_count(); ++n) {
      const std::size_t p = graph.node(n).parent;
      const double mult = graph.node(n).multiplicity;
      for (std::size_t i = 0; i < C; ++i) {
        const double out = d.arrivals[k][p][i] * mult;
        if (out <= 0.0) continue;
        for (std::size_t j = 0; j < C; ++j) {
          if (i == j) continue;
          const double w = d.weights[k][n][i * C + j];
          if (w <= 0.0) continue;
          const ClusterId ci{i}, cj{j};
          latency += out * w *
                     (topology_->one_way_latency(ci, cj) +
                      topology_->one_way_latency(cj, ci));
          egress += out * w *
                    (static_cast<double>(graph.node(n).request_bytes) *
                         topology_->egress_price_per_gb(ci, cj) +
                     static_cast<double>(graph.node(n).response_bytes) *
                         topology_->egress_price_per_gb(cj, ci)) /
                    kBytesPerGb;
        }
      }
    }
  }
  result.predicted_mean_latency =
      total_demand > 0.0 ? latency / total_demand : 0.0;
  result.predicted_egress_dollars_per_sec = egress;
  return result;
}

}  // namespace slate
