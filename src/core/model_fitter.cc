#include "core/model_fitter.h"

#include <algorithm>
#include <cmath>

namespace slate {

ModelFitter::ModelFitter(FitterOptions options) : options_(options) {}

double ModelFitter::estimate_service_time(
    const std::vector<LoadSample>& samples) const {
  std::size_t usable = 0;
  double low_load_sum = 0.0;
  std::size_t low_load_n = 0;
  double service_weighted = 0.0;
  double service_weight = 0.0;
  const LoadSample* best_fallback = nullptr;

  for (const auto& s : samples) {
    if (s.count < options_.min_count_per_sample || s.mean_latency <= 0.0) continue;
    ++usable;
    if (s.mean_service_time > 0.0) {
      service_weighted += s.mean_service_time * static_cast<double>(s.count);
      service_weight += static_cast<double>(s.count);
    }
    if (s.utilization < options_.low_load_utilization) {
      low_load_sum += s.mean_latency;
      ++low_load_n;
    }
    if (best_fallback == nullptr || s.utilization < best_fallback->utilization) {
      best_fallback = &s;
    }
  }
  if (usable < options_.min_samples) return -1.0;

  // Best evidence: the data plane's direct queue/service split, valid at
  // any utilization (so per-class costs stay identifiable under overload).
  if (service_weight > 0.0) return service_weighted / service_weight;

  if (low_load_n > 0) {
    // At low utilization the observed latency is essentially pure service
    // time; average the quiet periods.
    return low_load_sum / static_cast<double>(low_load_n);
  }
  // Always-busy key: invert T = s * (1 + u/(1-u)) = s / (1-u) from the
  // least-loaded sample we have.
  const double u = std::min(best_fallback->utilization, 0.95);
  return best_fallback->mean_latency * (1.0 - u);
}

FitReport ModelFitter::fit(const SampleStore& store,
                           const Deployment& deployment,
                           LatencyModel& model) const {
  FitReport report;
  double change_accum = 0.0;

  const auto& app = deployment.application();
  for (ServiceId s : app.all_services()) {
    for (ClassId k : app.all_classes()) {
      for (std::size_t ci = 0; ci < deployment.cluster_count(); ++ci) {
        const ClusterId c{ci};
        if (!deployment.is_deployed(s, c)) continue;
        if (store.sample_count(s, k, c) == 0) continue;
        const double estimate = estimate_service_time(store.samples(s, k, c));
        if (estimate < 0.0) {
          ++report.keys_skipped_insufficient;
          continue;
        }
        const bool had = model.has(s, k, c);
        const double old_value = model.service_time(s, k, c);
        const double blended =
            had ? old_value + options_.smoothing * (estimate - old_value)
                : estimate;
        model.set_service_time(s, k, c, blended);
        ++report.keys_fitted;
        if (had && old_value > 0.0) {
          change_accum += std::abs(blended - old_value) / old_value;
        }
      }
    }
  }
  if (report.keys_fitted > 0) {
    report.mean_relative_change =
        change_accum / static_cast<double>(report.keys_fitted);
  }
  return report;
}

}  // namespace slate
