#include "core/optimizer.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "lp/piecewise.h"
#include "util/strfmt.h"

namespace slate {
namespace {

constexpr double kBytesPerGb = 1024.0 * 1024.0 * 1024.0;
constexpr double kZeroFlow = 1e-9;

// Dense index helpers for the variable maps.
struct VarMaps {
  // x[k][n][i * C + j]; -1 where not deployable. Only nodes n >= 1.
  std::vector<std::vector<std::vector<int>>> x;
  // a[k][n][j]; -1 where child service not deployed at j.
  std::vector<std::vector<std::vector<int>>> a;
  // Station vars, indexed s * C + c; -1 where not deployed.
  std::vector<int> u, o, t;
};

// One independently solvable sub-problem: a set of classes closed under
// service sharing, plus the services they touch (which get station vars).
struct ClassGroup {
  std::vector<std::size_t> classes;   // ascending class ids
  std::vector<std::size_t> services;  // ascending service ids
};

// Partitions classes by shared services (union-find): two classes that
// touch a common service share its capacity rows and must be solved
// jointly; classes with disjoint service sets separate exactly — their
// variables appear in no common constraint and the objective is a sum.
// Groups are ordered by smallest class id; services a class never
// references belong to no group.
std::vector<ClassGroup> partition_classes(const Application& app) {
  const std::size_t K = app.class_count();
  const std::size_t S = app.service_count();
  std::vector<std::size_t> parent(K);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](std::size_t a) {
    while (parent[a] != a) {
      parent[a] = parent[parent[a]];
      a = parent[a];
    }
    return a;
  };

  std::vector<std::size_t> owner(S, K);  // first class touching each service
  for (std::size_t k = 0; k < K; ++k) {
    const CallGraph& graph = app.traffic_class(ClassId{k}).graph;
    for (std::size_t n = 0; n < graph.node_count(); ++n) {
      const std::size_t s = graph.node(n).service.index();
      if (owner[s] == K) {
        owner[s] = k;
      } else {
        const std::size_t ra = find(k);
        const std::size_t rb = find(owner[s]);
        if (ra != rb) parent[std::max(ra, rb)] = std::min(ra, rb);
      }
    }
  }

  std::vector<std::size_t> root_group(K, K);
  std::vector<ClassGroup> groups;
  for (std::size_t k = 0; k < K; ++k) {
    const std::size_t r = find(k);
    if (root_group[r] == K) {
      root_group[r] = groups.size();
      groups.emplace_back();
    }
    groups[root_group[r]].classes.push_back(k);
  }
  for (std::size_t s = 0; s < S; ++s) {
    if (owner[s] == K) continue;
    groups[root_group[find(owner[s])]].services.push_back(s);
  }
  return groups;
}

// Everything a group solve reads (immutable across groups).
struct SolveContext {
  const Application& app;
  const Deployment& deployment;
  const Topology& topology;
  const OptimizerOptions& options;
  const LatencyModel& model;
  const FlatMatrix<double>& eff_demand;
  const std::vector<unsigned>* live_servers;
  std::size_t C;

  [[nodiscard]] double servers_at(std::size_t s, std::size_t c) const {
    if (live_servers != nullptr && s * C + c < live_servers->size() &&
        (*live_servers)[s * C + c] > 0) {
      return static_cast<double>((*live_servers)[s * C + c]);
    }
    return deployment.servers(ServiceId{s}, ClusterId{c});
  }
};

// Builds and solves one group's LP (or the MILP in integer mode), extracts
// its rules into `rules`, records station utilization/overflow into the
// shared plan arrays, and accumulates the predicted-quality terms. With a
// single group spanning every class and service this is exactly the legacy
// whole-problem build — identical variable and constraint order — so
// decomposition cannot change the undecomposed answer.
LpStatus solve_group(const SolveContext& ctx, const ClassGroup& group,
                     SimplexBasis* basis, OptimizerResult& result,
                     RoutingRuleSet& rules, std::vector<double>& plan_u,
                     std::vector<double>& plan_o, double& latency_per_sec,
                     double& egress_per_sec, double& server_per_sec) {
  const std::size_t C = ctx.C;
  const Application& app = ctx.app;
  const Deployment& deployment = ctx.deployment;
  const Topology& topology = ctx.topology;
  const OptimizerOptions& options = ctx.options;

  LpModel lp;
  VarMaps vars;
  vars.x.resize(app.class_count());
  vars.a.resize(app.class_count());

  // --- Variables ---------------------------------------------------------
  for (const std::size_t k : group.classes) {
    const CallGraph& graph = app.traffic_class(ClassId{k}).graph;
    const std::size_t N = graph.node_count();
    vars.x[k].assign(N, {});
    vars.a[k].assign(N, std::vector<int>(C, -1));
    for (std::size_t n = 0; n < N; ++n) {
      const ServiceId svc = graph.node(n).service;
      for (std::size_t j = 0; j < C; ++j) {
        if (!deployment.is_deployed(svc, ClusterId{j})) continue;
        if (n == 0) {
          // Root arrivals are pinned to the effective demand (entry service
          // serves in the arrival cluster).
          const double d = ctx.eff_demand(k, j);
          vars.a[k][n][j] =
              lp.add_variable(d, d, 0.0, strfmt("a[k%zu][n0][c%zu]", k, j));
        } else {
          vars.a[k][n][j] = lp.add_variable(
              0.0, kLpInfinity, 0.0, strfmt("a[k%zu][n%zu][c%zu]", k, n, j));
        }
      }
      if (n == 0) continue;
      const ServiceId parent_svc = graph.node(graph.node(n).parent).service;
      vars.x[k][n].assign(C * C, -1);
      for (std::size_t i = 0; i < C; ++i) {
        if (!deployment.is_deployed(parent_svc, ClusterId{i})) continue;
        for (std::size_t j = 0; j < C; ++j) {
          if (!deployment.is_deployed(svc, ClusterId{j})) continue;
          // Objective: network RTT (request out + response back) plus
          // weighted egress dollars per call.
          double coeff = 0.0;
          if (i != j) {
            const ClusterId ci{i}, cj{j};
            coeff += topology.one_way_latency(ci, cj) +
                     topology.one_way_latency(cj, ci);
            const double dollars_per_call =
                (static_cast<double>(graph.node(n).request_bytes) *
                     topology.egress_price_per_gb(ci, cj) +
                 static_cast<double>(graph.node(n).response_bytes) *
                     topology.egress_price_per_gb(cj, ci)) /
                kBytesPerGb;
            coeff += options.cost_weight * dollars_per_call;
          }
          vars.x[k][n][i * C + j] = lp.add_variable(
              0.0, kLpInfinity, coeff,
              strfmt("x[k%zu][n%zu][%zu->%zu]", k, n, i, j));
        }
      }
    }
  }

  // Station variables (only this group's services: a service in no other
  // group can receive flow from no other class).
  vars.u.assign(app.service_count() * C, -1);
  vars.o.assign(app.service_count() * C, -1);
  vars.t.assign(app.service_count() * C, -1);
  const auto tangents =
      queue_cost_tangents(options.max_utilization, options.tangent_count);
  for (const std::size_t s : group.services) {
    for (std::size_t c = 0; c < C; ++c) {
      if (!deployment.is_deployed(ServiceId{s}, ClusterId{c})) continue;
      const double n_servers = ctx.servers_at(s, c);
      // Joint cost: busy work u*n implies u*n/price_target provisioned
      // replicas at this cluster's $/server-hour. weight = 0 adds exactly
      // 0.0 to the coefficient, keeping the legacy objective bit-identical.
      double busy_coeff = n_servers;
      if (options.server_cost_weight > 0.0) {
        busy_coeff += options.server_cost_weight *
                      topology.server_price_per_hour(ClusterId{c}) / 3600.0 *
                      n_servers / options.server_price_target;
      }
      vars.u[s * C + c] =
          lp.add_variable(0.0, options.max_utilization, busy_coeff,
                          strfmt("u[s%zu][c%zu]", s, c));
      vars.o[s * C + c] =
          lp.add_variable(0.0, kLpInfinity, busy_coeff + options.overflow_penalty,
                          strfmt("o[s%zu][c%zu]", s, c));
      vars.t[s * C + c] = lp.add_variable(0.0, kLpInfinity, n_servers,
                                          strfmt("t[s%zu][c%zu]", s, c));
    }
  }

  // --- Constraints -------------------------------------------------------
  for (const std::size_t k : group.classes) {
    const CallGraph& graph = app.traffic_class(ClassId{k}).graph;
    for (std::size_t n = 1; n < graph.node_count(); ++n) {
      const std::size_t p = graph.node(n).parent;
      const double mult = graph.node(n).multiplicity;

      // Inflow: a[k][n][j] = sum_i x[k][n][i][j].
      for (std::size_t j = 0; j < C; ++j) {
        if (vars.a[k][n][j] < 0) continue;
        std::vector<LinearTerm> terms{{vars.a[k][n][j], 1.0}};
        for (std::size_t i = 0; i < C; ++i) {
          const int xv = vars.x[k][n][i * C + j];
          if (xv >= 0) terms.push_back({xv, -1.0});
        }
        lp.add_constraint(std::move(terms), Relation::kEqual, 0.0,
                          strfmt("inflow[k%zu][n%zu][c%zu]", k, n, j));
      }

      // Outflow: sum_j x[k][n][i][j] = mult * a[k][p][i].
      for (std::size_t i = 0; i < C; ++i) {
        if (vars.a[k][p][i] < 0) continue;
        std::vector<LinearTerm> terms{{vars.a[k][p][i], -mult}};
        bool any = false;
        for (std::size_t j = 0; j < C; ++j) {
          const int xv = vars.x[k][n][i * C + j];
          if (xv >= 0) {
            terms.push_back({xv, 1.0});
            any = true;
          }
        }
        if (!any) {
          // The child is deployed nowhere reachable — deployment.validate()
          // precludes this, but guard anyway.
          throw std::logic_error("RouteOptimizer: call edge with no candidates");
        }
        lp.add_constraint(std::move(terms), Relation::kEqual, 0.0,
                          strfmt("outflow[k%zu][n%zu][c%zu]", k, n, i));
      }
    }
  }

  // Station utilization definitions and queue-cost epigraphs.
  for (const std::size_t s : group.services) {
    for (std::size_t c = 0; c < C; ++c) {
      const int uv = vars.u[s * C + c];
      if (uv < 0) continue;
      const double n_servers = ctx.servers_at(s, c);
      std::vector<LinearTerm> terms{{uv, -1.0}, {vars.o[s * C + c], -1.0}};
      for (const std::size_t k : group.classes) {
        const CallGraph& graph = app.traffic_class(ClassId{k}).graph;
        const double st =
            ctx.model.service_time(ServiceId{s}, ClassId{k}, ClusterId{c});
        for (std::size_t n = 0; n < graph.node_count(); ++n) {
          if (graph.node(n).service != ServiceId{s}) continue;
          const int av = vars.a[k][n][c];
          if (av >= 0) terms.push_back({av, st / n_servers});
        }
      }
      lp.add_constraint(std::move(terms), Relation::kEqual, 0.0,
                        strfmt("util[s%zu][c%zu]", s, c));

      for (const auto& tan : tangents) {
        lp.add_constraint({{vars.t[s * C + c], 1.0}, {uv, -tan.slope}},
                          Relation::kGreaterEqual, tan.intercept,
                          strfmt("queue[s%zu][c%zu]", s, c));
      }
    }
  }

  // Optional all-or-nothing MILP mode: binary y per (k, n, i, j) with
  // x <= D_k * y, sum_j y = 1.
  if (options.integer_routes) {
    for (const std::size_t k : group.classes) {
      const CallGraph& graph = app.traffic_class(ClassId{k}).graph;
      double class_demand = 0.0;
      for (std::size_t c = 0; c < C; ++c) class_demand += ctx.eff_demand(k, c);
      // Generous bound: total demand times the worst-case multiplicity chain.
      double max_mult = 1.0;
      for (std::size_t n = 1; n < graph.node_count(); ++n) {
        max_mult = std::max(max_mult, graph.executions_per_request(n));
      }
      const double big = std::max(1.0, class_demand * max_mult);
      for (std::size_t n = 1; n < graph.node_count(); ++n) {
        for (std::size_t i = 0; i < C; ++i) {
          std::vector<LinearTerm> pick_one;
          bool origin_possible = false;
          for (std::size_t j = 0; j < C; ++j) {
            const int xv = vars.x[k][n][i * C + j];
            if (xv < 0) continue;
            origin_possible = true;
            const int yv = lp.add_variable(
                0.0, 1.0, 0.0, strfmt("y[k%zu][n%zu][%zu->%zu]", k, n, i, j));
            lp.set_integer(yv);
            lp.add_constraint({{xv, 1.0}, {yv, -big}}, Relation::kLessEqual, 0.0);
            pick_one.push_back({yv, 1.0});
          }
          if (origin_possible) {
            lp.add_constraint(std::move(pick_one), Relation::kEqual, 1.0);
          }
        }
      }
    }
  }

  result.variables += lp.variable_count();
  result.constraints += lp.constraint_count();

  // --- Solve -------------------------------------------------------------
  LpSolution solution;
  SimplexStats stats;
  if (options.integer_routes) {
    MilpOptions milp = options.milp;
    milp.simplex = options.simplex;
    solution = solve_milp(lp, milp);
  } else {
    solution = solve_lp(lp, options.simplex, &stats, basis);
  }
  result.simplex_stats.iterations += stats.iterations;
  result.simplex_stats.phase1_rows += stats.phase1_rows;
  result.simplex_stats.columns += stats.columns;
  ++result.solve_groups;
  if (stats.warm_started) ++result.warm_groups;
  if (!solution.ok()) return solution.status;
  result.objective += solution.objective;

  // --- Extract rules -----------------------------------------------------
  for (const std::size_t k : group.classes) {
    const CallGraph& graph = app.traffic_class(ClassId{k}).graph;
    for (std::size_t n = 1; n < graph.node_count(); ++n) {
      const ServiceId svc = graph.node(n).service;
      const auto candidates = deployment.clusters_for(svc);
      const std::size_t p = graph.node(n).parent;
      const ServiceId parent_svc = graph.node(p).service;
      for (std::size_t i = 0; i < C; ++i) {
        if (!deployment.is_deployed(parent_svc, ClusterId{i})) continue;
        RouteWeights weights;
        double total = 0.0;
        for (std::size_t j = 0; j < C; ++j) {
          const int xv = vars.x[k][n][i * C + j];
          if (xv < 0) continue;
          const double flow = std::max(0.0, solution.values[xv]);
          weights.clusters.push_back(ClusterId{j});
          weights.weights.push_back(flow);
          total += flow;
        }
        if (total <= kZeroFlow) {
          // No flow observed from this origin: deterministic fallback so the
          // data plane always has a complete rule.
          const ClusterId fallback =
              deployment.is_deployed(svc, ClusterId{i})
                  ? ClusterId{i}
                  : topology.nearest(ClusterId{i}, candidates);
          weights.weights.assign(weights.weights.size(), 0.0);
          for (std::size_t wi = 0; wi < weights.clusters.size(); ++wi) {
            if (weights.clusters[wi] == fallback) weights.weights[wi] = 1.0;
          }
        }
        weights.normalize();
        rules.set_rule(ClassId{k}, n, ClusterId{i}, std::move(weights));
      }
    }
  }

  // --- Predicted quality (exact queue cost, not the PWL approximation) ----
  for (const std::size_t s : group.services) {
    for (std::size_t c = 0; c < C; ++c) {
      const int uv = vars.u[s * C + c];
      if (uv < 0) continue;
      const double n_servers = ctx.servers_at(s, c);
      const double u = solution.values[uv];
      const double o = solution.values[vars.o[s * C + c]];
      plan_u[s * C + c] = u + o;
      plan_o[s * C + c] = o;
      if (o > 1e-6) result.overloaded = true;
      latency_per_sec += n_servers * (u + o);
      latency_per_sec += n_servers * queue_cost(std::min(u + o, 0.999));
      if (options.server_cost_weight > 0.0) {
        server_per_sec += topology.server_price_per_hour(ClusterId{c}) /
                          3600.0 * n_servers * (u + o) /
                          options.server_price_target;
      }
    }
  }
  for (const std::size_t k : group.classes) {
    const CallGraph& graph = app.traffic_class(ClassId{k}).graph;
    for (std::size_t n = 1; n < graph.node_count(); ++n) {
      for (std::size_t i = 0; i < C; ++i) {
        for (std::size_t j = 0; j < C; ++j) {
          const int xv = vars.x[k][n][i * C + j];
          if (xv < 0 || i == j) continue;
          const double flow = solution.values[xv];
          if (flow <= 0.0) continue;
          const ClusterId ci{i}, cj{j};
          latency_per_sec += flow * (topology.one_way_latency(ci, cj) +
                                     topology.one_way_latency(cj, ci));
          egress_per_sec += flow *
                            (static_cast<double>(graph.node(n).request_bytes) *
                                 topology.egress_price_per_gb(ci, cj) +
                             static_cast<double>(graph.node(n).response_bytes) *
                                 topology.egress_price_per_gb(cj, ci)) /
                            kBytesPerGb;
        }
      }
    }
  }
  return LpStatus::kOptimal;
}

}  // namespace

RouteOptimizer::RouteOptimizer(const Application& app,
                               const Deployment& deployment,
                               const Topology& topology,
                               OptimizerOptions options)
    : app_(&app),
      deployment_(&deployment),
      topology_(&topology),
      options_(options) {
  if (deployment.cluster_count() != topology.cluster_count()) {
    throw std::invalid_argument(
        "RouteOptimizer: deployment/topology cluster count mismatch");
  }
  if (!(options_.max_utilization > 0.0 && options_.max_utilization < 1.0)) {
    throw std::invalid_argument("RouteOptimizer: max_utilization must be in (0,1)");
  }
  if (options_.server_cost_weight > 0.0 &&
      !(options_.server_price_target > 0.0 &&
        options_.server_price_target < 1.0)) {
    throw std::invalid_argument(
        "RouteOptimizer: server_price_target must be in (0,1)");
  }
  app.validate();
  deployment.validate();
}

OptimizerResult RouteOptimizer::optimize(
    const LatencyModel& model, const FlatMatrix<double>& demand,
    const std::vector<unsigned>* live_servers, OptimizerCache* cache) const {
  const std::size_t C = deployment_->cluster_count();
  const std::size_t K = app_->class_count();
  const std::size_t S = app_->service_count();
  if (demand.rows() != K || demand.cols() != C) {
    throw std::invalid_argument("RouteOptimizer: demand matrix shape mismatch");
  }

  // Steady-state memo: when demand, the fitted model, and live capacity are
  // bit-identical to the previous solve, the previous plan IS the optimal
  // plan — return it without touching the LP.
  if (cache != nullptr && cache->memo_valid) {
    const bool live_same =
        live_servers == nullptr
            ? cache->memo_live.empty()
            : cache->memo_live == *live_servers;
    if (live_same && cache->memo_demand.rows() == demand.rows() &&
        cache->memo_demand.cols() == demand.cols() &&
        cache->memo_demand.data() == demand.data() &&
        cache->memo_times == model.service_times_raw() &&
        cache->memo_default_time == model.default_service_time()) {
      ++cache->memo_hits;
      OptimizerResult result = cache->memo_result;
      result.warm_started = true;
      return result;
    }
  }

  OptimizerResult result;

  // Effective demand: reassign demand at clusters lacking the entry service
  // to the nearest cluster that has it (front-door anycast).
  FlatMatrix<double> eff_demand(K, C, 0.0);
  for (std::size_t k = 0; k < K; ++k) {
    const ServiceId entry = app_->entry_service(ClassId{k});
    const auto entry_clusters = deployment_->clusters_for(entry);
    for (std::size_t c = 0; c < C; ++c) {
      const double d = demand(k, c);
      if (d <= 0.0) continue;
      if (deployment_->is_deployed(entry, ClusterId{c})) {
        eff_demand(k, c) += d;
      } else {
        const ClusterId fallback = topology_->nearest(ClusterId{c}, entry_clusters);
        eff_demand(k, fallback.index()) += d;
      }
    }
  }

  // Class groups. Anything that prevents decomposition — the MILP mode, the
  // option being off, or every class sharing one component — collapses to a
  // single whole-problem group over all classes AND all services, which is
  // bit-identical to the legacy joint build.
  std::vector<ClassGroup> groups;
  if (!options_.integer_routes && options_.decompose) {
    groups = partition_classes(*app_);
  }
  if (groups.size() <= 1) {
    groups.clear();
    ClassGroup whole;
    whole.classes.resize(K);
    std::iota(whole.classes.begin(), whole.classes.end(), 0);
    whole.services.resize(S);
    std::iota(whole.services.begin(), whole.services.end(), 0);
    groups.push_back(std::move(whole));
  }
  if (cache != nullptr) cache->bases.resize(groups.size());

  const SolveContext ctx{*app_,      *deployment_, *topology_, options_,
                         model,      eff_demand,   live_servers, C};
  auto rules = std::make_shared<RoutingRuleSet>();
  std::vector<double> plan_u(S * C, 0.0);
  std::vector<double> plan_o(S * C, 0.0);
  double latency_per_sec = 0.0;
  double egress_per_sec = 0.0;
  double server_per_sec = 0.0;

  for (std::size_t g = 0; g < groups.size(); ++g) {
    SimplexBasis* basis =
        cache != nullptr && !options_.integer_routes ? &cache->bases[g] : nullptr;
    const LpStatus status =
        solve_group(ctx, groups[g], basis, result, *rules, plan_u, plan_o,
                    latency_per_sec, egress_per_sec, server_per_sec);
    if (status != LpStatus::kOptimal) {
      result.status = status;
      return result;
    }
  }
  result.status = LpStatus::kOptimal;
  if (cache != nullptr) {
    cache->warm_group_solves += result.warm_groups;
    cache->cold_group_solves += result.solve_groups - result.warm_groups;
  }
  result.warm_started =
      result.solve_groups > 0 && result.warm_groups == result.solve_groups;

  rules->validate();
  result.rules = std::move(rules);

  // Station plans for every deployed station, in (service, cluster) order —
  // stations of services no class references carry zero load by definition.
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t c = 0; c < C; ++c) {
      if (!deployment_->is_deployed(ServiceId{s}, ClusterId{c})) continue;
      result.station_plans.push_back(StationPlan{
          ServiceId{s}, ClusterId{c}, plan_u[s * C + c], plan_o[s * C + c]});
    }
  }

  double total_demand = 0.0;
  for (const double d : eff_demand.data()) total_demand += d;
  result.predicted_mean_latency =
      total_demand > 0.0 ? latency_per_sec / total_demand : 0.0;
  result.predicted_egress_dollars_per_sec = egress_per_sec;
  result.predicted_server_dollars_per_sec = server_per_sec;

  if (cache != nullptr) {
    cache->memo_valid = true;
    cache->memo_demand = demand;
    cache->memo_times = model.service_times_raw();
    cache->memo_default_time = model.default_service_time();
    if (live_servers != nullptr) {
      cache->memo_live = *live_servers;
    } else {
      cache->memo_live.clear();
    }
    cache->memo_result = result;
  }
  return result;
}

}  // namespace slate
