#include "core/optimizer.h"

#include <cmath>
#include <stdexcept>

#include "lp/piecewise.h"
#include "util/strfmt.h"

namespace slate {
namespace {

constexpr double kBytesPerGb = 1024.0 * 1024.0 * 1024.0;
constexpr double kZeroFlow = 1e-9;

// Dense index helpers for the variable maps.
struct VarMaps {
  // x[k][n][i * C + j]; -1 where not deployable. Only nodes n >= 1.
  std::vector<std::vector<std::vector<int>>> x;
  // a[k][n][j]; -1 where child service not deployed at j.
  std::vector<std::vector<std::vector<int>>> a;
  // Station vars, indexed s * C + c; -1 where not deployed.
  std::vector<int> u, o, t;
};

}  // namespace

RouteOptimizer::RouteOptimizer(const Application& app,
                               const Deployment& deployment,
                               const Topology& topology,
                               OptimizerOptions options)
    : app_(&app),
      deployment_(&deployment),
      topology_(&topology),
      options_(options) {
  if (deployment.cluster_count() != topology.cluster_count()) {
    throw std::invalid_argument(
        "RouteOptimizer: deployment/topology cluster count mismatch");
  }
  if (!(options_.max_utilization > 0.0 && options_.max_utilization < 1.0)) {
    throw std::invalid_argument("RouteOptimizer: max_utilization must be in (0,1)");
  }
  app.validate();
  deployment.validate();
}

OptimizerResult RouteOptimizer::optimize(
    const LatencyModel& model, const FlatMatrix<double>& demand,
    const std::vector<unsigned>* live_servers) const {
  const std::size_t C = deployment_->cluster_count();
  auto servers_at = [&](std::size_t s, std::size_t c) -> double {
    if (live_servers != nullptr && s * C + c < live_servers->size() &&
        (*live_servers)[s * C + c] > 0) {
      return static_cast<double>((*live_servers)[s * C + c]);
    }
    return deployment_->servers(ServiceId{s}, ClusterId{c});
  };
  const std::size_t K = app_->class_count();
  const std::size_t S = app_->service_count();
  if (demand.rows() != K || demand.cols() != C) {
    throw std::invalid_argument("RouteOptimizer: demand matrix shape mismatch");
  }

  OptimizerResult result;
  LpModel lp;
  VarMaps vars;

  // Effective demand: reassign demand at clusters lacking the entry service
  // to the nearest cluster that has it (front-door anycast).
  FlatMatrix<double> eff_demand(K, C, 0.0);
  for (std::size_t k = 0; k < K; ++k) {
    const ServiceId entry = app_->entry_service(ClassId{k});
    const auto entry_clusters = deployment_->clusters_for(entry);
    for (std::size_t c = 0; c < C; ++c) {
      const double d = demand(k, c);
      if (d <= 0.0) continue;
      if (deployment_->is_deployed(entry, ClusterId{c})) {
        eff_demand(k, c) += d;
      } else {
        const ClusterId fallback = topology_->nearest(ClusterId{c}, entry_clusters);
        eff_demand(k, fallback.index()) += d;
      }
    }
  }

  // --- Variables ---------------------------------------------------------
  vars.x.resize(K);
  vars.a.resize(K);
  for (std::size_t k = 0; k < K; ++k) {
    const CallGraph& graph = app_->traffic_class(ClassId{k}).graph;
    const std::size_t N = graph.node_count();
    vars.x[k].assign(N, {});
    vars.a[k].assign(N, std::vector<int>(C, -1));
    for (std::size_t n = 0; n < N; ++n) {
      const ServiceId svc = graph.node(n).service;
      for (std::size_t j = 0; j < C; ++j) {
        if (!deployment_->is_deployed(svc, ClusterId{j})) continue;
        if (n == 0) {
          // Root arrivals are pinned to the effective demand (entry service
          // serves in the arrival cluster).
          const double d = eff_demand(k, j);
          vars.a[k][n][j] = lp.add_variable(
              d, d, 0.0, strfmt("a[k%zu][n0][c%zu]", k, j));
        } else {
          vars.a[k][n][j] = lp.add_variable(
              0.0, kLpInfinity, 0.0, strfmt("a[k%zu][n%zu][c%zu]", k, n, j));
        }
      }
      if (n == 0) continue;
      const ServiceId parent_svc = graph.node(graph.node(n).parent).service;
      vars.x[k][n].assign(C * C, -1);
      for (std::size_t i = 0; i < C; ++i) {
        if (!deployment_->is_deployed(parent_svc, ClusterId{i})) continue;
        for (std::size_t j = 0; j < C; ++j) {
          if (!deployment_->is_deployed(svc, ClusterId{j})) continue;
          // Objective: network RTT (request out + response back) plus
          // weighted egress dollars per call.
          double coeff = 0.0;
          if (i != j) {
            const ClusterId ci{i}, cj{j};
            coeff += topology_->one_way_latency(ci, cj) +
                     topology_->one_way_latency(cj, ci);
            const double dollars_per_call =
                (static_cast<double>(graph.node(n).request_bytes) *
                     topology_->egress_price_per_gb(ci, cj) +
                 static_cast<double>(graph.node(n).response_bytes) *
                     topology_->egress_price_per_gb(cj, ci)) /
                kBytesPerGb;
            coeff += options_.cost_weight * dollars_per_call;
          }
          vars.x[k][n][i * C + j] = lp.add_variable(
              0.0, kLpInfinity, coeff, strfmt("x[k%zu][n%zu][%zu->%zu]", k, n, i, j));
        }
      }
    }
  }

  // Station variables.
  vars.u.assign(S * C, -1);
  vars.o.assign(S * C, -1);
  vars.t.assign(S * C, -1);
  const auto tangents =
      queue_cost_tangents(options_.max_utilization, options_.tangent_count);
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t c = 0; c < C; ++c) {
      if (!deployment_->is_deployed(ServiceId{s}, ClusterId{c})) continue;
      const double n_servers = servers_at(s, c);
      vars.u[s * C + c] =
          lp.add_variable(0.0, options_.max_utilization, n_servers,
                          strfmt("u[s%zu][c%zu]", s, c));
      vars.o[s * C + c] = lp.add_variable(
          0.0, kLpInfinity, n_servers + options_.overflow_penalty,
          strfmt("o[s%zu][c%zu]", s, c));
      vars.t[s * C + c] = lp.add_variable(0.0, kLpInfinity, n_servers,
                                          strfmt("t[s%zu][c%zu]", s, c));
    }
  }

  // --- Constraints -------------------------------------------------------
  for (std::size_t k = 0; k < K; ++k) {
    const CallGraph& graph = app_->traffic_class(ClassId{k}).graph;
    for (std::size_t n = 1; n < graph.node_count(); ++n) {
      const std::size_t p = graph.node(n).parent;
      const double mult = graph.node(n).multiplicity;

      // Inflow: a[k][n][j] = sum_i x[k][n][i][j].
      for (std::size_t j = 0; j < C; ++j) {
        if (vars.a[k][n][j] < 0) continue;
        std::vector<LinearTerm> terms{{vars.a[k][n][j], 1.0}};
        for (std::size_t i = 0; i < C; ++i) {
          const int xv = vars.x[k][n][i * C + j];
          if (xv >= 0) terms.push_back({xv, -1.0});
        }
        lp.add_constraint(std::move(terms), Relation::kEqual, 0.0,
                          strfmt("inflow[k%zu][n%zu][c%zu]", k, n, j));
      }

      // Outflow: sum_j x[k][n][i][j] = mult * a[k][p][i].
      for (std::size_t i = 0; i < C; ++i) {
        if (vars.a[k][p][i] < 0) continue;
        std::vector<LinearTerm> terms{{vars.a[k][p][i], -mult}};
        bool any = false;
        for (std::size_t j = 0; j < C; ++j) {
          const int xv = vars.x[k][n][i * C + j];
          if (xv >= 0) {
            terms.push_back({xv, 1.0});
            any = true;
          }
        }
        if (!any) {
          // The child is deployed nowhere reachable — deployment.validate()
          // precludes this, but guard anyway.
          throw std::logic_error("RouteOptimizer: call edge with no candidates");
        }
        lp.add_constraint(std::move(terms), Relation::kEqual, 0.0,
                          strfmt("outflow[k%zu][n%zu][c%zu]", k, n, i));
      }
    }
  }

  // Station utilization definitions and queue-cost epigraphs.
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t c = 0; c < C; ++c) {
      const int uv = vars.u[s * C + c];
      if (uv < 0) continue;
      const double n_servers = servers_at(s, c);
      std::vector<LinearTerm> terms{{uv, -1.0}, {vars.o[s * C + c], -1.0}};
      for (std::size_t k = 0; k < K; ++k) {
        const CallGraph& graph = app_->traffic_class(ClassId{k}).graph;
        const double st =
            model.service_time(ServiceId{s}, ClassId{k}, ClusterId{c});
        for (std::size_t n = 0; n < graph.node_count(); ++n) {
          if (graph.node(n).service != ServiceId{s}) continue;
          const int av = vars.a[k][n][c];
          if (av >= 0) terms.push_back({av, st / n_servers});
        }
      }
      lp.add_constraint(std::move(terms), Relation::kEqual, 0.0,
                        strfmt("util[s%zu][c%zu]", s, c));

      for (const auto& tan : tangents) {
        lp.add_constraint({{vars.t[s * C + c], 1.0}, {uv, -tan.slope}},
                          Relation::kGreaterEqual, tan.intercept,
                          strfmt("queue[s%zu][c%zu]", s, c));
      }
    }
  }

  // Optional all-or-nothing MILP mode: binary y per (k, n, i, j) with
  // x <= D_k * y, sum_j y = 1.
  std::vector<double> class_total_demand(K, 0.0);
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t c = 0; c < C; ++c) class_total_demand[k] += eff_demand(k, c);
  }
  if (options_.integer_routes) {
    for (std::size_t k = 0; k < K; ++k) {
      const CallGraph& graph = app_->traffic_class(ClassId{k}).graph;
      // Generous bound: total demand times the worst-case multiplicity chain.
      double max_mult = 1.0;
      for (std::size_t n = 1; n < graph.node_count(); ++n) {
        max_mult = std::max(max_mult, graph.executions_per_request(n));
      }
      const double big = std::max(1.0, class_total_demand[k] * max_mult);
      for (std::size_t n = 1; n < graph.node_count(); ++n) {
        for (std::size_t i = 0; i < C; ++i) {
          std::vector<LinearTerm> pick_one;
          bool origin_possible = false;
          for (std::size_t j = 0; j < C; ++j) {
            const int xv = vars.x[k][n][i * C + j];
            if (xv < 0) continue;
            origin_possible = true;
            const int yv = lp.add_variable(
                0.0, 1.0, 0.0, strfmt("y[k%zu][n%zu][%zu->%zu]", k, n, i, j));
            lp.set_integer(yv);
            lp.add_constraint({{xv, 1.0}, {yv, -big}}, Relation::kLessEqual, 0.0);
            pick_one.push_back({yv, 1.0});
          }
          if (origin_possible) {
            lp.add_constraint(std::move(pick_one), Relation::kEqual, 1.0);
          }
        }
      }
    }
  }

  result.variables = lp.variable_count();
  result.constraints = lp.constraint_count();

  // --- Solve -------------------------------------------------------------
  LpSolution solution;
  if (options_.integer_routes) {
    MilpOptions milp = options_.milp;
    milp.simplex = options_.simplex;
    solution = solve_milp(lp, milp);
  } else {
    solution = solve_lp(lp, options_.simplex, &result.simplex_stats);
  }
  result.status = solution.status;
  result.objective = solution.objective;
  if (!solution.ok()) return result;

  // --- Extract rules -----------------------------------------------------
  auto rules = std::make_shared<RoutingRuleSet>();
  for (std::size_t k = 0; k < K; ++k) {
    const CallGraph& graph = app_->traffic_class(ClassId{k}).graph;
    for (std::size_t n = 1; n < graph.node_count(); ++n) {
      const ServiceId svc = graph.node(n).service;
      const auto candidates = deployment_->clusters_for(svc);
      const std::size_t p = graph.node(n).parent;
      const ServiceId parent_svc = graph.node(p).service;
      for (std::size_t i = 0; i < C; ++i) {
        if (!deployment_->is_deployed(parent_svc, ClusterId{i})) continue;
        RouteWeights weights;
        double total = 0.0;
        for (std::size_t j = 0; j < C; ++j) {
          const int xv = vars.x[k][n][i * C + j];
          if (xv < 0) continue;
          const double flow = std::max(0.0, solution.values[xv]);
          weights.clusters.push_back(ClusterId{j});
          weights.weights.push_back(flow);
          total += flow;
        }
        if (total <= kZeroFlow) {
          // No flow observed from this origin: deterministic fallback so the
          // data plane always has a complete rule.
          const ClusterId fallback =
              deployment_->is_deployed(svc, ClusterId{i})
                  ? ClusterId{i}
                  : topology_->nearest(ClusterId{i}, candidates);
          weights.weights.assign(weights.weights.size(), 0.0);
          for (std::size_t wi = 0; wi < weights.clusters.size(); ++wi) {
            if (weights.clusters[wi] == fallback) weights.weights[wi] = 1.0;
          }
        }
        weights.normalize();
        rules->set_rule(ClassId{k}, n, ClusterId{i}, std::move(weights));
      }
    }
  }
  rules->validate();
  result.rules = std::move(rules);

  // --- Predicted quality (exact queue cost, not the PWL approximation) ----
  double latency_per_sec = 0.0;
  double egress_per_sec = 0.0;
  double total_demand = 0.0;
  for (std::size_t k = 0; k < K; ++k) total_demand += class_total_demand[k];

  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t c = 0; c < C; ++c) {
      const int uv = vars.u[s * C + c];
      if (uv < 0) continue;
      const double n_servers = servers_at(s, c);
      const double u = solution.values[uv];
      const double o = solution.values[vars.o[s * C + c]];
      result.station_plans.push_back(
          StationPlan{ServiceId{s}, ClusterId{c}, u + o, o});
      if (o > 1e-6) result.overloaded = true;
      latency_per_sec += n_servers * (u + o);
      latency_per_sec += n_servers * queue_cost(std::min(u + o, 0.999));
    }
  }
  for (std::size_t k = 0; k < K; ++k) {
    const CallGraph& graph = app_->traffic_class(ClassId{k}).graph;
    for (std::size_t n = 1; n < graph.node_count(); ++n) {
      for (std::size_t i = 0; i < C; ++i) {
        for (std::size_t j = 0; j < C; ++j) {
          const int xv = vars.x[k][n][i * C + j];
          if (xv < 0 || i == j) continue;
          const double flow = solution.values[xv];
          if (flow <= 0.0) continue;
          const ClusterId ci{i}, cj{j};
          latency_per_sec += flow * (topology_->one_way_latency(ci, cj) +
                                     topology_->one_way_latency(cj, ci));
          egress_per_sec += flow *
                            (static_cast<double>(graph.node(n).request_bytes) *
                                 topology_->egress_price_per_gb(ci, cj) +
                             static_cast<double>(graph.node(n).response_bytes) *
                                 topology_->egress_price_per_gb(cj, ci)) /
                            kBytesPerGb;
        }
      }
    }
  }
  result.predicted_mean_latency =
      total_demand > 0.0 ? latency_per_sec / total_demand : 0.0;
  result.predicted_egress_dollars_per_sec = egress_per_sec;
  return result;
}

}  // namespace slate
