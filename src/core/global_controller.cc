#include "core/global_controller.h"

#include <algorithm>

#include "core/routing_rules.h"
#include "util/logging.h"

namespace slate {

GlobalController::GlobalController(const Application& app,
                                   const Deployment& deployment,
                                   const Topology& topology,
                                   GlobalControllerOptions options)
    : app_(&app),
      deployment_(&deployment),
      topology_(&topology),
      options_(options),
      model_(options.warm_start_model
                 ? LatencyModel::from_application(app, topology.cluster_count())
                 : LatencyModel(app.service_count(), app.class_count(),
                                topology.cluster_count())),
      fitter_(options.fitter),
      optimizer_(app, deployment, topology, options.optimizer),
      fast_optimizer_(app, deployment, topology, options.fast_optimizer),
      store_(app.service_count(), app.class_count(), topology.cluster_count(),
             options.sample_capacity),
      demand_(app.class_count(), topology.cluster_count(), 0.0),
      live_servers_(app.service_count() * topology.cluster_count(), 0),
      last_seen_round_(topology.cluster_count(), 0),
      cluster_stale_(topology.cluster_count(), false) {
  if (options_.initial_model_scale != 1.0) {
    model_.scale_all(options_.initial_model_scale);
  }
}

std::size_t GlobalController::stale_clusters() const noexcept {
  std::size_t n = 0;
  for (const bool stale : cluster_stale_) n += stale ? 1 : 0;
  return n;
}

void GlobalController::ingest(const std::vector<ClusterReport>& reports) {
  for (const auto& report : reports) {
    last_seen_round_[report.cluster.index()] = rounds_;
    // Station utilization lookup for this cluster's report.
    std::vector<double> station_util(app_->service_count(), 0.0);
    for (const auto& sm : report.station_metrics) {
      station_util[sm.service.index()] = sm.utilization;
      live_servers_[sm.service.index() * topology_->cluster_count() +
                    report.cluster.index()] = sm.servers;
    }
    for (const auto& m : report.request_metrics) {
      if (m.completed == 0) continue;
      LoadSample sample;
      sample.time = report.period_end;
      sample.rps = m.completion_rps;
      sample.mean_latency = m.mean_latency;
      sample.mean_service_time = m.mean_service_time;
      sample.utilization = station_util[m.service.index()];
      sample.count = m.completed;
      store_.add(m.service, m.cls, report.cluster, sample);
    }
    // Demand EWMA.
    for (std::size_t k = 0; k < report.ingress_rps.size(); ++k) {
      double& d = demand_(k, report.cluster.index());
      const double observed = report.ingress_rps[k];
      d = demand_seen_ ? d + options_.demand_smoothing * (observed - d)
                       : observed;
    }
  }
  if (!reports.empty()) demand_seen_ = true;

  // Age out clusters we have not heard from for too long: their demand is
  // unobservable, so decay it toward zero instead of optimizing ghost load
  // from silently-stale state. Recovery is automatic on the next report.
  for (std::size_t c = 0; c < topology_->cluster_count(); ++c) {
    if (last_seen_round_[c] == 0) continue;  // never reported yet
    const std::uint64_t missed = rounds_ - last_seen_round_[c];
    if (missed > options_.stale_after_periods) {
      for (std::size_t k = 0; k < app_->class_count(); ++k) {
        demand_(k, c) *= options_.stale_demand_decay;
      }
      if (!cluster_stale_[c]) {
        cluster_stale_[c] = true;
        SLATE_LOG(kWarn) << "cluster " << c << " stale: no report for "
                         << missed << " periods; decaying its demand";
      }
    } else if (cluster_stale_[c]) {
      cluster_stale_[c] = false;
      SLATE_LOG(kInfo) << "cluster " << c << " reporting again";
    }
  }
}

double GlobalController::observed_e2e(
    const std::vector<ClusterReport>& reports) const {
  std::uint64_t count = 0;
  double weighted = 0.0;
  for (const auto& report : reports) {
    for (const auto& e : report.e2e) {
      count += e.count;
      weighted += static_cast<double>(e.count) * e.mean_latency;
    }
  }
  if (count < options_.guardrails.min_e2e_samples) return -1.0;
  return weighted / static_cast<double>(count);
}

std::shared_ptr<const RoutingRuleSet> GlobalController::on_reports(
    const std::vector<ClusterReport>& reports, double now) {
  (void)now;
  ++rounds_;
  ingest(reports);

  const GuardrailOptions& guard = options_.guardrails;
  const double obs = observed_e2e(reports);

  // 2. Evaluate the previous change against live telemetry.
  if (guard.enabled && pending_eval_) {
    pending_eval_ = false;
    if (obs >= 0.0 && baseline_e2e_ >= 0.0 &&
        obs > baseline_e2e_ * (1.0 + guard.regression_tolerance)) {
      // The last step made things worse than predicted: revert and hold.
      ++reverts_;
      SLATE_LOG(kInfo) << "guardrail revert: e2e " << baseline_e2e_ << " -> "
                       << obs << " after rule change";
      // Restore the pre-change rules; before any push that state is "no
      // rules", expressed as an empty set (data plane falls back to
      // locality failover).
      current_rules_ = previous_rules_ != nullptr
                           ? previous_rules_
                           : std::make_shared<const RoutingRuleSet>();
      hold_remaining_ = guard.hold_periods;
      return current_rules_;
    }
  }

  // 3. Refit the latency model from accumulated samples.
  if (!options_.freeze_model) {
    fitter_.fit(store_, *deployment_, model_);
  }

  if (hold_remaining_ > 0) {
    --hold_remaining_;
    return nullptr;  // keep rules frozen while re-learning
  }

  // 4. Optimize.
  double total_demand = 0.0;
  for (double d : demand_.data()) total_demand += d;
  if (total_demand <= 0.0) return nullptr;

  last_result_ = options_.use_fast_optimizer
                     ? fast_optimizer_.optimize(model_, demand_, &live_servers_)
                     : optimizer_.optimize(model_, demand_, &live_servers_);
  ++optimizations_;
  if (options_.use_fast_optimizer &&
      last_result_.status == LpStatus::kIterationLimit) {
    // Descent ran out of sweeps but still holds a valid (improving) plan.
    last_result_.status = LpStatus::kOptimal;
  }
  if (!last_result_.ok()) {
    SLATE_LOG(kWarn) << "optimizer failed: " << to_string(last_result_.status);
    return nullptr;
  }

  // 5. Emit rules (full target, or an incremental step under guardrails).
  std::shared_ptr<const RoutingRuleSet> push;
  if (guard.enabled) {
    push = blend_rule_sets(current_rules_.get(), *last_result_.rules,
                           guard.step_fraction);
    previous_rules_ = current_rules_;
    baseline_e2e_ = obs;
    pending_eval_ = obs >= 0.0;
  } else {
    push = last_result_.rules;
  }
  current_rules_ = push;
  return push;
}

}  // namespace slate
