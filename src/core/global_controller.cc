#include "core/global_controller.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "core/routing_rules.h"
#include "util/logging.h"
#include "workload/demand.h"

namespace slate {

GlobalController::GlobalController(const Application& app,
                                   const Deployment& deployment,
                                   const Topology& topology,
                                   GlobalControllerOptions options)
    : app_(&app),
      deployment_(&deployment),
      topology_(&topology),
      options_(options),
      model_(options.warm_start_model
                 ? LatencyModel::from_application(app, topology.cluster_count())
                 : LatencyModel(app.service_count(), app.class_count(),
                                topology.cluster_count())),
      fitter_(options.fitter),
      optimizer_(app, deployment, topology, options.optimizer),
      fast_optimizer_(app, deployment, topology, options.fast_optimizer),
      ripup_optimizer_(app, deployment, topology, options.ripup),
      store_(app.service_count(), app.class_count(), topology.cluster_count(),
             options.sample_capacity),
      demand_(app.class_count(), topology.cluster_count(), 0.0),
      solve_demand_(app.class_count(), topology.cluster_count(), 0.0),
      live_servers_(app.service_count() * topology.cluster_count(), 0),
      last_seen_round_(topology.cluster_count(), 0),
      cluster_stale_(topology.cluster_count(), false),
      drain_scale_(topology.cluster_count(), 1.0) {
  if (options_.initial_model_scale != 1.0) {
    model_.scale_all(options_.initial_model_scale);
  }
  if (options_.guard.admission.enabled) {
    validator_ = std::make_unique<ReportValidator>(
        app.service_count(), app.class_count(), topology.cluster_count(),
        options_.guard.admission);
  }
  if (options_.guard.solver.enabled) {
    solver_guard_ = std::make_unique<SolverGuard>(app, deployment, topology,
                                                  options_.guard.solver);
  }
  if (options_.guard.rollout.enabled) {
    rollout_ = std::make_unique<RuleRollout>(options_.guard.rollout);
  }
  if (options_.contingency.enabled) {
    headroom_ = std::make_unique<HeadroomPlanner>(app, deployment, topology);
  }
  switch (options_.forecast.kind) {
    case ForecastKind::kLast:
    case ForecastKind::kEwma:
    case ForecastKind::kLinear:
    case ForecastKind::kHoltWinters:
      forecaster_ = std::make_unique<DemandForecaster>(
          app.class_count(), topology.cluster_count(), options_.forecast);
      break;
    case ForecastKind::kOracle:
      options_.forecast.validate();
      break;
    case ForecastKind::kNone:
      break;
  }
}

std::size_t GlobalController::stale_clusters() const noexcept {
  std::size_t n = 0;
  for (const bool stale : cluster_stale_) n += stale ? 1 : 0;
  return n;
}

std::size_t GlobalController::stale_periods(ClusterId cluster) const noexcept {
  const std::size_t c = cluster.index();
  if (c >= last_seen_round_.size() || last_seen_round_[c] == 0) return 0;
  return static_cast<std::size_t>(rounds_ - last_seen_round_[c]);
}

void GlobalController::set_drain_scale(ClusterId cluster, double keep) {
  if (!cluster.valid() || cluster.index() >= drain_scale_.size()) return;
  keep = std::clamp(keep, 0.0, 1.0);
  if (drain_scale_[cluster.index()] == keep) return;
  drain_scale_[cluster.index()] = keep;
  capacity_dirty_ = true;
  drain_scaling_active_ = false;
  for (const double s : drain_scale_) {
    if (s < 1.0) drain_scaling_active_ = true;
  }
}

void GlobalController::set_capacity_overlay(const std::vector<unsigned>& overlay) {
  if (capacity_overlay_ == overlay) return;
  capacity_overlay_ = overlay;
  // The effective capacity moved even if demand did not: the next period
  // must actually re-solve so the plan reflects it.
  capacity_dirty_ = true;
}

double GlobalController::planned_servers(ServiceId s, ClusterId c) const {
  const std::size_t i = s.index() * topology_->cluster_count() + c.index();
  if (i < planned_capacity_.size() && planned_capacity_[i] > 0) {
    return static_cast<double>(planned_capacity_[i]);
  }
  return static_cast<double>(deployment_->servers(s, c));
}

const std::vector<unsigned>* GlobalController::capacity_view() {
  // Bi-level overlay first: the coordinator's provisioning-lag-aware counts
  // replace the raw reported ones where set (0 = no override).
  const std::vector<unsigned>* base = &live_servers_;
  if (!capacity_overlay_.empty()) {
    overlaid_live_ = live_servers_;
    const std::size_t n =
        std::min(overlaid_live_.size(), capacity_overlay_.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (capacity_overlay_[i] > 0) overlaid_live_[i] = capacity_overlay_[i];
    }
    base = &overlaid_live_;
  }
  if (!drain_scaling_active_) return base;
  const std::size_t C = topology_->cluster_count();
  const std::size_t S = app_->service_count();
  scaled_live_ = *base;
  for (std::size_t c = 0; c < C; ++c) {
    const double scale = drain_scale_[c];
    if (scale >= 1.0) continue;
    for (std::size_t s = 0; s < S; ++s) {
      // Scale from the live count when reported, else the static
      // deployment; 0 stays 0 (not deployed). Floor at one server so the
      // program stays feasible — the data plane's drain filter, not the
      // solver, performs the final cutoff.
      const unsigned base_servers =
          (*base)[s * C + c] > 0
              ? (*base)[s * C + c]
              : deployment_->servers(ServiceId{s}, ClusterId{c});
      if (base_servers == 0) continue;
      scaled_live_[s * C + c] = std::max(
          1u, static_cast<unsigned>(static_cast<double>(base_servers) * scale));
    }
  }
  return &scaled_live_;
}

const FlatMatrix<double>& GlobalController::apply_drain_divert(
    const FlatMatrix<double>& demand) {
  if (!drain_scaling_active_) return demand;
  drain_demand_ = demand;
  const std::size_t C = topology_->cluster_count();
  for (std::size_t c = 0; c < C; ++c) {
    const double keep = drain_scale_[c];
    if (keep >= 1.0) continue;
    for (std::size_t k = 0; k < demand.rows(); ++k) {
      const double diverted = (1.0 - keep) * demand(k, c);
      if (diverted <= 0.0) continue;
      // Mirror the data plane's front-door divert: nearest cluster hosting
      // the entry service that is not itself evacuating.
      const ServiceId entry = app_->entry_service(ClassId{k});
      std::vector<ClusterId> candidates;
      for (std::size_t t = 0; t < C; ++t) {
        if (t == c || drain_scale_[t] <= 0.0) continue;
        if (!deployment_->is_deployed(entry, ClusterId{t})) continue;
        candidates.push_back(ClusterId{t});
      }
      if (candidates.empty()) continue;  // divert has nowhere to go
      const ClusterId target = topology_->nearest(ClusterId{c}, candidates);
      drain_demand_(k, c) -= diverted;
      drain_demand_(k, target.index()) += diverted;
    }
  }
  return drain_demand_;
}

void GlobalController::plan_contingency(const FlatMatrix<double>& solve_demand,
                                        const std::vector<unsigned>* live,
                                        bool exact_plan) {
  const ContingencyOptions& c = options_.contingency;
  ++contingency_evals_;
  double margin = headroom_->worst_case_margin(model_, solve_demand,
                                               *last_result_.rules, live,
                                               &contingency_worst_failure_);
  if (exact_plan) {
    const double primary_cap = options_.optimizer.max_utilization;
    // Pad levels are quantized so the padded-solve inputs repeat across
    // periods and ride the contingency warm-start cache.
    std::size_t max_level = 0;
    while (primary_cap - static_cast<double>(max_level + 1) * c.pad_step >=
           c.min_utilization) {
      ++max_level;
    }
    std::size_t level = std::min(pad_level_, max_level);
    auto padded_solve = [&](std::size_t lvl) {
      OptimizerOptions padded = options_.optimizer;
      padded.max_utilization =
          primary_cap - static_cast<double>(lvl) * c.pad_step;
      if (cache_pad_level_ != lvl) {
        // The memo is keyed on solve inputs, not options: a cached plan
        // from another cap must not be served at this one.
        contingency_cache_.memo_valid = false;
        cache_pad_level_ = lvl;
      }
      RouteOptimizer padded_optimizer(*app_, *deployment_, *topology_, padded);
      ++contingency_resolves_;
      return padded_optimizer.optimize(model_, solve_demand, live,
                                       &contingency_cache_);
    };
    while (true) {
      if (level > 0) {
        OptimizerResult padded = padded_solve(level);
        if (!padded.ok()) break;  // keep the plan we have
        last_result_ = std::move(padded);
        margin = headroom_->worst_case_margin(
            model_, solve_demand, *last_result_.rules, live,
            &contingency_worst_failure_);
      }
      if (margin <= c.max_post_failure_utilization || level >= max_level) {
        break;
      }
      ++level;
    }
    // Relax one step per period, and only from comfortably inside the cap
    // (hysteresis prevents pad-level flapping at the boundary).
    if (level > 0 &&
        margin < c.max_post_failure_utilization - c.relax_hysteresis) {
      pad_level_ = level - 1;
    } else {
      pad_level_ = level;
    }
  }
  contingency_margin_last_ = margin;
  contingency_margin_worst_ = std::max(contingency_margin_worst_, margin);
}

void GlobalController::ingest(const std::vector<ClusterReport>& reports) {
  for (const auto& report : reports) {
    if (!report.cluster.valid() ||
        report.cluster.index() >= topology_->cluster_count()) {
      continue;  // structurally broken report: nowhere safe to ingest it
    }
    last_seen_round_[report.cluster.index()] = rounds_;
    // Station utilization lookup for this cluster's report.
    std::vector<double> station_util(app_->service_count(), 0.0);
    for (const auto& sm : report.station_metrics) {
      if (!sm.service.valid() || sm.service.index() >= app_->service_count()) {
        continue;
      }
      station_util[sm.service.index()] = sm.utilization;
      live_servers_[sm.service.index() * topology_->cluster_count() +
                    report.cluster.index()] = sm.servers;
    }
    for (const auto& m : report.request_metrics) {
      if (m.completed == 0) continue;
      if (!m.service.valid() || m.service.index() >= app_->service_count() ||
          !m.cls.valid() || m.cls.index() >= app_->class_count()) {
        continue;
      }
      LoadSample sample;
      sample.time = report.period_end;
      sample.rps = m.completion_rps;
      sample.mean_latency = m.mean_latency;
      sample.mean_service_time = m.mean_service_time;
      sample.utilization = station_util[m.service.index()];
      sample.count = m.completed;
      store_.add(m.service, m.cls, report.cluster, sample);
    }
    // Demand EWMA. A chronically noisy reporter (low trust) moves the
    // estimate slowly; a clean one at full smoothing speed.
    double alpha = options_.demand_smoothing;
    if (validator_ != nullptr) alpha *= validator_->trust(report.cluster);
    const std::size_t k_limit =
        std::min(report.ingress_rps.size(), app_->class_count());
    for (std::size_t k = 0; k < k_limit; ++k) {
      double& d = demand_(k, report.cluster.index());
      const double observed = report.ingress_rps[k];
      d = demand_seen_ ? d + alpha * (observed - d) : observed;
    }
  }
  if (!reports.empty()) demand_seen_ = true;

  // Age out clusters we have not heard from for too long: their demand is
  // unobservable, so decay it toward zero instead of optimizing ghost load
  // from silently-stale state. Recovery is automatic on the next report.
  for (std::size_t c = 0; c < topology_->cluster_count(); ++c) {
    if (last_seen_round_[c] == 0) continue;  // never reported yet
    const std::uint64_t missed = rounds_ - last_seen_round_[c];
    if (missed > options_.stale_after_periods) {
      for (std::size_t k = 0; k < app_->class_count(); ++k) {
        double& d = demand_(k, c);
        d *= options_.stale_demand_decay;
        // Snap to exactly zero at the floor: geometric decay alone never
        // reaches it, and a long-dark cluster must not keep attracting
        // ghost-load routing forever.
        if (d < options_.stale_demand_floor) d = 0.0;
      }
      if (!cluster_stale_[c]) {
        cluster_stale_[c] = true;
        SLATE_LOG(kWarn) << "cluster " << c << " stale: no report for "
                         << missed << " periods; decaying its demand";
      }
    } else if (cluster_stale_[c]) {
      cluster_stale_[c] = false;
      SLATE_LOG(kInfo) << "cluster " << c << " reporting again";
    }
  }
}

double GlobalController::observed_e2e(
    const std::vector<ClusterReport>& reports) const {
  std::uint64_t count = 0;
  double weighted = 0.0;
  for (const auto& report : reports) {
    for (const auto& e : report.e2e) {
      count += e.count;
      weighted += static_cast<double>(e.count) * e.mean_latency;
    }
  }
  if (count < options_.guardrails.min_e2e_samples) return -1.0;
  return weighted / static_cast<double>(count);
}

GlobalController::LiveSignal GlobalController::live_signal(
    const std::vector<ClusterReport>& reports) const {
  LiveSignal sig;
  double weighted_p99 = 0.0;
  for (const auto& report : reports) {
    const double period = std::max(report.period(), 1e-9);
    for (const auto& e : report.e2e) {
      sig.samples += e.count;
      sig.goodput_rps += static_cast<double>(e.count) / period;
      weighted_p99 += static_cast<double>(e.count) * e.p99_latency;
    }
  }
  if (sig.samples > 0) {
    sig.p99 = weighted_p99 / static_cast<double>(sig.samples);
  }
  return sig;
}

std::shared_ptr<const RoutingRuleSet> GlobalController::emit(
    std::shared_ptr<const RoutingRuleSet> rules) {
  current_rules_ = rules;
  ++epoch_seq_;
  return rules;
}

const FlatMatrix<double>& GlobalController::solve_demand_input(double now) {
  if (forecaster_ != nullptr) {
    forecaster_->blend(demand_, &solve_demand_);
    ++forecast_solves_;
    return solve_demand_;
  }
  if (options_.forecast.kind == ForecastKind::kOracle &&
      options_.forecast.oracle_schedule != nullptr) {
    // The pushed rules actuate over (now, now + horizon]; the load they
    // should be sized for is the window mean, which for any smooth profile
    // is the midpoint sample — reading the window END would overshoot a
    // moving demand by half a period.
    const double t = now + 0.5 * options_.forecast.horizon;
    for (std::size_t k = 0; k < solve_demand_.rows(); ++k) {
      for (std::size_t c = 0; c < solve_demand_.cols(); ++c) {
        solve_demand_(k, c) =
            options_.forecast.oracle_schedule->rate_at(ClassId{k}, ClusterId{c}, t);
      }
    }
    ++forecast_solves_;
    return solve_demand_;
  }
  return demand_;
}

std::shared_ptr<const RoutingRuleSet> GlobalController::on_reports(
    const std::vector<ClusterReport>& reports, double now) {
  ++rounds_;

  // 0. Telemetry admission: sanitize a copy before anything downstream
  // sees it — the raw reports stay untouched for the caller.
  const std::vector<ClusterReport>* admitted = &reports;
  std::vector<ClusterReport> sanitized;
  if (validator_ != nullptr) {
    sanitized = reports;
    for (auto& report : sanitized) validator_->admit(report);
    admitted = &sanitized;
  }

  ingest(*admitted);

  // 1b. Forecast bookkeeping runs EVERY round — including rounds that end
  // in a hold — so backtests and seasonal indices stay aligned with
  // wall-clock control periods (a Holt-Winters season is `season` periods
  // of elapsed time, not `season` successful solves).
  if (forecaster_ != nullptr) forecaster_->step(demand_);

  const GuardrailOptions& guard = options_.guardrails;
  const double obs = observed_e2e(*admitted);
  const bool rollout_active = rollout_ != nullptr;

  // 2a. Guarded rollout, phase 1: canary verdicts against live telemetry,
  // rollback, and freeze bookkeeping. Supersedes the legacy guardrail
  // blend/revert below when armed.
  bool rollout_hold = false;
  if (rollout_active) {
    const LiveSignal sig = live_signal(*admitted);
    RolloutDecision decision =
        rollout_->observe(sig.goodput_rps, sig.p99, sig.samples);
    if (decision.rolled_back) {
      ++reverts_;
      return emit(decision.rules);
    }
    rollout_hold = decision.hold;
  }

  // 2b. Legacy guardrail: evaluate the previous change against live
  // telemetry (skipped entirely when the rollout gate is armed).
  if (!rollout_active && guard.enabled && pending_eval_) {
    pending_eval_ = false;
    if (obs >= 0.0 && baseline_e2e_ >= 0.0 &&
        obs > baseline_e2e_ * (1.0 + guard.regression_tolerance)) {
      // The last step made things worse than predicted: revert and hold.
      ++reverts_;
      SLATE_LOG(kInfo) << "guardrail revert: e2e " << baseline_e2e_ << " -> "
                       << obs << " after rule change";
      // Restore the pre-change rules; before any push that state is "no
      // rules", expressed as an empty set (data plane falls back to
      // locality failover).
      current_rules_ = previous_rules_ != nullptr
                           ? previous_rules_
                           : std::make_shared<const RoutingRuleSet>();
      hold_remaining_ = guard.hold_periods;
      ++epoch_seq_;
      return current_rules_;
    }
  }

  // 3. Refit the latency model from accumulated samples.
  if (!options_.freeze_model) {
    fitter_.fit(store_, *deployment_, model_);
  }

  if (rollout_hold) return nullptr;  // mid-canary or frozen: no actuation

  if (hold_remaining_ > 0) {
    --hold_remaining_;
    return nullptr;  // keep rules frozen while re-learning
  }

  // 4. Optimize — on the measured demand estimate, the forecast blend, or
  // the oracle's future, depending on the armed forecast mode. The demand
  // check is written non-finite-safe: a poisoned matrix (possible only
  // with admission off) must hold, not solve.
  const FlatMatrix<double>& solve_demand =
      apply_drain_divert(solve_demand_input(now));
  double total_demand = 0.0;
  for (double d : solve_demand.data()) total_demand += d;
  if (!(total_demand > 0.0) || !std::isfinite(total_demand)) return nullptr;

  // 4a. Re-solve gate: once a plan exists, a period whose demand moved less
  // than resolve_tolerance in every cell keeps it — a steady-state workload
  // should not pay a full solve (or churn rules) every control period.
  if (options_.resolve_tolerance > 0.0 && !capacity_dirty_ &&
      current_rules_ != nullptr && current_rules_->size() > 0 &&
      last_solved_demand_.data().size() == solve_demand.data().size() &&
      !solve_demand.data().empty()) {
    double worst = 0.0;
    const std::vector<double>& prev = last_solved_demand_.data();
    const std::vector<double>& cur = solve_demand.data();
    const double floor = std::max(options_.resolve_floor_rps, 1.0);
    for (std::size_t i = 0; i < cur.size(); ++i) {
      // Absolute floor: noise in a cell below the floor is not movement.
      const double scale =
          std::max({std::abs(prev[i]), std::abs(cur[i]), floor});
      worst = std::max(worst, std::abs(cur[i] - prev[i]) / scale);
    }
    if (worst <= options_.resolve_tolerance) {
      ++resolve_skips_;
      return nullptr;  // demand is flat: hold current rules, skip the solve
    }
  }
  last_solved_demand_ = solve_demand;
  capacity_dirty_ = false;
  // Live capacity as the solver should see it (drain scaling applied).
  const std::vector<unsigned>* live = capacity_view();

  // Wall-clock the whole solve (whichever arm ends up producing the plan)
  // and classify the arm for the run summary. Measurement only — see
  // SolveTelemetry.
  const auto solve_t0 = std::chrono::steady_clock::now();
  auto record_solve = [&](std::uint64_t SolveTelemetry::* arm) {
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - solve_t0)
                               .count();
    ++solve_telemetry_.solves;
    solve_telemetry_.last_seconds = elapsed;
    solve_telemetry_.max_seconds =
        std::max(solve_telemetry_.max_seconds, elapsed);
    solve_telemetry_.total_seconds += elapsed;
    ++(solve_telemetry_.*arm);
  };
  auto exact_arm = [&]() {
    // Warm = the cache did real work this period: either the steady-state
    // memo hit (warm_started) or at least one group's simplex reused the
    // previous period's basis. Crash pivots can legitimately fail for a
    // subset of groups (demand moved too far), and a solve that warmed the
    // bulk of the problem should not read as cold in the summary.
    const bool warm = last_result_.warm_started || last_result_.warm_groups > 0;
    return warm ? &SolveTelemetry::exact_warm : &SolveTelemetry::exact_cold;
  };

  // True when the period's plan came from the primary or fast rung —
  // fallback-rung plans are margin-measured but never contingency
  // re-priced (they are already degraded mode).
  bool plan_from_primary = false;
  if (solver_guard_ != nullptr) {
    const bool have_last_good =
        current_rules_ != nullptr && current_rules_->size() > 0;
    SolverGuard::Outcome outcome = solver_guard_->solve(
        optimizer_, fast_optimizer_, ripup_optimizer_,
        options_.use_fast_optimizer, model_, solve_demand, live,
        &optimizer_cache_, solver_chaos_, have_last_good);
    ++optimizations_;
    last_result_ = std::move(outcome.result);
    if (outcome.rung == SolverRung::kHoldLastGood || !last_result_.ok()) {
      record_solve(&SolveTelemetry::hold);
      ++solver_holds_;
      return nullptr;  // ladder exhausted: keep last-known-good rules
    }
    switch (outcome.rung) {
      case SolverRung::kPrimary:
        plan_from_primary = true;
        record_solve(options_.use_fast_optimizer ? &SolveTelemetry::fast
                                                 : exact_arm());
        break;
      case SolverRung::kFastHeuristic:
        plan_from_primary = true;
        record_solve(&SolveTelemetry::fast);
        break;
      case SolverRung::kRipup:
        record_solve(&SolveTelemetry::ripup);
        break;
      case SolverRung::kCapacitySplit:
        record_solve(&SolveTelemetry::split);
        break;
      case SolverRung::kHoldLastGood:
        break;  // handled above
    }
  } else {
    if (solver_chaos_) {
      // Unguarded solver outage: no plan at all — the fleet keeps
      // executing whatever was pushed last.
      ++solver_holds_;
      return nullptr;
    }
    last_result_ =
        options_.use_fast_optimizer
            ? fast_optimizer_.optimize(model_, solve_demand, live)
            : optimizer_.optimize(model_, solve_demand, live,
                                  &optimizer_cache_);
    ++optimizations_;
    if (options_.use_fast_optimizer &&
        last_result_.status == LpStatus::kIterationLimit) {
      // Descent ran out of sweeps but still holds a valid (improving) plan.
      last_result_.status = LpStatus::kOptimal;
    }
    if (!last_result_.ok()) {
      SLATE_LOG(kWarn) << "optimizer failed: "
                       << to_string(last_result_.status);
      record_solve(&SolveTelemetry::hold);
      ++solver_holds_;
      return nullptr;
    }
    plan_from_primary = true;
    record_solve(options_.use_fast_optimizer ? &SolveTelemetry::fast
                                             : exact_arm());
  }

  // Record the capacity view this plan was solved against — the bi-level
  // coordinator converts the plan's station utilizations into busy-server
  // loads off it (planned_servers).
  planned_capacity_ = *live;

  // 4b. N-1 headroom: stress-test the plan against each single-cluster
  // failure and re-price with a padded cap until the worst-case reroute
  // fits (docs/resilience.md). Runs before emission so rollout damping
  // steps toward the padded target.
  if (headroom_ != nullptr && last_result_.rules != nullptr) {
    plan_contingency(solve_demand, live, plan_from_primary);
  }

  // 5. Emit rules: guarded rollout (damping + flap detection + canary
  // arming), legacy incremental step, or the raw target.
  if (rollout_active) {
    RolloutDecision decision = rollout_->apply(last_result_.rules);
    if (decision.rules == nullptr) return nullptr;  // flap freeze
    return emit(decision.rules);
  }

  std::shared_ptr<const RoutingRuleSet> push;
  if (guard.enabled) {
    push = blend_rule_sets(current_rules_.get(), *last_result_.rules,
                           guard.step_fraction);
    previous_rules_ = current_rules_;
    baseline_e2e_ = obs;
    pending_eval_ = obs >= 0.0;
  } else {
    push = last_result_.rules;
  }
  return emit(std::move(push));
}

}  // namespace slate
