// Cluster controller (paper §3.2).
//
// Per-cluster aggregation point between the proxies and the global
// controller. Downstream: snapshots the cluster's metrics registry and
// station states each control period into a ClusterReport, attaching the
// cluster id (proxies don't know it). Upstream: receives the global rule
// set and pushes it to every proxy in the cluster with one atomic policy
// swap.
#pragma once

#include <memory>
#include <vector>

#include "cluster/service_station.h"
#include "routing/weighted_rules.h"
#include "telemetry/cluster_report.h"
#include "telemetry/metrics.h"
#include "util/ids.h"

namespace slate {

class ClusterController {
 public:
  // `stations[s]` is the station for service s in this cluster, or nullptr
  // where the service is not deployed. `registry` must outlive the
  // controller; `rules_policy` is the executor shared by this cluster's
  // proxies.
  ClusterController(ClusterId cluster, std::size_t class_count,
                    MetricsRegistry& registry,
                    std::vector<ServiceStation*> stations,
                    std::shared_ptr<WeightedRulesPolicy> rules_policy);

  // Builds the report for (period_start, now], then resets period state
  // (request stats, ingress counts, station utilization windows).
  ClusterReport collect(double now);

  // Pushes new rules to the data plane. `epoch` is the global controller's
  // monotone rule-set epoch; a push older than the newest epoch this
  // controller has already applied is discarded (it raced a newer push on
  // the wire). Epoch 0 is the legacy "unstamped" path and always applies.
  void push_rules(std::shared_ptr<const RoutingRuleSet> rules,
                  std::uint64_t epoch = 0);

  // Records contact with the global controller (any exchange this period,
  // with or without a rule change).
  void heartbeat(double now) noexcept { last_contact_ = now; }

  // Staleness failover: if more than `max_missed` control periods of length
  // `period` have passed since the last heartbeat and rules are installed,
  // drop them — the data plane falls back to locality failover rather than
  // executing a dead controller's weights forever. Returns true when this
  // call performed the drop. Fresh pushes after reconnection re-arm rules.
  bool age_rules(double now, double period, std::size_t max_missed);

  [[nodiscard]] ClusterId cluster() const noexcept { return cluster_; }
  [[nodiscard]] std::uint64_t reports_built() const noexcept { return reports_; }
  [[nodiscard]] std::uint64_t rules_pushed() const noexcept { return pushes_; }
  [[nodiscard]] std::uint64_t failovers() const noexcept { return failovers_; }
  [[nodiscard]] double last_contact() const noexcept { return last_contact_; }
  // Epoch of the currently installed rules (0 until a stamped push lands).
  [[nodiscard]] std::uint64_t rule_epoch() const noexcept { return rule_epoch_; }
  [[nodiscard]] std::uint64_t stale_rule_pushes() const noexcept {
    return stale_pushes_;
  }

 private:
  ClusterId cluster_;
  std::size_t class_count_;
  MetricsRegistry& registry_;
  std::vector<ServiceStation*> stations_;
  std::shared_ptr<WeightedRulesPolicy> rules_policy_;
  double period_start_ = 0.0;
  double last_contact_ = 0.0;
  std::uint64_t reports_ = 0;
  std::uint64_t pushes_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t rule_epoch_ = 0;
  std::uint64_t stale_pushes_ = 0;
};

}  // namespace slate
