// Cluster controller (paper §3.2).
//
// Per-cluster aggregation point between the proxies and the global
// controller. Downstream: snapshots the cluster's metrics registry and
// station states each control period into a ClusterReport, attaching the
// cluster id (proxies don't know it). Upstream: receives the global rule
// set and pushes it to every proxy in the cluster with one atomic policy
// swap.
#pragma once

#include <memory>
#include <vector>

#include "cluster/service_station.h"
#include "routing/weighted_rules.h"
#include "telemetry/cluster_report.h"
#include "telemetry/metrics.h"
#include "util/ids.h"

namespace slate {

class ClusterController {
 public:
  // `stations[s]` is the station for service s in this cluster, or nullptr
  // where the service is not deployed. `registry` must outlive the
  // controller; `rules_policy` is the executor shared by this cluster's
  // proxies.
  ClusterController(ClusterId cluster, std::size_t class_count,
                    MetricsRegistry& registry,
                    std::vector<ServiceStation*> stations,
                    std::shared_ptr<WeightedRulesPolicy> rules_policy);

  // Builds the report for (period_start, now], then resets period state
  // (request stats, ingress counts, station utilization windows).
  ClusterReport collect(double now);

  // Pushes new rules to the data plane.
  void push_rules(std::shared_ptr<const RoutingRuleSet> rules);

  [[nodiscard]] ClusterId cluster() const noexcept { return cluster_; }
  [[nodiscard]] std::uint64_t reports_built() const noexcept { return reports_; }
  [[nodiscard]] std::uint64_t rules_pushed() const noexcept { return pushes_; }

 private:
  ClusterId cluster_;
  std::size_t class_count_;
  MetricsRegistry& registry_;
  std::vector<ServiceStation*> stations_;
  std::shared_ptr<WeightedRulesPolicy> rules_policy_;
  double period_start_ = 0.0;
  std::uint64_t reports_ = 0;
  std::uint64_t pushes_ = 0;
};

}  // namespace slate
