// Online latency-model fitting from telemetry samples.
//
// The paper's position (§5): learn latency profiles dynamically in
// production rather than profiling offline. The fitter estimates each
// (service, class, cluster) mean service time from low-utilization periods,
// where station-local latency ~ service time (negligible queueing). When a
// key has no low-load evidence it falls back to an M/M/1 inversion of the
// busiest usable sample, and below a minimum sample count it leaves the
// model value untouched (warm-start value or default).
#pragma once

#include "cluster/deployment.h"
#include "core/latency_model.h"
#include "telemetry/sample_store.h"

namespace slate {

struct FitterOptions {
  // Samples with utilization below this are treated as queue-free evidence.
  double low_load_utilization = 0.3;
  // Keys with fewer samples than this keep their current model value.
  std::size_t min_samples = 3;
  // Exponential smoothing toward new estimates (1 = replace, 0 = frozen).
  double smoothing = 0.5;
  // Usable samples must have at least this many completions.
  std::size_t min_count_per_sample = 10;
};

struct FitReport {
  std::size_t keys_fitted = 0;
  std::size_t keys_skipped_insufficient = 0;
  // Mean absolute relative change across fitted keys (re-fit drift signal).
  double mean_relative_change = 0.0;
};

class ModelFitter {
 public:
  explicit ModelFitter(FitterOptions options = {});

  // Updates `model` in place from `store` samples. Returns fit statistics.
  FitReport fit(const SampleStore& store, const Deployment& deployment,
                LatencyModel& model) const;

  // Single-key estimate (exposed for tests): returns the estimated service
  // time, or a negative value when evidence is insufficient.
  [[nodiscard]] double estimate_service_time(
      const std::vector<LoadSample>& samples) const;

 private:
  FitterOptions options_;
};

}  // namespace slate
