#include "core/traffic_classifier.h"

namespace slate {

TrafficClassifier::TrafficClassifier(ClassifierOptions options)
    : options_(options) {}

std::string TrafficClassifier::make_key(ServiceId entry_service,
                                        const RequestAttributes& attrs) {
  std::string key;
  key.reserve(16 + attrs.method.size() + attrs.path.size());
  key += std::to_string(entry_service.value());
  key += '\x1f';
  key += attrs.method;
  key += '\x1f';
  key += attrs.path;
  return key;
}

void TrafficClassifier::register_class(ServiceId entry_service,
                                       const RequestAttributes& attrs,
                                       ClassId cls) {
  table_[make_key(entry_service, attrs)] = cls;
}

TrafficClassifier TrafficClassifier::from_application(const Application& app,
                                                      ClassifierOptions options) {
  TrafficClassifier classifier(options);
  for (ClassId k : app.all_classes()) {
    const auto& spec = app.traffic_class(k);
    classifier.register_class(app.entry_service(k), spec.attributes, k);
  }
  classifier.set_discovery_base(app.class_count());
  return classifier;
}

std::optional<ClassId> TrafficClassifier::lookup(
    ServiceId entry_service, const RequestAttributes& attrs) const {
  const auto it = table_.find(make_key(entry_service, attrs));
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

ClassId TrafficClassifier::classify(ServiceId entry_service,
                                    const RequestAttributes& attrs) {
  const std::string key = make_key(entry_service, attrs);
  const auto it = table_.find(key);
  if (it != table_.end()) return it->second;

  if (discovered_ < options_.max_discovered_classes) {
    const ClassId cls{discovery_base_ + discovered_};
    ++discovered_;
    table_[key] = cls;
    return cls;
  }
  if (!overflow_.valid()) {
    overflow_ = ClassId{discovery_base_ + discovered_};
  }
  return overflow_;
}

}  // namespace slate
