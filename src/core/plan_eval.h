// Exact plan-cost evaluation for an arbitrary routing rule set.
//
// Every optimizer arm (exact LP, rip-up heuristic, marginal-cost descent,
// capacity split) emits the same artifact — a RoutingRuleSet — but each
// reports its own internal objective, which may use approximations (PWL
// tangents, stale utilizations). This evaluator scores any rule set with the
// one true model: a forward pass of the demand through the rules, then the
// exact (non-piecewise) queue cost plus network RTT and weighted egress.
// Optimality gaps in benches and tests are computed here so arms are compared
// apples-to-apples.
#pragma once

#include "app/application.h"
#include "cluster/deployment.h"
#include "core/latency_model.h"
#include "net/topology.h"
#include "routing/weighted_rules.h"
#include "util/matrix.h"

namespace slate {

// Total plan cost in latency-seconds per second plus cost_weight * egress
// dollars per second — the same units as OptimizerResult::objective (minus
// the LP's overflow penalty terms). Calls with no rule fall back to
// local-or-nearest, matching the data plane's failover. `live_servers`
// overrides static server counts exactly as in the optimizers.
double evaluate_plan_cost(const Application& app, const Deployment& deployment,
                          const Topology& topology, const LatencyModel& model,
                          const FlatMatrix<double>& demand,
                          const RoutingRuleSet& rules,
                          const std::vector<unsigned>* live_servers = nullptr,
                          double cost_weight = 1.0);

}  // namespace slate
