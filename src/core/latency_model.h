// SLATE's load-to-latency model (paper §3.3 "Latency Modeling").
//
// Per (service, class, cluster) the model holds a mean service (compute)
// time. A station (service s in cluster c, n servers) at per-class arrival
// rates lambda_k is modelled as n parallel M/M/1 queues:
//
//   utilization  u = sum_k lambda_k * s_k / n
//   mean wait    W(u) = s_eff * u / (1 - u),  s_eff = weighted mean service
//   class-k latency = s_k + W(u)
//
// This is deliberately a simplified "variation of an M/M/1 queuing model" as
// in the paper — the simulator's ground truth is a true M/M/n FIFO station,
// so the model carries honest approximation error that the controllers must
// tolerate (paper §5, resilience to misprediction).
#pragma once

#include <span>
#include <vector>

#include "app/application.h"
#include "util/ids.h"

namespace slate {

class LatencyModel {
 public:
  LatencyModel(std::size_t service_count, std::size_t class_count,
               std::size_t cluster_count);

  // Ground-truth model from the application spec (per-node compute means;
  // when a service appears in several nodes of one class, their means are
  // demand-weighted by expected executions). All clusters share values.
  static LatencyModel from_application(const Application& app,
                                       std::size_t cluster_count);

  void set_service_time(ServiceId s, ClassId k, ClusterId c, double mean_seconds);
  [[nodiscard]] bool has(ServiceId s, ClassId k, ClusterId c) const;
  // Mean service time; falls back to `default_service_time` when the key was
  // never set (cold start).
  [[nodiscard]] double service_time(ServiceId s, ClassId k, ClusterId c) const;

  void set_default_service_time(double seconds) noexcept { default_ = seconds; }
  [[nodiscard]] double default_service_time() const noexcept { return default_; }

  // Multiplies every stored service time by `factor` — misprediction
  // injection for the resilience experiments (paper §5).
  void scale_all(double factor);

  // --- Predictions -------------------------------------------------------

  // Station utilization for per-class arrival rates (index = class id).
  [[nodiscard]] double utilization(ServiceId s, ClusterId c,
                                   std::span<const double> class_rates,
                                   unsigned servers) const;

  // Mean queueing wait at the station (seconds); diverges as u -> 1 and is
  // clamped at u = `clamp_u` to keep predictions finite.
  [[nodiscard]] double mean_wait(ServiceId s, ClusterId c,
                                 std::span<const double> class_rates,
                                 unsigned servers, double clamp_u = 0.999) const;

  // Predicted station-local latency for class k (service + wait).
  [[nodiscard]] double predict_latency(ServiceId s, ClassId k, ClusterId c,
                                       std::span<const double> class_rates,
                                       unsigned servers) const;

  [[nodiscard]] std::size_t service_count() const noexcept { return services_; }
  [[nodiscard]] std::size_t class_count() const noexcept { return classes_; }
  [[nodiscard]] std::size_t cluster_count() const noexcept { return clusters_; }

  // Raw storage view (service-major; -1 = unset). Lets the optimizer's
  // steady-state memo detect bit-identical model inputs without rebuilding
  // anything.
  [[nodiscard]] const std::vector<double>& service_times_raw() const noexcept {
    return service_time_;
  }

 private:
  [[nodiscard]] std::size_t key(ServiceId s, ClassId k, ClusterId c) const;

  std::size_t services_, classes_, clusters_;
  std::vector<double> service_time_;  // -1 = unset
  double default_ = 1e-3;
};

}  // namespace slate
