#include "core/plan_eval.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "lp/piecewise.h"

namespace slate {

namespace {
constexpr double kBytesPerGb = 1024.0 * 1024.0 * 1024.0;
}  // namespace

double evaluate_plan_cost(const Application& app, const Deployment& deployment,
                          const Topology& topology, const LatencyModel& model,
                          const FlatMatrix<double>& demand,
                          const RoutingRuleSet& rules,
                          const std::vector<unsigned>* live_servers,
                          double cost_weight) {
  const std::size_t C = deployment.cluster_count();
  const std::size_t K = app.class_count();
  const std::size_t S = app.service_count();
  if (demand.rows() != K || demand.cols() != C) {
    throw std::invalid_argument("evaluate_plan_cost: demand shape mismatch");
  }

  auto servers_at = [&](std::size_t s, std::size_t c) -> double {
    if (live_servers != nullptr && s * C + c < live_servers->size() &&
        (*live_servers)[s * C + c] > 0) {
      return static_cast<double>((*live_servers)[s * C + c]);
    }
    return deployment.servers(ServiceId{s}, ClusterId{c});
  };

  std::vector<double> utilization(S * C, 0.0);
  double network_cost = 0.0;

  for (std::size_t k = 0; k < K; ++k) {
    const CallGraph& graph = app.traffic_class(ClassId{k}).graph;
    const std::size_t N = graph.node_count();
    std::vector<std::vector<double>> arrivals(N, std::vector<double>(C, 0.0));

    // Root arrivals: front-door anycast, same as the optimizers.
    const ServiceId entry = app.entry_service(ClassId{k});
    const auto entry_clusters = deployment.clusters_for(entry);
    for (std::size_t c = 0; c < C; ++c) {
      const double d = demand(k, c);
      if (d <= 0.0) continue;
      if (deployment.is_deployed(entry, ClusterId{c})) {
        arrivals[0][c] += d;
      } else {
        arrivals[0][topology.nearest(ClusterId{c}, entry_clusters).index()] += d;
      }
    }

    for (std::size_t n = 0; n < N; ++n) {
      if (n > 0) {
        const std::size_t p = graph.node(n).parent;
        const double mult = graph.node(n).multiplicity;
        const ServiceId svc = graph.node(n).service;
        const auto candidates = deployment.clusters_for(svc);
        for (std::size_t i = 0; i < C; ++i) {
          const double out = arrivals[p][i] * mult;
          if (out <= 0.0) continue;
          const RouteWeights* rule = rules.find(ClassId{k}, n, ClusterId{i});
          if (rule != nullptr && !rule->empty()) {
            for (std::size_t wi = 0; wi < rule->clusters.size(); ++wi) {
              const double w = rule->weights[wi];
              if (w <= 0.0) continue;
              const std::size_t j = rule->clusters[wi].index();
              arrivals[n][j] += out * w;
              if (i != j) {
                const ClusterId ci{i}, cj{j};
                network_cost +=
                    out * w *
                    (topology.one_way_latency(ci, cj) +
                     topology.one_way_latency(cj, ci) +
                     cost_weight *
                         (static_cast<double>(graph.node(n).request_bytes) *
                              topology.egress_price_per_gb(ci, cj) +
                          static_cast<double>(graph.node(n).response_bytes) *
                              topology.egress_price_per_gb(cj, ci)) /
                         kBytesPerGb);
              }
            }
          } else {
            // No rule: the data plane serves locally or at the nearest
            // deployment.
            const ClusterId j = deployment.is_deployed(svc, ClusterId{i})
                                    ? ClusterId{i}
                                    : topology.nearest(ClusterId{i}, candidates);
            arrivals[n][j.index()] += out;
            if (j.index() != i) {
              const ClusterId ci{i};
              network_cost +=
                  out * (topology.one_way_latency(ci, j) +
                         topology.one_way_latency(j, ci) +
                         cost_weight *
                             (static_cast<double>(graph.node(n).request_bytes) *
                                  topology.egress_price_per_gb(ci, j) +
                              static_cast<double>(graph.node(n).response_bytes) *
                                  topology.egress_price_per_gb(j, ci)) /
                             kBytesPerGb);
            }
          }
        }
      }
      const ServiceId svc = graph.node(n).service;
      for (std::size_t c = 0; c < C; ++c) {
        if (arrivals[n][c] <= 0.0) continue;
        utilization[svc.index() * C + c] +=
            arrivals[n][c] * model.service_time(svc, ClassId{k}, ClusterId{c}) /
            servers_at(svc.index(), c);
      }
    }
  }

  double station_cost = 0.0;
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t c = 0; c < C; ++c) {
      const double u = utilization[s * C + c];
      if (u <= 0.0) continue;
      station_cost += servers_at(s, c) * (u + queue_cost(std::min(u, 0.999)));
    }
  }
  return station_cost + network_cost;
}

}  // namespace slate
