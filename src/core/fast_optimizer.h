// Heuristic route optimizer: projected marginal-cost descent.
//
// Paper §5 ("Scalability & Fast reaction"): the exact formulation grows with
// clusters x services x classes, and large deployments need solve times in
// seconds or less. This optimizer trades exactness for speed: it works
// directly in rule space (the per-(class, edge, origin) weight vectors),
// repeatedly shifting a small weight step from the currently most expensive
// destination to the cheapest by exact marginal cost, re-evaluating the true
// (non-PWL) objective each sweep and backing off when a sweep does not
// improve it. The objective is convex in the flows, so descent converges;
// because each sweep costs O(classes * edges * clusters^2) with no LP at
// all, it is orders of magnitude faster than the simplex on large instances
// (bench/ablation_fast_optimizer measures the speed/quality frontier).
//
// The result type is shared with RouteOptimizer, so GlobalController can use
// either interchangeably.
#pragma once

#include "core/optimizer.h"

namespace slate {

struct FastOptimizerOptions {
  // Maximum descent sweeps over all (class, edge, origin) knobs.
  std::size_t max_sweeps = 120;
  // Fraction of a knob's weight moved per shift.
  double step = 0.10;
  // Stop when a sweep improves the objective by less than this fraction.
  double relative_tolerance = 1e-4;
  // Utilization treated as saturation in the marginal cost (matches the
  // exact optimizer's planning cap).
  double max_utilization = 0.95;
  // Same meaning as OptimizerOptions::cost_weight.
  double cost_weight = 1.0;
};

class FastRouteOptimizer {
 public:
  FastRouteOptimizer(const Application& app, const Deployment& deployment,
                     const Topology& topology, FastOptimizerOptions options = {});

  // Same contract as RouteOptimizer::optimize. `status` is kOptimal when
  // descent converged (it cannot prove optimality; the name keeps the
  // result type uniform), kIterationLimit when max_sweeps was exhausted
  // while still improving.
  OptimizerResult optimize(const LatencyModel& model,
                           const FlatMatrix<double>& demand,
                           const std::vector<unsigned>* live_servers = nullptr) const;

  [[nodiscard]] const FastOptimizerOptions& options() const noexcept {
    return options_;
  }

 private:
  const Application* app_;
  const Deployment* deployment_;
  const Topology* topology_;
  FastOptimizerOptions options_;
};

}  // namespace slate
