#include "core/fast_optimizer.h"

#include <algorithm>
#include <cmath>

#include "lp/piecewise.h"

namespace slate {
namespace {

constexpr double kBytesPerGb = 1024.0 * 1024.0 * 1024.0;

// Working state for one optimization run.
struct Descent {
  const Application& app;
  const Deployment& deployment;
  const Topology& topology;
  const LatencyModel& model;
  const FastOptimizerOptions& options;
  const std::vector<unsigned>* live_servers;

  std::size_t C, K, S;
  FlatMatrix<double> eff_demand;  // K x C
  // weights[k][n][i * C + j]; rows exist only for n >= 1 and deployed pairs
  // (-1 weight marks "not deployable").
  std::vector<std::vector<std::vector<double>>> weights;
  // Forward-pass outputs.
  std::vector<std::vector<std::vector<double>>> arrivals;  // [k][n][c]
  std::vector<double> utilization;                         // s * C + c
  std::vector<double> servers;                             // s * C + c

  double servers_at(std::size_t s, std::size_t c) const {
    return servers[s * C + c];
  }

  // Recomputes arrivals and utilizations from the weights.
  void forward() {
    for (auto& u : utilization) u = 0.0;
    for (std::size_t k = 0; k < K; ++k) {
      const CallGraph& graph = app.traffic_class(ClassId{k}).graph;
      for (std::size_t n = 0; n < graph.node_count(); ++n) {
        auto& a = arrivals[k][n];
        std::fill(a.begin(), a.end(), 0.0);
        if (n == 0) {
          for (std::size_t c = 0; c < C; ++c) a[c] = eff_demand(k, c);
        } else {
          const std::size_t p = graph.node(n).parent;
          const double mult = graph.node(n).multiplicity;
          for (std::size_t i = 0; i < C; ++i) {
            const double out = arrivals[k][p][i] * mult;
            if (out <= 0.0) continue;
            for (std::size_t j = 0; j < C; ++j) {
              const double w = weights[k][n][i * C + j];
              if (w > 0.0) a[j] += out * w;
            }
          }
        }
        const ServiceId svc = graph.node(n).service;
        for (std::size_t c = 0; c < C; ++c) {
          if (a[c] > 0.0) {
            utilization[svc.index() * C + c] +=
                a[c] * model.service_time(svc, ClassId{k}, ClusterId{c}) /
                servers_at(svc.index(), c);
          }
        }
      }
    }
  }

  // Exact objective at the current weights: compute + queueing + network +
  // weighted egress (latency-seconds per second).
  double objective() const {
    double total = 0.0;
    for (std::size_t s = 0; s < S; ++s) {
      for (std::size_t c = 0; c < C; ++c) {
        const double u = utilization[s * C + c];
        if (u <= 0.0) continue;
        const double n = servers_at(s, c);
        total += n * (u + queue_cost(std::min(u, 0.999)));
      }
    }
    for (std::size_t k = 0; k < K; ++k) {
      const CallGraph& graph = app.traffic_class(ClassId{k}).graph;
      for (std::size_t n = 1; n < graph.node_count(); ++n) {
        const std::size_t p = graph.node(n).parent;
        const double mult = graph.node(n).multiplicity;
        for (std::size_t i = 0; i < C; ++i) {
          const double out = arrivals[k][p][i] * mult;
          if (out <= 0.0) continue;
          for (std::size_t j = 0; j < C; ++j) {
            if (i == j) continue;
            const double w = weights[k][n][i * C + j];
            if (w <= 0.0) continue;
            total += out * w * edge_cost(graph, n, i, j);
          }
        }
      }
    }
    return total;
  }

  // Per-call cross-cluster cost of edge n from i to j (seconds-equivalent).
  double edge_cost(const CallGraph& graph, std::size_t n, std::size_t i,
                   std::size_t j) const {
    const ClusterId ci{i}, cj{j};
    const double rtt =
        topology.one_way_latency(ci, cj) + topology.one_way_latency(cj, ci);
    const double dollars =
        (static_cast<double>(graph.node(n).request_bytes) *
             topology.egress_price_per_gb(ci, cj) +
         static_cast<double>(graph.node(n).response_bytes) *
             topology.egress_price_per_gb(cj, ci)) /
        kBytesPerGb;
    return rtt + options.cost_weight * dollars;
  }

  // Marginal cost of sending one more class-k call of node n to cluster j:
  // the service's compute time there plus the station's queue-cost slope.
  double destination_marginal(std::size_t k, const CallGraph& graph,
                              std::size_t n, std::size_t j) const {
    const ServiceId svc = graph.node(n).service;
    const double st = model.service_time(svc, ClassId{k}, ClusterId{j});
    const double u =
        std::min(utilization[svc.index() * C + j], options.max_utilization);
    return st * (1.0 + queue_cost_derivative(u));
  }
};

}  // namespace

FastRouteOptimizer::FastRouteOptimizer(const Application& app,
                                       const Deployment& deployment,
                                       const Topology& topology,
                                       FastOptimizerOptions options)
    : app_(&app),
      deployment_(&deployment),
      topology_(&topology),
      options_(options) {
  if (!(options_.max_utilization > 0.0 && options_.max_utilization < 1.0)) {
    throw std::invalid_argument(
        "FastRouteOptimizer: max_utilization must be in (0,1)");
  }
  app.validate();
  deployment.validate();
}

OptimizerResult FastRouteOptimizer::optimize(
    const LatencyModel& model, const FlatMatrix<double>& demand,
    const std::vector<unsigned>* live_servers) const {
  const std::size_t C = deployment_->cluster_count();
  const std::size_t K = app_->class_count();
  const std::size_t S = app_->service_count();
  if (demand.rows() != K || demand.cols() != C) {
    throw std::invalid_argument("FastRouteOptimizer: demand shape mismatch");
  }

  Descent d{*app_,  *deployment_, *topology_, model,
            options_, live_servers, C,         K,
            S,       FlatMatrix<double>(K, C, 0.0), {}, {}, {}, {}};

  // Effective demand (front-door anycast, same as the exact optimizer).
  for (std::size_t k = 0; k < K; ++k) {
    const ServiceId entry = app_->entry_service(ClassId{k});
    const auto entry_clusters = deployment_->clusters_for(entry);
    for (std::size_t c = 0; c < C; ++c) {
      const double dem = demand(k, c);
      if (dem <= 0.0) continue;
      if (deployment_->is_deployed(entry, ClusterId{c})) {
        d.eff_demand(k, c) += dem;
      } else {
        d.eff_demand(k, topology_->nearest(ClusterId{c}, entry_clusters).index()) +=
            dem;
      }
    }
  }

  // Server counts (live overrides win).
  d.servers.assign(S * C, 0.0);
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t c = 0; c < C; ++c) {
      if (!deployment_->is_deployed(ServiceId{s}, ClusterId{c})) continue;
      unsigned n = deployment_->servers(ServiceId{s}, ClusterId{c});
      if (live_servers != nullptr && s * C + c < live_servers->size() &&
          (*live_servers)[s * C + c] > 0) {
        n = (*live_servers)[s * C + c];
      }
      d.servers[s * C + c] = static_cast<double>(n);
    }
  }

  // Initialize weights: local where deployed, else nearest.
  d.weights.resize(K);
  d.arrivals.resize(K);
  d.utilization.assign(S * C, 0.0);
  for (std::size_t k = 0; k < K; ++k) {
    const CallGraph& graph = app_->traffic_class(ClassId{k}).graph;
    const std::size_t N = graph.node_count();
    d.weights[k].assign(N, {});
    d.arrivals[k].assign(N, std::vector<double>(C, 0.0));
    for (std::size_t n = 1; n < N; ++n) {
      d.weights[k][n].assign(C * C, -1.0);
      const ServiceId svc = graph.node(n).service;
      const ServiceId parent_svc = graph.node(graph.node(n).parent).service;
      const auto candidates = deployment_->clusters_for(svc);
      for (std::size_t i = 0; i < C; ++i) {
        if (!deployment_->is_deployed(parent_svc, ClusterId{i})) continue;
        for (ClusterId j : candidates) d.weights[k][n][i * C + j.index()] = 0.0;
        const ClusterId home = deployment_->is_deployed(svc, ClusterId{i})
                                   ? ClusterId{i}
                                   : topology_->nearest(ClusterId{i}, candidates);
        d.weights[k][n][i * C + home.index()] = 1.0;
      }
    }
  }

  // --- Descent -------------------------------------------------------------
  d.forward();
  double best = d.objective();
  double step = options_.step;
  std::size_t sweeps = 0;
  bool converged = false;

  for (; sweeps < options_.max_sweeps; ++sweeps) {
    // One sweep: for every knob, move `step` of weight from the costliest
    // used destination to the cheapest one.
    for (std::size_t k = 0; k < K; ++k) {
      const CallGraph& graph = app_->traffic_class(ClassId{k}).graph;
      for (std::size_t n = 1; n < graph.node_count(); ++n) {
        const std::size_t p = graph.node(n).parent;
        for (std::size_t i = 0; i < C; ++i) {
          const double out = d.arrivals[k][p][i] * graph.node(n).multiplicity;
          if (out <= 0.0) continue;
          auto& w = d.weights[k][n];
          // Marginal total cost per destination.
          double best_cost = 0.0, worst_cost = 0.0;
          std::size_t best_j = C, worst_j = C;
          for (std::size_t j = 0; j < C; ++j) {
            if (w[i * C + j] < 0.0) continue;
            double cost = d.destination_marginal(k, graph, n, j);
            if (i != j) cost += d.edge_cost(graph, n, i, j);
            if (best_j == C || cost < best_cost) {
              best_cost = cost;
              best_j = j;
            }
            if (w[i * C + j] > 0.0 && (worst_j == C || cost > worst_cost)) {
              worst_cost = cost;
              worst_j = j;
            }
          }
          if (best_j == C || worst_j == C || best_j == worst_j) continue;
          if (worst_cost - best_cost <= 1e-12) continue;
          const double delta = std::min(step, w[i * C + worst_j]);
          w[i * C + worst_j] -= delta;
          w[i * C + best_j] += delta;
          // Keep utilizations roughly current within the sweep.
          const ServiceId svc = graph.node(n).service;
          const double st_worst =
              model.service_time(svc, ClassId{k}, ClusterId{worst_j});
          const double st_best =
              model.service_time(svc, ClassId{k}, ClusterId{best_j});
          d.utilization[svc.index() * C + worst_j] -=
              out * delta * st_worst / d.servers_at(svc.index(), worst_j);
          d.utilization[svc.index() * C + best_j] +=
              out * delta * st_best / d.servers_at(svc.index(), best_j);
        }
      }
    }
    d.forward();
    const double now = d.objective();
    if (now > best - std::abs(best) * options_.relative_tolerance) {
      if (now > best) {
        // Overshot: halve the step and keep going from the better point.
        step *= 0.5;
        if (step < 1e-3) {
          converged = true;
          break;
        }
      } else {
        converged = true;
        best = now;
        break;
      }
    }
    best = std::min(best, now);
  }

  // --- Package the result ----------------------------------------------------
  OptimizerResult result;
  result.status = converged ? LpStatus::kOptimal : LpStatus::kIterationLimit;
  result.objective = best;
  result.simplex_stats.iterations = sweeps;

  auto rules = std::make_shared<RoutingRuleSet>();
  for (std::size_t k = 0; k < K; ++k) {
    const CallGraph& graph = app_->traffic_class(ClassId{k}).graph;
    for (std::size_t n = 1; n < graph.node_count(); ++n) {
      const ServiceId parent_svc = graph.node(graph.node(n).parent).service;
      for (std::size_t i = 0; i < C; ++i) {
        if (!deployment_->is_deployed(parent_svc, ClusterId{i})) continue;
        RouteWeights rule;
        for (std::size_t j = 0; j < C; ++j) {
          const double w = d.weights[k][n][i * C + j];
          if (w < 0.0) continue;
          rule.clusters.push_back(ClusterId{j});
          rule.weights.push_back(std::max(w, 0.0));
        }
        rule.normalize();
        rules->set_rule(ClassId{k}, n, ClusterId{i}, std::move(rule));
      }
    }
  }
  rules->validate();
  result.rules = std::move(rules);

  // Predicted metrics from the final forward pass.
  double total_demand = 0.0;
  for (double dem : d.eff_demand.data()) total_demand += dem;
  double latency = 0.0, egress = 0.0;
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t c = 0; c < C; ++c) {
      const double u = d.utilization[s * C + c];
      if (d.servers[s * C + c] <= 0.0) continue;
      result.station_plans.push_back(
          StationPlan{ServiceId{s}, ClusterId{c}, u, std::max(0.0, u - 1.0)});
      if (u > options_.max_utilization + 1e-9) result.overloaded = true;
      latency += d.servers[s * C + c] * (u + queue_cost(std::min(u, 0.999)));
    }
  }
  for (std::size_t k = 0; k < K; ++k) {
    const CallGraph& graph = app_->traffic_class(ClassId{k}).graph;
    for (std::size_t n = 1; n < graph.node_count(); ++n) {
      const std::size_t p = graph.node(n).parent;
      const double mult = graph.node(n).multiplicity;
      for (std::size_t i = 0; i < C; ++i) {
        const double out = d.arrivals[k][p][i] * mult;
        if (out <= 0.0) continue;
        for (std::size_t j = 0; j < C; ++j) {
          if (i == j) continue;
          const double w = d.weights[k][n][i * C + j];
          if (w <= 0.0) continue;
          const ClusterId ci{i}, cj{j};
          latency += out * w *
                     (topology_->one_way_latency(ci, cj) +
                      topology_->one_way_latency(cj, ci));
          egress += out * w *
                    (static_cast<double>(graph.node(n).request_bytes) *
                         topology_->egress_price_per_gb(ci, cj) +
                     static_cast<double>(graph.node(n).response_bytes) *
                         topology_->egress_price_per_gb(cj, ci)) /
                    kBytesPerGb;
        }
      }
    }
  }
  result.predicted_mean_latency =
      total_demand > 0.0 ? latency / total_demand : 0.0;
  result.predicted_egress_dollars_per_sec = egress;
  return result;
}

}  // namespace slate
