#include "core/routing_rules.h"

#include <algorithm>
#include <cmath>

namespace slate {

std::shared_ptr<RoutingRuleSet> blend_rule_sets(const RoutingRuleSet* current,
                                                const RoutingRuleSet& target,
                                                double step) {
  step = std::clamp(step, 0.0, 1.0);
  auto out = std::make_shared<RoutingRuleSet>();
  target.for_each([&](ClassId cls, std::size_t node, ClusterId from,
                      const RouteWeights& target_rule) {
    const RouteWeights* old_rule =
        current != nullptr ? current->find(cls, node, from) : nullptr;
    if (old_rule == nullptr || step >= 1.0) {
      out->set_rule(cls, node, from, target_rule);
      return;
    }
    RouteWeights blended;
    blended.clusters = target_rule.clusters;
    blended.weights.resize(target_rule.clusters.size());
    for (std::size_t i = 0; i < target_rule.clusters.size(); ++i) {
      const double old_w = old_rule->weight_for(target_rule.clusters[i]);
      blended.weights[i] = (1.0 - step) * old_w + step * target_rule.weights[i];
    }
    // Old rules may put weight on clusters absent from the target rule's
    // cluster list; renormalize over the target's list.
    double total = 0.0;
    for (double w : blended.weights) total += w;
    if (total <= 0.0) {
      blended = target_rule;
    } else {
      for (double& w : blended.weights) w /= total;
    }
    out->set_rule(cls, node, from, std::move(blended));
  });
  return out;
}

double rule_set_distance(const RoutingRuleSet& a, const RoutingRuleSet& b) {
  double total = 0.0;
  std::size_t count = 0;

  auto compare = [&](ClassId cls, std::size_t node, ClusterId from,
                     const RouteWeights& rule_a, const RouteWeights* rule_b) {
    (void)cls;
    (void)node;
    (void)from;
    double l1 = 0.0;
    // Union of clusters mentioned by either rule.
    for (std::size_t i = 0; i < rule_a.clusters.size(); ++i) {
      const double wb =
          rule_b != nullptr ? rule_b->weight_for(rule_a.clusters[i]) : 0.0;
      l1 += std::abs(rule_a.weights[i] - wb);
    }
    if (rule_b != nullptr) {
      for (std::size_t i = 0; i < rule_b->clusters.size(); ++i) {
        const bool in_a = std::find(rule_a.clusters.begin(), rule_a.clusters.end(),
                                    rule_b->clusters[i]) != rule_a.clusters.end();
        if (!in_a) l1 += rule_b->weights[i];
      }
    }
    total += l1;
    ++count;
  };

  a.for_each([&](ClassId cls, std::size_t node, ClusterId from,
                 const RouteWeights& rule_a) {
    compare(cls, node, from, rule_a, b.find(cls, node, from));
  });
  // Keys only in b.
  b.for_each([&](ClassId cls, std::size_t node, ClusterId from,
                 const RouteWeights& rule_b) {
    if (a.find(cls, node, from) == nullptr) {
      compare(cls, node, from, rule_b, nullptr);
    }
  });
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

}  // namespace slate
