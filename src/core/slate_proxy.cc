#include "core/slate_proxy.h"

#include <stdexcept>
#include <utility>

namespace slate {

SlateProxy::SlateProxy(ServiceId service, MetricsRegistry& registry,
                       std::shared_ptr<WeightedRulesPolicy> rules_policy,
                       TraceCollector* trace)
    : service_(service),
      registry_(registry),
      rules_policy_(std::move(rules_policy)),
      trace_(trace) {
  if (rules_policy_ == nullptr) {
    throw std::invalid_argument("SlateProxy: null rules policy");
  }
}

ClusterId SlateProxy::route(const RouteQuery& query, Rng& rng) {
  return rules_policy_->route(query, rng);
}

void SlateProxy::on_request_start(ClassId cls, double now) {
  registry_.record_start(service_, cls, now);
}

void SlateProxy::on_request_end(ClassId cls, const Span& span) {
  registry_.record_end(service_, cls, span.exclusive_time,
                       span.exclusive_time - span.queue_time);
  if (trace_ != nullptr) trace_->record(span);
}

void SlateProxy::on_root_response(ClassId cls, double e2e_latency_seconds) {
  registry_.record_e2e(cls, e2e_latency_seconds);
}

}  // namespace slate
