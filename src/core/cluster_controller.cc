#include "core/cluster_controller.h"

#include <stdexcept>
#include <utility>

namespace slate {

ClusterController::ClusterController(
    ClusterId cluster, std::size_t class_count, MetricsRegistry& registry,
    std::vector<ServiceStation*> stations,
    std::shared_ptr<WeightedRulesPolicy> rules_policy)
    : cluster_(cluster),
      class_count_(class_count),
      registry_(registry),
      stations_(std::move(stations)),
      rules_policy_(std::move(rules_policy)) {
  if (rules_policy_ == nullptr) {
    throw std::invalid_argument("ClusterController: null rules policy");
  }
  if (stations_.size() != registry_.service_count()) {
    throw std::invalid_argument(
        "ClusterController: stations/registry size mismatch");
  }
}

ClusterReport ClusterController::collect(double now) {
  ClusterReport report;
  report.cluster = cluster_;
  report.period_start = period_start_;
  report.period_end = now;
  const double period = std::max(now - period_start_, 1e-9);

  for (std::size_t s = 0; s < registry_.service_count(); ++s) {
    const ServiceId service{s};
    for (std::size_t k = 0; k < class_count_; ++k) {
      const ClassId cls{k};
      const RequestStats& stats = registry_.stats(service, cls);
      if (stats.started == 0 && stats.completed == 0) continue;
      ServiceClassMetrics m;
      m.service = service;
      m.cls = cls;
      m.started = stats.started;
      m.completed = stats.completed;
      m.completion_rps = static_cast<double>(stats.completed) / period;
      m.mean_latency = stats.latency.mean();
      m.max_latency = stats.latency.max();
      m.mean_service_time = stats.service.mean();
      report.request_metrics.push_back(m);
    }
    if (stations_[s] != nullptr) {
      StationMetrics sm;
      sm.service = service;
      sm.servers = stations_[s]->servers();
      sm.utilization = stations_[s]->utilization();
      sm.queue_length = static_cast<double>(stations_[s]->queue_length());
      report.station_metrics.push_back(sm);
    }
  }

  report.ingress_rps.resize(class_count_, 0.0);
  report.e2e.resize(class_count_);
  for (std::size_t k = 0; k < class_count_; ++k) {
    report.ingress_rps[k] =
        static_cast<double>(registry_.ingress_count(ClassId{k})) / period;
    const StreamingStats& e2e = registry_.e2e(ClassId{k});
    report.e2e[k] = E2eMetrics{e2e.count(), e2e.mean(),
                               registry_.e2e_quantile(ClassId{k}, 0.99)};
  }

  // Reset period-scoped state.
  registry_.reset_period();
  for (auto* station : stations_) {
    if (station != nullptr) station->reset_utilization();
  }
  period_start_ = now;
  ++reports_;
  return report;
}

void ClusterController::push_rules(std::shared_ptr<const RoutingRuleSet> rules,
                                   std::uint64_t epoch) {
  if (epoch != 0 && epoch < rule_epoch_) {
    // A delayed push from an older control round arriving after a newer
    // one: applying it would silently roll the data plane backwards.
    ++stale_pushes_;
    return;
  }
  if (epoch != 0) rule_epoch_ = epoch;
  rules_policy_->update_rules(std::move(rules));
  ++pushes_;
}

bool ClusterController::age_rules(double now, double period,
                                  std::size_t max_missed) {
  if (rules_policy_->rules() == nullptr) return false;  // already failed over
  if (now - last_contact_ <= static_cast<double>(max_missed) * period) {
    return false;
  }
  rules_policy_->update_rules(nullptr);
  ++failovers_;
  return true;
}

}  // namespace slate
