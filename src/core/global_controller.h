// Global controller (paper §3.3): the control loop that turns cluster
// reports into routing rules.
//
// Each control period:
//   1. ingest every cluster's report into the sample store, and smooth the
//      observed per-(class, cluster) ingress into the demand estimate;
//   2. (guardrails) check whether the previous rule change regressed the
//      live end-to-end latency objective; if so, revert and hold;
//   3. re-fit the latency model from accumulated samples;
//   4. run the routing optimization;
//   5. emit rules — either the optimizer's target directly, or (guardrails)
//      an incremental step toward it (paper §5: "implement incremental
//      increases ... and proceed only if the objectives improve").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/deployment.h"
#include "contingency/contingency.h"
#include "contingency/headroom_planner.h"
#include "core/fast_optimizer.h"
#include "core/ripup_optimizer.h"
#include "forecast/demand_forecaster.h"
#include "core/model_fitter.h"
#include "core/optimizer.h"
#include "guard/guard_options.h"
#include "guard/report_validator.h"
#include "guard/rule_rollout.h"
#include "guard/solver_guard.h"
#include "telemetry/cluster_report.h"
#include "telemetry/sample_store.h"

namespace slate {

struct GuardrailOptions {
  bool enabled = false;
  // Fraction of the distance from current rules to the optimizer target
  // applied per period (1.0 = jump straight to target).
  double step_fraction = 0.3;
  // Revert when observed mean e2e latency worsens by more than this
  // fraction over the pre-change baseline.
  double regression_tolerance = 0.25;
  // Periods to keep rules frozen after a revert (time to re-learn).
  std::size_t hold_periods = 2;
  // Skip regression evaluation when fewer e2e samples than this were seen.
  std::uint64_t min_e2e_samples = 50;
};

struct GlobalControllerOptions {
  OptimizerOptions optimizer;
  // Use the marginal-cost descent heuristic instead of the exact LP
  // (paper §5 scalability: ~100-1000x faster solves within a few percent of
  // the LP's plan quality — see bench/ablation_fast_optimizer).
  bool use_fast_optimizer = false;
  FastOptimizerOptions fast_optimizer;
  // The negotiated-congestion rip-up arm (solver guard rung 2).
  RipupOptions ripup;
  FitterOptions fitter;
  GuardrailOptions guardrails;
  // Seed the latency model from the application spec ("offline profile");
  // online fitting refines it. When false the model cold-starts from the
  // default service time.
  bool warm_start_model = true;
  // When true the model is never re-fitted (pure warm-start operation).
  bool freeze_model = false;
  // Multiplies every warm-started service time — misprediction injection
  // for the §5 resilience experiments (a wrong offline profile). 1 = exact.
  double initial_model_scale = 1.0;
  // EWMA factor for demand updates (1 = trust the latest period fully).
  double demand_smoothing = 0.6;
  std::size_t sample_capacity = 256;

  // Re-solve gate: when > 0, a period whose solve demand moved less than
  // this relative amount in every cell since the last actual solve keeps the
  // current rules and skips the optimization entirely (no churn, no solver
  // wall time). 0 solves every period (legacy behavior). Cells below
  // `resolve_floor_rps` are compared on that absolute floor so small-cell
  // noise cannot force a solve: a Poisson cell at rate r fluctuates by
  // ~sqrt(2r) between periods, which exceeds any sane relative tolerance
  // until r is in the hundreds — raise the floor toward the workload's hot
  // cells when arming the gate on steady demand (a 20-RPS cell moving 6 RPS
  // is noise; a 700-RPS cell moving 100 is a shift).
  double resolve_tolerance = 0.0;
  double resolve_floor_rps = 1.0;

  // Missing-report tolerance. A cluster whose report has not arrived for
  // more than `stale_after_periods` control periods (telemetry blackout,
  // partition, dead controller) has its demand estimate decayed by
  // `stale_demand_decay` per further period instead of being optimized as
  // live state; it recovers on the first fresh report.
  std::size_t stale_after_periods = 3;
  double stale_demand_decay = 0.5;
  // Decay floor: once a stale cluster's per-cell demand falls below this,
  // it snaps to exactly zero instead of shrinking geometrically forever —
  // a cluster dark for hours must not keep a denormal ghost of its load
  // alive in the optimizer's demand matrix.
  double stale_demand_floor = 1e-3;

  // Control-plane hardening gates (telemetry admission, solver fallback
  // ladder, guarded rollout). All off by default; when rollout is enabled
  // it supersedes the legacy `guardrails` blend/revert path above.
  GuardOptions guard;

  // Demand forecasting (docs/forecasting.md). kNone solves on the measured
  // demand estimate exactly as before; a predictive kind solves on the
  // confidence-weighted blend of predicted and measured demand; kOracle
  // reads the actual next-period offered load from `forecast.oracle_schedule`
  // (wired by the harness) as the hindsight upper bound. The forecaster
  // observes the post-admission demand estimate, so report-validator trust
  // keeps scaling its input when the guard stack is armed.
  ForecastOptions forecast;

  // N-1 failover headroom planning (docs/resilience.md). Off by default;
  // when enabled, every primary-rung plan is stress-tested against each
  // single-cluster failure and re-priced with a padded utilization cap
  // until the worst-case post-failure reroute fits.
  ContingencyOptions contingency;
};

// Per-period solver wall time and arm-selection telemetry. Measurement only:
// the values are reported (run results, CLI summary) but never feed back into
// plan selection — host timing must not change behavior in reproducible runs
// (budget enforcement lives in SolverGuard and is opt-in).
struct SolveTelemetry {
  std::uint64_t solves = 0;        // control periods that attempted a solve
  double last_seconds = 0.0;       // wall time of the most recent solve
  double max_seconds = 0.0;
  double total_seconds = 0.0;
  // Which arm produced (or withheld) the period's plan.
  std::uint64_t exact_cold = 0;    // exact LP, cold simplex
  std::uint64_t exact_warm = 0;    // exact LP, warm-started (memo or basis)
  std::uint64_t fast = 0;          // marginal-cost descent
  std::uint64_t ripup = 0;         // negotiated-congestion rip-up
  std::uint64_t split = 0;         // capacity-proportional split
  std::uint64_t hold = 0;          // no plan: held last-known-good
};

class GlobalController {
 public:
  GlobalController(const Application& app, const Deployment& deployment,
                   const Topology& topology, GlobalControllerOptions options);

  // Processes the reports for the period ending at `now`. Returns the rule
  // set to push to cluster controllers, or nullptr when rules should stay
  // unchanged this period (hold after revert, optimizer failure, or no
  // demand observed yet). `reports` may be missing clusters — or be empty —
  // when telemetry is lost; the controller holds last-known state and ages
  // out clusters it has not heard from (see stale_after_periods).
  std::shared_ptr<const RoutingRuleSet> on_reports(
      const std::vector<ClusterReport>& reports, double now);

  // Clusters currently considered stale (no report for more than
  // stale_after_periods control periods).
  [[nodiscard]] std::size_t stale_clusters() const noexcept;

  // Consecutive control periods since `cluster` last reported (0 = fresh
  // this round, or never heard from at all).
  [[nodiscard]] std::size_t stale_periods(ClusterId cluster) const noexcept;

  // Injected solver outage (fault plan): while true, the model-driven
  // solver rungs are unavailable. With the solver guard armed the ladder
  // descends to the capacity split; without it the controller holds.
  void set_solver_chaos(bool down) noexcept { solver_chaos_ = down; }

  // Coordinated drain: the orchestrator marks `cluster` as shrinking to
  // `keep` of its capacity, so the solver plans around the evacuation
  // instead of chasing it. Scaled capacity floors at one server per
  // deployed station (keeping the program feasible); the data plane's
  // drain filter handles the final cutoff. Also bypasses the
  // resolve_tolerance gate for the next period — capacity moved even if
  // demand did not.
  void set_drain_scale(ClusterId cluster, double keep);

  // Bi-level upward coupling (docs/autoscaling.md): a per-station effective
  // capacity view (service * cluster_count + cluster; 0 = no override)
  // merged over live_servers_ for subsequent solves. The coordinator sets
  // it to each autoscaler's provisioning-lag-aware capacity each period. A
  // changed overlay bypasses the resolve gate once, like a drain step —
  // capacity moved even if demand did not.
  void set_capacity_overlay(const std::vector<unsigned>& overlay);

  // Server count the most recent solve planned station (s, c) against: the
  // capacity view captured at solve time (overlay and drain scaling
  // included), falling back to the static deployment before any solve.
  [[nodiscard]] double planned_servers(ServiceId s, ClusterId c) const;

  // Epoch stamped on the most recent non-null rule set returned by
  // on_reports (monotone; 0 = nothing pushed yet). Cluster controllers use
  // it to discard stale pushes.
  [[nodiscard]] std::uint64_t last_push_epoch() const noexcept {
    return epoch_seq_;
  }

  [[nodiscard]] const LatencyModel& model() const noexcept { return model_; }
  [[nodiscard]] LatencyModel& mutable_model() noexcept { return model_; }
  [[nodiscard]] const FlatMatrix<double>& demand() const noexcept { return demand_; }
  // Demand matrix handed to the most recent optimization: the measured
  // estimate (reactive), the confidence blend (predictive), or the actual
  // future offered load (oracle).
  [[nodiscard]] const FlatMatrix<double>& solve_demand() const noexcept {
    return forecast_active() ? solve_demand_ : demand_;
  }
  // True when solves run on forecast or oracle demand rather than the
  // measured estimate.
  [[nodiscard]] bool forecast_active() const noexcept {
    return forecaster_ != nullptr ||
           (options_.forecast.kind == ForecastKind::kOracle &&
            options_.forecast.oracle_schedule != nullptr);
  }
  // Periods whose optimization consumed forecast/oracle demand.
  [[nodiscard]] std::uint64_t forecast_solves() const noexcept {
    return forecast_solves_;
  }
  // Null unless a predictive forecast kind is armed.
  [[nodiscard]] const DemandForecaster* forecaster() const noexcept {
    return forecaster_.get();
  }
  [[nodiscard]] const OptimizerResult& last_result() const noexcept {
    return last_result_;
  }
  // Cross-period warm-start state (per-group simplex bases + memo counters).
  [[nodiscard]] const OptimizerCache& optimizer_cache() const noexcept {
    return optimizer_cache_;
  }
  [[nodiscard]] const SolveTelemetry& solve_telemetry() const noexcept {
    return solve_telemetry_;
  }
  [[nodiscard]] const SampleStore& samples() const noexcept { return store_; }

  // Live per-(service, cluster) server counts as last reported by cluster
  // controllers (autoscalers and failures change them at runtime); 0 where
  // never reported (the optimizer then uses the static deployment value).
  [[nodiscard]] const std::vector<unsigned>& live_servers() const noexcept {
    return live_servers_;
  }

  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }
  [[nodiscard]] std::uint64_t reverts() const noexcept { return reverts_; }
  [[nodiscard]] std::uint64_t optimizations() const noexcept { return optimizations_; }
  // Periods the controller held existing rules because every solver rung
  // failed (or, unguarded, because the solver was down/failed).
  [[nodiscard]] std::uint64_t solver_holds() const noexcept {
    return solver_holds_;
  }
  // Periods skipped by the resolve_tolerance gate (demand moved too little
  // to justify a re-solve).
  [[nodiscard]] std::uint64_t resolve_skips() const noexcept {
    return resolve_skips_;
  }

  // Contingency telemetry (all zero unless options.contingency.enabled).
  // Margins are worst-case post-failure max station utilizations of the
  // plan in force; "worst" is the maximum seen over any evaluated period.
  [[nodiscard]] double contingency_margin_last() const noexcept {
    return contingency_margin_last_;
  }
  [[nodiscard]] double contingency_margin_worst() const noexcept {
    return contingency_margin_worst_;
  }
  // Periods whose plan had its margin evaluated / was re-priced with a
  // padded cap.
  [[nodiscard]] std::uint64_t contingency_evals() const noexcept {
    return contingency_evals_;
  }
  [[nodiscard]] std::uint64_t contingency_resolves() const noexcept {
    return contingency_resolves_;
  }
  // Current pad level (the primary cap is reduced by level * pad_step).
  [[nodiscard]] std::size_t contingency_pad_level() const noexcept {
    return pad_level_;
  }
  // Failure whose reroute produced the last margin (invalid before the
  // first evaluation).
  [[nodiscard]] ClusterId contingency_worst_failure() const noexcept {
    return contingency_worst_failure_;
  }

  // Guard stages; null when the corresponding gate is disabled.
  [[nodiscard]] const ReportValidator* validator() const noexcept {
    return validator_.get();
  }
  [[nodiscard]] const SolverGuard* solver_guard() const noexcept {
    return solver_guard_.get();
  }
  [[nodiscard]] const RuleRollout* rollout() const noexcept {
    return rollout_.get();
  }

 private:
  // Live telemetry digest for the rollout canary.
  struct LiveSignal {
    double goodput_rps = 0.0;  // completed e2e requests per second
    double p99 = 0.0;          // count-weighted mean of per-class p99s
    std::uint64_t samples = 0;
  };

  void ingest(const std::vector<ClusterReport>& reports);
  // Fills solve_demand_ for the active forecast mode and returns it, or
  // returns demand_ untouched when reactive (bit-identical legacy path).
  [[nodiscard]] const FlatMatrix<double>& solve_demand_input(double now);
  // Demand-weighted mean e2e latency across reports; negative when too few
  // samples to judge.
  [[nodiscard]] double observed_e2e(const std::vector<ClusterReport>& reports) const;
  [[nodiscard]] LiveSignal live_signal(
      const std::vector<ClusterReport>& reports) const;
  // Stamps a fresh epoch on a non-null push and records it as current.
  std::shared_ptr<const RoutingRuleSet> emit(
      std::shared_ptr<const RoutingRuleSet> rules);
  // Capacity view for solves and margin evaluation: live_servers_, with
  // drain scaling applied when any cluster is evacuating.
  [[nodiscard]] const std::vector<unsigned>* capacity_view();
  // Demand view for solves while a drain is active: (1 - keep) of a
  // draining cluster's ingress estimate re-attributed to the cluster its
  // diverted arrivals actually enter (telemetry measures arrivals at the
  // original front door, before the divert). Returns `demand` untouched
  // when no drain is active.
  [[nodiscard]] const FlatMatrix<double>& apply_drain_divert(
      const FlatMatrix<double>& demand);
  // N-1 headroom check + padded re-pricing of last_result_. `exact_plan` is
  // true when the period's plan came from the primary or fast rung (fallback
  // rungs are measured but never re-priced — they are already degraded
  // mode).
  void plan_contingency(const FlatMatrix<double>& solve_demand,
                        const std::vector<unsigned>* live, bool exact_plan);

  const Application* app_;
  const Deployment* deployment_;
  const Topology* topology_;
  GlobalControllerOptions options_;

  LatencyModel model_;
  ModelFitter fitter_;
  RouteOptimizer optimizer_;
  FastRouteOptimizer fast_optimizer_;
  RipupRouteOptimizer ripup_optimizer_;
  OptimizerCache optimizer_cache_;
  SolveTelemetry solve_telemetry_;
  SampleStore store_;
  FlatMatrix<double> demand_;  // classes x clusters, RPS
  // Demand fed to the optimizer under an armed forecast mode (unused, and
  // never touched, when reactive).
  FlatMatrix<double> solve_demand_;
  std::unique_ptr<DemandForecaster> forecaster_;
  std::vector<unsigned> live_servers_;  // services x clusters; 0 = unreported
  bool demand_seen_ = false;

  // Per-cluster round number of the last report seen (0 = never).
  std::vector<std::uint64_t> last_seen_round_;
  std::vector<bool> cluster_stale_;

  std::shared_ptr<const RoutingRuleSet> current_rules_;
  std::shared_ptr<const RoutingRuleSet> previous_rules_;
  OptimizerResult last_result_;

  // Demand matrix of the last period that actually solved; empty until the
  // first solve. Input to the resolve_tolerance gate.
  FlatMatrix<double> last_solved_demand_;

  // Guardrail state.
  bool pending_eval_ = false;
  double baseline_e2e_ = -1.0;
  std::size_t hold_remaining_ = 0;

  // Guard stages (null when disabled).
  std::unique_ptr<ReportValidator> validator_;
  std::unique_ptr<SolverGuard> solver_guard_;
  std::unique_ptr<RuleRollout> rollout_;
  bool solver_chaos_ = false;
  std::uint64_t epoch_seq_ = 0;

  std::uint64_t rounds_ = 0;
  std::uint64_t reverts_ = 0;
  std::uint64_t optimizations_ = 0;
  std::uint64_t solver_holds_ = 0;
  std::uint64_t resolve_skips_ = 0;
  std::uint64_t forecast_solves_ = 0;

  // Contingency state (inert unless options.contingency.enabled).
  std::unique_ptr<HeadroomPlanner> headroom_;
  // Padded re-solves use their own warm-start cache: the memo is keyed on
  // solve inputs, not optimizer options, so sharing the primary cache would
  // serve plans solved under a different utilization cap.
  OptimizerCache contingency_cache_;
  std::size_t pad_level_ = 0;
  // Pad level the contingency cache's memo was filled at; a level change
  // invalidates the memo (the bases stay — they warm-start fine across
  // nearby caps).
  std::size_t cache_pad_level_ = static_cast<std::size_t>(-1);
  double contingency_margin_last_ = 0.0;
  double contingency_margin_worst_ = 0.0;
  ClusterId contingency_worst_failure_;
  std::uint64_t contingency_evals_ = 0;
  std::uint64_t contingency_resolves_ = 0;

  // Coordinated-drain capacity scaling (1 = full capacity).
  std::vector<double> drain_scale_;
  std::vector<unsigned> scaled_live_;
  // Bi-level effective-capacity overlay (empty = disarmed) and the merged
  // view capacity_view() builds from it.
  std::vector<unsigned> capacity_overlay_;
  std::vector<unsigned> overlaid_live_;
  // Capacity view the most recent successful solve ran against.
  std::vector<unsigned> planned_capacity_;
  // Scratch for apply_drain_divert (unused while no drain is active).
  FlatMatrix<double> drain_demand_;
  bool drain_scaling_active_ = false;
  // Set when a drain step changed capacity; bypasses the resolve gate once.
  bool capacity_dirty_ = false;
};

}  // namespace slate
