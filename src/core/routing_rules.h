// Rule-set arithmetic for guarded, incremental rule application.
//
// Paper §5 (resilience to prediction error): instead of jumping straight to
// the optimizer's output, move a fraction of the way there each control
// period and verify with live telemetry that the objective actually
// improved. These helpers implement the "move a fraction" part; the
// verify/revert logic lives in GlobalController.
#pragma once

#include <memory>

#include "routing/weighted_rules.h"

namespace slate {

// Per-key convex combination: result = (1-step) * current + step * target,
// renormalized over the target rule's cluster list. Keys missing from
// `current` are copied verbatim (there is nothing to blend against).
// `current` may be null (returns a copy of target). step is clamped to
// [0, 1].
std::shared_ptr<RoutingRuleSet> blend_rule_sets(const RoutingRuleSet* current,
                                                const RoutingRuleSet& target,
                                                double step);

// Mean L1 distance between matching rules' weight vectors (0 = identical,
// up to 2 = disjoint). Keys present in only one set compare against a
// point-mass on that rule's primary cluster.
double rule_set_distance(const RoutingRuleSet& a, const RoutingRuleSet& b);

}  // namespace slate
