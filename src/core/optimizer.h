// The global request-routing optimization (paper §3.3, DESIGN.md §4).
//
// Inputs: the application's per-class call trees, the deployment (placement,
// server counts), the topology (latency, egress prices), the learned latency
// model, and per-(class, ingress cluster) demand. Output: per (class,
// call-edge, source cluster) weight vectors over destination clusters — the
// paper's routing rules — plus the predicted latency/cost of the plan.
//
// Formulation (all flows in requests/second):
//   x[k][e][i][j]  rate of class-k calls over call edge e from cluster i
//                  serving in cluster j            (only where deployable)
//   a[k][n][j]     arrival rate of call node n of class k at cluster j
//   u[s][c]        station utilization (bounded by max_utilization)
//   o[s][c]        utilization overflow beyond the bound (penalized; keeps
//                  the program feasible under global overload)
//   t[s][c]        epigraph of the convex queue-cost g(u) = u^2/(1-u)
//
// The objective minimizes total latency-seconds per second — compute
// (servers * (u+o)), queueing (servers * t), and network RTT per crossing —
// plus cost_weight * egress dollars per second. Minimizing total latency per
// second is equivalent to minimizing mean end-to-end latency because total
// demand is fixed. Parallel child invocations are counted as if sequential
// (an upper bound on the true end-to-end latency).
#pragma once

#include <memory>
#include <vector>

#include "cluster/deployment.h"
#include "core/latency_model.h"
#include "lp/branch_and_bound.h"
#include "lp/simplex.h"
#include "net/topology.h"
#include "routing/weighted_rules.h"
#include "util/matrix.h"

namespace slate {

struct OptimizerOptions {
  // Seconds of objective per dollar-per-second of egress spend. 0 optimizes
  // latency only; larger values trade latency for cheaper egress
  // (paper §4.1: "if an administrator values cost over latency").
  double cost_weight = 1.0;
  // Stations may not be planned beyond this utilization.
  double max_utilization = 0.95;
  // Tangent count for the queue-cost epigraph.
  std::size_t tangent_count = 14;
  // Objective penalty per unit of utilization overflow (latency-seconds).
  double overflow_penalty = 1e4;
  // Joint cost term (bi-level co-design, docs/autoscaling.md): seconds of
  // objective per dollar-per-second of SERVER spend. When > 0, planned busy
  // work u*n at a station is priced as the servers an autoscaler must keep
  // provisioned for it — u * n / server_price_target replicas at the
  // cluster's $/server-hour — so the solver can trade "route it far"
  // (egress) against "scale it here" (server-hours). 0 (default) keeps the
  // legacy latency+egress objective bit-identical. Exact-LP rungs only; the
  // fast gradient optimizer ignores it.
  double server_cost_weight = 0.0;
  // Utilization the autoscaler provisions toward, used to convert planned
  // busy work into paid servers. Must be in (0,1) when pricing is armed.
  double server_price_target = 0.6;
  // When true, each (class, edge, source) must route to a single cluster
  // (all-or-nothing), solved as a MILP. Used by ablations.
  bool integer_routes = false;
  // Solve classes that share no service (hence no capacity row) as
  // independent sub-LPs instead of one joint tableau. Exact — disjoint
  // groups separate in both objective and constraints — and the only way a
  // planet-scale instance fits in a control period: the dense joint tableau
  // grows with (classes x clusters)^2 while per-group tableaus stay small.
  // When every class lands in one group this takes the identical legacy
  // whole-problem path. Ignored under integer_routes.
  bool decompose = true;
  SimplexOptions simplex;
  MilpOptions milp;
};

struct StationPlan {
  ServiceId service;
  ClusterId cluster;
  double utilization = 0.0;
  double overflow = 0.0;
};

struct OptimizerResult {
  LpStatus status = LpStatus::kInfeasible;
  std::shared_ptr<RoutingRuleSet> rules;

  // Predicted plan quality, evaluated with the exact (non-PWL) queue model.
  double predicted_mean_latency = 0.0;        // seconds per request
  double predicted_egress_dollars_per_sec = 0.0;
  // Server-hours the plan implies, in $/s (0 unless server pricing armed).
  double predicted_server_dollars_per_sec = 0.0;
  double objective = 0.0;                     // LP objective value
  bool overloaded = false;                    // any station overflowed

  std::vector<StationPlan> station_plans;
  int variables = 0;
  int constraints = 0;
  SimplexStats simplex_stats;  // summed across class groups

  // Warm-start telemetry: solve_groups class groups were solved; warm_groups
  // of them resumed from the previous period's basis. warm_started is true
  // when the whole solve reused previous-period state (a steady-state memo
  // hit, or every group basis warm start succeeding).
  std::size_t solve_groups = 0;
  std::size_t warm_groups = 0;
  bool warm_started = false;

  [[nodiscard]] bool ok() const noexcept { return status == LpStatus::kOptimal; }
};

// Cross-period solver state owned by the caller (the global controller keeps
// one per optimizer lifetime). Holds the previous solve's per-group simplex
// bases — demand moves slowly between control periods, so the old optimal
// basis is a near-feasible starting point — plus a steady-state memo that
// returns the cached result outright when every input is bit-identical.
struct OptimizerCache {
  // Per class-group bases (indexed like the partition, which is a function
  // of the immutable application/deployment and therefore stable).
  std::vector<SimplexBasis> bases;

  // Steady-state memo inputs + result.
  bool memo_valid = false;
  FlatMatrix<double> memo_demand{0, 0, 0.0};
  std::vector<double> memo_times;
  double memo_default_time = 0.0;
  std::vector<unsigned> memo_live;
  OptimizerResult memo_result;

  std::uint64_t memo_hits = 0;
  std::uint64_t warm_group_solves = 0;
  std::uint64_t cold_group_solves = 0;
};

class RouteOptimizer {
 public:
  RouteOptimizer(const Application& app, const Deployment& deployment,
                 const Topology& topology, OptimizerOptions options = {});

  // `demand(k, c)` = class-k requests/second entering cluster c.
  // Demand at clusters lacking the class's entry service is reassigned to
  // the nearest cluster that has it.
  //
  // `live_servers`, if non-null, overrides the deployment's static server
  // counts (indexed service * cluster_count + cluster; entries of 0 fall
  // back to the deployment). Autoscalers and failures change capacity at
  // runtime; the controller feeds the observed counts back here.
  //
  // `cache`, if non-null, carries warm-start state across periods: the
  // previous solve's per-group bases (phase 1 is skipped when they still
  // reach a feasible point) and the steady-state memo (bit-identical inputs
  // return the cached result outright). Passing null solves cold.
  OptimizerResult optimize(const LatencyModel& model,
                           const FlatMatrix<double>& demand,
                           const std::vector<unsigned>* live_servers = nullptr,
                           OptimizerCache* cache = nullptr) const;

  [[nodiscard]] const OptimizerOptions& options() const noexcept { return options_; }

 private:
  const Application* app_;
  const Deployment* deployment_;
  const Topology* topology_;
  OptimizerOptions options_;
};

}  // namespace slate
