// Negotiated-congestion rip-up-and-reroute heuristic (PathFinder-style).
//
// A third optimizer arm between the exact LP and pure descent, built for
// planet-scale instances where even one descent sweep over every
// (class, edge, origin, destination) pair is affordable but the LP is not.
// Borrowed from VLSI global routing: start every call edge on its cheapest
// uncongested-looking destination, then iterate rounds of
//
//   1. price each station by base cost x (1 + present_weight * overuse)
//      + accumulated history cost,
//   2. rip up and reroute every (class, edge, origin) knob to the cheapest
//      destination at current prices (all-or-nothing, so rounds are fast),
//   3. bump the history cost of every station still over the utilization
//      cap, so chronically contended stations become expensive even when
//      momentarily uncrowded.
//
// History is what distinguishes negotiation from greedy rerouting: two
// classes oscillating over a shared station see its price ratchet up until
// one of them durably yields. After the rounds, a single load-shedding sweep
// fractionally splits knobs whose chosen station still exceeds the cap, and
// a bounded fractional-polish phase (marginal-cost descent from the
// negotiated plan) recovers the splits that 0/1 routing cannot express —
// without it the gap vs the exact LP grows with cluster count, because
// stations are sized for fractional spreading and all-or-nothing assignment
// concentrates whole flows. The best plan by exact objective across all
// phases is returned, so extra rounds never make the answer worse.
//
// Same result contract as RouteOptimizer / FastRouteOptimizer; the solver
// guard selects this arm when the exact solve blows its wall budget.
#pragma once

#include "core/optimizer.h"

namespace slate {

struct RipupOptions {
  // Rip-up/reroute rounds. Each is O(classes * edges * clusters^2).
  std::size_t max_rounds = 16;
  // History added to a station per round spent over the cap, scaled by its
  // relative overuse.
  double history_increment = 0.5;
  // Present-congestion multiplier: a station at u = cap + x prices its base
  // cost up by (1 + present_weight * x).
  double present_weight = 8.0;
  // Utilization treated as saturation (matches the exact optimizer's cap).
  double max_utilization = 0.95;
  // Same meaning as OptimizerOptions::cost_weight.
  double cost_weight = 1.0;
  // Fractional-polish descent sweeps after negotiation (0 disables). Each
  // sweep shifts `polish_step` of a knob's weight from its most expensive
  // destination to its cheapest by true marginal cost; the phase stops early
  // once a sweep improves the objective by less than `polish_tolerance`.
  std::size_t polish_sweeps = 48;
  double polish_step = 0.25;
  double polish_tolerance = 1e-4;
};

class RipupRouteOptimizer {
 public:
  RipupRouteOptimizer(const Application& app, const Deployment& deployment,
                      const Topology& topology, RipupOptions options = {});

  // Same contract as RouteOptimizer::optimize. Always returns a complete,
  // conservation-clean rule set; `status` is kOptimal when a round made no
  // change (negotiation settled), kIterationLimit when max_rounds ran out
  // (the best-seen plan is still returned).
  OptimizerResult optimize(const LatencyModel& model,
                           const FlatMatrix<double>& demand,
                           const std::vector<unsigned>* live_servers = nullptr) const;

  [[nodiscard]] const RipupOptions& options() const noexcept { return options_; }

 private:
  const Application* app_;
  const Deployment* deployment_;
  const Topology* topology_;
  RipupOptions options_;
};

}  // namespace slate
