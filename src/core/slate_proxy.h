// SLATE-proxy: the data-plane element (paper §3.1).
//
// One proxy fronts each service's replica pool in each cluster. Its two
// jobs, mirroring the paper: (1) telemetry — record per-request load,
// latency, class, and trace spans; (2) policy enforcement — answer routing
// queries for outbound calls from the rules pushed by the cluster
// controller. The routing fast path is one hash lookup plus one weighted
// draw (measured in bench/micro_dataplane).
//
// Proxies deliberately do not know their own cluster id (the cluster
// controller attaches it when aggregating, paper §3.2); they know it only
// implicitly via the registry they write to.
#pragma once

#include <memory>

#include "routing/weighted_rules.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "util/ids.h"

namespace slate {

class SlateProxy {
 public:
  // `registry` and `trace` (optional) must outlive the proxy. `rules_policy`
  // is the shared per-cluster rule executor the cluster controller updates.
  SlateProxy(ServiceId service, MetricsRegistry& registry,
             std::shared_ptr<WeightedRulesPolicy> rules_policy,
             TraceCollector* trace = nullptr);

  // --- policy enforcement -----------------------------------------------
  ClusterId route(const RouteQuery& query, Rng& rng);

  // --- telemetry ----------------------------------------------------------
  void on_request_start(ClassId cls, double now);
  // `span` carries trace info; its exclusive (station-local) time feeds the
  // load/latency metrics, the full span goes to the trace collector.
  void on_request_end(ClassId cls, const Span& span);
  // Root-node completion: records the end-to-end latency of a request that
  // entered the mesh at this proxy.
  void on_root_response(ClassId cls, double e2e_latency_seconds);

  [[nodiscard]] ServiceId service() const noexcept { return service_; }
  [[nodiscard]] const WeightedRulesPolicy& policy() const noexcept {
    return *rules_policy_;
  }

 private:
  ServiceId service_;
  MetricsRegistry& registry_;
  std::shared_ptr<WeightedRulesPolicy> rules_policy_;
  TraceCollector* trace_;
};

}  // namespace slate
