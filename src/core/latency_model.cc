#include "core/latency_model.h"

#include <stdexcept>

namespace slate {

LatencyModel::LatencyModel(std::size_t service_count, std::size_t class_count,
                           std::size_t cluster_count)
    : services_(service_count),
      classes_(class_count),
      clusters_(cluster_count),
      service_time_(service_count * class_count * cluster_count, -1.0) {}

LatencyModel LatencyModel::from_application(const Application& app,
                                            std::size_t cluster_count) {
  LatencyModel model(app.service_count(), app.class_count(), cluster_count);
  for (ClassId k : app.all_classes()) {
    const CallGraph& graph = app.traffic_class(k).graph;
    // Demand-weighted mean compute per (service, class).
    std::vector<double> weight(app.service_count(), 0.0);
    std::vector<double> weighted_time(app.service_count(), 0.0);
    for (std::size_t n = 0; n < graph.node_count(); ++n) {
      const CallNode& node = graph.node(n);
      const double w = graph.executions_per_request(n);
      weight[node.service.index()] += w;
      weighted_time[node.service.index()] += w * node.compute_time_mean;
    }
    for (ServiceId s : app.all_services()) {
      if (weight[s.index()] <= 0.0) continue;
      const double mean = weighted_time[s.index()] / weight[s.index()];
      for (std::size_t c = 0; c < cluster_count; ++c) {
        model.set_service_time(s, k, ClusterId{c}, mean);
      }
    }
  }
  return model;
}

std::size_t LatencyModel::key(ServiceId s, ClassId k, ClusterId c) const {
  if (!s.valid() || s.index() >= services_ || !k.valid() ||
      k.index() >= classes_ || !c.valid() || c.index() >= clusters_) {
    throw std::out_of_range("LatencyModel: bad key");
  }
  return (s.index() * classes_ + k.index()) * clusters_ + c.index();
}

void LatencyModel::set_service_time(ServiceId s, ClassId k, ClusterId c,
                                    double mean_seconds) {
  if (mean_seconds < 0.0) {
    throw std::invalid_argument("LatencyModel: negative service time");
  }
  service_time_[key(s, k, c)] = mean_seconds;
}

bool LatencyModel::has(ServiceId s, ClassId k, ClusterId c) const {
  return service_time_[key(s, k, c)] >= 0.0;
}

double LatencyModel::service_time(ServiceId s, ClassId k, ClusterId c) const {
  const double v = service_time_[key(s, k, c)];
  return v >= 0.0 ? v : default_;
}

void LatencyModel::scale_all(double factor) {
  if (factor <= 0.0) throw std::invalid_argument("LatencyModel: bad factor");
  for (double& v : service_time_) {
    if (v >= 0.0) v *= factor;
  }
}

double LatencyModel::utilization(ServiceId s, ClusterId c,
                                 std::span<const double> class_rates,
                                 unsigned servers) const {
  if (servers == 0) throw std::invalid_argument("LatencyModel: zero servers");
  double work = 0.0;
  for (std::size_t k = 0; k < class_rates.size() && k < classes_; ++k) {
    if (class_rates[k] <= 0.0) continue;
    work += class_rates[k] * service_time(s, ClassId{k}, c);
  }
  return work / static_cast<double>(servers);
}

double LatencyModel::mean_wait(ServiceId s, ClusterId c,
                               std::span<const double> class_rates,
                               unsigned servers, double clamp_u) const {
  double total_rate = 0.0;
  double work = 0.0;
  for (std::size_t k = 0; k < class_rates.size() && k < classes_; ++k) {
    if (class_rates[k] <= 0.0) continue;
    total_rate += class_rates[k];
    work += class_rates[k] * service_time(s, ClassId{k}, c);
  }
  if (total_rate <= 0.0) return 0.0;
  const double s_eff = work / total_rate;  // mean service across classes
  double u = work / static_cast<double>(servers);
  if (u > clamp_u) u = clamp_u;
  return s_eff * u / (1.0 - u);
}

double LatencyModel::predict_latency(ServiceId s, ClassId k, ClusterId c,
                                     std::span<const double> class_rates,
                                     unsigned servers) const {
  return service_time(s, k, c) + mean_wait(s, c, class_rates, servers);
}

}  // namespace slate
