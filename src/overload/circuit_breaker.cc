#include "overload/circuit_breaker.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace slate {

CircuitBreakerBank::CircuitBreakerBank(const BreakerPolicy& policy,
                                       std::size_t services,
                                       std::size_t clusters)
    : policy_(policy),
      clusters_(clusters),
      bucket_len_(policy.window / static_cast<double>(kBuckets)),
      breakers_(services * clusters) {
  if (policy.window <= 0.0) {
    throw std::invalid_argument("BreakerPolicy: window must be > 0");
  }
  if (policy.failure_ratio <= 0.0 || policy.failure_ratio > 1.0) {
    throw std::invalid_argument("BreakerPolicy: failure_ratio must be in (0, 1]");
  }
  if (policy.ejection_base <= 0.0) {
    throw std::invalid_argument("BreakerPolicy: ejection_base must be > 0");
  }
}

void CircuitBreakerBank::clear_window(Breaker& b) const {
  b.ok.fill(0);
  b.fail.fill(0);
}

void CircuitBreakerBank::advance(Breaker& b, double now) const {
  const auto epoch = static_cast<std::int64_t>(std::floor(now / bucket_len_));
  if (epoch <= b.epoch) return;
  const std::int64_t steps = epoch - b.epoch;
  if (steps >= static_cast<std::int64_t>(kBuckets)) {
    clear_window(b);
  } else {
    for (std::int64_t i = 1; i <= steps; ++i) {
      const std::size_t slot =
          static_cast<std::size_t>(b.epoch + i) % kBuckets;
      b.ok[slot] = 0;
      b.fail[slot] = 0;
    }
  }
  b.epoch = epoch;
}

void CircuitBreakerBank::trip(Breaker& b, double now) {
  b.state = State::kOpen;
  ++b.consecutive_trips;
  const double ejection =
      std::min(policy_.ejection_base * static_cast<double>(b.consecutive_trips),
               policy_.max_ejection);
  b.open_until = now + ejection;
  b.probe_successes = 0;
  clear_window(b);
  ++ejections_;
}

bool CircuitBreakerBank::allowed(ServiceId service, ClusterId cluster,
                                 double now) {
  Breaker& b = breakers_[index(service, cluster)];
  if (b.state == State::kOpen) {
    if (now < b.open_until) return false;
    // Ejection elapsed: admit probes.
    b.state = State::kHalfOpen;
    b.probe_successes = 0;
  }
  return true;
}

void CircuitBreakerBank::on_result(ServiceId service, ClusterId cluster,
                                   bool ok, double now) {
  Breaker& b = breakers_[index(service, cluster)];
  // An outcome arriving while open (an in-flight call from before the trip,
  // or one that raced the ejection expiry) flips an expired breaker to
  // half-open first so recovery is not deadlocked on a routing probe.
  if (b.state == State::kOpen) {
    if (now < b.open_until) return;  // stale outcome; window already cleared
    b.state = State::kHalfOpen;
    b.probe_successes = 0;
  }
  if (b.state == State::kHalfOpen) {
    if (!ok) {
      trip(b, now);
      return;
    }
    if (++b.probe_successes >= policy_.half_open_probes) {
      b.state = State::kClosed;
      b.consecutive_trips = 0;
      clear_window(b);
      b.epoch = static_cast<std::int64_t>(std::floor(now / bucket_len_));
    }
    return;
  }
  // Closed: roll the window forward and accumulate.
  advance(b, now);
  const std::size_t slot = static_cast<std::size_t>(b.epoch) % kBuckets;
  if (ok) {
    ++b.ok[slot];
  } else {
    ++b.fail[slot];
  }
  std::uint64_t oks = 0, fails = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    oks += b.ok[i];
    fails += b.fail[i];
  }
  const std::uint64_t volume = oks + fails;
  if (volume >= policy_.min_volume &&
      static_cast<double>(fails) >=
          policy_.failure_ratio * static_cast<double>(volume)) {
    trip(b, now);
  }
}

CircuitBreakerBank::State CircuitBreakerBank::state(ServiceId service,
                                                    ClusterId cluster,
                                                    double now) const {
  const Breaker& b = breakers_[index(service, cluster)];
  if (b.state == State::kOpen && now >= b.open_until) return State::kHalfOpen;
  return b.state;
}

}  // namespace slate
