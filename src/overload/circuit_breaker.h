// Per-(service, destination-cluster) circuit breakers with outlier ejection.
//
// Each breaker watches the rolling failure rate of calls a service receives
// in one destination cluster and trips when the rate crosses a threshold
// over enough volume — the Envoy outlier-detection discipline: an ejected
// cluster is removed from routing candidates for an ejection period that
// grows with consecutive trips, then re-admitted in a half-open probing
// state where a handful of successes close the breaker and a single failure
// re-ejects it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/ids.h"

namespace slate {

struct BreakerPolicy {
  bool enabled = false;
  // Rolling window the failure rate is computed over, seconds.
  double window = 5.0;
  // Minimum calls inside the window before the breaker may trip (low-volume
  // noise immunity).
  std::size_t min_volume = 20;
  // Failure fraction at or above which the breaker trips.
  double failure_ratio = 0.5;
  // First ejection lasts `ejection_base` seconds; consecutive trips grow it
  // linearly (Envoy-style base * n), capped at `max_ejection`.
  double ejection_base = 5.0;
  double max_ejection = 60.0;
  // Successful probes required in half-open state to close the breaker.
  std::size_t half_open_probes = 3;
};

// A bank of breakers indexed by (service, destination cluster). All state
// transitions are driven by the caller's clock (simulation time): `allowed`
// promotes an expired ejection to half-open, `on_result` records outcomes
// and trips/closes breakers. No internal timers — the bank is pure state,
// which keeps it trivially deterministic.
class CircuitBreakerBank {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  CircuitBreakerBank(const BreakerPolicy& policy, std::size_t services,
                     std::size_t clusters);

  // May calls to `service` in `cluster` be attempted at `now`? Open breakers
  // whose ejection elapsed flip to half-open (and return true: probes are
  // how a breaker discovers recovery).
  [[nodiscard]] bool allowed(ServiceId service, ClusterId cluster, double now);

  // Records one attempt outcome and advances the state machine.
  void on_result(ServiceId service, ClusterId cluster, bool ok, double now);

  [[nodiscard]] State state(ServiceId service, ClusterId cluster,
                            double now) const;

  // Total trips (Closed/HalfOpen -> Open transitions) since construction.
  [[nodiscard]] std::uint64_t ejections() const noexcept { return ejections_; }

 private:
  // The rolling window is a ring of kBuckets count pairs; stale buckets are
  // zeroed lazily as time advances past them.
  static constexpr std::size_t kBuckets = 8;

  struct Breaker {
    std::array<std::uint32_t, kBuckets> ok{};
    std::array<std::uint32_t, kBuckets> fail{};
    std::int64_t epoch = 0;  // bucket index of the newest bucket
    State state = State::kClosed;
    double open_until = 0.0;
    std::uint32_t consecutive_trips = 0;
    std::uint32_t probe_successes = 0;
  };

  [[nodiscard]] std::size_t index(ServiceId s, ClusterId c) const noexcept {
    return s.index() * clusters_ + c.index();
  }
  void advance(Breaker& b, double now) const;
  void clear_window(Breaker& b) const;
  void trip(Breaker& b, double now);

  BreakerPolicy policy_;
  std::size_t clusters_;
  double bucket_len_;
  std::vector<Breaker> breakers_;
  std::uint64_t ejections_ = 0;
};

}  // namespace slate
