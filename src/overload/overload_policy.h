// Overload-control configuration: bounded class-aware station queues,
// end-to-end deadline propagation, and circuit breaking (docs/overload.md).
//
// The three mechanisms are independent — each has its own enable gate so a
// scenario can, say, bound queues without deadlines. All of them default to
// off, preserving the fair-weather semantics of a plain run.
#pragma once

#include <cstddef>
#include <vector>

#include "overload/circuit_breaker.h"
#include "util/ids.h"

namespace slate {

// Station admission control: a queue limit with priority shedding plus an
// optional CoDel-style queue-delay shedder.
struct QueuePolicy {
  // Maximum queued (not in-service) jobs per station; 0 = unbounded. A full
  // queue sheds the lowest-priority work: an arriving job outranking a
  // queued one evicts it, otherwise the arrival itself is rejected.
  std::size_t max_queue = 0;
  bool priority_shedding = true;
  // CoDel-style shedder: when the minimum queue delay observed over a
  // `codel_interval` window stays above `codel_target`, new arrivals are
  // shed until the standing queue drains. 0 disables.
  double codel_target = 0.0;
  double codel_interval = 0.1;
  // Shed priority per class id (higher = kept longer); classes beyond the
  // vector default to 0.
  std::vector<int> class_priority;

  [[nodiscard]] bool enabled() const noexcept {
    return max_queue > 0 || codel_target > 0.0;
  }
  [[nodiscard]] int priority_of(ClassId cls) const noexcept {
    return cls.index() < class_priority.size() ? class_priority[cls.index()]
                                               : 0;
  }
};

// End-to-end deadlines. Each request is admitted with a deadline derived
// from its class; the remaining budget propagates down the call tree, and
// with `propagate` on, work whose deadline already expired is cancelled at
// enqueue/dispatch instead of processed. With `propagate` off the deadline
// is carried but ignored by stations — expired work still burns server time,
// which ExperimentResult::wasted_server_seconds makes visible.
struct DeadlinePolicy {
  bool enabled = false;
  double default_deadline = 1.0;  // seconds from arrival
  // Per-class override (<= 0 falls back to default_deadline).
  std::vector<double> per_class;
  bool propagate = true;

  [[nodiscard]] double deadline_for(ClassId cls) const noexcept {
    if (cls.index() < per_class.size() && per_class[cls.index()] > 0.0) {
      return per_class[cls.index()];
    }
    return default_deadline;
  }
};

struct OverloadPolicy {
  QueuePolicy queue;
  DeadlinePolicy deadline;
  BreakerPolicy breaker;

  [[nodiscard]] bool any_enabled() const noexcept {
    return queue.enabled() || deadline.enabled || breaker.enabled;
  }

  // Throws std::invalid_argument on nonsensical knobs (negative durations,
  // out-of-range ratios). `class_count` bounds per-class vectors.
  void validate(std::size_t class_count) const;
};

}  // namespace slate
