#include "overload/overload_policy.h"

#include <stdexcept>

namespace slate {

void OverloadPolicy::validate(std::size_t class_count) const {
  if (queue.codel_target < 0.0) {
    throw std::invalid_argument("QueuePolicy: codel_target must be >= 0");
  }
  if (queue.codel_target > 0.0 && queue.codel_interval <= 0.0) {
    throw std::invalid_argument("QueuePolicy: codel_interval must be > 0");
  }
  if (queue.class_priority.size() > class_count) {
    throw std::invalid_argument("QueuePolicy: class_priority exceeds class count");
  }
  if (deadline.enabled && deadline.default_deadline <= 0.0) {
    throw std::invalid_argument("DeadlinePolicy: default_deadline must be > 0");
  }
  if (deadline.per_class.size() > class_count) {
    throw std::invalid_argument("DeadlinePolicy: per_class exceeds class count");
  }
  if (breaker.enabled) {
    if (breaker.window <= 0.0) {
      throw std::invalid_argument("BreakerPolicy: window must be > 0");
    }
    if (breaker.failure_ratio <= 0.0 || breaker.failure_ratio > 1.0) {
      throw std::invalid_argument("BreakerPolicy: failure_ratio must be in (0, 1]");
    }
    if (breaker.ejection_base <= 0.0 || breaker.max_ejection <= 0.0) {
      throw std::invalid_argument("BreakerPolicy: ejection times must be > 0");
    }
    if (breaker.half_open_probes == 0) {
      throw std::invalid_argument("BreakerPolicy: half_open_probes must be >= 1");
    }
  }
}

}  // namespace slate
