// Builders for the applications used in the paper's evaluation (§4).
#pragma once

#include <cstddef>
#include <cstdint>

#include "app/application.h"

namespace slate {

// "an application composed of three microservices with ingress gateway
// chained linearly", each performing simple file-write work
// (paper §4, used for Fig. 4, 6a, 6b, 6d substrate).
//
// Services: "ingress", "svc-1", ..., "svc-<chain_length>". One traffic class
// "chain" entering at the ingress.
struct LinearChainOptions {
  std::size_t chain_length = 3;
  double ingress_compute_mean = 0.1e-3;   // gateway does almost no work
  double service_compute_mean = 2.0e-3;   // ~500 RPS capacity per server
  std::uint64_t request_bytes = 512;
  std::uint64_t response_bytes = 2048;
};
Application make_linear_chain_app(const LinearChainOptions& options = {});

// The anomaly-detection application of §4.3 / Fig. 5c, 6c:
//   FR (frontend) -> MP (metrics processor) -> DB (metrics store).
// MP pulls a large volume of metrics from DB: the DB->MP response is
// `db_response_factor` times larger than the MP->FR response, which is what
// makes the cross-cluster cut placement matter for egress cost.
struct AnomalyDetectionOptions {
  double fr_compute_mean = 0.5e-3;
  double mp_compute_mean = 4.0e-3;   // anomaly detection is the heavy stage
  double db_compute_mean = 2.0e-3;
  std::uint64_t request_bytes = 512;
  std::uint64_t mp_response_bytes = 100ull * 1024;  // MP -> FR
  double db_response_factor = 10.0;                 // DB -> MP = factor * above
};
Application make_anomaly_detection_app(const AnomalyDetectionOptions& options = {});

// The two-class application of §4.4 / Fig. 5d, 6d: one worker service behind
// an ingress, serving a cheap class L and an expensive class H
// ("H is significantly more expensive than L").
struct TwoClassOptions {
  double ingress_compute_mean = 0.1e-3;
  double light_compute_mean = 1.0e-3;
  double heavy_compute_mean = 10.0e-3;
  std::uint64_t request_bytes = 512;
  std::uint64_t response_bytes = 2048;
};
Application make_two_class_app(const TwoClassOptions& options = {});

// A larger, social-network-style application in the spirit of the paper's
// introduction (tens of services, trees of dependent calls, interleaved
// parallel fan-out, heterogeneous classes):
//
//   read-timeline (GET /timeline):
//     gateway -> timeline -(parallel)-> follow-graph, post-store x2,
//     ad-ranker; timeline -> media (50KB responses, 80% of requests)
//   write-post (POST /post):
//     gateway -> post-store -> notifier; post-store -> media (30%)
//   view-profile (GET /profile):
//     gateway -> user-profile -> follow-graph
//
// Eight services, three classes with very different compute, fan-out, and
// byte-size profiles — a stress case for class-aware routing.
Application make_social_network_app();

// Synthetic tree: the root fans out to `width` children, each of which fans
// out again, `depth` levels deep. Used by scalability tests/benches.
struct FanoutOptions {
  std::size_t width = 2;
  std::size_t depth = 2;
  double compute_mean = 1.0e-3;
  std::uint64_t request_bytes = 512;
  std::uint64_t response_bytes = 1024;
  InvocationMode mode = InvocationMode::kSequential;
};
Application make_fanout_app(const FanoutOptions& options = {});

}  // namespace slate
