#include "app/application.h"

#include <stdexcept>

namespace slate {

ServiceId Application::add_service(std::string name) {
  if (find_service(name).valid()) {
    throw std::invalid_argument("Application: duplicate service name " + name);
  }
  const ServiceId id{services_.size()};
  services_.push_back(std::move(name));
  return id;
}

ClassId Application::add_class(TrafficClassSpec spec) {
  if (spec.graph.empty()) {
    throw std::invalid_argument("Application: class has empty call graph");
  }
  spec.graph.validate();
  const ClassId id{classes_.size()};
  classes_.push_back(std::move(spec));
  return id;
}

const std::string& Application::service_name(ServiceId s) const {
  if (!s.valid() || s.index() >= services_.size()) {
    throw std::out_of_range("Application: bad service id");
  }
  return services_[s.index()];
}

ServiceId Application::find_service(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < services_.size(); ++i) {
    if (services_[i] == name) return ServiceId{i};
  }
  return ServiceId{};
}

const TrafficClassSpec& Application::traffic_class(ClassId k) const {
  if (!k.valid() || k.index() >= classes_.size()) {
    throw std::out_of_range("Application: bad class id");
  }
  return classes_[k.index()];
}

ClassId Application::find_class(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i].name == name) return ClassId{i};
  }
  return ClassId{};
}

std::vector<ServiceId> Application::all_services() const {
  std::vector<ServiceId> out;
  out.reserve(services_.size());
  for (std::size_t i = 0; i < services_.size(); ++i) out.emplace_back(i);
  return out;
}

std::vector<ClassId> Application::all_classes() const {
  std::vector<ClassId> out;
  out.reserve(classes_.size());
  for (std::size_t i = 0; i < classes_.size(); ++i) out.emplace_back(i);
  return out;
}

ServiceId Application::entry_service(ClassId k) const {
  return traffic_class(k).graph.node(0).service;
}

void Application::validate() const {
  for (const auto& spec : classes_) {
    spec.graph.validate();
    for (const auto& node : spec.graph.nodes()) {
      if (!node.service.valid() || node.service.index() >= services_.size()) {
        throw std::logic_error("Application: class '" + spec.name +
                               "' references unknown service");
      }
      if (node.compute_time_mean < 0.0) {
        throw std::logic_error("Application: negative compute time in class '" +
                               spec.name + "'");
      }
    }
  }
}

}  // namespace slate
