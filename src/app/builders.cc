#include "app/builders.h"

#include <stdexcept>

#include "util/strfmt.h"

namespace slate {

Application make_linear_chain_app(const LinearChainOptions& options) {
  if (options.chain_length == 0) {
    throw std::invalid_argument("make_linear_chain_app: chain_length == 0");
  }
  Application app;
  const ServiceId ingress = app.add_service("ingress");
  std::vector<ServiceId> chain;
  chain.reserve(options.chain_length);
  for (std::size_t i = 0; i < options.chain_length; ++i) {
    chain.push_back(app.add_service(strfmt("svc-%zu", i + 1)));
  }

  TrafficClassSpec spec;
  spec.name = "chain";
  spec.attributes.method = "POST";
  spec.attributes.path = "/api/write";
  std::size_t parent = spec.graph.set_root(ingress, options.ingress_compute_mean,
                                           options.request_bytes,
                                           options.response_bytes);
  for (ServiceId s : chain) {
    parent = spec.graph.add_call(parent, s, options.service_compute_mean,
                                 options.request_bytes, options.response_bytes);
  }
  app.add_class(std::move(spec));
  app.validate();
  return app;
}

Application make_anomaly_detection_app(const AnomalyDetectionOptions& options) {
  Application app;
  const ServiceId fr = app.add_service("frontend");
  const ServiceId mp = app.add_service("metrics-processor");
  const ServiceId db = app.add_service("metrics-db");

  TrafficClassSpec spec;
  spec.name = "detect";
  spec.attributes.method = "GET";
  spec.attributes.path = "/api/anomalies";
  const std::size_t root =
      spec.graph.set_root(fr, options.fr_compute_mean, options.request_bytes,
                          static_cast<std::uint64_t>(
                              static_cast<double>(options.mp_response_bytes) * 0.1));
  const std::size_t mp_node =
      spec.graph.add_call(root, mp, options.mp_compute_mean,
                          options.request_bytes, options.mp_response_bytes);
  spec.graph.add_call(
      mp_node, db, options.db_compute_mean, options.request_bytes,
      static_cast<std::uint64_t>(static_cast<double>(options.mp_response_bytes) *
                                 options.db_response_factor));
  app.add_class(std::move(spec));
  app.validate();
  return app;
}

Application make_two_class_app(const TwoClassOptions& options) {
  Application app;
  const ServiceId ingress = app.add_service("ingress");
  const ServiceId worker = app.add_service("worker");

  TrafficClassSpec light;
  light.name = "L";
  light.attributes.method = "GET";
  light.attributes.path = "/api/light";
  {
    const std::size_t root =
        light.graph.set_root(ingress, options.ingress_compute_mean,
                             options.request_bytes, options.response_bytes);
    light.graph.add_call(root, worker, options.light_compute_mean,
                         options.request_bytes, options.response_bytes);
  }
  app.add_class(std::move(light));

  TrafficClassSpec heavy;
  heavy.name = "H";
  heavy.attributes.method = "POST";
  heavy.attributes.path = "/api/heavy";
  {
    const std::size_t root =
        heavy.graph.set_root(ingress, options.ingress_compute_mean,
                             options.request_bytes, options.response_bytes);
    heavy.graph.add_call(root, worker, options.heavy_compute_mean,
                         options.request_bytes, options.response_bytes);
  }
  app.add_class(std::move(heavy));
  app.validate();
  return app;
}

Application make_social_network_app() {
  Application app;
  const ServiceId gateway = app.add_service("gateway");
  const ServiceId timeline = app.add_service("timeline");
  const ServiceId post_store = app.add_service("post-store");
  const ServiceId follow_graph = app.add_service("follow-graph");
  const ServiceId media = app.add_service("media");
  const ServiceId notifier = app.add_service("notifier");
  const ServiceId user_profile = app.add_service("user-profile");
  const ServiceId ad_ranker = app.add_service("ad-ranker");

  {
    TrafficClassSpec read;
    read.name = "read-timeline";
    read.attributes.method = "GET";
    read.attributes.path = "/timeline";
    const std::size_t root = read.graph.set_root(gateway, 0.2e-3, 512, 20 * 1024);
    const std::size_t tl =
        read.graph.add_call(root, timeline, 1.5e-3, 512, 20 * 1024);
    read.graph.set_invocation_mode(tl, InvocationMode::kParallel);
    read.graph.add_call(tl, follow_graph, 0.8e-3, 256, 4 * 1024);
    read.graph.add_call(tl, post_store, 1.0e-3, 256, 8 * 1024, 2.0);
    read.graph.add_call(tl, ad_ranker, 2.0e-3, 512, 2 * 1024);
    read.graph.add_call(tl, media, 0.6e-3, 256, 50 * 1024, 0.8);
    app.add_class(std::move(read));
  }
  {
    TrafficClassSpec write;
    write.name = "write-post";
    write.attributes.method = "POST";
    write.attributes.path = "/post";
    const std::size_t root = write.graph.set_root(gateway, 0.2e-3, 4 * 1024, 512);
    const std::size_t ps =
        write.graph.add_call(root, post_store, 3.0e-3, 4 * 1024, 512);
    write.graph.add_call(ps, media, 2.0e-3, 48 * 1024, 512, 0.3);
    write.graph.add_call(ps, notifier, 0.5e-3, 512, 256);
    app.add_class(std::move(write));
  }
  {
    TrafficClassSpec profile;
    profile.name = "view-profile";
    profile.attributes.method = "GET";
    profile.attributes.path = "/profile";
    const std::size_t root =
        profile.graph.set_root(gateway, 0.2e-3, 256, 6 * 1024);
    const std::size_t up =
        profile.graph.add_call(root, user_profile, 0.7e-3, 256, 6 * 1024);
    profile.graph.add_call(up, follow_graph, 0.8e-3, 256, 4 * 1024);
    app.add_class(std::move(profile));
  }
  app.validate();
  return app;
}

namespace {
void add_fanout_level(Application& app, TrafficClassSpec& spec,
                      std::size_t parent, const FanoutOptions& options,
                      std::size_t level, std::size_t& next_service) {
  if (level == options.depth) return;
  for (std::size_t w = 0; w < options.width; ++w) {
    const ServiceId child{next_service++};
    const std::size_t node =
        spec.graph.add_call(parent, child, options.compute_mean,
                            options.request_bytes, options.response_bytes);
    spec.graph.set_invocation_mode(parent, options.mode);
    add_fanout_level(app, spec, node, options, level + 1, next_service);
  }
}
}  // namespace

Application make_fanout_app(const FanoutOptions& options) {
  Application app;
  // Total services: 1 + width + width^2 + ... + width^depth.
  std::size_t total = 1;
  std::size_t level_size = 1;
  for (std::size_t d = 0; d < options.depth; ++d) {
    level_size *= options.width;
    total += level_size;
  }
  for (std::size_t i = 0; i < total; ++i) {
    app.add_service(strfmt("fan-%zu", i));
  }

  TrafficClassSpec spec;
  spec.name = "fanout";
  spec.attributes.path = "/api/fan";
  spec.graph.set_root(ServiceId{0}, options.compute_mean, options.request_bytes,
                      options.response_bytes);
  std::size_t next_service = 1;
  add_fanout_level(app, spec, 0, options, 0, next_service);
  app.add_class(std::move(spec));
  app.validate();
  return app;
}

}  // namespace slate
