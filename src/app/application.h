// Application model: services + traffic classes.
//
// A traffic class (paper §3.3 "Deriving Classes") is a subset of requests
// with similar resource usage and an identical child call graph. Classes are
// keyed by request attributes — the service being called, the HTTP method,
// and the HTTP path — exactly the heuristic the paper adopts.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "app/call_graph.h"
#include "util/ids.h"

namespace slate {

// The attribute tuple SLATE can observe about a request at the proxy.
// (Headers are available to future classifiers; the default classifier keys
// on service/method/path per the paper.)
struct RequestAttributes {
  std::string method = "GET";
  std::string path = "/";
  std::vector<std::pair<std::string, std::string>> headers;
};

struct TrafficClassSpec {
  std::string name;
  RequestAttributes attributes;
  CallGraph graph;
};

class Application {
 public:
  ServiceId add_service(std::string name);
  ClassId add_class(TrafficClassSpec spec);

  [[nodiscard]] std::size_t service_count() const noexcept { return services_.size(); }
  [[nodiscard]] std::size_t class_count() const noexcept { return classes_.size(); }
  [[nodiscard]] const std::string& service_name(ServiceId s) const;
  [[nodiscard]] ServiceId find_service(std::string_view name) const noexcept;
  [[nodiscard]] const TrafficClassSpec& traffic_class(ClassId k) const;
  [[nodiscard]] ClassId find_class(std::string_view name) const noexcept;
  [[nodiscard]] std::vector<ServiceId> all_services() const;
  [[nodiscard]] std::vector<ClassId> all_classes() const;

  // Entry service of a class = its call graph root's service.
  [[nodiscard]] ServiceId entry_service(ClassId k) const;

  // Throws std::logic_error if any class graph is malformed or references
  // services outside this application.
  void validate() const;

 private:
  std::vector<std::string> services_;
  std::vector<TrafficClassSpec> classes_;
};

}  // namespace slate
