// Per-traffic-class call trees.
//
// Serving one request of a class executes a tree of dependent service calls
// (paper Fig. 1). We index the tree by call node; node 0 is the entry call.
// Every non-root node has exactly one parent, so "call-graph edge e" and
// "call node e" coincide: edge 0 is the virtual ingress edge (workload ->
// entry service), edge i (i > 0) is the call from node i's parent to node i.
// The optimizer's flow variables are defined over these edges.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.h"

namespace slate {

// How a node invokes its children: one after another (latency adds) or all
// at once (latency is the max of the children).
enum class InvocationMode { kSequential, kParallel };

struct CallNode {
  ServiceId service;
  // Mean compute time (seconds) this class spends in this service per call,
  // excluding time blocked on children. Actual draws are exponential.
  double compute_time_mean = 0.0;
  InvocationMode mode = InvocationMode::kSequential;

  // Parent linkage (kInvalid/-1 for the root).
  std::size_t parent = kNoParent;
  std::vector<std::size_t> children;

  // Bytes of the request message sent TO this node and the response sent
  // back from it, i.e. properties of this node's inbound edge.
  std::uint64_t request_bytes = 0;
  std::uint64_t response_bytes = 0;
  // Average number of times the parent invokes this child per one execution
  // of the parent (can be fractional: probabilistic sub-calls).
  double multiplicity = 1.0;

  static constexpr std::size_t kNoParent = ~std::size_t{0};
};

class CallGraph {
 public:
  // Creates the root call. Must be called exactly once, first.
  std::size_t set_root(ServiceId service, double compute_time_mean,
                       std::uint64_t request_bytes, std::uint64_t response_bytes);

  // Adds a child call under `parent`; returns the new node index (== its
  // inbound edge id).
  std::size_t add_call(std::size_t parent, ServiceId service,
                       double compute_time_mean, std::uint64_t request_bytes,
                       std::uint64_t response_bytes, double multiplicity = 1.0);

  void set_invocation_mode(std::size_t node, InvocationMode mode);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }
  [[nodiscard]] const CallNode& node(std::size_t i) const;
  [[nodiscard]] const std::vector<CallNode>& nodes() const noexcept { return nodes_; }

  // Expected number of executions of node i per one root request
  // (product of multiplicities down the path from the root).
  [[nodiscard]] double executions_per_request(std::size_t i) const;

  // All node indices whose call targets `service`.
  [[nodiscard]] std::vector<std::size_t> nodes_for_service(ServiceId service) const;

  // Validates tree shape (single root, acyclic by construction, parents set).
  // Throws std::logic_error on violation.
  void validate() const;

 private:
  std::vector<CallNode> nodes_;
};

}  // namespace slate
