#include "app/call_graph.h"

#include <stdexcept>

namespace slate {

std::size_t CallGraph::set_root(ServiceId service, double compute_time_mean,
                                std::uint64_t request_bytes,
                                std::uint64_t response_bytes) {
  if (!nodes_.empty()) throw std::logic_error("CallGraph: root already set");
  if (!service.valid()) throw std::invalid_argument("CallGraph: invalid service");
  CallNode node;
  node.service = service;
  node.compute_time_mean = compute_time_mean;
  node.request_bytes = request_bytes;
  node.response_bytes = response_bytes;
  node.parent = CallNode::kNoParent;
  nodes_.push_back(node);
  return 0;
}

std::size_t CallGraph::add_call(std::size_t parent, ServiceId service,
                                double compute_time_mean,
                                std::uint64_t request_bytes,
                                std::uint64_t response_bytes,
                                double multiplicity) {
  if (parent >= nodes_.size()) throw std::out_of_range("CallGraph: bad parent");
  if (!service.valid()) throw std::invalid_argument("CallGraph: invalid service");
  if (!(multiplicity > 0.0)) {
    throw std::invalid_argument("CallGraph: multiplicity must be positive");
  }
  CallNode node;
  node.service = service;
  node.compute_time_mean = compute_time_mean;
  node.request_bytes = request_bytes;
  node.response_bytes = response_bytes;
  node.multiplicity = multiplicity;
  node.parent = parent;
  const std::size_t index = nodes_.size();
  nodes_.push_back(node);
  nodes_[parent].children.push_back(index);
  return index;
}

void CallGraph::set_invocation_mode(std::size_t node, InvocationMode mode) {
  if (node >= nodes_.size()) throw std::out_of_range("CallGraph: bad node");
  nodes_[node].mode = mode;
}

const CallNode& CallGraph::node(std::size_t i) const {
  if (i >= nodes_.size()) throw std::out_of_range("CallGraph: bad node");
  return nodes_[i];
}

double CallGraph::executions_per_request(std::size_t i) const {
  if (i >= nodes_.size()) throw std::out_of_range("CallGraph: bad node");
  double product = 1.0;
  for (std::size_t n = i; n != 0; n = nodes_[n].parent) {
    product *= nodes_[n].multiplicity;
  }
  return product;
}

std::vector<std::size_t> CallGraph::nodes_for_service(ServiceId service) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].service == service) out.push_back(i);
  }
  return out;
}

void CallGraph::validate() const {
  if (nodes_.empty()) throw std::logic_error("CallGraph: empty");
  if (nodes_[0].parent != CallNode::kNoParent) {
    throw std::logic_error("CallGraph: node 0 must be the root");
  }
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].parent >= i) {
      // Parents always precede children by construction; anything else means
      // the structure was corrupted.
      throw std::logic_error("CallGraph: parent does not precede child");
    }
  }
}

}  // namespace slate
