#include "admission/admission_policy.h"

#include <stdexcept>

namespace slate {

void AdmissionPolicy::validate(std::size_t class_count) const {
  if (!enabled) return;
  if (default_rate <= 0.0) {
    throw std::invalid_argument("AdmissionPolicy: default_rate must be > 0");
  }
  if (class_rate.size() > class_count) {
    throw std::invalid_argument("AdmissionPolicy: class_rate exceeds class count");
  }
  if (burst <= 0.0) {
    throw std::invalid_argument("AdmissionPolicy: burst must be > 0");
  }
  if (default_slo <= 0.0) {
    throw std::invalid_argument("AdmissionPolicy: default_slo must be > 0");
  }
  if (class_slo.size() > class_count) {
    throw std::invalid_argument("AdmissionPolicy: class_slo exceeds class count");
  }
  if (target_attainment <= 0.0 || target_attainment > 1.0) {
    throw std::invalid_argument(
        "AdmissionPolicy: target_attainment must be in (0, 1]");
  }
  if (gain <= 0.0 || gain >= 1.0) {
    throw std::invalid_argument("AdmissionPolicy: gain must be in (0, 1)");
  }
  if (headroom < 1.0) {
    throw std::invalid_argument("AdmissionPolicy: headroom must be >= 1");
  }
  if (fair_floor < 0.0 || fair_floor > 1.0) {
    throw std::invalid_argument("AdmissionPolicy: fair_floor must be in [0, 1]");
  }
  if (evidence <= 0.0) {
    throw std::invalid_argument("AdmissionPolicy: evidence must be > 0");
  }
  if (min_rate <= 0.0 || max_rate < min_rate) {
    throw std::invalid_argument(
        "AdmissionPolicy: need 0 < min_rate <= max_rate");
  }
}

}  // namespace slate
