#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "admission/admission_policy.h"
#include "util/ids.h"
#include "util/matrix.h"

namespace slate {

// Per-(traffic-class, ingress-cluster) token buckets with a slow
// adaptation loop, Autothrottle-style: the fast data path (try_admit /
// on_outcome) runs at request birth and completion on the ingress
// cluster's island; the slow path (adapt) runs once per control period
// on the global timeline, at window barriers under the sharded engine.
//
// Determinism: the controller draws no RNG anywhere, every cell is
// touched only from its cluster's island between barriers, and a period
// with zero evidence in a cell holds that cell's rate exactly — so the
// subsystem is byte-identical across serial, parallel, and any shard
// count, and armed-but-idle cells never drift.
class AdmissionController {
 public:
  AdmissionController(const AdmissionPolicy& policy, std::size_t class_count,
                      std::size_t cluster_count);

  // Data path, called at request birth. Refills the (cls, ingress)
  // bucket to `now` and spends one token; false means reject (the
  // caller fast-fails the request synchronously).
  bool try_admit(ClassId cls, ClusterId ingress, double now);

  // Data path, called when an admitted request finishes end-to-end.
  void on_outcome(ClassId cls, ClusterId ingress, bool ok, double e2e);

  // Slow path, once per control period. Retunes each cell's rate from
  // observed goodput and SLO attainment, blended by evidence
  // confidence, then applies the max-min fairness floor. When a
  // forecaster is armed, predicted demand pre-widens buckets ahead of a
  // ramp, weighted by forecast confidence (zero confidence is a no-op).
  // `predicted`/`fconfidence` are (class x cluster) or nullptr.
  void adapt(double now, const FlatMatrix<double>* predicted,
             const FlatMatrix<double>* fconfidence);

  [[nodiscard]] double rate(ClassId cls, ClusterId ingress) const noexcept {
    return cells_[cls.index() * cluster_count_ + ingress.index()].rate;
  }
  [[nodiscard]] double slo_for(ClassId cls) const noexcept {
    return slo_by_class_[cls.index()];
  }

  // Adaptation telemetry, whole run.
  [[nodiscard]] std::uint64_t adapt_rounds() const noexcept { return adapt_rounds_; }
  [[nodiscard]] std::uint64_t rate_raises() const noexcept { return rate_raises_; }
  [[nodiscard]] std::uint64_t rate_cuts() const noexcept { return rate_cuts_; }
  [[nodiscard]] std::uint64_t floor_raises() const noexcept { return floor_raises_; }
  [[nodiscard]] std::uint64_t forecast_widenings() const noexcept {
    return forecast_widenings_;
  }

 private:
  struct Cell {
    double rate = 0.0;
    double tokens = 0.0;
    double last_refill = 0.0;
    // Period-scoped evidence, reset by adapt(). `finished` counts both
    // successes and failures of admitted requests; `slo_hits` counts
    // successes that landed inside the class SLO.
    std::uint32_t offered = 0;
    std::uint32_t finished = 0;
    std::uint32_t slo_hits = 0;
  };

  [[nodiscard]] double depth(const Cell& cell) const noexcept;

  AdmissionPolicy policy_;
  std::size_t class_count_;
  std::size_t cluster_count_;
  std::vector<Cell> cells_;
  std::vector<double> slo_by_class_;
  double last_adapt_ = 0.0;

  std::uint64_t adapt_rounds_ = 0;
  std::uint64_t rate_raises_ = 0;
  std::uint64_t rate_cuts_ = 0;
  std::uint64_t floor_raises_ = 0;
  std::uint64_t forecast_widenings_ = 0;
};

}  // namespace slate
