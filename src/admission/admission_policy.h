#pragma once

#include <cstddef>
#include <vector>

#include "util/ids.h"

namespace slate {

// Front-door admission control: per-(traffic-class, ingress-cluster)
// token buckets gating request birth, before any call-tree work is done.
// Everything is off by default; a disabled policy is bit-identical to a
// build without the subsystem.
//
// The data path (try_admit) is a plain token bucket. The slow path is a
// deterministic per-control-period adaptation loop that retunes bucket
// rates from observed goodput, SLO attainment, and a cross-class
// fairness floor (max-min on admitted share), using the same
// confidence-weighted blending idiom as the demand forecaster: with no
// evidence in a period the rate holds exactly.
struct AdmissionPolicy {
  bool enabled = false;

  // Initial bucket refill rate, requests/second, per (class, ingress
  // cluster) cell. Per-class overrides beat the default; entries <= 0
  // fall back to the default.
  double default_rate = 1000.0;
  std::vector<double> class_rate;

  // Bucket depth expressed in seconds of refill: depth = rate * burst
  // (floored at one token so a cell can always admit something).
  double burst = 0.5;

  // Per-class end-to-end latency SLO (seconds). A completion counts as
  // an SLO hit when its e2e latency is <= the class SLO. Entries <= 0
  // fall back to the default.
  double default_slo = 1.0;
  std::vector<double> class_slo;

  // Adaptation loop. `adapt` gates the per-period retuning; with it off
  // the buckets are static. target_attainment is the fraction of
  // completions that must land inside the SLO (0.99 targets p99).
  bool adapt = true;
  double target_attainment = 0.99;
  // Multiplicative step per period when raising/cutting a cell's rate.
  double gain = 0.25;
  // When a cell is attaining its SLO, open the bucket toward
  // offered_rps * headroom rather than exactly the offered rate, so
  // admission is not the bottleneck on a healthy cell.
  double headroom = 1.25;
  // Max-min fairness floor: every class with offered demand is
  // guaranteed an admitted share of at least fair_floor of its offered
  // rate, no matter how hard the loop is cutting it.
  double fair_floor = 0.1;
  // Evidence scale for confidence blending: a period with `evidence`
  // or more offered requests in a cell gets full confidence; fewer
  // scale the step linearly toward "hold the current rate".
  double evidence = 50.0;
  // Absolute clamps on any cell's rate.
  double min_rate = 1.0;
  double max_rate = 1e9;

  [[nodiscard]] double rate_for(ClassId cls) const noexcept {
    const std::size_t k = cls.index();
    if (k < class_rate.size() && class_rate[k] > 0.0) return class_rate[k];
    return default_rate;
  }

  [[nodiscard]] double slo_for(ClassId cls) const noexcept {
    const std::size_t k = cls.index();
    if (k < class_slo.size() && class_slo[k] > 0.0) return class_slo[k];
    return default_slo;
  }

  // Throws std::invalid_argument on nonsensical settings.
  void validate(std::size_t class_count) const;
};

}  // namespace slate
