#include "admission/admission_controller.h"

#include <algorithm>

namespace slate {

AdmissionController::AdmissionController(const AdmissionPolicy& policy,
                                         std::size_t class_count,
                                         std::size_t cluster_count)
    : policy_(policy),
      class_count_(class_count),
      cluster_count_(cluster_count),
      cells_(class_count * cluster_count),
      slo_by_class_(class_count) {
  for (std::size_t k = 0; k < class_count_; ++k) {
    slo_by_class_[k] = policy_.slo_for(ClassId{k});
    const double rate =
        std::clamp(policy_.rate_for(ClassId{k}), policy_.min_rate, policy_.max_rate);
    for (std::size_t c = 0; c < cluster_count_; ++c) {
      Cell& cell = cells_[k * cluster_count_ + c];
      cell.rate = rate;
      cell.tokens = depth(cell);  // Buckets start full.
    }
  }
}

double AdmissionController::depth(const Cell& cell) const noexcept {
  return std::max(1.0, cell.rate * policy_.burst);
}

bool AdmissionController::try_admit(ClassId cls, ClusterId ingress, double now) {
  Cell& cell = cells_[cls.index() * cluster_count_ + ingress.index()];
  if (now > cell.last_refill) {
    cell.tokens = std::min(cell.tokens + cell.rate * (now - cell.last_refill),
                           depth(cell));
    cell.last_refill = now;
  }
  ++cell.offered;
  if (cell.tokens >= 1.0) {
    cell.tokens -= 1.0;
    return true;
  }
  return false;
}

void AdmissionController::on_outcome(ClassId cls, ClusterId ingress, bool ok,
                                     double e2e) {
  Cell& cell = cells_[cls.index() * cluster_count_ + ingress.index()];
  ++cell.finished;
  if (ok && e2e <= slo_by_class_[cls.index()]) ++cell.slo_hits;
}

void AdmissionController::adapt(double now, const FlatMatrix<double>* predicted,
                                const FlatMatrix<double>* fconfidence) {
  const double dt = now - last_adapt_;
  last_adapt_ = now;
  if (dt <= 0.0 || !policy_.adapt) return;
  ++adapt_rounds_;
  for (std::size_t k = 0; k < class_count_; ++k) {
    for (std::size_t c = 0; c < cluster_count_; ++c) {
      Cell& cell = cells_[k * cluster_count_ + c];
      const double offered_rps = static_cast<double>(cell.offered) / dt;
      const double goodput_rps = static_cast<double>(cell.slo_hits) / dt;

      // Pick a target rate from this period's evidence.
      double target = cell.rate;
      if (cell.finished > 0) {
        const double attainment =
            static_cast<double>(cell.slo_hits) / static_cast<double>(cell.finished);
        if (attainment >= policy_.target_attainment) {
          // Healthy: track offered demand with headroom so admission is
          // not the bottleneck, stepping at most `gain` per period.
          const double want = offered_rps * policy_.headroom;
          target = want > cell.rate
                       ? std::min(want, cell.rate * (1.0 + policy_.gain))
                       : std::max(want, cell.rate * (1.0 - policy_.gain));
        } else {
          // Missing the SLO: cut proportionally to how far attainment
          // fell short, but never below the goodput we actually
          // observed — that work was worth admitting.
          const double severity =
              (policy_.target_attainment - attainment) / policy_.target_attainment;
          target = std::max(cell.rate * (1.0 - policy_.gain * severity),
                            goodput_rps);
        }
      }

      // Confidence-weighted blending, same idiom as the demand
      // forecaster: thin evidence moves the rate only a little, zero
      // evidence holds it exactly.
      const double conf =
          std::min(1.0, static_cast<double>(cell.offered) / policy_.evidence);
      double next = cell.rate + conf * (target - cell.rate);

      // Max-min fairness floor: every class keeps an admitted share of
      // at least fair_floor of its offered rate.
      const double floor = offered_rps * policy_.fair_floor;
      if (next < floor) {
        next = floor;
        ++floor_raises_;
      }

      // Forecast pre-widening: open the bucket ahead of a predicted
      // ramp, weighted by forecast confidence. Zero confidence (or no
      // forecaster) leaves the reactive rate untouched.
      if (predicted != nullptr && fconfidence != nullptr &&
          k < predicted->rows() && c < predicted->cols()) {
        const double widen =
            (*fconfidence)(k, c) * (*predicted)(k, c) * policy_.headroom;
        if (widen > next) {
          next = widen;
          ++forecast_widenings_;
        }
      }

      next = std::clamp(next, policy_.min_rate, policy_.max_rate);
      if (next > cell.rate) {
        ++rate_raises_;
      } else if (next < cell.rate) {
        ++rate_cuts_;
      }
      cell.rate = next;
      cell.offered = 0;
      cell.finished = 0;
      cell.slo_hits = 0;
    }
  }
}

}  // namespace slate
