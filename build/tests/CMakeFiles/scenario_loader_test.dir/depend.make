# Empty dependencies file for scenario_loader_test.
# This may be replaced when dependencies are built.
