file(REMOVE_RECURSE
  "CMakeFiles/scenario_loader_test.dir/scenario_loader_test.cc.o"
  "CMakeFiles/scenario_loader_test.dir/scenario_loader_test.cc.o.d"
  "scenario_loader_test"
  "scenario_loader_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
