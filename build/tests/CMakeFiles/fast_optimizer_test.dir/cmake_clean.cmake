file(REMOVE_RECURSE
  "CMakeFiles/fast_optimizer_test.dir/fast_optimizer_test.cc.o"
  "CMakeFiles/fast_optimizer_test.dir/fast_optimizer_test.cc.o.d"
  "fast_optimizer_test"
  "fast_optimizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
