# Empty compiler generated dependencies file for graph_inference_test.
# This may be replaced when dependencies are built.
