file(REMOVE_RECURSE
  "CMakeFiles/graph_inference_test.dir/graph_inference_test.cc.o"
  "CMakeFiles/graph_inference_test.dir/graph_inference_test.cc.o.d"
  "graph_inference_test"
  "graph_inference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
