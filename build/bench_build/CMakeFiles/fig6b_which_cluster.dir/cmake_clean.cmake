file(REMOVE_RECURSE
  "../bench/fig6b_which_cluster"
  "../bench/fig6b_which_cluster.pdb"
  "CMakeFiles/fig6b_which_cluster.dir/fig6b_which_cluster.cc.o"
  "CMakeFiles/fig6b_which_cluster.dir/fig6b_which_cluster.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_which_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
