# Empty dependencies file for fig6b_which_cluster.
# This may be replaced when dependencies are built.
