file(REMOVE_RECURSE
  "../bench/micro_optimizer_scaling"
  "../bench/micro_optimizer_scaling.pdb"
  "CMakeFiles/micro_optimizer_scaling.dir/micro_optimizer_scaling.cc.o"
  "CMakeFiles/micro_optimizer_scaling.dir/micro_optimizer_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_optimizer_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
