# Empty compiler generated dependencies file for micro_optimizer_scaling.
# This may be replaced when dependencies are built.
