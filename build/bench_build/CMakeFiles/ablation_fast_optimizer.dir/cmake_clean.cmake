file(REMOVE_RECURSE
  "../bench/ablation_fast_optimizer"
  "../bench/ablation_fast_optimizer.pdb"
  "CMakeFiles/ablation_fast_optimizer.dir/ablation_fast_optimizer.cc.o"
  "CMakeFiles/ablation_fast_optimizer.dir/ablation_fast_optimizer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fast_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
