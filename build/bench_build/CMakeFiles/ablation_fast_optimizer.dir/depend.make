# Empty dependencies file for ablation_fast_optimizer.
# This may be replaced when dependencies are built.
