# Empty compiler generated dependencies file for fig6d_traffic_classes.
# This may be replaced when dependencies are built.
