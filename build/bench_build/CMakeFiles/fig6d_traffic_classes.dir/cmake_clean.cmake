file(REMOVE_RECURSE
  "../bench/fig6d_traffic_classes"
  "../bench/fig6d_traffic_classes.pdb"
  "CMakeFiles/fig6d_traffic_classes.dir/fig6d_traffic_classes.cc.o"
  "CMakeFiles/fig6d_traffic_classes.dir/fig6d_traffic_classes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6d_traffic_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
