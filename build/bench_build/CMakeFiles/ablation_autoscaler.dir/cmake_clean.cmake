file(REMOVE_RECURSE
  "../bench/ablation_autoscaler"
  "../bench/ablation_autoscaler.pdb"
  "CMakeFiles/ablation_autoscaler.dir/ablation_autoscaler.cc.o"
  "CMakeFiles/ablation_autoscaler.dir/ablation_autoscaler.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_autoscaler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
