# Empty dependencies file for ext_social_network.
# This may be replaced when dependencies are built.
