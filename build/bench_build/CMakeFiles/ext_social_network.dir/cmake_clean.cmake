file(REMOVE_RECURSE
  "../bench/ext_social_network"
  "../bench/ext_social_network.pdb"
  "CMakeFiles/ext_social_network.dir/ext_social_network.cc.o"
  "CMakeFiles/ext_social_network.dir/ext_social_network.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_social_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
