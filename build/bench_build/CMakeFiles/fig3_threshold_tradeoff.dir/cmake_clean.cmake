file(REMOVE_RECURSE
  "../bench/fig3_threshold_tradeoff"
  "../bench/fig3_threshold_tradeoff.pdb"
  "CMakeFiles/fig3_threshold_tradeoff.dir/fig3_threshold_tradeoff.cc.o"
  "CMakeFiles/fig3_threshold_tradeoff.dir/fig3_threshold_tradeoff.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_threshold_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
