# Empty dependencies file for fig6a_how_much.
# This may be replaced when dependencies are built.
