file(REMOVE_RECURSE
  "../bench/fig6a_how_much"
  "../bench/fig6a_how_much.pdb"
  "CMakeFiles/fig6a_how_much.dir/fig6a_how_much.cc.o"
  "CMakeFiles/fig6a_how_much.dir/fig6a_how_much.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_how_much.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
