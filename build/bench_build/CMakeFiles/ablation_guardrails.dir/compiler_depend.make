# Empty compiler generated dependencies file for ablation_guardrails.
# This may be replaced when dependencies are built.
