file(REMOVE_RECURSE
  "../bench/ablation_guardrails"
  "../bench/ablation_guardrails.pdb"
  "CMakeFiles/ablation_guardrails.dir/ablation_guardrails.cc.o"
  "CMakeFiles/ablation_guardrails.dir/ablation_guardrails.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_guardrails.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
