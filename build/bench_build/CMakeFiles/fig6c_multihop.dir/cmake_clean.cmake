file(REMOVE_RECURSE
  "../bench/fig6c_multihop"
  "../bench/fig6c_multihop.pdb"
  "CMakeFiles/fig6c_multihop.dir/fig6c_multihop.cc.o"
  "CMakeFiles/fig6c_multihop.dir/fig6c_multihop.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_multihop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
