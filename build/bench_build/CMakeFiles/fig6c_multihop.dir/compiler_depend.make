# Empty compiler generated dependencies file for fig6c_multihop.
# This may be replaced when dependencies are built.
