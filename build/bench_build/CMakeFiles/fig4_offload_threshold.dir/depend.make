# Empty dependencies file for fig4_offload_threshold.
# This may be replaced when dependencies are built.
