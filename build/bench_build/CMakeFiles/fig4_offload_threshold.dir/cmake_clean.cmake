file(REMOVE_RECURSE
  "../bench/fig4_offload_threshold"
  "../bench/fig4_offload_threshold.pdb"
  "CMakeFiles/fig4_offload_threshold.dir/fig4_offload_threshold.cc.o"
  "CMakeFiles/fig4_offload_threshold.dir/fig4_offload_threshold.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_offload_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
