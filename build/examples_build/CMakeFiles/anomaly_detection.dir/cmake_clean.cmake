file(REMOVE_RECURSE
  "../examples/anomaly_detection"
  "../examples/anomaly_detection.pdb"
  "CMakeFiles/anomaly_detection.dir/anomaly_detection.cc.o"
  "CMakeFiles/anomaly_detection.dir/anomaly_detection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anomaly_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
