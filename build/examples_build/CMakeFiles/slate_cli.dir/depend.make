# Empty dependencies file for slate_cli.
# This may be replaced when dependencies are built.
