file(REMOVE_RECURSE
  "../examples/slate_cli"
  "../examples/slate_cli.pdb"
  "CMakeFiles/slate_cli.dir/slate_cli.cc.o"
  "CMakeFiles/slate_cli.dir/slate_cli.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slate_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
