
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cc" "examples_build/CMakeFiles/quickstart.dir/quickstart.cc.o" "gcc" "examples_build/CMakeFiles/quickstart.dir/quickstart.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/slate_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
