# Empty compiler generated dependencies file for traffic_classes.
# This may be replaced when dependencies are built.
