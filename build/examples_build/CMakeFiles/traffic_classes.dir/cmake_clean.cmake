file(REMOVE_RECURSE
  "../examples/traffic_classes"
  "../examples/traffic_classes.pdb"
  "CMakeFiles/traffic_classes.dir/traffic_classes.cc.o"
  "CMakeFiles/traffic_classes.dir/traffic_classes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
