file(REMOVE_RECURSE
  "../examples/gcp_multicluster"
  "../examples/gcp_multicluster.pdb"
  "CMakeFiles/gcp_multicluster.dir/gcp_multicluster.cc.o"
  "CMakeFiles/gcp_multicluster.dir/gcp_multicluster.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcp_multicluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
