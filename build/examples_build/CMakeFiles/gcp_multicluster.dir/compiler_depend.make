# Empty compiler generated dependencies file for gcp_multicluster.
# This may be replaced when dependencies are built.
