# Empty dependencies file for trace_inference.
# This may be replaced when dependencies are built.
