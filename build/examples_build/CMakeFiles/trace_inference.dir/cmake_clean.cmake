file(REMOVE_RECURSE
  "../examples/trace_inference"
  "../examples/trace_inference.pdb"
  "CMakeFiles/trace_inference.dir/trace_inference.cc.o"
  "CMakeFiles/trace_inference.dir/trace_inference.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
