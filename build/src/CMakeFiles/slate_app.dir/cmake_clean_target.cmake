file(REMOVE_RECURSE
  "libslate_app.a"
)
