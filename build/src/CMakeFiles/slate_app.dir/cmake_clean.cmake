file(REMOVE_RECURSE
  "CMakeFiles/slate_app.dir/app/application.cc.o"
  "CMakeFiles/slate_app.dir/app/application.cc.o.d"
  "CMakeFiles/slate_app.dir/app/builders.cc.o"
  "CMakeFiles/slate_app.dir/app/builders.cc.o.d"
  "CMakeFiles/slate_app.dir/app/call_graph.cc.o"
  "CMakeFiles/slate_app.dir/app/call_graph.cc.o.d"
  "libslate_app.a"
  "libslate_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slate_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
