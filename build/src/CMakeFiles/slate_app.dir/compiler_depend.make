# Empty compiler generated dependencies file for slate_app.
# This may be replaced when dependencies are built.
