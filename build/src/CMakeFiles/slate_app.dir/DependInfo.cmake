
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/application.cc" "src/CMakeFiles/slate_app.dir/app/application.cc.o" "gcc" "src/CMakeFiles/slate_app.dir/app/application.cc.o.d"
  "/root/repo/src/app/builders.cc" "src/CMakeFiles/slate_app.dir/app/builders.cc.o" "gcc" "src/CMakeFiles/slate_app.dir/app/builders.cc.o.d"
  "/root/repo/src/app/call_graph.cc" "src/CMakeFiles/slate_app.dir/app/call_graph.cc.o" "gcc" "src/CMakeFiles/slate_app.dir/app/call_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/slate_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
