
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/autoscaler.cc" "src/CMakeFiles/slate_cluster.dir/cluster/autoscaler.cc.o" "gcc" "src/CMakeFiles/slate_cluster.dir/cluster/autoscaler.cc.o.d"
  "/root/repo/src/cluster/deployment.cc" "src/CMakeFiles/slate_cluster.dir/cluster/deployment.cc.o" "gcc" "src/CMakeFiles/slate_cluster.dir/cluster/deployment.cc.o.d"
  "/root/repo/src/cluster/service_station.cc" "src/CMakeFiles/slate_cluster.dir/cluster/service_station.cc.o" "gcc" "src/CMakeFiles/slate_cluster.dir/cluster/service_station.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/slate_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
