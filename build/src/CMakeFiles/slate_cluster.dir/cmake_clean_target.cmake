file(REMOVE_RECURSE
  "libslate_cluster.a"
)
