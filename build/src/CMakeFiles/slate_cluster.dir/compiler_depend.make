# Empty compiler generated dependencies file for slate_cluster.
# This may be replaced when dependencies are built.
