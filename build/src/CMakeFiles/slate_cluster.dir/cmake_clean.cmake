file(REMOVE_RECURSE
  "CMakeFiles/slate_cluster.dir/cluster/autoscaler.cc.o"
  "CMakeFiles/slate_cluster.dir/cluster/autoscaler.cc.o.d"
  "CMakeFiles/slate_cluster.dir/cluster/deployment.cc.o"
  "CMakeFiles/slate_cluster.dir/cluster/deployment.cc.o.d"
  "CMakeFiles/slate_cluster.dir/cluster/service_station.cc.o"
  "CMakeFiles/slate_cluster.dir/cluster/service_station.cc.o.d"
  "libslate_cluster.a"
  "libslate_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slate_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
