# Empty dependencies file for slate_util.
# This may be replaced when dependencies are built.
