file(REMOVE_RECURSE
  "CMakeFiles/slate_util.dir/util/histogram.cc.o"
  "CMakeFiles/slate_util.dir/util/histogram.cc.o.d"
  "CMakeFiles/slate_util.dir/util/logging.cc.o"
  "CMakeFiles/slate_util.dir/util/logging.cc.o.d"
  "CMakeFiles/slate_util.dir/util/rng.cc.o"
  "CMakeFiles/slate_util.dir/util/rng.cc.o.d"
  "CMakeFiles/slate_util.dir/util/stats.cc.o"
  "CMakeFiles/slate_util.dir/util/stats.cc.o.d"
  "libslate_util.a"
  "libslate_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slate_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
