file(REMOVE_RECURSE
  "libslate_util.a"
)
