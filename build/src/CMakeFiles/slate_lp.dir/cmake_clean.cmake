file(REMOVE_RECURSE
  "CMakeFiles/slate_lp.dir/lp/branch_and_bound.cc.o"
  "CMakeFiles/slate_lp.dir/lp/branch_and_bound.cc.o.d"
  "CMakeFiles/slate_lp.dir/lp/model.cc.o"
  "CMakeFiles/slate_lp.dir/lp/model.cc.o.d"
  "CMakeFiles/slate_lp.dir/lp/piecewise.cc.o"
  "CMakeFiles/slate_lp.dir/lp/piecewise.cc.o.d"
  "CMakeFiles/slate_lp.dir/lp/simplex.cc.o"
  "CMakeFiles/slate_lp.dir/lp/simplex.cc.o.d"
  "libslate_lp.a"
  "libslate_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slate_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
