# Empty dependencies file for slate_lp.
# This may be replaced when dependencies are built.
