file(REMOVE_RECURSE
  "libslate_lp.a"
)
