file(REMOVE_RECURSE
  "libslate_sim.a"
)
