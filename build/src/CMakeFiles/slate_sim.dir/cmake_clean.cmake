file(REMOVE_RECURSE
  "CMakeFiles/slate_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/slate_sim.dir/sim/simulator.cc.o.d"
  "libslate_sim.a"
  "libslate_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slate_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
