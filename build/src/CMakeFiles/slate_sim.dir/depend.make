# Empty dependencies file for slate_sim.
# This may be replaced when dependencies are built.
