file(REMOVE_RECURSE
  "libslate_core.a"
)
