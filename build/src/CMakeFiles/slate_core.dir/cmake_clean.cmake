file(REMOVE_RECURSE
  "CMakeFiles/slate_core.dir/core/cluster_controller.cc.o"
  "CMakeFiles/slate_core.dir/core/cluster_controller.cc.o.d"
  "CMakeFiles/slate_core.dir/core/fast_optimizer.cc.o"
  "CMakeFiles/slate_core.dir/core/fast_optimizer.cc.o.d"
  "CMakeFiles/slate_core.dir/core/global_controller.cc.o"
  "CMakeFiles/slate_core.dir/core/global_controller.cc.o.d"
  "CMakeFiles/slate_core.dir/core/latency_model.cc.o"
  "CMakeFiles/slate_core.dir/core/latency_model.cc.o.d"
  "CMakeFiles/slate_core.dir/core/model_fitter.cc.o"
  "CMakeFiles/slate_core.dir/core/model_fitter.cc.o.d"
  "CMakeFiles/slate_core.dir/core/optimizer.cc.o"
  "CMakeFiles/slate_core.dir/core/optimizer.cc.o.d"
  "CMakeFiles/slate_core.dir/core/routing_rules.cc.o"
  "CMakeFiles/slate_core.dir/core/routing_rules.cc.o.d"
  "CMakeFiles/slate_core.dir/core/slate_proxy.cc.o"
  "CMakeFiles/slate_core.dir/core/slate_proxy.cc.o.d"
  "CMakeFiles/slate_core.dir/core/traffic_classifier.cc.o"
  "CMakeFiles/slate_core.dir/core/traffic_classifier.cc.o.d"
  "libslate_core.a"
  "libslate_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slate_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
