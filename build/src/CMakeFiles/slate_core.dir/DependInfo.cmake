
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster_controller.cc" "src/CMakeFiles/slate_core.dir/core/cluster_controller.cc.o" "gcc" "src/CMakeFiles/slate_core.dir/core/cluster_controller.cc.o.d"
  "/root/repo/src/core/fast_optimizer.cc" "src/CMakeFiles/slate_core.dir/core/fast_optimizer.cc.o" "gcc" "src/CMakeFiles/slate_core.dir/core/fast_optimizer.cc.o.d"
  "/root/repo/src/core/global_controller.cc" "src/CMakeFiles/slate_core.dir/core/global_controller.cc.o" "gcc" "src/CMakeFiles/slate_core.dir/core/global_controller.cc.o.d"
  "/root/repo/src/core/latency_model.cc" "src/CMakeFiles/slate_core.dir/core/latency_model.cc.o" "gcc" "src/CMakeFiles/slate_core.dir/core/latency_model.cc.o.d"
  "/root/repo/src/core/model_fitter.cc" "src/CMakeFiles/slate_core.dir/core/model_fitter.cc.o" "gcc" "src/CMakeFiles/slate_core.dir/core/model_fitter.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/CMakeFiles/slate_core.dir/core/optimizer.cc.o" "gcc" "src/CMakeFiles/slate_core.dir/core/optimizer.cc.o.d"
  "/root/repo/src/core/routing_rules.cc" "src/CMakeFiles/slate_core.dir/core/routing_rules.cc.o" "gcc" "src/CMakeFiles/slate_core.dir/core/routing_rules.cc.o.d"
  "/root/repo/src/core/slate_proxy.cc" "src/CMakeFiles/slate_core.dir/core/slate_proxy.cc.o" "gcc" "src/CMakeFiles/slate_core.dir/core/slate_proxy.cc.o.d"
  "/root/repo/src/core/traffic_classifier.cc" "src/CMakeFiles/slate_core.dir/core/traffic_classifier.cc.o" "gcc" "src/CMakeFiles/slate_core.dir/core/traffic_classifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/slate_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
