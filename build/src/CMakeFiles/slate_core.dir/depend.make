# Empty dependencies file for slate_core.
# This may be replaced when dependencies are built.
