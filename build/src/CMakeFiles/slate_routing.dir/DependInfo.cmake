
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/local_only.cc" "src/CMakeFiles/slate_routing.dir/routing/local_only.cc.o" "gcc" "src/CMakeFiles/slate_routing.dir/routing/local_only.cc.o.d"
  "/root/repo/src/routing/locality_failover.cc" "src/CMakeFiles/slate_routing.dir/routing/locality_failover.cc.o" "gcc" "src/CMakeFiles/slate_routing.dir/routing/locality_failover.cc.o.d"
  "/root/repo/src/routing/policy.cc" "src/CMakeFiles/slate_routing.dir/routing/policy.cc.o" "gcc" "src/CMakeFiles/slate_routing.dir/routing/policy.cc.o.d"
  "/root/repo/src/routing/round_robin.cc" "src/CMakeFiles/slate_routing.dir/routing/round_robin.cc.o" "gcc" "src/CMakeFiles/slate_routing.dir/routing/round_robin.cc.o.d"
  "/root/repo/src/routing/static_weights.cc" "src/CMakeFiles/slate_routing.dir/routing/static_weights.cc.o" "gcc" "src/CMakeFiles/slate_routing.dir/routing/static_weights.cc.o.d"
  "/root/repo/src/routing/waterfall.cc" "src/CMakeFiles/slate_routing.dir/routing/waterfall.cc.o" "gcc" "src/CMakeFiles/slate_routing.dir/routing/waterfall.cc.o.d"
  "/root/repo/src/routing/weighted_rules.cc" "src/CMakeFiles/slate_routing.dir/routing/weighted_rules.cc.o" "gcc" "src/CMakeFiles/slate_routing.dir/routing/weighted_rules.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/slate_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
