# Empty dependencies file for slate_routing.
# This may be replaced when dependencies are built.
