file(REMOVE_RECURSE
  "libslate_routing.a"
)
