file(REMOVE_RECURSE
  "CMakeFiles/slate_routing.dir/routing/local_only.cc.o"
  "CMakeFiles/slate_routing.dir/routing/local_only.cc.o.d"
  "CMakeFiles/slate_routing.dir/routing/locality_failover.cc.o"
  "CMakeFiles/slate_routing.dir/routing/locality_failover.cc.o.d"
  "CMakeFiles/slate_routing.dir/routing/policy.cc.o"
  "CMakeFiles/slate_routing.dir/routing/policy.cc.o.d"
  "CMakeFiles/slate_routing.dir/routing/round_robin.cc.o"
  "CMakeFiles/slate_routing.dir/routing/round_robin.cc.o.d"
  "CMakeFiles/slate_routing.dir/routing/static_weights.cc.o"
  "CMakeFiles/slate_routing.dir/routing/static_weights.cc.o.d"
  "CMakeFiles/slate_routing.dir/routing/waterfall.cc.o"
  "CMakeFiles/slate_routing.dir/routing/waterfall.cc.o.d"
  "CMakeFiles/slate_routing.dir/routing/weighted_rules.cc.o"
  "CMakeFiles/slate_routing.dir/routing/weighted_rules.cc.o.d"
  "libslate_routing.a"
  "libslate_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slate_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
