# Empty compiler generated dependencies file for slate_net.
# This may be replaced when dependencies are built.
