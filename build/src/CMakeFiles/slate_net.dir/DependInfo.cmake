
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/egress_meter.cc" "src/CMakeFiles/slate_net.dir/net/egress_meter.cc.o" "gcc" "src/CMakeFiles/slate_net.dir/net/egress_meter.cc.o.d"
  "/root/repo/src/net/gcp_topology.cc" "src/CMakeFiles/slate_net.dir/net/gcp_topology.cc.o" "gcc" "src/CMakeFiles/slate_net.dir/net/gcp_topology.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/CMakeFiles/slate_net.dir/net/topology.cc.o" "gcc" "src/CMakeFiles/slate_net.dir/net/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/slate_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
