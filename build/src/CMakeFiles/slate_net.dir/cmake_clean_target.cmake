file(REMOVE_RECURSE
  "libslate_net.a"
)
