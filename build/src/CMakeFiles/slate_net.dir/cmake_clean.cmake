file(REMOVE_RECURSE
  "CMakeFiles/slate_net.dir/net/egress_meter.cc.o"
  "CMakeFiles/slate_net.dir/net/egress_meter.cc.o.d"
  "CMakeFiles/slate_net.dir/net/gcp_topology.cc.o"
  "CMakeFiles/slate_net.dir/net/gcp_topology.cc.o.d"
  "CMakeFiles/slate_net.dir/net/topology.cc.o"
  "CMakeFiles/slate_net.dir/net/topology.cc.o.d"
  "libslate_net.a"
  "libslate_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slate_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
