# Empty compiler generated dependencies file for slate_telemetry.
# This may be replaced when dependencies are built.
