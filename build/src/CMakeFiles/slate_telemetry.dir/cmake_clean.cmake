file(REMOVE_RECURSE
  "CMakeFiles/slate_telemetry.dir/telemetry/cluster_report.cc.o"
  "CMakeFiles/slate_telemetry.dir/telemetry/cluster_report.cc.o.d"
  "CMakeFiles/slate_telemetry.dir/telemetry/graph_inference.cc.o"
  "CMakeFiles/slate_telemetry.dir/telemetry/graph_inference.cc.o.d"
  "CMakeFiles/slate_telemetry.dir/telemetry/metrics.cc.o"
  "CMakeFiles/slate_telemetry.dir/telemetry/metrics.cc.o.d"
  "CMakeFiles/slate_telemetry.dir/telemetry/sample_store.cc.o"
  "CMakeFiles/slate_telemetry.dir/telemetry/sample_store.cc.o.d"
  "CMakeFiles/slate_telemetry.dir/telemetry/span.cc.o"
  "CMakeFiles/slate_telemetry.dir/telemetry/span.cc.o.d"
  "libslate_telemetry.a"
  "libslate_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slate_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
