file(REMOVE_RECURSE
  "libslate_telemetry.a"
)
