
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/cluster_report.cc" "src/CMakeFiles/slate_telemetry.dir/telemetry/cluster_report.cc.o" "gcc" "src/CMakeFiles/slate_telemetry.dir/telemetry/cluster_report.cc.o.d"
  "/root/repo/src/telemetry/graph_inference.cc" "src/CMakeFiles/slate_telemetry.dir/telemetry/graph_inference.cc.o" "gcc" "src/CMakeFiles/slate_telemetry.dir/telemetry/graph_inference.cc.o.d"
  "/root/repo/src/telemetry/metrics.cc" "src/CMakeFiles/slate_telemetry.dir/telemetry/metrics.cc.o" "gcc" "src/CMakeFiles/slate_telemetry.dir/telemetry/metrics.cc.o.d"
  "/root/repo/src/telemetry/sample_store.cc" "src/CMakeFiles/slate_telemetry.dir/telemetry/sample_store.cc.o" "gcc" "src/CMakeFiles/slate_telemetry.dir/telemetry/sample_store.cc.o.d"
  "/root/repo/src/telemetry/span.cc" "src/CMakeFiles/slate_telemetry.dir/telemetry/span.cc.o" "gcc" "src/CMakeFiles/slate_telemetry.dir/telemetry/span.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/slate_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
