file(REMOVE_RECURSE
  "libslate_workload.a"
)
