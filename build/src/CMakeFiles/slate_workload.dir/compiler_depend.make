# Empty compiler generated dependencies file for slate_workload.
# This may be replaced when dependencies are built.
