file(REMOVE_RECURSE
  "CMakeFiles/slate_workload.dir/workload/arrival.cc.o"
  "CMakeFiles/slate_workload.dir/workload/arrival.cc.o.d"
  "CMakeFiles/slate_workload.dir/workload/demand.cc.o"
  "CMakeFiles/slate_workload.dir/workload/demand.cc.o.d"
  "libslate_workload.a"
  "libslate_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slate_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
