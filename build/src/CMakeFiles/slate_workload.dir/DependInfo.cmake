
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrival.cc" "src/CMakeFiles/slate_workload.dir/workload/arrival.cc.o" "gcc" "src/CMakeFiles/slate_workload.dir/workload/arrival.cc.o.d"
  "/root/repo/src/workload/demand.cc" "src/CMakeFiles/slate_workload.dir/workload/demand.cc.o" "gcc" "src/CMakeFiles/slate_workload.dir/workload/demand.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/slate_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slate_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
