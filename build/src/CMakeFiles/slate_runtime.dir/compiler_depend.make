# Empty compiler generated dependencies file for slate_runtime.
# This may be replaced when dependencies are built.
