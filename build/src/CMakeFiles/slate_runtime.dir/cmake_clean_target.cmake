file(REMOVE_RECURSE
  "libslate_runtime.a"
)
