file(REMOVE_RECURSE
  "CMakeFiles/slate_runtime.dir/runtime/experiment.cc.o"
  "CMakeFiles/slate_runtime.dir/runtime/experiment.cc.o.d"
  "CMakeFiles/slate_runtime.dir/runtime/scenario_loader.cc.o"
  "CMakeFiles/slate_runtime.dir/runtime/scenario_loader.cc.o.d"
  "CMakeFiles/slate_runtime.dir/runtime/scenarios.cc.o"
  "CMakeFiles/slate_runtime.dir/runtime/scenarios.cc.o.d"
  "CMakeFiles/slate_runtime.dir/runtime/simulation.cc.o"
  "CMakeFiles/slate_runtime.dir/runtime/simulation.cc.o.d"
  "libslate_runtime.a"
  "libslate_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slate_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
