// Bi-level autoscaling x TE co-design tests (docs/autoscaling.md):
// server-price plumbing, server-hours accounting, the `bilevel`/`price`
// scenario directives, the disabled-is-inert guarantees, and the headline
// result bench/ext_bilevel is built around — co-design strictly beats the
// open-loop arm on total dollars at equal-or-better goodput and SLO
// attainment.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

#include "cluster/service_station.h"
#include "runtime/scenario_loader.h"
#include "runtime/scenarios.h"
#include "runtime/simulation.h"
#include "workload/generators.h"

namespace slate {
namespace {

// --- Server pricing plumbing -----------------------------------------------

TEST(ServerPrice, DefaultsToZeroAndSetsPerCluster) {
  Topology topology(3);
  EXPECT_DOUBLE_EQ(topology.server_price_per_hour(ClusterId{1}), 0.0);
  topology.set_server_price(ClusterId{1}, 0.12);
  EXPECT_DOUBLE_EQ(topology.server_price_per_hour(ClusterId{1}), 0.12);
  EXPECT_DOUBLE_EQ(topology.server_price_per_hour(ClusterId{0}), 0.0);
  topology.set_uniform_server_price(0.05);
  EXPECT_DOUBLE_EQ(topology.server_price_per_hour(ClusterId{0}), 0.05);
  EXPECT_DOUBLE_EQ(topology.server_price_per_hour(ClusterId{2}), 0.05);
  EXPECT_THROW(topology.set_server_price(ClusterId{0}, -0.01),
               std::invalid_argument);
  EXPECT_THROW(topology.set_uniform_server_price(-1.0), std::invalid_argument);
}

TEST(ServerPrice, LifetimeServerSecondsIntegratesFleetChanges) {
  Simulator sim;
  Rng rng(7);
  ServiceStation st(sim, rng.fork(0), ServiceId{0}, ClusterId{0}, 4);
  sim.schedule_at(10.0, [&] { st.set_servers(2); });
  sim.schedule_at(15.0, [&] { st.set_servers(6); });
  sim.run_until(20.0);
  // 4 servers for 10s, 2 for 5s, 6 for 5s.
  EXPECT_DOUBLE_EQ(st.lifetime_server_seconds(), 4 * 10.0 + 2 * 5.0 + 6 * 5.0);
}

// --- Scenario directives ---------------------------------------------------

constexpr const char* kPricedScenario = R"(
scenario priced

cluster west
cluster east
rtt west east 25ms
egress_price 0.08
price west 0.15
price east 0.04

service ingress
service worker

class api GET /api/v1
call api root ingress compute=0.1ms req=512B resp=2KB
call api ingress worker compute=2ms req=512B resp=2KB

deploy * * servers=2 capacity=950
demand api west 400
demand api east 100

bilevel horizon=3s ttl=4s weight=2 target=0.7
)";

TEST(ScenarioLoader, ParsesPriceAndBilevelDirectives) {
  const Scenario s = load_scenario_from_string(kPricedScenario);
  EXPECT_DOUBLE_EQ(s.topology->server_price_per_hour(ClusterId{0}), 0.15);
  EXPECT_DOUBLE_EQ(s.topology->server_price_per_hour(ClusterId{1}), 0.04);
  EXPECT_TRUE(s.bilevel.enabled);
  EXPECT_DOUBLE_EQ(s.bilevel.horizon, 3.0);
  EXPECT_DOUBLE_EQ(s.bilevel.plan_ttl, 4.0);
  EXPECT_DOUBLE_EQ(s.bilevel.server_cost_weight, 2.0);
  EXPECT_DOUBLE_EQ(s.bilevel.price_target, 0.7);
}

TEST(ScenarioLoader, UniformPriceAndBadDirectivesRejected) {
  const Scenario s = load_scenario_from_string(R"(
scenario p
cluster a
cluster b
price * 0.10
service s
class k GET /
call k root s compute=1ms req=1KB resp=1KB
deploy * * servers=1 capacity=900
demand k a 100
)");
  EXPECT_DOUBLE_EQ(s.topology->server_price_per_hour(ClusterId{0}), 0.10);
  EXPECT_DOUBLE_EQ(s.topology->server_price_per_hour(ClusterId{1}), 0.10);

  EXPECT_THROW(load_scenario_from_string("scenario p\ncluster a\nprice a -1\n"),
               std::runtime_error);
  EXPECT_THROW(
      load_scenario_from_string("scenario p\ncluster a\nbilevel weight=-1\n"),
      std::runtime_error);
  EXPECT_THROW(
      load_scenario_from_string("scenario p\ncluster a\nbilevel target=1.5\n"),
      std::runtime_error);
  EXPECT_THROW(
      load_scenario_from_string("scenario p\ncluster a\nbilevel bogus=1\n"),
      std::runtime_error);
}

// --- Off-by-default / inert guarantees -------------------------------------

// Server-hour accounting is pure bookkeeping: with no prices set the dollar
// figure is zero, but server-seconds are still measured.
TEST(Bilevel, AccountingWithoutPricesIsFree) {
  const Scenario s = make_two_cluster_chain_scenario();
  RunConfig config;
  config.policy = PolicyKind::kSlate;
  config.duration = 20.0;
  config.warmup = 5.0;
  const ExperimentResult r = run_experiment(s, config);
  EXPECT_GT(r.server_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.server_cost_dollars, 0.0);
  EXPECT_DOUBLE_EQ(r.total_cost_dollars(), r.egress_cost_dollars);
  EXPECT_EQ(r.bilevel_plans_pushed, 0u);
}

// bilevel requires the slate policy AND the autoscaler; enabled without
// either it must silently disarm and leave the run untouched.
TEST(Bilevel, InertWithoutPrerequisites) {
  RunConfig base;
  base.policy = PolicyKind::kSlate;
  base.duration = 20.0;
  base.warmup = 5.0;
  const ExperimentResult plain =
      run_experiment(make_two_cluster_chain_scenario(), base);

  RunConfig no_scaler = base;
  no_scaler.bilevel.enabled = true;  // no autoscaler_enabled
  const ExperimentResult r1 =
      run_experiment(make_two_cluster_chain_scenario(), no_scaler);
  EXPECT_EQ(r1.bilevel_plans_pushed, 0u);
  EXPECT_EQ(r1.completed, plain.completed);
  EXPECT_DOUBLE_EQ(r1.p99(), plain.p99());

  RunConfig wrong_policy = base;
  wrong_policy.policy = PolicyKind::kLocalityFailover;
  wrong_policy.autoscaler_enabled = true;
  wrong_policy.bilevel.enabled = true;
  const ExperimentResult r2 =
      run_experiment(make_two_cluster_chain_scenario(), wrong_policy);
  EXPECT_EQ(r2.bilevel_plans_pushed, 0u);
  EXPECT_EQ(r2.bilevel_capacity_overrides, 0u);
}

// --ignore-scenario-bilevel (the --no-bilevel CLI flag) must make a
// scenario-armed run identical to one whose scenario never armed it.
TEST(Bilevel, IgnoreScenarioFlagDisarms) {
  RunConfig config;
  config.policy = PolicyKind::kSlate;
  config.duration = 20.0;
  config.warmup = 5.0;
  config.autoscaler_enabled = true;
  config.autoscaler.evaluation_period = 2.0;

  Scenario armed = make_two_cluster_chain_scenario();
  armed.bilevel.enabled = true;
  RunConfig ignore = config;
  ignore.ignore_scenario_bilevel = true;
  const ExperimentResult suppressed = run_experiment(armed, ignore);
  const ExperimentResult plain =
      run_experiment(make_two_cluster_chain_scenario(), config);
  EXPECT_EQ(suppressed.bilevel_plans_pushed, 0u);
  EXPECT_EQ(suppressed.completed, plain.completed);
  EXPECT_DOUBLE_EQ(suppressed.p99(), plain.p99());
  EXPECT_DOUBLE_EQ(suppressed.server_seconds, plain.server_seconds);

  // And without the flag the scenario's directive actually engages.
  const ExperimentResult engaged = run_experiment(armed, config);
  EXPECT_GT(engaged.bilevel_plans_pushed, 0u);
}

// --- The headline: co-design dominates open-loop ---------------------------

constexpr double kSloSeconds = 0.100;

// Mirror of bench/ext_bilevel's follow-the-sun world: three near-equilateral
// clusters, phase-shifted diurnals (constant 900 RPS total), cheap egress,
// and a 5x server-price spread so spill placement is a cost decision.
Scenario make_sun_scenario() {
  LinearChainOptions app;
  app.chain_length = 1;
  app.service_compute_mean = 4.0e-3;
  Scenario scenario;
  scenario.name = "follow-the-sun";
  scenario.app = std::make_unique<Application>(make_linear_chain_app(app));

  Topology topology(3);
  topology.set_rtt(ClusterId{0}, ClusterId{1}, 8e-3);
  topology.set_rtt(ClusterId{0}, ClusterId{2}, 10e-3);
  topology.set_rtt(ClusterId{1}, ClusterId{2}, 10e-3);
  topology.set_uniform_egress_price(0.01);
  topology.set_server_price(ClusterId{0}, 0.15);
  topology.set_server_price(ClusterId{1}, 0.12);
  topology.set_server_price(ClusterId{2}, 0.03);
  scenario.topology = std::make_unique<Topology>(std::move(topology));

  scenario.deployment = std::make_unique<Deployment>(*scenario.app, 3);
  for (ServiceId s : scenario.app->all_services()) {
    const bool gateway = scenario.app->service_name(s) == "ingress";
    for (std::size_t i = 0; i < 3; ++i) {
      const unsigned n = gateway ? 2 : 4;
      const double mu = gateway ? 1.0 / 0.1e-3 : 1.0 / 4.0e-3;
      scenario.deployment->deploy(s, ClusterId{i}, n, 0.95 * mu * n);
    }
  }

  const ClassId chain = scenario.app->find_class("chain");
  DiurnalSpec spec;
  spec.base = 300.0;
  spec.amplitude = 250.0;
  spec.period = 120.0;
  spec.end = 400.0;
  spec.step = 1.0;
  for (std::size_t i = 0; i < 3; ++i) {
    spec.phase = 40.0 * static_cast<double>(i);
    add_diurnal(scenario.demand, chain, ClusterId{i}, spec);
  }
  return scenario;
}

RunConfig sun_config() {
  RunConfig config;
  config.policy = PolicyKind::kSlate;
  config.duration = 300.0;
  config.warmup = 120.0;
  config.seed = 23;
  config.control_period = 1.0;
  config.autoscaler_enabled = true;
  config.autoscaler.target_utilization = 0.6;
  config.autoscaler.evaluation_period = 5.0;
  config.autoscaler.provision_delay = 10.0;
  config.autoscaler.up_cooldown = 5.0;
  config.autoscaler.down_cooldown = 20.0;
  config.autoscaler.min_servers = 1;
  config.autoscaler.max_servers = 16;
  return config;
}

double slo_attainment(const ExperimentResult& r) {
  std::size_t hits = 0, total = 0;
  for (const SampleSet& s : r.e2e_by_class) {
    for (double v : s.samples()) {
      ++total;
      if (v <= kSloSeconds) ++hits;
    }
  }
  return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
}

TEST(Bilevel, CoDesignDominatesOpenLoopOnTotalDollars) {
  const Scenario scenario = make_sun_scenario();

  const RunConfig open_loop = sun_config();
  RunConfig co_design = open_loop;
  co_design.bilevel.enabled = true;
  co_design.bilevel.server_cost_weight = 3600.0;

  const ExperimentResult open = run_experiment(scenario, open_loop);
  const ExperimentResult co = run_experiment(scenario, co_design);

  // The coordinator actually ran and priced the fleet.
  EXPECT_GT(co.bilevel_plans_pushed, 0u);
  EXPECT_GT(co.server_cost_dollars, 0.0);
  EXPECT_GT(open.server_cost_dollars, 0.0);

  // Strict dominance on total dollars (egress + server-hours)...
  EXPECT_LT(co.total_cost_dollars(), open.total_cost_dollars());
  // ...at equal-or-better goodput and p99 SLO attainment.
  EXPECT_GE(co.goodput_rps(), 0.999 * open.goodput_rps());
  EXPECT_GE(slo_attainment(co) + 1e-4, slo_attainment(open));
  EXPECT_GE(slo_attainment(co), 0.99);
}

}  // namespace
}  // namespace slate
