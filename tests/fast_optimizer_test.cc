// Tests for the heuristic (marginal-cost descent) optimizer, including
// quality comparisons against the exact LP formulation.
#include <gtest/gtest.h>

#include "core/fast_optimizer.h"
#include "core/optimizer.h"
#include "net/gcp_topology.h"
#include "runtime/scenarios.h"

namespace slate {
namespace {

FlatMatrix<double> demand_for(const Scenario& scenario) {
  FlatMatrix<double> d(scenario.app->class_count(),
                       scenario.topology->cluster_count(), 0.0);
  for (const auto& stream : scenario.demand.streams()) {
    d(stream.cls.index(), stream.cluster.index()) =
        scenario.demand.rate_at(stream.cls, stream.cluster, 0.0);
  }
  return d;
}

OptimizerResult fast_optimize(const Scenario& scenario,
                              FastOptimizerOptions options = {}) {
  FastRouteOptimizer optimizer(*scenario.app, *scenario.deployment,
                               *scenario.topology, options);
  const LatencyModel model = LatencyModel::from_application(
      *scenario.app, scenario.topology->cluster_count());
  return optimizer.optimize(model, demand_for(scenario));
}

OptimizerResult exact_optimize(const Scenario& scenario,
                               OptimizerOptions options = {}) {
  RouteOptimizer optimizer(*scenario.app, *scenario.deployment,
                           *scenario.topology, options);
  const LatencyModel model = LatencyModel::from_application(
      *scenario.app, scenario.topology->cluster_count());
  return optimizer.optimize(model, demand_for(scenario));
}

double local_weight(const OptimizerResult& r, ClassId k, std::size_t node,
                    ClusterId from) {
  const RouteWeights* rule = r.rules->find(k, node, from);
  return rule == nullptr ? 0.0 : rule->weight_for(from);
}

TEST(FastOptimizer, UnderloadedStaysLocal) {
  TwoClusterChainParams params;
  params.west_rps = 150.0;
  params.east_rps = 100.0;
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  const OptimizerResult r = fast_optimize(scenario);
  ASSERT_TRUE(r.ok());
  for (std::size_t node = 1; node <= 3; ++node) {
    EXPECT_GT(local_weight(r, ClassId{0}, node, ClusterId{0}), 0.99);
    EXPECT_GT(local_weight(r, ClassId{0}, node, ClusterId{1}), 0.99);
  }
}

TEST(FastOptimizer, OffloadsUnderOverload) {
  TwoClusterChainParams params;
  params.west_rps = 800.0;
  params.east_rps = 100.0;
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  const OptimizerResult r = fast_optimize(scenario);
  const double local = local_weight(r, ClassId{0}, 1, ClusterId{0});
  EXPECT_LT(local, 0.9);
  EXPECT_GT(local, 0.2);
}

TEST(FastOptimizer, RulesAreDistributionsOverDeployedClusters) {
  const Scenario scenario = make_anomaly_scenario({});
  const OptimizerResult r = fast_optimize(scenario);
  r.rules->for_each([&](ClassId, std::size_t node, ClusterId,
                        const RouteWeights& w) {
    double total = 0.0;
    for (double weight : w.weights) {
      EXPECT_GE(weight, 0.0);
      total += weight;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    if (node == 2) {  // DB exists only in East
      EXPECT_DOUBLE_EQ(w.weight_for(ClusterId{0}), 0.0);
    }
  });
}

TEST(FastOptimizer, PrefersHeavyClassLikeExact) {
  const Scenario scenario = make_two_class_scenario({});
  const OptimizerResult r = fast_optimize(scenario);
  const ClassId light = scenario.app->find_class("L");
  const ClassId heavy = scenario.app->find_class("H");
  const double light_remote = 1.0 - local_weight(r, light, 1, ClusterId{0});
  const double heavy_remote = 1.0 - local_weight(r, heavy, 1, ClusterId{0});
  EXPECT_GT(heavy_remote, light_remote + 0.15);
}

// Quality: on the paper scenarios, descent lands within 20% of the exact
// optimizer's predicted objective (latency + weighted egress).
class FastVsExactTest : public ::testing::TestWithParam<int> {};

TEST_P(FastVsExactTest, WithinQualityBand) {
  Scenario scenario;
  switch (GetParam()) {
    case 0: {
      TwoClusterChainParams params;
      params.west_rps = 800.0;
      scenario = make_two_cluster_chain_scenario(params);
      break;
    }
    case 1:
      scenario = make_gcp_chain_scenario({});
      break;
    case 2:
      scenario = make_two_class_scenario({});
      break;
    default: {
      TwoClusterChainParams params;
      params.west_rps = 550.0;
      params.rtt = 50e-3;
      scenario = make_two_cluster_chain_scenario(params);
      break;
    }
  }
  const OptimizerResult exact = exact_optimize(scenario);
  const OptimizerResult fast = fast_optimize(scenario);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(fast.ok() || fast.status == LpStatus::kIterationLimit);
  const double exact_score = exact.predicted_mean_latency;
  const double fast_score = fast.predicted_mean_latency;
  EXPECT_LT(fast_score, exact_score * 1.2)
      << "fast " << fast_score << " vs exact " << exact_score;
  // Descent can never beat the true optimum by more than numeric noise
  // (both scores are exact evaluations of feasible plans).
  EXPECT_GT(fast_score, exact_score * 0.95);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, FastVsExactTest, ::testing::Range(0, 4));

TEST(FastOptimizer, LiveServerOverrideShiftsPlan) {
  TwoClusterChainParams params;
  params.west_rps = 600.0;
  params.west_servers = 2;
  const Scenario scenario = make_two_cluster_chain_scenario(params);
  FastRouteOptimizer optimizer(*scenario.app, *scenario.deployment,
                               *scenario.topology);
  const LatencyModel model = LatencyModel::from_application(*scenario.app, 2);
  const FlatMatrix<double> demand = demand_for(scenario);

  const OptimizerResult with_static = optimizer.optimize(model, demand);
  std::vector<unsigned> live(scenario.app->service_count() * 2, 0);
  live[scenario.app->find_service("svc-1").index() * 2 + 0] = 1;
  const OptimizerResult with_live = optimizer.optimize(model, demand, &live);

  EXPECT_LT(local_weight(with_live, ClassId{0}, 1, ClusterId{0}),
            local_weight(with_static, ClassId{0}, 1, ClusterId{0}) - 0.05);
}

TEST(FastOptimizer, DemandShapeMismatchThrows) {
  const Scenario scenario = make_two_cluster_chain_scenario({});
  FastRouteOptimizer optimizer(*scenario.app, *scenario.deployment,
                               *scenario.topology);
  const LatencyModel model = LatencyModel::from_application(*scenario.app, 2);
  FlatMatrix<double> wrong(5, 5, 0.0);
  EXPECT_THROW(optimizer.optimize(model, wrong), std::invalid_argument);
}

TEST(FastOptimizer, BadOptionsThrow) {
  const Scenario scenario = make_two_cluster_chain_scenario({});
  FastOptimizerOptions options;
  options.max_utilization = 0.0;
  EXPECT_THROW(FastRouteOptimizer(*scenario.app, *scenario.deployment,
                                  *scenario.topology, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace slate
