// Contingency subsystem tests (docs/resilience.md): N-1 headroom math,
// drain orchestration, chaos-campaign determinism, and the two headline
// results bench/ext_contingency is built around.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "contingency/drain_orchestrator.h"
#include "contingency/headroom_planner.h"
#include "fault/chaos_campaign.h"
#include "runtime/scenario_loader.h"
#include "runtime/simulation.h"

namespace slate {
namespace {

// --- HeadroomPlanner -------------------------------------------------------

// One service, one class, two clusters, one server each at 4ms compute
// (250 RPS per server), 100 RPS of ingress demand per cluster, all-local
// rules. If either cluster fails, its 100 RPS anycasts to the survivor:
// 200 RPS against one server = utilization 0.8.
TEST(HeadroomPlanner, SingleFailureReroutesDemandToSurvivor) {
  Application app;
  app.add_service("s");
  TrafficClassSpec spec;
  spec.name = "k";
  spec.graph.set_root(ServiceId{0}, 4.0e-3, 512, 1024);
  app.add_class(std::move(spec));
  app.validate();

  Topology topology(2);
  topology.set_rtt(ClusterId{0}, ClusterId{1}, 20e-3);
  Deployment deployment(app, 2);
  deployment.deploy(ServiceId{0}, ClusterId{0}, 1, 250.0);
  deployment.deploy(ServiceId{0}, ClusterId{1}, 1, 250.0);

  LatencyModel model(1, 1, 2);
  for (std::size_t c = 0; c < 2; ++c) {
    model.set_service_time(ServiceId{0}, ClassId{0}, ClusterId{c}, 4.0e-3);
  }

  FlatMatrix<double> demand(1, 2, 0.0);
  demand(0, 0) = 100.0;
  demand(0, 1) = 100.0;

  RoutingRuleSet rules;
  for (std::size_t c = 0; c < 2; ++c) {
    RouteWeights w;
    w.clusters = {ClusterId{c}};
    w.weights = {1.0};
    rules.set_rule(ClassId{0}, 0, ClusterId{c}, std::move(w));
  }

  const HeadroomPlanner planner(app, deployment, topology);
  const double after_b = planner.failure_max_utilization(
      model, demand, rules, nullptr, ClusterId{1});
  EXPECT_NEAR(after_b, 0.8, 1e-9);

  ClusterId worst;
  const double margin = planner.worst_case_margin(model, demand, rules,
                                                  nullptr, &worst);
  EXPECT_NEAR(margin, 0.8, 1e-9);  // symmetric world: either failure

  // Pre-failure utilization for comparison: 100 * 4ms / 1 = 0.4 — the
  // margin is genuinely about the post-failure world.
  const double pre_rate[1] = {100.0};
  EXPECT_NEAR(model.utilization(ServiceId{0}, ClusterId{0}, pre_rate, 1), 0.4,
              1e-9);
}

TEST(HeadroomPlanner, DemandWithNoSurvivingEntryIsLostNotRerouted) {
  Application app;
  app.add_service("s");
  TrafficClassSpec spec;
  spec.name = "k";
  spec.graph.set_root(ServiceId{0}, 4.0e-3, 512, 1024);
  app.add_class(std::move(spec));
  app.validate();

  // The service exists ONLY in cluster 0: when cluster 0 fails there is no
  // reroute target, the demand is lost, and no surviving station heats up.
  Topology topology(2);
  topology.set_rtt(ClusterId{0}, ClusterId{1}, 20e-3);
  Deployment deployment(app, 2);
  deployment.deploy(ServiceId{0}, ClusterId{0}, 1, 250.0);

  LatencyModel model(1, 1, 2);
  model.set_service_time(ServiceId{0}, ClassId{0}, ClusterId{0}, 4.0e-3);

  FlatMatrix<double> demand(1, 2, 0.0);
  demand(0, 0) = 100.0;

  RoutingRuleSet rules;
  RouteWeights w;
  w.clusters = {ClusterId{0}};
  w.weights = {1.0};
  rules.set_rule(ClassId{0}, 0, ClusterId{0}, std::move(w));

  const HeadroomPlanner planner(app, deployment, topology);
  EXPECT_DOUBLE_EQ(planner.failure_max_utilization(model, demand, rules,
                                                   nullptr, ClusterId{0}),
                   0.0);
}

// --- DrainOrchestrator -----------------------------------------------------

struct DrainHarness {
  std::uint64_t served = 0;
  bool down = false;
  std::vector<std::pair<ClusterId, double>> applied;

  DrainOrchestrator::Hooks hooks() {
    DrainOrchestrator::Hooks h;
    h.jobs_served = [this]() { return served; };
    h.cluster_down = [this](ClusterId) { return down; };
    h.apply_keep = [this](ClusterId c, double keep) {
      applied.emplace_back(c, keep);
    };
    return h;
  }
};

DrainSpec spec_for(ClusterId c, double start, double over,
                   double step = 0.25) {
  DrainSpec spec;
  spec.cluster = c;
  spec.start = start;
  spec.over = over;
  spec.step = step;
  return spec;
}

TEST(DrainOrchestrator, ValidatesSpecs) {
  DrainHarness h;
  EXPECT_THROW(DrainOrchestrator({spec_for(ClusterId{}, 0.0, 5.0)}, 1.0,
                                 h.hooks()),
               std::invalid_argument);
  EXPECT_THROW(DrainOrchestrator({spec_for(ClusterId{0}, 0.0, 0.0)}, 1.0,
                                 h.hooks()),
               std::invalid_argument);
  EXPECT_THROW(DrainOrchestrator({spec_for(ClusterId{0}, 0.0, 5.0, 1.5)}, 1.0,
                                 h.hooks()),
               std::invalid_argument);
  EXPECT_THROW(DrainOrchestrator({spec_for(ClusterId{0}, 0.0, 5.0)}, 0.0,
                                 h.hooks()),
               std::invalid_argument);
}

TEST(DrainOrchestrator, WalksKeepToZeroOverTheConfiguredWindow) {
  DrainHarness h;
  DrainOrchestrator orch({spec_for(ClusterId{2}, 2.0, 4.0, 1.0)}, 1.0,
                         h.hooks());
  // Healthy goodput throughout: +100 jobs per period.
  for (int t = 1; t <= 10; ++t) {
    h.served += 100;
    orch.tick(static_cast<double>(t));
  }
  EXPECT_EQ(orch.drains_started(), 1u);
  EXPECT_EQ(orch.drains_completed(), 1u);
  EXPECT_EQ(orch.drains_cancelled(), 0u);
  EXPECT_EQ(orch.drain_pause_periods(), 0u);
  // over=4s at control_period=1 caps the per-period step at 1/4: exactly 4
  // steps, landing on keep = 0.
  EXPECT_EQ(orch.drain_steps(), 4u);
  EXPECT_DOUBLE_EQ(orch.keep_fraction(ClusterId{2}), 0.0);
  ASSERT_FALSE(h.applied.empty());
  EXPECT_EQ(h.applied.front().first, ClusterId{2});
  EXPECT_DOUBLE_EQ(h.applied.back().second, 0.0);
  // Keep-fractions only ever move down while draining.
  for (std::size_t i = 1; i < h.applied.size(); ++i) {
    EXPECT_LT(h.applied[i].second, h.applied[i - 1].second);
  }
}

TEST(DrainOrchestrator, PausesWhileGoodputSagsAndResumesAfter) {
  DrainHarness h;
  DrainOrchestrator orch({spec_for(ClusterId{0}, 2.0, 4.0, 1.0)}, 1.0,
                         h.hooks());
  // Establish a healthy baseline before the drain starts.
  for (int t = 1; t <= 3; ++t) {
    h.served += 100;
    orch.tick(static_cast<double>(t));
  }
  const std::uint64_t steps_before = orch.drain_steps();
  // Goodput collapses: the drain must hold, not keep cutting.
  for (int t = 4; t <= 6; ++t) {
    h.served += 5;
    orch.tick(static_cast<double>(t));
  }
  EXPECT_GT(orch.drain_pause_periods(), 0u);
  EXPECT_EQ(orch.drain_steps(), steps_before);
  EXPECT_GT(orch.keep_fraction(ClusterId{0}), 0.0);
  // Health returns: the drain resumes and completes.
  for (int t = 7; t <= 20; ++t) {
    h.served += 100;
    orch.tick(static_cast<double>(t));
  }
  EXPECT_EQ(orch.drains_completed(), 1u);
  EXPECT_DOUBLE_EQ(orch.keep_fraction(ClusterId{0}), 0.0);
}

TEST(DrainOrchestrator, OutageCancelsDrainAndRestoresKeep) {
  DrainHarness h;
  DrainOrchestrator orch({spec_for(ClusterId{1}, 1.0, 4.0, 1.0)}, 1.0,
                         h.hooks());
  for (int t = 1; t <= 3; ++t) {
    h.served += 100;
    orch.tick(static_cast<double>(t));
  }
  EXPECT_LT(orch.keep_fraction(ClusterId{1}), 1.0);
  // The cluster goes down mid-drain: the outage wins.
  h.down = true;
  h.served += 100;
  orch.tick(4.0);
  EXPECT_EQ(orch.drains_cancelled(), 1u);
  EXPECT_EQ(orch.drains_completed(), 0u);
  EXPECT_DOUBLE_EQ(orch.keep_fraction(ClusterId{1}), 1.0);
  // A cancelled drain stays cancelled once the outage lifts.
  h.down = false;
  const std::uint64_t steps = orch.drain_steps();
  for (int t = 5; t <= 10; ++t) {
    h.served += 100;
    orch.tick(static_cast<double>(t));
  }
  EXPECT_EQ(orch.drain_steps(), steps);
  EXPECT_DOUBLE_EQ(orch.keep_fraction(ClusterId{1}), 1.0);
  EXPECT_EQ(orch.drains_cancelled(), 1u);
}

// --- Chaos campaigns -------------------------------------------------------

TEST(ChaosCampaign, ExpansionIsAPureFunctionOfSpecAndWorld) {
  CampaignSpec spec;
  spec.seed = 42;
  spec.events = 12;
  FaultPlan plan_a, plan_b;
  std::vector<DrainSpec> drains_a, drains_b;
  expand_campaign(spec, 4, 3, &plan_a, &drains_a);
  expand_campaign(spec, 4, 3, &plan_b, &drains_b);

  EXPECT_EQ(plan_a.size() + drains_a.size(), 12u);
  ASSERT_EQ(plan_a.size(), plan_b.size());
  for (std::size_t i = 0; i < plan_a.size(); ++i) {
    EXPECT_EQ(plan_a.faults()[i].kind, plan_b.faults()[i].kind);
    EXPECT_DOUBLE_EQ(plan_a.faults()[i].start, plan_b.faults()[i].start);
    EXPECT_DOUBLE_EQ(plan_a.faults()[i].duration,
                     plan_b.faults()[i].duration);
    EXPECT_EQ(plan_a.faults()[i].cluster, plan_b.faults()[i].cluster);
  }
  ASSERT_EQ(drains_a.size(), drains_b.size());
  for (std::size_t i = 0; i < drains_a.size(); ++i) {
    EXPECT_EQ(drains_a[i].cluster, drains_b[i].cluster);
    EXPECT_DOUBLE_EQ(drains_a[i].start, drains_b[i].start);
    EXPECT_DOUBLE_EQ(drains_a[i].over, drains_b[i].over);
  }
  // A different seed yields a different gauntlet.
  CampaignSpec other = spec;
  other.seed = 43;
  FaultPlan plan_c;
  std::vector<DrainSpec> drains_c;
  expand_campaign(other, 4, 3, &plan_c, &drains_c);
  bool differs = plan_c.size() != plan_a.size();
  for (std::size_t i = 0; !differs && i < plan_a.size(); ++i) {
    differs = plan_a.faults()[i].start != plan_c.faults()[i].start ||
              plan_a.faults()[i].kind != plan_c.faults()[i].kind;
  }
  EXPECT_TRUE(differs || drains_a.size() != drains_c.size());
}

TEST(ChaosCampaign, KindFilterAndValidationEnforced) {
  CampaignSpec spec;
  spec.events = 8;
  spec.kinds = {true, false, false, false};  // outages only
  FaultPlan plan;
  std::vector<DrainSpec> drains;
  expand_campaign(spec, 3, 2, &plan, &drains);
  EXPECT_EQ(plan.size(), 8u);
  EXPECT_TRUE(drains.empty());
  for (const FaultSpec& f : plan.faults()) {
    EXPECT_EQ(f.kind, FaultKind::kClusterOutage);
    EXPECT_GE(f.start, spec.start);
    EXPECT_GT(f.duration, 0.0);
  }

  CampaignSpec bad;
  bad.events = 0;
  EXPECT_THROW(expand_campaign(bad, 3, 2, &plan, &drains),
               std::invalid_argument);
  CampaignSpec none;
  none.events = 1;
  none.kinds = {false, false, false, false};
  EXPECT_THROW(expand_campaign(none, 3, 2, &plan, &drains),
               std::invalid_argument);
  CampaignSpec gray_no_services;
  gray_no_services.events = 1;
  gray_no_services.kinds = {false, true, false, false};
  EXPECT_THROW(expand_campaign(gray_no_services, 3, 0, &plan, &drains),
               std::invalid_argument);
  CampaignSpec partition_one_cluster;
  partition_one_cluster.events = 1;
  partition_one_cluster.kinds = {false, false, true, false};
  EXPECT_THROW(expand_campaign(partition_one_cluster, 1, 2, &plan, &drains),
               std::invalid_argument);
}

// --- Headline results (bench/ext_contingency, pinned) ----------------------

// The bench's triangle: a and b (500 RPS capacity each, 400 RPS demand,
// 10ms apart) with a big cluster c (1000 RPS capacity, 100 RPS demand)
// 30ms from both. b's failure doubles a's ingress unless the plan
// pre-spread load onto c.
Scenario triangle_scenario() {
  return load_scenario_from_string(R"(
scenario contingency-triangle
cluster a
cluster b
cluster c
rtt a b 10ms
rtt a c 30ms
rtt b c 30ms
egress_price 0.08

service ingress
service svc-1
class chain GET /chain
call chain root ingress compute=0.1ms req=512B resp=2KB
call chain ingress svc-1 compute=4ms req=512B resp=2KB

deploy ingress * servers=2 capacity=19000
deploy svc-1 a servers=2 capacity=475
deploy svc-1 b servers=2 capacity=475
deploy svc-1 c servers=4 capacity=950

demand chain a 400
demand chain b 400
demand chain c 100

overload deadline 500ms propagate=off
)");
}

RunConfig triangle_config() {
  RunConfig config;
  config.policy = PolicyKind::kSlate;
  config.duration = 70.0;
  config.warmup = 10.0;
  config.seed = 17;
  config.control_period = 1.0;
  config.timeseries_bucket = 1.0;
  config.failure.enabled = true;
  config.failure.call_timeout = 0.5;
  config.failure.max_retries = 2;
  return config;
}

// Headline pin (a): under a surprise single-cluster outage, the
// contingency-armed run holds >= 95% of pre-fault goodput through the
// failure window; the reactive-only run collapses.
TEST(ContingencyHeadline, ArmedRoutingHoldsGoodputThroughOutage) {
  Scenario scenario = triangle_scenario();
  scenario.faults.cluster_outage(ClusterId{1}, 40.0, 10.0);

  RunConfig reactive = triangle_config();
  const ExperimentResult r = run_experiment(scenario, reactive);

  RunConfig armed = triangle_config();
  armed.slate.contingency.enabled = true;
  armed.slate.contingency.max_post_failure_utilization = 0.95;
  const ExperimentResult c = run_experiment(scenario, armed);

  const double r_pre = r.goodput_in_window(30.0, 40.0);
  const double r_during = r.goodput_in_window(42.0, 49.0);
  const double c_pre = c.goodput_in_window(30.0, 40.0);
  const double c_during = c.goodput_in_window(42.0, 49.0);
  ASSERT_GT(r_pre, 0.0);
  ASSERT_GT(c_pre, 0.0);

  // Armed: >= 95% goodput held through the outage window.
  EXPECT_GE(c_during, 0.95 * c_pre);
  // Reactive-only: collapse (well under 60% of pre-fault goodput).
  EXPECT_LT(r_during, 0.6 * r_pre);

  // Telemetry: the armed run actually evaluated margins and re-priced;
  // the reactive run never touched the subsystem.
  EXPECT_GT(c.contingency_evals, 0u);
  EXPECT_GT(c.contingency_resolves, 0u);
  EXPECT_GT(c.contingency_margin_worst, 0.0);
  EXPECT_EQ(r.contingency_evals, 0u);
  EXPECT_EQ(r.contingency_resolves, 0u);
  EXPECT_EQ(r.contingency_margin_worst, 0.0);
}

// Headline pin (b): a coordinated drain beats yanking the cluster by
// >= 10x on lost goodput + wasted server-seconds.
TEST(ContingencyHeadline, CoordinatedDrainBeatsAbruptRemovalTenfold) {
  Scenario yank_world = triangle_scenario();
  yank_world.faults.cluster_outage(ClusterId{1}, 40.0, 30.0);
  const ExperimentResult yank = run_experiment(yank_world, triangle_config());

  Scenario drain_world = triangle_scenario();
  RunConfig drain_config = triangle_config();
  DrainSpec spec;
  spec.cluster = ClusterId{1};
  spec.start = 40.0;
  spec.over = 15.0;
  drain_config.drains.push_back(spec);
  const ExperimentResult drain = run_experiment(drain_world, drain_config);

  auto removal_score = [](const ExperimentResult& r) {
    const double pre = r.goodput_in_window(30.0, 40.0);
    double served = 0.0;
    for (std::size_t t = 40; t < 65 && t < r.completed_series.size(); ++t) {
      served += static_cast<double>(r.completed_series[t]);
    }
    const double lost = std::max(0.0, pre * 25.0 - served);
    return lost + r.wasted_server_seconds;
  };

  const double yank_score = removal_score(yank);
  const double drain_score = removal_score(drain);
  EXPECT_GE(yank_score, 10.0 * std::max(drain_score, 1.0));

  // The drain actually ran to completion in bounded steps.
  EXPECT_EQ(drain.drains_started, 1u);
  EXPECT_EQ(drain.drains_completed, 1u);
  EXPECT_EQ(drain.drains_cancelled, 0u);
  EXPECT_GT(drain.drain_steps, 1u);
  // The yank run never touched the drain machinery.
  EXPECT_EQ(yank.drains_started, 0u);
  EXPECT_EQ(yank.drain_steps, 0u);
}

// Disabled contingency and absent drains leave zero telemetry and change
// nothing: two identical runs of the plain world agree bit-for-bit with a
// run where the subsystem is explicitly disarmed.
TEST(ContingencyHeadline, DisabledSubsystemIsInert) {
  Scenario with_directives = load_scenario_from_string(R"(
cluster a
cluster b
rtt a b 20ms
service s
class k
call k root s compute=2ms
deploy * * servers=2 capacity=900
demand k a 300
demand k b 100
contingency cap=0.9
drain b @3s over=4s
)");
  Scenario plain = load_scenario_from_string(R"(
cluster a
cluster b
rtt a b 20ms
service s
class k
call k root s compute=2ms
deploy * * servers=2 capacity=900
demand k a 300
demand k b 100
)");

  RunConfig config;
  config.policy = PolicyKind::kSlate;
  config.duration = 10.0;
  config.warmup = 2.0;
  config.seed = 5;

  RunConfig disarmed = config;
  disarmed.ignore_scenario_contingency = true;
  disarmed.ignore_scenario_drains = true;

  const ExperimentResult a = run_experiment(plain, config);
  const ExperimentResult b = run_experiment(with_directives, disarmed);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.egress_bytes, b.egress_bytes);
  EXPECT_EQ(a.e2e.samples(), b.e2e.samples());
  EXPECT_EQ(b.contingency_evals, 0u);
  EXPECT_EQ(b.drains_started, 0u);

  // And the armed version of the same world does engage both subsystems.
  const ExperimentResult armed = run_experiment(with_directives, config);
  EXPECT_GT(armed.contingency_evals, 0u);
  EXPECT_EQ(armed.drains_started, 1u);
}

}  // namespace
}  // namespace slate
