// Control-plane hardening (docs/control_plane.md): telemetry admission,
// the solver fallback ladder, guarded rule rollout, and the end-to-end
// controller-chaos acceptance gauntlet.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "cluster/service_station.h"
#include "core/cluster_controller.h"
#include "core/global_controller.h"
#include "core/routing_rules.h"
#include "guard/report_validator.h"
#include "guard/rule_rollout.h"
#include "guard/solver_guard.h"
#include "net/gcp_topology.h"
#include "runtime/scenarios.h"
#include "runtime/simulation.h"

namespace slate {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// --- MadTracker -------------------------------------------------------------

TEST(MadTracker, MedianAndMadOverWindow) {
  MadTracker t(1, 1, 8);
  for (const double v : {10.0, 12.0, 11.0, 13.0, 9.0}) t.push(0, 0, v);
  EXPECT_EQ(t.history(0, 0), 5u);
  EXPECT_DOUBLE_EQ(t.median(0, 0), 11.0);
  // |x - 11| = {1, 1, 0, 2, 2} -> MAD 1.
  EXPECT_DOUBLE_EQ(t.mad(0, 0), 1.0);
  t.clear(0, 0);
  EXPECT_EQ(t.history(0, 0), 0u);
  EXPECT_DOUBLE_EQ(t.median(0, 0), 0.0);
}

TEST(MadTracker, SpikeGateArmsOnlyAfterMinHistory) {
  MadTracker t(1, 1, 16);
  // Unarmed: even a wild value is not called a spike.
  t.push(0, 0, 100.0);
  t.push(0, 0, 101.0);
  EXPECT_FALSE(t.is_spike(0, 0, 1e6, 8.0, 0.1, 5));
  for (const double v : {99.0, 100.0, 102.0}) t.push(0, 0, v);
  // Armed at 5 samples: 1e6 is out of band, 103 is within it.
  EXPECT_TRUE(t.is_spike(0, 0, 1e6, 8.0, 0.1, 5));
  EXPECT_FALSE(t.is_spike(0, 0, 103.0, 8.0, 0.1, 5));
}

TEST(MadTracker, WindowSlidesOldSamplesOut) {
  MadTracker t(1, 1, 4);
  for (int i = 0; i < 4; ++i) t.push(0, 0, 100.0);
  for (int i = 0; i < 4; ++i) t.push(0, 0, 500.0);
  // The 100s have been evicted: the median tracks the new level.
  EXPECT_DOUBLE_EQ(t.median(0, 0), 500.0);
  EXPECT_EQ(t.history(0, 0), 4u);
}

// --- ReportValidator --------------------------------------------------------

AdmissionOptions admission_defaults() {
  AdmissionOptions o;
  o.enabled = true;
  return o;
}

// A minimal healthy report for a 1-service, 1-class, 2-cluster world.
ClusterReport healthy_report(double rps, double t0 = 0.0) {
  ClusterReport r;
  r.cluster = ClusterId{0};
  r.period_start = t0;
  r.period_end = t0 + 1.0;
  ServiceClassMetrics m;
  m.service = ServiceId{0};
  m.cls = ClassId{0};
  m.started = m.completed = static_cast<std::uint64_t>(rps);
  m.completion_rps = rps;
  m.mean_latency = 5e-3;
  m.max_latency = 8e-3;
  m.mean_service_time = 2e-3;
  r.request_metrics.push_back(m);
  StationMetrics sm;
  sm.service = ServiceId{0};
  sm.servers = 1;
  sm.utilization = 0.5;
  r.station_metrics.push_back(sm);
  r.ingress_rps = {rps};
  r.e2e = {E2eMetrics{static_cast<std::uint64_t>(rps), 10e-3, 20e-3}};
  return r;
}

TEST(ReportValidator, RejectsNonFiniteNegativeAndImplausibleIngress) {
  ReportValidator v(1, 1, 2, admission_defaults());
  ClusterReport warm = healthy_report(100.0);
  EXPECT_FALSE(v.admit(warm));  // clean report sails through

  for (const double poison : {kNaN, -50.0, kInf, 1e9}) {
    ClusterReport r = healthy_report(100.0);
    r.ingress_rps[0] = poison;
    EXPECT_TRUE(v.admit(r));
    // Replaced with the last admitted value, never the poison.
    EXPECT_DOUBLE_EQ(r.ingress_rps[0], 100.0);
  }
  EXPECT_EQ(v.fields_rejected(), 4u);
  EXPECT_GE(v.interpolations(), 4u);
}

TEST(ReportValidator, ClampsDemandSpikeToAdmittedMedian) {
  AdmissionOptions o = admission_defaults();
  o.min_history = 3;
  ReportValidator v(1, 1, 2, o);
  for (int i = 0; i < 5; ++i) {
    ClusterReport r = healthy_report(100.0 + i);  // slight jitter
    v.admit(r);
  }
  ClusterReport spike = healthy_report(100.0);
  spike.ingress_rps[0] = 5000.0;
  EXPECT_TRUE(v.admit(spike));
  EXPECT_NEAR(spike.ingress_rps[0], 102.0, 2.0);  // admitted median
  EXPECT_GE(v.spikes_clamped(), 1u);
}

TEST(ReportValidator, IncoherentAttackNeverRotsTheReference) {
  // A byzantine reporter feeding wild, mutually-inconsistent values must
  // stay clamped forever: only admitted values build the reference median,
  // and incoherent rejects never pass the level-shift coherence test.
  AdmissionOptions o = admission_defaults();
  o.min_history = 3;
  ReportValidator v(1, 1, 2, o);
  for (int i = 0; i < 6; ++i) {
    ClusterReport r = healthy_report(100.0);
    v.admit(r);
  }
  const double attack[] = {5000.0, 0.1, 9000.0, 3000.0, 0.2,  7000.0,
                           4000.0, 0.3, 8000.0, 6000.0, 0.05, 9500.0};
  for (const double a : attack) {
    ClusterReport r = healthy_report(100.0);
    r.ingress_rps[0] = a;
    v.admit(r);
    EXPECT_NEAR(r.ingress_rps[0], 100.0, 1.0) << "attack value " << a;
  }
}

TEST(ReportValidator, CoherentLevelShiftIsReadmitted) {
  // A genuine demand change (e.g. traffic doubled) produces consecutive
  // out-of-band values that agree with each other; after min_history such
  // rejects the new level becomes the reference.
  AdmissionOptions o = admission_defaults();
  o.min_history = 3;
  ReportValidator v(1, 1, 2, o);
  for (int i = 0; i < 6; ++i) {
    ClusterReport r = healthy_report(100.0);
    v.admit(r);
  }
  double last_seen = 0.0;
  for (int i = 0; i < 6; ++i) {
    ClusterReport r = healthy_report(100.0);
    r.ingress_rps[0] = 500.0;
    v.admit(r);
    last_seen = r.ingress_rps[0];
  }
  EXPECT_DOUBLE_EQ(last_seen, 500.0);  // the shift went through
}

TEST(ReportValidator, TrustDecaysOnDirtyRecoversOnClean) {
  AdmissionOptions o = admission_defaults();
  o.trust_decay = 0.3;
  o.trust_recovery = 0.1;
  o.min_trust = 0.05;
  ReportValidator v(1, 1, 2, o);
  EXPECT_DOUBLE_EQ(v.trust(ClusterId{0}), 1.0);
  for (int i = 0; i < 10; ++i) {
    ClusterReport r = healthy_report(100.0);
    r.ingress_rps[0] = kNaN;
    v.admit(r);
  }
  EXPECT_DOUBLE_EQ(v.trust(ClusterId{0}), 0.05);  // pinned at the floor
  for (int i = 0; i < 3; ++i) {
    ClusterReport r = healthy_report(100.0);
    v.admit(r);
  }
  EXPECT_NEAR(v.trust(ClusterId{0}), 0.35, 1e-9);  // recovering
}

TEST(ReportValidator, StructuralDamageIsDropped) {
  ReportValidator v(1, 1, 2, admission_defaults());
  ClusterReport r = healthy_report(100.0);
  // Permuted / out-of-range ids: service 7 and class 9 do not exist.
  ServiceClassMetrics bogus = r.request_metrics[0];
  bogus.service = ServiceId{7};
  r.request_metrics.push_back(bogus);
  ServiceClassMetrics bogus2 = r.request_metrics[0];
  bogus2.cls = ClassId{9};
  r.request_metrics.push_back(bogus2);
  r.ingress_rps.assign(5, 100.0);  // wrong-sized per-class vector
  EXPECT_TRUE(v.admit(r));
  EXPECT_EQ(r.request_metrics.size(), 1u);
  EXPECT_EQ(r.ingress_rps.size(), 1u);

  // A report from a cluster that does not exist is gutted whole.
  ClusterReport alien = healthy_report(100.0);
  alien.cluster = ClusterId{9};
  EXPECT_TRUE(v.admit(alien));
  EXPECT_TRUE(alien.request_metrics.empty());
  EXPECT_TRUE(alien.ingress_rps.empty());
}

TEST(ReportValidator, PoisonedE2eCellIsNeutralized) {
  ReportValidator v(1, 1, 2, admission_defaults());
  ClusterReport r = healthy_report(100.0);
  r.e2e[0].mean_latency = kNaN;
  EXPECT_TRUE(v.admit(r));
  // count -> 0 removes the cell from every weighted mean downstream.
  EXPECT_EQ(r.e2e[0].count, 0u);
}

// --- SolverGuard ------------------------------------------------------------

struct SolverFixture {
  SolverFixture()
      : scenario(make_two_cluster_chain_scenario({})),
        model(LatencyModel::from_application(*scenario.app, 2)),
        demand(scenario.app->class_count(), 2, 0.0),
        primary(*scenario.app, *scenario.deployment, *scenario.topology, {}),
        fast(*scenario.app, *scenario.deployment, *scenario.topology, {}),
        ripup(*scenario.app, *scenario.deployment, *scenario.topology, {}) {
    demand(0, 0) = 700.0;
    demand(0, 1) = 100.0;
  }
  Scenario scenario;
  LatencyModel model;
  FlatMatrix<double> demand;
  RouteOptimizer primary;
  FastRouteOptimizer fast;
  RipupRouteOptimizer ripup;
};

TEST(SolverGuard, HealthySolveSettlesOnPrimary) {
  SolverFixture f;
  SolverGuard guard(*f.scenario.app, *f.scenario.deployment,
                    *f.scenario.topology, SolverGuardOptions{});
  const auto outcome = guard.solve(f.primary, f.fast, f.ripup, false, f.model, f.demand,
                                   nullptr, nullptr, /*solver_down=*/false,
                                   /*have_last_good=*/false);
  EXPECT_EQ(outcome.rung, SolverRung::kPrimary);
  ASSERT_TRUE(outcome.result.ok());
  outcome.result.rules->validate();
  EXPECT_EQ(guard.fallbacks(), 0u);
}

TEST(SolverGuard, OutageHoldsFreshPlanThenActuatesCapacitySplit) {
  SolverFixture f;
  SolverGuardOptions o;
  o.enabled = true;
  o.hold_fresh_periods = 2;
  SolverGuard guard(*f.scenario.app, *f.scenario.deployment,
                    *f.scenario.topology, o);
  // Periods 1-2 of the outage: a fresh plan exists, so the ladder holds it
  // rather than actuating a demand-blind split.
  for (int i = 0; i < 2; ++i) {
    const auto held = guard.solve(f.primary, f.fast, f.ripup, false, f.model, f.demand,
                                  nullptr, nullptr, /*solver_down=*/true,
                                  /*have_last_good=*/true);
    EXPECT_EQ(held.rung, SolverRung::kHoldLastGood);
    EXPECT_EQ(held.result.rules, nullptr);
  }
  // Period 3: the outage drags; the split actuates.
  const auto split = guard.solve(f.primary, f.fast, f.ripup, false, f.model, f.demand,
                                 nullptr, nullptr, true, true);
  EXPECT_EQ(split.rung, SolverRung::kCapacitySplit);
  ASSERT_TRUE(split.result.ok());
  split.result.rules->validate();
  EXPECT_EQ(guard.rung_count(SolverRung::kHoldLastGood), 2u);
}

TEST(SolverGuard, OutageWithNoPlanSplitsImmediately) {
  SolverFixture f;
  SolverGuardOptions o;
  o.hold_fresh_periods = 10;
  SolverGuard guard(*f.scenario.app, *f.scenario.deployment,
                    *f.scenario.topology, o);
  // Nothing to hold: the split is the only serviceable rung.
  const auto outcome = guard.solve(f.primary, f.fast, f.ripup, false, f.model, f.demand,
                                   nullptr, nullptr, /*solver_down=*/true,
                                   /*have_last_good=*/false);
  EXPECT_EQ(outcome.rung, SolverRung::kCapacitySplit);
  ASSERT_NE(outcome.result.rules, nullptr);
}

TEST(SolverGuard, PrimaryRecoveryResetsTheDegradedStreak) {
  SolverFixture f;
  SolverGuardOptions o;
  o.hold_fresh_periods = 2;
  SolverGuard guard(*f.scenario.app, *f.scenario.deployment,
                    *f.scenario.topology, o);
  guard.solve(f.primary, f.fast, f.ripup, false, f.model, f.demand,
              nullptr, nullptr, true, true);
  guard.solve(f.primary, f.fast, f.ripup, false, f.model, f.demand,
              nullptr, nullptr, true, true);
  // Recovery: one healthy solve...
  const auto healthy = guard.solve(f.primary, f.fast, f.ripup, false, f.model, f.demand,
                                   nullptr, nullptr, false, true);
  EXPECT_EQ(healthy.rung, SolverRung::kPrimary);
  // ...re-arms the hold-fresh preference for the next outage.
  const auto held = guard.solve(f.primary, f.fast, f.ripup, false, f.model, f.demand,
                                nullptr, nullptr, true, true);
  EXPECT_EQ(held.rung, SolverRung::kHoldLastGood);
}

TEST(SolverGuard, CapacitySplitFavorsLocalAndCoversCandidates) {
  SolverFixture f;
  SolverGuardOptions o;
  o.split_local_bias = 2.0;
  o.hold_fresh_periods = 0;
  SolverGuard guard(*f.scenario.app, *f.scenario.deployment,
                    *f.scenario.topology, o);
  const auto outcome = guard.solve(f.primary, f.fast, f.ripup, false, f.model, f.demand,
                                   nullptr, nullptr, true, false);
  ASSERT_EQ(outcome.rung, SolverRung::kCapacitySplit);
  const RoutingRuleSet& rules = *outcome.result.rules;
  EXPECT_GT(rules.size(), 0u);
  rules.for_each([&](ClassId, std::size_t, ClusterId from,
                     const RouteWeights& w) {
    double sum = 0.0;
    for (const double wi : w.weights) {
      EXPECT_TRUE(std::isfinite(wi));
      sum += wi;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    // Equal capacity across clusters (east has 2x servers but the chain
    // scenario's west deploys 1): the local bias must tilt the weight
    // toward the origin relative to raw capacity share.
    const double local = w.weight_for(from);
    EXPECT_GT(local, 0.0);
  });
}

// --- RuleRollout ------------------------------------------------------------

std::shared_ptr<const RoutingRuleSet> two_cluster_rules(double local_weight) {
  auto rules = std::make_shared<RoutingRuleSet>();
  RouteWeights w;
  w.clusters = {ClusterId{0}, ClusterId{1}};
  w.weights = {local_weight, 1.0 - local_weight};
  rules->set_rule(ClassId{0}, 1, ClusterId{0}, std::move(w));
  return rules;
}

RolloutOptions rollout_defaults() {
  RolloutOptions o;
  o.enabled = true;
  o.min_samples = 10;
  return o;
}

TEST(RuleRollout, FirstPushAppliesVerbatimAndArmsCanary) {
  RuleRollout ro(rollout_defaults());
  auto target = two_cluster_rules(0.6);
  const RolloutDecision d = ro.apply(target);
  EXPECT_EQ(d.rules, target);
  EXPECT_EQ(ro.epoch(), 1u);
  EXPECT_EQ(ro.pushes(), 1u);
  // Mid-canary the caller must hold actuation.
  const RolloutDecision next = ro.observe(1000.0, 0.01, 100);
  EXPECT_TRUE(next.hold);
}

TEST(RuleRollout, CanaryRollsBackWithinTwoControlPeriods) {
  RolloutOptions o = rollout_defaults();
  o.canary_periods = 2;
  o.goodput_drop = 0.25;
  RuleRollout ro(o);

  // Establish a last-known-good set that survived its canary.
  auto good = two_cluster_rules(0.9);
  ro.apply(good);
  ro.observe(1000.0, 0.02, 100);
  ro.observe(1000.0, 0.02, 100);  // canary passes -> good is last-known-good
  EXPECT_EQ(ro.last_known_good(), good);

  // Healthy baseline recorded, then a bad push.
  ro.observe(1000.0, 0.02, 100);
  auto bad = two_cluster_rules(0.2);
  ro.apply(bad);
  // Period 1 of the canary: goodput cratered 40% -> rollback immediately,
  // well within the 2-period window.
  const RolloutDecision d = ro.observe(600.0, 0.02, 100);
  EXPECT_TRUE(d.rolled_back);
  EXPECT_EQ(d.rules, good);
  EXPECT_EQ(ro.rollbacks(), 1u);
  EXPECT_TRUE(ro.frozen());  // updates freeze while telemetry recovers
}

TEST(RuleRollout, P99RiseAloneDoesNotRollBack) {
  RolloutOptions o = rollout_defaults();
  o.p99_rise = 0.75;
  RuleRollout ro(o);
  ro.observe(1000.0, 0.02, 100);  // baseline
  ro.apply(two_cluster_rules(0.6));
  // Tail blows out 10x but goodput holds: noise, not a regression.
  const RolloutDecision d = ro.observe(990.0, 0.2, 100);
  EXPECT_FALSE(d.rolled_back);
  EXPECT_EQ(ro.rollbacks(), 0u);
}

TEST(RuleRollout, P99RiseWithGoodputSagRollsBack) {
  RolloutOptions o = rollout_defaults();
  o.goodput_drop = 0.25;
  o.p99_rise = 0.75;
  RuleRollout ro(o);
  ro.observe(1000.0, 0.02, 100);  // baseline
  ro.apply(two_cluster_rules(0.6));
  // Goodput sags 15% (short of the 25% hard trigger) while p99 doubles:
  // the corroborated tail regression rolls back.
  const RolloutDecision d = ro.observe(850.0, 0.05, 100);
  EXPECT_TRUE(d.rolled_back);
}

TEST(RuleRollout, DampingClipsOversizedSteps) {
  RolloutOptions o = rollout_defaults();
  o.max_weight_delta = 0.25;
  o.canary_periods = 0;  // isolate damping from canary holds
  RuleRollout ro(o);
  ro.apply(two_cluster_rules(1.0));
  const RolloutDecision d = ro.apply(two_cluster_rules(0.0));
  ASSERT_NE(d.rules, nullptr);
  const RouteWeights* w = d.rules->find(ClassId{0}, 1, ClusterId{0});
  ASSERT_NE(w, nullptr);
  // The 1.0 -> 0.0 jump advances by exactly the cap.
  EXPECT_NEAR(w->weight_for(ClusterId{0}), 0.75, 1e-9);
  EXPECT_EQ(ro.damped_pushes(), 1u);
}

TEST(RuleRollout, SustainedOscillationFreezesUpdates) {
  RolloutOptions o = rollout_defaults();
  o.canary_periods = 0;
  o.max_weight_delta = 1.0;  // let the flap through undamped
  o.flap_window = 2;
  o.flap_threshold = 0.3;
  o.freeze_periods = 3;
  RuleRollout ro(o);
  ro.apply(two_cluster_rules(1.0));
  ro.apply(two_cluster_rules(0.0));
  // Ring full, mean successive L1 = 2.0 > 0.3 -> freeze.
  const RolloutDecision frozen = ro.apply(two_cluster_rules(1.0));
  EXPECT_TRUE(frozen.hold);
  EXPECT_EQ(frozen.rules, nullptr);
  EXPECT_EQ(ro.flap_freezes(), 1u);
  EXPECT_TRUE(ro.frozen());
  EXPECT_LT(ro.damping_scale(), 1.0);  // damping tightened
  // The freeze ticks down through observe() and then updates resume.
  for (int i = 0; i < 3; ++i) {
    const RolloutDecision d = ro.observe(1000.0, 0.02, 100);
    EXPECT_TRUE(d.hold);
  }
  EXPECT_FALSE(ro.frozen());
}

// --- Epoch-stamped pushes ---------------------------------------------------

TEST(ClusterControllerEpoch, StalePushIsDiscarded) {
  Simulator sim;
  const Topology topo = make_two_cluster_topology(10e-3);
  MetricsRegistry registry(2, 1);
  auto policy = std::make_shared<WeightedRulesPolicy>(topo);
  ServiceStation station(sim, Rng(1), ServiceId{0}, ClusterId{0}, 1);
  ClusterController cc(ClusterId{0}, 1, registry, {&station, nullptr}, policy);

  auto newer = two_cluster_rules(0.7);
  auto older = two_cluster_rules(0.3);
  cc.push_rules(newer, 5);
  EXPECT_EQ(cc.rule_epoch(), 5u);
  // A push that raced a newer one on the wire is discarded.
  cc.push_rules(older, 3);
  EXPECT_EQ(policy->rules().get(), newer.get());
  EXPECT_EQ(cc.stale_rule_pushes(), 1u);
  EXPECT_EQ(cc.rule_epoch(), 5u);
  // Legacy unstamped pushes (epoch 0) always apply.
  cc.push_rules(older, 0);
  EXPECT_EQ(policy->rules().get(), older.get());
}

// --- End-to-end acceptance gauntlet ----------------------------------------

RunConfig chaos_config() {
  RunConfig config;
  config.policy = PolicyKind::kSlate;
  config.duration = 90.0;
  config.warmup = 10.0;
  config.seed = 17;
  config.control_period = 1.0;
  config.timeseries_bucket = 1.0;
  config.failure.enabled = true;
  config.failure.call_timeout = 0.5;
  config.failure.max_retries = 2;
  return config;
}

Scenario chaos_scenario(bool armed) {
  TwoClusterChainParams params;
  params.west_rps = 800.0;
  params.east_rps = 100.0;
  Scenario s = make_two_cluster_chain_scenario(params);
  // West's reports turn byzantine for [25, 75); the solver is down for
  // [35, 45) mid-corruption (the ext_controller_chaos gauntlet).
  s.faults.telemetry_corruption(ClusterId{0}, 25.0, 50.0, 8.0);
  s.faults.solver_outage(35.0, 10.0);
  s.guard.admission.enabled = armed;
  s.guard.solver.enabled = armed;
  s.guard.rollout.enabled = armed;
  return s;
}

TEST(GuardGauntlet, GuardedRidesOutChaosThatCollapsesUnguarded) {
  TwoClusterChainParams params;
  params.west_rps = 800.0;
  params.east_rps = 100.0;
  const ExperimentResult clean =
      run_experiment(make_two_cluster_chain_scenario(params), chaos_config());
  const ExperimentResult unguarded =
      run_experiment(chaos_scenario(false), chaos_config());
  const ExperimentResult guarded =
      run_experiment(chaos_scenario(true), chaos_config());

  const double clean_rps = clean.goodput_in_window(27.0, 75.0);
  const double unguarded_rps = unguarded.goodput_in_window(27.0, 75.0);
  const double guarded_rps = guarded.goodput_in_window(27.0, 75.0);
  ASSERT_GT(clean_rps, 500.0);  // the ceiling is a real workload

  // Unguarded: poisoned telemetry whipsaws the demand estimate; the spill
  // plan collapses and West melts down — at least 30% of goodput gone.
  EXPECT_LT(unguarded_rps, 0.7 * clean_rps);
  // Guarded: within 10% of the fault-free ceiling through the same chaos.
  EXPECT_GT(guarded_rps, 0.9 * clean_rps);

  // The unguarded rule stream flaps: per-control-period successive-push L1
  // distance at least 5x the guarded stream's.
  EXPECT_GT(unguarded.mean_rule_delta(), 5.0 * guarded.mean_rule_delta());

  // The guard earned its keep, visibly.
  EXPECT_GT(guarded.guard_spikes_clamped, 50u);
  EXPECT_GE(guarded.solver_fallbacks, 5u);   // the 10s outage rode the ladder
  EXPECT_EQ(unguarded.guard_spikes_clamped, 0u);
  EXPECT_EQ(unguarded.solver_fallbacks, 0u);
  // Unguarded still records the outage periods as holds (frozen rules).
  EXPECT_GE(unguarded.solver_holds, 5u);
}

TEST(GuardGauntlet, ScenarioGuardDirectivesCanBeDisarmed) {
  // slate_cli --no-guard: ignore_scenario_guard must strip the armed
  // gates so the unguarded arm really is unguarded.
  RunConfig config = chaos_config();
  config.duration = 40.0;
  config.ignore_scenario_guard = true;
  const ExperimentResult r = run_experiment(chaos_scenario(true), config);
  EXPECT_EQ(r.guard_spikes_clamped, 0u);
  EXPECT_EQ(r.guard_fields_rejected, 0u);
  EXPECT_EQ(r.solver_fallbacks, 0u);
}

}  // namespace
}  // namespace slate
