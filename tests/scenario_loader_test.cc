// Tests for the text scenario format.
#include <gtest/gtest.h>

#include "runtime/scenario_loader.h"
#include "runtime/simulation.h"

namespace slate {
namespace {

constexpr const char* kBasic = R"(
# comment line
scenario demo

cluster west
cluster east
rtt west east 25ms
egress_price 0.08

service ingress
service worker

class api GET /api/v1
call api root ingress compute=0.1ms req=512B resp=2KB
call api ingress worker compute=2ms req=512B resp=2KB

deploy * * servers=1 capacity=475
demand api west 400
demand api east 100
)";

TEST(ScenarioLoader, ParsesBasicScenario) {
  const Scenario s = load_scenario_from_string(kBasic);
  EXPECT_EQ(s.name, "demo");
  EXPECT_EQ(s.topology->cluster_count(), 2u);
  EXPECT_DOUBLE_EQ(
      s.topology->rtt(ClusterId{0}, ClusterId{1}), 0.025);
  EXPECT_DOUBLE_EQ(
      s.topology->egress_price_per_gb(ClusterId{0}, ClusterId{1}), 0.08);
  EXPECT_EQ(s.app->service_count(), 2u);
  EXPECT_EQ(s.app->class_count(), 1u);

  const TrafficClassSpec& spec = s.app->traffic_class(ClassId{0});
  EXPECT_EQ(spec.name, "api");
  EXPECT_EQ(spec.attributes.method, "GET");
  EXPECT_EQ(spec.attributes.path, "/api/v1");
  ASSERT_EQ(spec.graph.node_count(), 2u);
  EXPECT_DOUBLE_EQ(spec.graph.node(0).compute_time_mean, 0.1e-3);
  EXPECT_EQ(spec.graph.node(1).request_bytes, 512u);
  EXPECT_EQ(spec.graph.node(1).response_bytes, 2048u);

  EXPECT_TRUE(s.deployment->is_deployed(ServiceId{1}, ClusterId{1}));
  EXPECT_DOUBLE_EQ(s.deployment->capacity_rps(ServiceId{0}, ClusterId{0}), 475.0);
  EXPECT_DOUBLE_EQ(s.demand.rate_at(ClassId{0}, ClusterId{0}, 0.0), 400.0);
}

TEST(ScenarioLoader, ParsedScenarioRuns) {
  const Scenario s = load_scenario_from_string(kBasic);
  RunConfig config;
  config.policy = PolicyKind::kSlate;
  config.duration = 10.0;
  config.warmup = 2.0;
  const ExperimentResult r = run_experiment(s, config);
  EXPECT_GT(r.completed, 1000u);
  EXPECT_GT(r.mean_latency(), 0.0);
}

TEST(ScenarioLoader, DurationAndSizeUnits) {
  const Scenario s = load_scenario_from_string(R"(
cluster a
cluster b
one_way a b 1500us
service svc
class k
call k root svc compute=0.5ms req=1KB resp=1MB
deploy * * servers=2 capacity=100
demand k a 10
)");
  EXPECT_DOUBLE_EQ(s.topology->one_way_latency(ClusterId{0}, ClusterId{1}),
                   1.5e-3);
  EXPECT_DOUBLE_EQ(s.topology->one_way_latency(ClusterId{1}, ClusterId{0}), 0.0);
  const auto& node = s.app->traffic_class(ClassId{0}).graph.node(0);
  EXPECT_EQ(node.request_bytes, 1024u);
  EXPECT_EQ(node.response_bytes, 1024u * 1024u);
}

TEST(ScenarioLoader, DemandSteps) {
  const Scenario s = load_scenario_from_string(R"(
cluster a
service svc
class k
call k root svc compute=1ms
deploy * * servers=1 capacity=100
demand k a 50
demand k a @30s 200
)");
  EXPECT_DOUBLE_EQ(s.demand.rate_at(ClassId{0}, ClusterId{0}, 10.0), 50.0);
  EXPECT_DOUBLE_EQ(s.demand.rate_at(ClassId{0}, ClusterId{0}, 31.0), 200.0);
}

TEST(ScenarioLoader, PartialReplicationViaUndeploy) {
  const Scenario s = load_scenario_from_string(R"(
cluster a
cluster b
service front
service db
class k
call k root front compute=1ms
call k front db compute=1ms
deploy * * servers=1 capacity=100
undeploy db a
demand k a 10
)");
  EXPECT_FALSE(s.deployment->is_deployed(ServiceId{1}, ClusterId{0}));
  EXPECT_TRUE(s.deployment->is_deployed(ServiceId{1}, ClusterId{1}));
}

TEST(ScenarioLoader, LabelsDisambiguateRepeatedServices) {
  const Scenario s = load_scenario_from_string(R"(
cluster a
service front
service store
class k
call k root front compute=1ms
call k front store label=read compute=1ms
call k read store label=write compute=2ms
deploy * * servers=1 capacity=100
demand k a 10
)");
  const CallGraph& g = s.app->traffic_class(ClassId{0}).graph;
  ASSERT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.node(2).parent, 1u);
  EXPECT_DOUBLE_EQ(g.node(2).compute_time_mean, 2e-3);
}

TEST(ScenarioLoader, ParallelMode) {
  const Scenario s = load_scenario_from_string(R"(
cluster a
service root-svc
service c1
service c2
class k
call k root root-svc compute=1ms mode=par
call k root-svc c1 compute=1ms
call k root-svc c2 compute=1ms
deploy * * servers=1 capacity=100
demand k a 10
)");
  EXPECT_EQ(s.app->traffic_class(ClassId{0}).graph.node(0).mode,
            InvocationMode::kParallel);
}

// --- Diagnostics ----------------------------------------------------------------

void expect_error(const std::string& text, const std::string& fragment) {
  try {
    load_scenario_from_string(text);
    FAIL() << "expected parse error containing '" << fragment << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "actual: " << e.what();
  }
}

TEST(ScenarioLoader, ErrorsCarryLineNumbers) {
  expect_error("cluster a\nbogus directive\n", "line 2");
}

TEST(ScenarioLoader, UnknownReferencesRejected) {
  expect_error("cluster a\nrtt a nowhere 1ms\n", "unknown cluster");
  expect_error("cluster a\nservice s\nclass k\ncall k root other compute=1ms\n",
               "unknown service");
  expect_error(
      "cluster a\nservice s\nclass k\ncall k missing s compute=1ms\n",
      "unknown parent");
}

TEST(ScenarioLoader, StructuralErrorsRejected) {
  expect_error("service s\n", "no clusters");
  expect_error("cluster a\nservice s\nclass k\ndeploy * * capacity=10\ndemand k a 5\n",
               "no root call");
  expect_error(
      "cluster a\nservice s\nclass k\ncall k root s compute=1ms\n"
      "deploy * * servers=1 capacity=10\ndemand other a 5\n",
      "unknown class");
  expect_error("cluster a\ncluster a\n", "duplicate cluster");
}

TEST(ScenarioLoader, BadValuesRejected) {
  expect_error("cluster a\ncluster b\nrtt a b 5parsecs\n", "unit");
  expect_error(
      "cluster a\nservice s\nclass k\ncall k root s compute=abc\n", "bad");
  expect_error(
      "cluster a\nservice s\nclass k\ncall k root s compute=1ms\n"
      "deploy * *\ndemand k a 5\n",
      "capacity");
}

TEST(ScenarioLoader, TrailingTokensRejectedWithLineNumber) {
  expect_error("cluster a extra\n", "trailing token 'extra'");
  expect_error("cluster a\ncluster b\nrtt a b 1ms oops\n", "line 3");
  expect_error("cluster a\njitter 0.1 0.2\n", "trailing token");
  expect_error("scenario demo demo2\n", "trailing token");
}

constexpr const char* kFaultBase = R"(
cluster west
cluster east
rtt west east 25ms
service s
class k
call k root s compute=1ms
deploy * * servers=1 capacity=100
demand k west 50
)";

TEST(ScenarioLoader, ParsesFaultDirectives) {
  const Scenario s = load_scenario_from_string(
      std::string(kFaultBase) +
      "fault outage east @40s 10s\n"
      "fault blackout west @70s 12s\n"
      "fault slowdown s west @5s 3s factor=4\n"
      "fault slowdown s * @6s 1s factor=2\n"
      "fault link west east @10s 5s factor=3 extra=50ms\n"
      "fault link east west @10s 5s partition\n");
  ASSERT_EQ(s.faults.size(), 6u);
  const auto& f = s.faults.faults();

  EXPECT_EQ(f[0].kind, FaultKind::kClusterOutage);
  EXPECT_EQ(f[0].cluster, ClusterId{1});
  EXPECT_DOUBLE_EQ(f[0].start, 40.0);
  EXPECT_DOUBLE_EQ(f[0].duration, 10.0);

  EXPECT_EQ(f[1].kind, FaultKind::kTelemetryBlackout);
  EXPECT_EQ(f[1].cluster, ClusterId{0});

  EXPECT_EQ(f[2].kind, FaultKind::kServiceSlowdown);
  EXPECT_EQ(f[2].service, ServiceId{0});
  EXPECT_EQ(f[2].cluster, ClusterId{0});
  EXPECT_DOUBLE_EQ(f[2].factor, 4.0);
  EXPECT_FALSE(f[3].cluster.valid());  // '*' = every cluster

  EXPECT_EQ(f[4].kind, FaultKind::kLinkDegradation);
  EXPECT_DOUBLE_EQ(f[4].factor, 3.0);
  EXPECT_DOUBLE_EQ(f[4].extra_latency, 0.05);
  EXPECT_FALSE(f[4].partition);
  EXPECT_TRUE(f[5].partition);
  EXPECT_EQ(f[5].cluster, ClusterId{1});
  EXPECT_EQ(f[5].to, ClusterId{0});
}

TEST(ScenarioLoader, FaultDirectiveForwardReferencesResolve) {
  // Faults may appear before the clusters/services they name.
  const Scenario s = load_scenario_from_string(
      "fault outage east @40s 10s\n" + std::string(kFaultBase));
  ASSERT_EQ(s.faults.size(), 1u);
  EXPECT_EQ(s.faults.faults()[0].cluster, ClusterId{1});
}

TEST(ScenarioLoader, BadFaultDirectivesRejected) {
  const std::string base = kFaultBase;
  expect_error(base + "fault meteor west @1s 2s\n", "unknown fault kind");
  expect_error(base + "fault outage nowhere @1s 2s\n", "unknown cluster");
  expect_error(base + "fault slowdown bogus west @1s 2s factor=2\n",
               "unknown service");
  expect_error(base + "fault outage east 1s 2s\n", "expected @<start-time>");
  expect_error(base + "fault outage east @1s 2s extra=1ms\n",
               "trailing token");
  expect_error(base + "fault slowdown s west @1s 2s\n", "requires factor");
  expect_error(base + "fault link west east @1s 2s\n", "needs an effect");
  expect_error(base + "fault link west west @1s 2s partition\n", "line 10");
  expect_error(base + "fault outage east @1s 0s\n", "line 10");
  expect_error(base + "fault slowdown s west @1s 2s factor=2 partition\n",
               "key=value");
}

TEST(ScenarioLoader, MissingFileThrows) {
  EXPECT_THROW(load_scenario_from_file("/nonexistent/path.slate"),
               std::runtime_error);
}

// --- Loader hardening: values that used to wrap, truncate, or slip through

TEST(ScenarioLoader, NegativeAndMalformedValuesRejected) {
  expect_error("cluster a\ncluster b\nrtt a b -5ms\n", "negative duration");
  expect_error(
      "cluster a\nservice s\nclass k\ncall k root s compute=1ms req=-4KB\n",
      "negative size");
  expect_error(
      "cluster a\nservice s\nclass k\ncall k root s compute=1ms\n"
      "deploy * * servers=-2 capacity=10\ndemand k a 5\n",
      "servers must be >= 1");
  expect_error(
      "cluster a\nservice s\nclass k\ncall k root s compute=1ms\n"
      "deploy * * servers=1.5 capacity=10\ndemand k a 5\n",
      "servers must be an integer");
  expect_error(
      "cluster a\nservice s\nclass k\ncall k root s compute=1ms\n"
      "deploy * * servers=1 capacity=10\ndemand k a -5\n",
      "demand");
  expect_error("cluster a\negress_price -0.1\n", "egress_price");
}

TEST(ScenarioLoader, NonPositiveFaultFactorRejected) {
  const std::string base = kFaultBase;
  expect_error(base + "fault slowdown s west @1s 2s factor=0\n",
               "factor must be > 0");
  expect_error(base + "fault slowdown s west @1s 2s factor=-3\n",
               "factor must be > 0");
}

// --- Overload directives ---------------------------------------------------

TEST(ScenarioLoader, ParsesOverloadDirectives) {
  const Scenario s = load_scenario_from_string(
      std::string(kFaultBase) +
      "overload queue limit=64 codel_target=20ms codel_interval=100ms "
      "priority_shedding=off\n"
      "overload deadline 500ms propagate=off\n"
      "overload priority k 7\n"
      "overload breaker window=4s ratio=0.6 min_volume=15 eject=3s "
      "max_eject=30s probes=2\n");
  const OverloadPolicy& p = s.overload;
  EXPECT_EQ(p.queue.max_queue, 64u);
  EXPECT_DOUBLE_EQ(p.queue.codel_target, 0.02);
  EXPECT_DOUBLE_EQ(p.queue.codel_interval, 0.1);
  EXPECT_FALSE(p.queue.priority_shedding);
  EXPECT_TRUE(p.queue.enabled());

  EXPECT_TRUE(p.deadline.enabled);
  EXPECT_DOUBLE_EQ(p.deadline.default_deadline, 0.5);
  EXPECT_FALSE(p.deadline.propagate);

  ASSERT_EQ(p.queue.class_priority.size(), 1u);
  EXPECT_EQ(p.queue.class_priority[0], 7);
  EXPECT_EQ(p.queue.priority_of(ClassId{0}), 7);

  EXPECT_TRUE(p.breaker.enabled);
  EXPECT_DOUBLE_EQ(p.breaker.window, 4.0);
  EXPECT_DOUBLE_EQ(p.breaker.failure_ratio, 0.6);
  EXPECT_EQ(p.breaker.min_volume, 15u);
  EXPECT_DOUBLE_EQ(p.breaker.ejection_base, 3.0);
  EXPECT_DOUBLE_EQ(p.breaker.max_ejection, 30.0);
  EXPECT_EQ(p.breaker.half_open_probes, 2u);
  EXPECT_TRUE(p.any_enabled());
}

TEST(ScenarioLoader, PerClassDeadlineEnablesAndResolvesForwardReferences) {
  // The per-class form appears before the class declaration and still
  // resolves; it also switches deadlines on by itself.
  const Scenario s = load_scenario_from_string(
      "overload deadline k 2s\n" + std::string(kFaultBase));
  EXPECT_TRUE(s.overload.deadline.enabled);
  ASSERT_EQ(s.overload.deadline.per_class.size(), 1u);
  EXPECT_DOUBLE_EQ(s.overload.deadline.per_class[0], 2.0);
  EXPECT_DOUBLE_EQ(s.overload.deadline.deadline_for(ClassId{0}), 2.0);
}

TEST(ScenarioLoader, BareBreakerDirectiveEnablesDefaults) {
  const Scenario s =
      load_scenario_from_string(std::string(kFaultBase) + "overload breaker\n");
  EXPECT_TRUE(s.overload.breaker.enabled);
  EXPECT_DOUBLE_EQ(s.overload.breaker.window, BreakerPolicy{}.window);
}

TEST(ScenarioLoader, OverloadScenarioRunsEndToEnd) {
  const Scenario s = load_scenario_from_string(
      std::string(kFaultBase) + "overload queue limit=32\n"
                                "overload deadline 300ms\n");
  RunConfig config;
  config.policy = PolicyKind::kLocalOnly;
  config.duration = 10.0;
  config.warmup = 2.0;
  const ExperimentResult r = run_experiment(s, config);
  EXPECT_GT(r.completed, 100u);
}

TEST(ScenarioLoader, BadOverloadDirectivesRejected) {
  const std::string base = kFaultBase;
  expect_error(base + "overload\n", "overload <queue|deadline");
  expect_error(base + "overload meteor limit=3\n", "unknown overload kind");
  expect_error(base + "overload queue\n", "overload queue limit");
  expect_error(base + "overload queue limit=-1\n", "limit must be >= 0");
  expect_error(base + "overload queue limit=2.5\n", "limit must be an integer");
  expect_error(base + "overload queue codel_target=0s\n",
               "codel_target must be > 0");
  expect_error(base + "overload queue bogus=1\n",
               "unknown overload queue attribute");
  expect_error(base + "overload queue limit\n", "expected key=value");
  expect_error(base + "overload deadline 0s\n", "deadline must be > 0");
  expect_error(base + "overload deadline -1s\n", "negative duration");
  expect_error(base + "overload deadline 1s propagate=maybe\n",
               "propagate must be on or off");
  expect_error(base + "overload deadline 1s retry=2\n",
               "unknown overload deadline attribute");
  expect_error(base + "overload deadline nope 1s\n", "unknown class 'nope'");
  expect_error(base + "overload priority nope 3\n", "unknown class 'nope'");
  expect_error(base + "overload priority k 1.5\n",
               "priority level must be an integer");
  expect_error(base + "overload priority k 1 extra\n", "overload priority");
  expect_error(base + "overload breaker ratio=0\n", "ratio must be in (0, 1]");
  expect_error(base + "overload breaker ratio=1.2\n", "ratio must be in (0, 1]");
  expect_error(base + "overload breaker window=0s\n", "window must be > 0");
  expect_error(base + "overload breaker min_volume=0\n",
               "min_volume must be >= 1");
  expect_error(base + "overload breaker probes=0\n", "probes must be >= 1");
  expect_error(base + "overload breaker spin=7\n",
               "unknown overload breaker attribute");
  // Errors carry the directive's source line.
  expect_error(base + "overload queue limit=-1\n", "line 10");
}

// --- Guard directives -------------------------------------------------------

TEST(ScenarioLoader, ParsesGuardDirectives) {
  const Scenario s = load_scenario_from_string(
      std::string(kFaultBase) +
      "guard admission threshold=6 window=32 min_history=4 trust_decay=0.5\n"
      "guard solver budget=100ms enforce_budget=on local_bias=3\n"
      "guard rollout max_delta=0.2 canary=3 goodput_drop=0.3 freeze=5\n");
  EXPECT_TRUE(s.guard.admission.enabled);
  EXPECT_DOUBLE_EQ(s.guard.admission.mad_threshold, 6.0);
  EXPECT_EQ(s.guard.admission.mad_window, 32u);
  EXPECT_EQ(s.guard.admission.min_history, 4u);
  EXPECT_DOUBLE_EQ(s.guard.admission.trust_decay, 0.5);
  EXPECT_TRUE(s.guard.solver.enabled);
  EXPECT_DOUBLE_EQ(s.guard.solver.wall_budget, 0.1);
  EXPECT_TRUE(s.guard.solver.enforce_budget);
  EXPECT_DOUBLE_EQ(s.guard.solver.split_local_bias, 3.0);
  EXPECT_TRUE(s.guard.rollout.enabled);
  EXPECT_DOUBLE_EQ(s.guard.rollout.max_weight_delta, 0.2);
  EXPECT_EQ(s.guard.rollout.canary_periods, 3u);
  EXPECT_DOUBLE_EQ(s.guard.rollout.goodput_drop, 0.3);
  EXPECT_EQ(s.guard.rollout.freeze_periods, 5u);
}

TEST(ScenarioLoader, BareGuardDirectivesEnableDefaults) {
  const Scenario s = load_scenario_from_string(std::string(kFaultBase) +
                                               "guard admission\n");
  EXPECT_TRUE(s.guard.admission.enabled);
  EXPECT_FALSE(s.guard.solver.enabled);
  EXPECT_FALSE(s.guard.rollout.enabled);
}

TEST(ScenarioLoader, BadGuardDirectivesRejected) {
  const std::string base = kFaultBase;
  expect_error(base + "guard turbo\n", "unknown guard kind");
  expect_error(base + "guard admission threshold=0\n", "threshold must be > 0");
  expect_error(base + "guard admission window=500\n", "window must be <= 256");
  expect_error(base + "guard rollout max_delta=2\n", "max_delta must be in");
  expect_error(base + "guard rollout bogus=1\n",
               "unknown guard rollout attribute");
  expect_error(base + "guard solver local_bias=0.5\n", "local_bias must be >= 1");
}

TEST(ScenarioLoader, ParsesControlPlaneFaultDirectives) {
  const Scenario s = load_scenario_from_string(
      std::string(kFaultBase) +
      "fault corrupt west @25s 50s factor=8\n"
      "fault solver @35s 10s\n");
  ASSERT_EQ(s.faults.size(), 2u);
  const auto& f = s.faults.faults();
  EXPECT_EQ(f[0].kind, FaultKind::kTelemetryCorruption);
  EXPECT_EQ(f[0].cluster, ClusterId{0});
  EXPECT_DOUBLE_EQ(f[0].start, 25.0);
  EXPECT_DOUBLE_EQ(f[0].duration, 50.0);
  EXPECT_DOUBLE_EQ(f[0].factor, 8.0);
  EXPECT_EQ(f[1].kind, FaultKind::kSolverOutage);
  EXPECT_DOUBLE_EQ(f[1].start, 35.0);
}

// --- Duplicate deploy targets ----------------------------------------------

TEST(ScenarioLoader, DuplicateExplicitDeployTargetsRejected) {
  const std::string base =
      "cluster west\ncluster east\nrtt west east 20ms\n"
      "service s\nclass k\ncall k root s compute=1ms\n";
  // Two explicit deploys of the same (service, cluster): the second would
  // silently overwrite the first.
  expect_error(base +
                   "deploy s west servers=1 capacity=100\n"
                   "deploy s west servers=4 capacity=900\n"
                   "demand k west 10\n",
               "duplicate deploy target 's west'");
  // The error names the first declaration's line (line 7 here).
  expect_error(base +
                   "deploy s west servers=1 capacity=100\n"
                   "deploy s west servers=4 capacity=900\n"
                   "demand k west 10\n",
               "line 7");
  // Duplicate undeploys of the same target are equally a spec mistake.
  expect_error(base +
                   "deploy * * servers=1 capacity=100\n"
                   "undeploy s east\nundeploy s east\n"
                   "demand k west 10\n",
               "duplicate undeploy target 's east'");
}

TEST(ScenarioLoader, WildcardThenSpecificOverrideStillAllowed) {
  // `deploy * *` followed by a specific override is the documented idiom
  // and must keep working.
  const Scenario s = load_scenario_from_string(
      "cluster west\ncluster east\nrtt west east 20ms\n"
      "service s\nclass k\ncall k root s compute=1ms\n"
      "deploy * * servers=1 capacity=100\n"
      "deploy s west servers=4 capacity=900\n"
      "demand k west 10\n");
  EXPECT_EQ(s.deployment->servers(ServiceId{0}, ClusterId{0}), 4u);
  EXPECT_EQ(s.deployment->servers(ServiceId{0}, ClusterId{1}), 1u);
}

// --- Demand generators & forecast directives --------------------------------

TEST(ScenarioLoader, ParsesDemandGeneratorDirectives) {
  const Scenario s = load_scenario_from_string(
      std::string(kFaultBase) +
      "demand diurnal k east base=100 amp=50 period=10s until=20s step=5s\n");
  // Midpoint-sampled segments at t = 2.5, 7.5, ...: sin(pi/2) and
  // sin(3pi/2) -> 150 / 50 alternating.
  EXPECT_NEAR(s.demand.rate_at(ClassId{0}, ClusterId{1}, 0.0), 150.0, 1e-9);
  EXPECT_NEAR(s.demand.rate_at(ClassId{0}, ClusterId{1}, 5.0), 50.0, 1e-9);
  EXPECT_NEAR(s.demand.rate_at(ClassId{0}, ClusterId{1}, 10.0), 150.0, 1e-9);
  // The plain-step directive from the base is untouched.
  EXPECT_DOUBLE_EQ(s.demand.rate_at(ClassId{0}, ClusterId{0}, 0.0), 50.0);

  const Scenario ramp = load_scenario_from_string(
      std::string(kFaultBase) +
      "demand ramp k east @5s 10s from=10 to=110 step=5s\n");
  EXPECT_DOUBLE_EQ(ramp.demand.rate_at(ClassId{0}, ClusterId{1}, 4.9), 0.0);
  EXPECT_NEAR(ramp.demand.rate_at(ClassId{0}, ClusterId{1}, 5.0), 35.0, 1e-9);
  EXPECT_NEAR(ramp.demand.rate_at(ClassId{0}, ClusterId{1}, 12.0), 85.0, 1e-9);
  EXPECT_DOUBLE_EQ(ramp.demand.rate_at(ClassId{0}, ClusterId{1}, 15.0), 110.0);

  const Scenario pulse = load_scenario_from_string(
      std::string(kFaultBase) +
      "demand pulse k east @2s 3s base=10 peak=99\n");
  EXPECT_DOUBLE_EQ(pulse.demand.rate_at(ClassId{0}, ClusterId{1}, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(pulse.demand.rate_at(ClassId{0}, ClusterId{1}, 2.0), 99.0);
  EXPECT_DOUBLE_EQ(pulse.demand.rate_at(ClassId{0}, ClusterId{1}, 5.0), 10.0);
}

TEST(ScenarioLoader, ParsesForecastDirective) {
  const Scenario s = load_scenario_from_string(
      std::string(kFaultBase) +
      "forecast holtwinters season=30 hw_alpha=0.5 hw_beta=0.2 hw_gamma=0.4 "
      "backtest=9 min_history=3 smape_scale=0.8 max_confidence=0.5\n");
  EXPECT_EQ(s.forecast.kind, ForecastKind::kHoltWinters);
  EXPECT_EQ(s.forecast.season, 30u);
  EXPECT_DOUBLE_EQ(s.forecast.hw_alpha, 0.5);
  EXPECT_DOUBLE_EQ(s.forecast.hw_beta, 0.2);
  EXPECT_DOUBLE_EQ(s.forecast.hw_gamma, 0.4);
  EXPECT_EQ(s.forecast.backtest_window, 9u);
  EXPECT_EQ(s.forecast.min_history, 3u);
  EXPECT_DOUBLE_EQ(s.forecast.smape_scale, 0.8);
  EXPECT_DOUBLE_EQ(s.forecast.max_confidence, 0.5);
  s.forecast.validate();

  const Scenario bare =
      load_scenario_from_string(std::string(kFaultBase) + "forecast ewma\n");
  EXPECT_EQ(bare.forecast.kind, ForecastKind::kEwma);
  // Unarmed scenarios stay reactive.
  const Scenario none = load_scenario_from_string(std::string(kFaultBase));
  EXPECT_EQ(none.forecast.kind, ForecastKind::kNone);
}

TEST(ScenarioLoader, BadDemandGeneratorDirectivesRejected) {
  const std::string base = kFaultBase;
  expect_error(base + "demand diurnal k east base=100 amp=50\n",
               "usage: demand diurnal");
  expect_error(base + "demand diurnal k east base=100 amp=50 period=5s "
                      "until=0s\n",
               "diurnal: need 0 <= start < until");
  expect_error(base + "demand diurnal k east base=1 amp=1 period=5s "
                      "until=10s spin=3\n",
               "unknown demand diurnal attribute");
  expect_error(base + "demand diurnal nope east base=1 amp=1 period=5s "
                      "until=10s\n",
               "unknown class 'nope'");
  expect_error(base + "demand ramp k east 5s 10s from=1 to=2\n",
               "expected @<start-time>");
  expect_error(base + "demand ramp k east @5s 10s from=1\n",
               "usage: demand ramp");
  expect_error(base + "demand pulse k east @2s 0s base=1 peak=2\n",
               "pulse: width must be > 0");
  // A generator whose steps collide with an earlier directive for the same
  // stream is rejected, not silently merged.
  expect_error(base + "demand pulse k west @2s 3s base=1 peak=2\n",
               "increasing time order");
  // Errors carry the directive's source line.
  expect_error(base + "demand diurnal k east base=100 amp=50\n", "line 10");
}

TEST(ScenarioLoader, BadForecastDirectivesRejected) {
  const std::string base = kFaultBase;
  expect_error(base + "forecast\n", "forecast <none|last");
  expect_error(base + "forecast arima\n", "unknown forecast kind");
  expect_error(base + "forecast ewma alpha=2\n", "alpha must be in (0, 1]");
  expect_error(base + "forecast ewma alpha\n", "expected key=value");
  expect_error(base + "forecast linear window=1\n", "window");
  expect_error(base + "forecast holtwinters season=1\n", "season");
  expect_error(base + "forecast holtwinters hw_beta=2\n",
               "hw_beta must be in [0, 1]");
  expect_error(base + "forecast last backtest=0\n", "backtest");
  expect_error(base + "forecast last smape_scale=0\n",
               "smape_scale must be > 0");
  expect_error(base + "forecast last max_confidence=2\n",
               "max_confidence must be in [0, 1]");
  expect_error(base + "forecast last turbo=1\n", "unknown forecast attribute");
  expect_error(base + "forecast arima\n", "line 10");
}

TEST(ScenarioLoader, SampleFilesParse) {
  // The shipped sample scenarios must stay valid.
  for (const char* path : {"examples/scenarios/two_cluster_overload.slate",
                           "examples/scenarios/burst.slate",
                           "examples/scenarios/anomaly_detection.slate",
                           "examples/scenarios/cluster_outage.slate",
                           "examples/scenarios/metastable_burst.slate",
                           "examples/scenarios/controller_chaos.slate",
                           "examples/scenarios/diurnal_predictive.slate",
                           "examples/scenarios/region_evacuation.slate"}) {
    SCOPED_TRACE(path);
    std::string full = std::string(SLATE_SOURCE_DIR) + "/" + path;
    EXPECT_NO_THROW({
      const Scenario s = load_scenario_from_file(full);
      s.app->validate();
      s.deployment->validate();
    });
  }
}

// --- Contingency / drain / campaign directives -----------------------------

TEST(ScenarioLoader, ParsesContingencyDirective) {
  const std::string base = kFaultBase;
  const Scenario bare = load_scenario_from_string(base + "contingency\n");
  EXPECT_TRUE(bare.contingency.enabled);
  EXPECT_DOUBLE_EQ(bare.contingency.max_post_failure_utilization, 0.95);

  const Scenario s = load_scenario_from_string(
      base + "contingency cap=0.9 pad_step=0.04 min_cap=0.4 hysteresis=0.02\n");
  EXPECT_TRUE(s.contingency.enabled);
  EXPECT_DOUBLE_EQ(s.contingency.max_post_failure_utilization, 0.9);
  EXPECT_DOUBLE_EQ(s.contingency.pad_step, 0.04);
  EXPECT_DOUBLE_EQ(s.contingency.min_utilization, 0.4);
  EXPECT_DOUBLE_EQ(s.contingency.relax_hysteresis, 0.02);
}

TEST(ScenarioLoader, BadContingencyDirectivesRejected) {
  const std::string base = kFaultBase;  // 9 content lines; directive is line 10
  expect_error(base + "contingency cap=1.5\n", "cap must be in (0, 1]");
  expect_error(base + "contingency cap=0\n", "line 10");
  expect_error(base + "contingency pad_step=1\n", "pad_step must be in (0, 1)");
  expect_error(base + "contingency hysteresis=-0.1\n", "hysteresis");
  expect_error(base + "contingency cap=0.5 min_cap=0.7\n",
               "contingency needs min_cap <= cap");
  expect_error(base + "contingency frobnicate=1\n",
               "unknown contingency attribute");
}

TEST(ScenarioLoader, ParsesDrainDirective) {
  const Scenario s = load_scenario_from_string(
      std::string(kFaultBase) + "drain east @30s over=10s step=0.2 sag=0.9\n");
  ASSERT_EQ(s.drains.size(), 1u);
  EXPECT_EQ(s.drains[0].cluster, ClusterId{1});
  EXPECT_DOUBLE_EQ(s.drains[0].start, 30.0);
  EXPECT_DOUBLE_EQ(s.drains[0].over, 10.0);
  EXPECT_DOUBLE_EQ(s.drains[0].step, 0.2);
  EXPECT_DOUBLE_EQ(s.drains[0].sag_threshold, 0.9);
}

TEST(ScenarioLoader, DrainDirectiveForwardReferencesResolve) {
  const Scenario s = load_scenario_from_string(
      "drain east @5s over=4s\n" + std::string(kFaultBase));
  ASSERT_EQ(s.drains.size(), 1u);
  EXPECT_EQ(s.drains[0].cluster, ClusterId{1});
}

TEST(ScenarioLoader, BadDrainDirectivesRejected) {
  const std::string base = kFaultBase;
  expect_error(base + "drain nowhere @5s over=4s\n", "unknown cluster");
  expect_error(base + "drain east 5s over=4s\n", "expected @<start-time>");
  expect_error(base + "drain east @5s step=0.5\n",
               "drain requires over=<duration>");
  expect_error(base + "drain east @5s over=0s\n", "over must be > 0");
  expect_error(base + "drain east @5s over=4s step=2\n",
               "step must be in (0, 1]");
  expect_error(base + "drain east @5s over=4s sag=1\n", "sag must be in (0, 1)");
  expect_error(base + "drain east @5s over=4s color=red\n",
               "unknown drain attribute");
  expect_error(base + "drain east @5s over=4s\ndrain east @5s over=4s\nxx\n",
               "line 12");  // errors carry the right line past multiple drains
}

TEST(ScenarioLoader, CampaignExpandsDeterministically) {
  const std::string text =
      std::string(kFaultBase) +
      "fault campaign seed=5 events=6 start=20s spacing=8s "
      "kinds=outage,drain\n";
  const Scenario a = load_scenario_from_string(text);
  const Scenario b = load_scenario_from_string(text);
  EXPECT_EQ(a.faults.size() + a.drains.size(), 6u);
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults.faults()[i].kind, FaultKind::kClusterOutage);
    EXPECT_EQ(a.faults.faults()[i].kind, b.faults.faults()[i].kind);
    EXPECT_DOUBLE_EQ(a.faults.faults()[i].start, b.faults.faults()[i].start);
    EXPECT_EQ(a.faults.faults()[i].cluster, b.faults.faults()[i].cluster);
    EXPECT_GE(a.faults.faults()[i].start, 20.0);
  }
  ASSERT_EQ(a.drains.size(), b.drains.size());
  for (std::size_t i = 0; i < a.drains.size(); ++i) {
    EXPECT_EQ(a.drains[i].cluster, b.drains[i].cluster);
    EXPECT_DOUBLE_EQ(a.drains[i].start, b.drains[i].start);
    EXPECT_DOUBLE_EQ(a.drains[i].over, b.drains[i].over);
  }
}

TEST(ScenarioLoader, BadCampaignDirectivesRejected) {
  const std::string base = kFaultBase;
  expect_error(base + "fault campaign seed=5\n",
               "fault campaign requires events=<k>");
  expect_error(base + "fault campaign seed=5 events=0\n", "events");
  expect_error(base + "fault campaign events=3 kinds=meteor\n",
               "unknown campaign kind");
  expect_error(base + "fault campaign events=3 bogus=1\n",
               "unknown campaign attribute");
  expect_error(base + "fault campaign events=3 spacing=0s\n",
               "spacing must be > 0");
  // Expansion failures surface on the campaign's line: a world with one
  // cluster cannot host partitions.
  expect_error(
      "cluster solo\nservice s\nclass k\ncall k root s compute=1ms\n"
      "deploy * * servers=1 capacity=100\ndemand k solo 5\n"
      "fault campaign events=2 kinds=partition\n",
      "line 7");
}

}  // namespace
}  // namespace slate
