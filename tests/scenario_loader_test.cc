// Tests for the text scenario format.
#include <gtest/gtest.h>

#include "runtime/scenario_loader.h"
#include "runtime/simulation.h"

namespace slate {
namespace {

constexpr const char* kBasic = R"(
# comment line
scenario demo

cluster west
cluster east
rtt west east 25ms
egress_price 0.08

service ingress
service worker

class api GET /api/v1
call api root ingress compute=0.1ms req=512B resp=2KB
call api ingress worker compute=2ms req=512B resp=2KB

deploy * * servers=1 capacity=475
demand api west 400
demand api east 100
)";

TEST(ScenarioLoader, ParsesBasicScenario) {
  const Scenario s = load_scenario_from_string(kBasic);
  EXPECT_EQ(s.name, "demo");
  EXPECT_EQ(s.topology->cluster_count(), 2u);
  EXPECT_DOUBLE_EQ(
      s.topology->rtt(ClusterId{0}, ClusterId{1}), 0.025);
  EXPECT_DOUBLE_EQ(
      s.topology->egress_price_per_gb(ClusterId{0}, ClusterId{1}), 0.08);
  EXPECT_EQ(s.app->service_count(), 2u);
  EXPECT_EQ(s.app->class_count(), 1u);

  const TrafficClassSpec& spec = s.app->traffic_class(ClassId{0});
  EXPECT_EQ(spec.name, "api");
  EXPECT_EQ(spec.attributes.method, "GET");
  EXPECT_EQ(spec.attributes.path, "/api/v1");
  ASSERT_EQ(spec.graph.node_count(), 2u);
  EXPECT_DOUBLE_EQ(spec.graph.node(0).compute_time_mean, 0.1e-3);
  EXPECT_EQ(spec.graph.node(1).request_bytes, 512u);
  EXPECT_EQ(spec.graph.node(1).response_bytes, 2048u);

  EXPECT_TRUE(s.deployment->is_deployed(ServiceId{1}, ClusterId{1}));
  EXPECT_DOUBLE_EQ(s.deployment->capacity_rps(ServiceId{0}, ClusterId{0}), 475.0);
  EXPECT_DOUBLE_EQ(s.demand.rate_at(ClassId{0}, ClusterId{0}, 0.0), 400.0);
}

TEST(ScenarioLoader, ParsedScenarioRuns) {
  const Scenario s = load_scenario_from_string(kBasic);
  RunConfig config;
  config.policy = PolicyKind::kSlate;
  config.duration = 10.0;
  config.warmup = 2.0;
  const ExperimentResult r = run_experiment(s, config);
  EXPECT_GT(r.completed, 1000u);
  EXPECT_GT(r.mean_latency(), 0.0);
}

TEST(ScenarioLoader, DurationAndSizeUnits) {
  const Scenario s = load_scenario_from_string(R"(
cluster a
cluster b
one_way a b 1500us
service svc
class k
call k root svc compute=0.5ms req=1KB resp=1MB
deploy * * servers=2 capacity=100
demand k a 10
)");
  EXPECT_DOUBLE_EQ(s.topology->one_way_latency(ClusterId{0}, ClusterId{1}),
                   1.5e-3);
  EXPECT_DOUBLE_EQ(s.topology->one_way_latency(ClusterId{1}, ClusterId{0}), 0.0);
  const auto& node = s.app->traffic_class(ClassId{0}).graph.node(0);
  EXPECT_EQ(node.request_bytes, 1024u);
  EXPECT_EQ(node.response_bytes, 1024u * 1024u);
}

TEST(ScenarioLoader, DemandSteps) {
  const Scenario s = load_scenario_from_string(R"(
cluster a
service svc
class k
call k root svc compute=1ms
deploy * * servers=1 capacity=100
demand k a 50
demand k a @30s 200
)");
  EXPECT_DOUBLE_EQ(s.demand.rate_at(ClassId{0}, ClusterId{0}, 10.0), 50.0);
  EXPECT_DOUBLE_EQ(s.demand.rate_at(ClassId{0}, ClusterId{0}, 31.0), 200.0);
}

TEST(ScenarioLoader, PartialReplicationViaUndeploy) {
  const Scenario s = load_scenario_from_string(R"(
cluster a
cluster b
service front
service db
class k
call k root front compute=1ms
call k front db compute=1ms
deploy * * servers=1 capacity=100
undeploy db a
demand k a 10
)");
  EXPECT_FALSE(s.deployment->is_deployed(ServiceId{1}, ClusterId{0}));
  EXPECT_TRUE(s.deployment->is_deployed(ServiceId{1}, ClusterId{1}));
}

TEST(ScenarioLoader, LabelsDisambiguateRepeatedServices) {
  const Scenario s = load_scenario_from_string(R"(
cluster a
service front
service store
class k
call k root front compute=1ms
call k front store label=read compute=1ms
call k read store label=write compute=2ms
deploy * * servers=1 capacity=100
demand k a 10
)");
  const CallGraph& g = s.app->traffic_class(ClassId{0}).graph;
  ASSERT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.node(2).parent, 1u);
  EXPECT_DOUBLE_EQ(g.node(2).compute_time_mean, 2e-3);
}

TEST(ScenarioLoader, ParallelMode) {
  const Scenario s = load_scenario_from_string(R"(
cluster a
service root-svc
service c1
service c2
class k
call k root root-svc compute=1ms mode=par
call k root-svc c1 compute=1ms
call k root-svc c2 compute=1ms
deploy * * servers=1 capacity=100
demand k a 10
)");
  EXPECT_EQ(s.app->traffic_class(ClassId{0}).graph.node(0).mode,
            InvocationMode::kParallel);
}

// --- Diagnostics ----------------------------------------------------------------

void expect_error(const std::string& text, const std::string& fragment) {
  try {
    load_scenario_from_string(text);
    FAIL() << "expected parse error containing '" << fragment << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "actual: " << e.what();
  }
}

TEST(ScenarioLoader, ErrorsCarryLineNumbers) {
  expect_error("cluster a\nbogus directive\n", "line 2");
}

TEST(ScenarioLoader, UnknownReferencesRejected) {
  expect_error("cluster a\nrtt a nowhere 1ms\n", "unknown cluster");
  expect_error("cluster a\nservice s\nclass k\ncall k root other compute=1ms\n",
               "unknown service");
  expect_error(
      "cluster a\nservice s\nclass k\ncall k missing s compute=1ms\n",
      "unknown parent");
}

TEST(ScenarioLoader, StructuralErrorsRejected) {
  expect_error("service s\n", "no clusters");
  expect_error("cluster a\nservice s\nclass k\ndeploy * * capacity=10\ndemand k a 5\n",
               "no root call");
  expect_error(
      "cluster a\nservice s\nclass k\ncall k root s compute=1ms\n"
      "deploy * * servers=1 capacity=10\ndemand other a 5\n",
      "unknown class");
  expect_error("cluster a\ncluster a\n", "duplicate cluster");
}

TEST(ScenarioLoader, BadValuesRejected) {
  expect_error("cluster a\ncluster b\nrtt a b 5parsecs\n", "unit");
  expect_error(
      "cluster a\nservice s\nclass k\ncall k root s compute=abc\n", "bad");
  expect_error(
      "cluster a\nservice s\nclass k\ncall k root s compute=1ms\n"
      "deploy * *\ndemand k a 5\n",
      "capacity");
}

TEST(ScenarioLoader, TrailingTokensRejectedWithLineNumber) {
  expect_error("cluster a extra\n", "trailing token 'extra'");
  expect_error("cluster a\ncluster b\nrtt a b 1ms oops\n", "line 3");
  expect_error("cluster a\njitter 0.1 0.2\n", "trailing token");
  expect_error("scenario demo demo2\n", "trailing token");
}

constexpr const char* kFaultBase = R"(
cluster west
cluster east
rtt west east 25ms
service s
class k
call k root s compute=1ms
deploy * * servers=1 capacity=100
demand k west 50
)";

TEST(ScenarioLoader, ParsesFaultDirectives) {
  const Scenario s = load_scenario_from_string(
      std::string(kFaultBase) +
      "fault outage east @40s 10s\n"
      "fault blackout west @70s 12s\n"
      "fault slowdown s west @5s 3s factor=4\n"
      "fault slowdown s * @6s 1s factor=2\n"
      "fault link west east @10s 5s factor=3 extra=50ms\n"
      "fault link east west @10s 5s partition\n");
  ASSERT_EQ(s.faults.size(), 6u);
  const auto& f = s.faults.faults();

  EXPECT_EQ(f[0].kind, FaultKind::kClusterOutage);
  EXPECT_EQ(f[0].cluster, ClusterId{1});
  EXPECT_DOUBLE_EQ(f[0].start, 40.0);
  EXPECT_DOUBLE_EQ(f[0].duration, 10.0);

  EXPECT_EQ(f[1].kind, FaultKind::kTelemetryBlackout);
  EXPECT_EQ(f[1].cluster, ClusterId{0});

  EXPECT_EQ(f[2].kind, FaultKind::kServiceSlowdown);
  EXPECT_EQ(f[2].service, ServiceId{0});
  EXPECT_EQ(f[2].cluster, ClusterId{0});
  EXPECT_DOUBLE_EQ(f[2].factor, 4.0);
  EXPECT_FALSE(f[3].cluster.valid());  // '*' = every cluster

  EXPECT_EQ(f[4].kind, FaultKind::kLinkDegradation);
  EXPECT_DOUBLE_EQ(f[4].factor, 3.0);
  EXPECT_DOUBLE_EQ(f[4].extra_latency, 0.05);
  EXPECT_FALSE(f[4].partition);
  EXPECT_TRUE(f[5].partition);
  EXPECT_EQ(f[5].cluster, ClusterId{1});
  EXPECT_EQ(f[5].to, ClusterId{0});
}

TEST(ScenarioLoader, FaultDirectiveForwardReferencesResolve) {
  // Faults may appear before the clusters/services they name.
  const Scenario s = load_scenario_from_string(
      "fault outage east @40s 10s\n" + std::string(kFaultBase));
  ASSERT_EQ(s.faults.size(), 1u);
  EXPECT_EQ(s.faults.faults()[0].cluster, ClusterId{1});
}

TEST(ScenarioLoader, BadFaultDirectivesRejected) {
  const std::string base = kFaultBase;
  expect_error(base + "fault meteor west @1s 2s\n", "unknown fault kind");
  expect_error(base + "fault outage nowhere @1s 2s\n", "unknown cluster");
  expect_error(base + "fault slowdown bogus west @1s 2s factor=2\n",
               "unknown service");
  expect_error(base + "fault outage east 1s 2s\n", "expected @<start-time>");
  expect_error(base + "fault outage east @1s 2s extra=1ms\n",
               "trailing token");
  expect_error(base + "fault slowdown s west @1s 2s\n", "requires factor");
  expect_error(base + "fault link west east @1s 2s\n", "needs an effect");
  expect_error(base + "fault link west west @1s 2s partition\n", "line 10");
  expect_error(base + "fault outage east @1s 0s\n", "line 10");
  expect_error(base + "fault slowdown s west @1s 2s factor=2 partition\n",
               "key=value");
}

TEST(ScenarioLoader, MissingFileThrows) {
  EXPECT_THROW(load_scenario_from_file("/nonexistent/path.slate"),
               std::runtime_error);
}

TEST(ScenarioLoader, SampleFilesParse) {
  // The shipped sample scenarios must stay valid.
  for (const char* path : {"examples/scenarios/two_cluster_overload.slate",
                           "examples/scenarios/burst.slate",
                           "examples/scenarios/anomaly_detection.slate",
                           "examples/scenarios/cluster_outage.slate"}) {
    SCOPED_TRACE(path);
    std::string full = std::string(SLATE_SOURCE_DIR) + "/" + path;
    EXPECT_NO_THROW({
      const Scenario s = load_scenario_from_file(full);
      s.app->validate();
      s.deployment->validate();
    });
  }
}

}  // namespace
}  // namespace slate
