// Unit tests for the queueing substrate: ServiceStation and Deployment.
#include <gtest/gtest.h>

#include <cmath>

#include "app/builders.h"
#include "cluster/deployment.h"
#include "cluster/service_station.h"
#include "util/stats.h"

namespace slate {
namespace {

// Drives a station open-loop with Poisson arrivals and exponential service;
// returns the mean sojourn (queue + service) time.
double simulate_mm_c(double arrival_rate, double service_mean, unsigned servers,
                     double duration, std::uint64_t seed,
                     StreamingStats* sojourn_out = nullptr) {
  Simulator sim;
  Rng rng(seed);
  ServiceStation station(sim, rng.fork(0), ServiceId{0}, ClusterId{0}, servers);
  Rng arrivals = rng.fork(1);
  StreamingStats sojourn;

  std::function<void()> arrive = [&]() {
    const double enq = sim.now();
    station.submit(service_mean,
                   [&, enq](ServiceStation::JobOutcome, double, double) {
                     sojourn.add(sim.now() - enq);
                   });
    const double gap = arrivals.exponential(1.0 / arrival_rate);
    if (sim.now() + gap < duration) sim.schedule_after(gap, arrive);
  };
  sim.schedule_at(0.0, arrive);
  sim.run();
  if (sojourn_out != nullptr) *sojourn_out = sojourn;
  return sojourn.mean();
}

TEST(ServiceStation, RequiresServers) {
  Simulator sim;
  EXPECT_THROW(ServiceStation(sim, Rng(1), ServiceId{0}, ClusterId{0}, 0),
               std::invalid_argument);
}

TEST(ServiceStation, ProcessesAllJobs) {
  Simulator sim;
  ServiceStation st(sim, Rng(2), ServiceId{0}, ClusterId{0}, 1);
  int done = 0;
  for (int i = 0; i < 50; ++i) {
    st.submit(1e-3, [&](ServiceStation::JobOutcome, double, double) { ++done; });
  }
  sim.run();
  EXPECT_EQ(done, 50);
  EXPECT_EQ(st.jobs_completed(), 50u);
  EXPECT_EQ(st.jobs_submitted(), 50u);
  EXPECT_EQ(st.queue_length(), 0u);
  EXPECT_EQ(st.busy_servers(), 0u);
}

TEST(ServiceStation, ZeroServiceTimeCompletesImmediately) {
  Simulator sim;
  ServiceStation st(sim, Rng(3), ServiceId{0}, ClusterId{0}, 1);
  bool done = false;
  st.submit(0.0, [&](ServiceStation::JobOutcome o, double q, double s) {
    done = true;
    EXPECT_EQ(o, ServiceStation::JobOutcome::kServed);
    EXPECT_EQ(q, 0.0);
    EXPECT_EQ(s, 0.0);
  });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), 0.0);
}

TEST(ServiceStation, FifoOrder) {
  Simulator sim;
  ServiceStation st(sim, Rng(4), ServiceId{0}, ClusterId{0}, 1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    st.submit(1e-3, [&order, i](ServiceStation::JobOutcome, double, double) {
      order.push_back(i);
    });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

// M/M/1 sanity: mean sojourn T = s / (1 - u).
TEST(ServiceStation, MM1SojournMatchesTheory) {
  const double s = 1e-3;
  for (double u : {0.3, 0.6, 0.8}) {
    const double lambda = u / s;
    const double measured = simulate_mm_c(lambda, s, 1, 200.0, 99);
    const double theory = s / (1.0 - u);
    EXPECT_NEAR(measured, theory, theory * 0.12) << "u=" << u;
  }
}

// M/M/c has strictly lower wait than c independent M/M/1 queues at equal
// total utilization; sanity-check the direction and stability.
TEST(ServiceStation, MultiServerReducesWait) {
  const double s = 1e-3;
  const double lambda = 1600.0;  // u = 0.8 at c=2
  const double two_servers = simulate_mm_c(lambda, s, 2, 100.0, 7);
  const double one_fast = simulate_mm_c(lambda / 2, s, 1, 100.0, 7);
  EXPECT_LT(two_servers, one_fast * 1.05);
  EXPECT_GT(two_servers, s);  // still queues some
}

TEST(ServiceStation, UtilizationTracksLoad) {
  const double s = 1e-3;
  Simulator sim;
  Rng rng(11);
  ServiceStation station(sim, rng.fork(0), ServiceId{0}, ClusterId{0}, 1);
  Rng arrivals = rng.fork(1);
  const double lambda = 500.0;  // u = 0.5
  std::function<void()> arrive = [&]() {
    station.submit(s, [](ServiceStation::JobOutcome, double, double) {});
    const double gap = arrivals.exponential(1.0 / lambda);
    if (sim.now() + gap < 100.0) sim.schedule_after(gap, arrive);
  };
  sim.schedule_at(0.0, arrive);
  sim.run();
  EXPECT_NEAR(station.utilization(), 0.5, 0.05);
  EXPECT_NEAR(station.lifetime_busy_seconds(), 0.5 * 100.0, 5.0);

  // Window reset: utilization restarts, lifetime keeps accumulating.
  const double lifetime_before = station.lifetime_busy_seconds();
  station.reset_utilization();
  EXPECT_EQ(station.utilization(), 0.0);
  EXPECT_GE(station.lifetime_busy_seconds(), lifetime_before);
}

TEST(ServiceStation, QueueAndServiceTimesReported) {
  Simulator sim;
  ServiceStation st(sim, Rng(5), ServiceId{0}, ClusterId{0}, 1);
  std::vector<double> queue_times;
  for (int i = 0; i < 5; ++i) {
    st.submit(1e-3, [&](ServiceStation::JobOutcome, double q, double sv) {
      queue_times.push_back(q);
      EXPECT_GT(sv, 0.0);
    });
  }
  sim.run();
  EXPECT_EQ(queue_times.front(), 0.0);       // first job never waits
  for (std::size_t i = 1; i < queue_times.size(); ++i) {
    EXPECT_GE(queue_times[i], queue_times[i - 1] - 1e-12);  // FIFO backlog grows
  }
}

// --- Deployment ---------------------------------------------------------------

TEST(Deployment, DeployAndQuery) {
  const Application app = make_linear_chain_app();
  Deployment dep(app, 2);
  const ServiceId svc = app.find_service("svc-1");
  dep.deploy(svc, ClusterId{0}, 3, 900.0);
  EXPECT_TRUE(dep.is_deployed(svc, ClusterId{0}));
  EXPECT_FALSE(dep.is_deployed(svc, ClusterId{1}));
  EXPECT_EQ(dep.servers(svc, ClusterId{0}), 3u);
  EXPECT_DOUBLE_EQ(dep.capacity_rps(svc, ClusterId{0}), 900.0);
  EXPECT_EQ(dep.clusters_for(svc), std::vector<ClusterId>{ClusterId{0}});
}

TEST(Deployment, DeployEverywhereAndUndeploy) {
  const Application app = make_linear_chain_app();
  Deployment dep(app, 3);
  dep.deploy_everywhere(1, 500.0);
  dep.validate();
  const ServiceId svc = app.find_service("svc-2");
  EXPECT_EQ(dep.clusters_for(svc).size(), 3u);
  dep.undeploy(svc, ClusterId{1});
  EXPECT_EQ(dep.clusters_for(svc),
            (std::vector<ClusterId>{ClusterId{0}, ClusterId{2}}));
}

TEST(Deployment, ValidateCatchesMissingService) {
  const Application app = make_linear_chain_app();
  Deployment dep(app, 2);
  dep.deploy(app.find_service("ingress"), ClusterId{0}, 1, 100.0);
  EXPECT_THROW(dep.validate(), std::logic_error);
}

TEST(Deployment, BadArgumentsThrow) {
  const Application app = make_linear_chain_app();
  Deployment dep(app, 2);
  const ServiceId svc = app.find_service("svc-1");
  EXPECT_THROW(dep.deploy(svc, ClusterId{0}, 0, 100.0), std::invalid_argument);
  EXPECT_THROW(dep.deploy(svc, ClusterId{0}, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(dep.deploy(svc, ClusterId{7}, 1, 100.0), std::out_of_range);
  EXPECT_THROW(Deployment(app, 0), std::invalid_argument);
}

}  // namespace
}  // namespace slate
